"""Performance shift and scaling (Sec. 4.1, Fig. 1).

Early- and late-stage distributions share a *shape* but not a *location*:
post-layout parasitics shift nominal gain, bandwidth, power...  Directly
fusing raw data would let the location mismatch corrupt the covariance
estimate (the rank-one term of Eq. 32 blows up).  The paper's remedy:

1. **Shift** each stage by its own nominal performance vector
   ``P_{E,NOM}`` / ``P_{L,NOM}`` (one nominal simulation per stage).
2. **Scale** both stages by the early-stage per-dimension standard
   deviation, making the clouds origin-centred and "isotropic" so metrics
   spanning seven orders of magnitude (gain vs. power) contribute equally
   to the error norms of Eq. (37)–(38).

:class:`ShiftScaleTransform` is fitted once from early-stage data plus the
two nominal vectors and then applied to either stage; it is invertible so
fused moments can be reported back in physical units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DimensionError, InsufficientDataError, NotFittedError
from repro.linalg.validation import as_samples, symmetrize

__all__ = ["ShiftScaleTransform"]


@dataclass
class ShiftScaleTransform:
    """Invertible per-stage shift and common scale for metric matrices.

    Parameters
    ----------
    early_nominal, late_nominal:
        Nominal performance vectors ``P_{E,NOM}``, ``P_{L,NOM}`` measured by
        one nominal (variation-free) simulation per stage.
    scale:
        Per-dimension scale; by convention the early-stage standard
        deviation.  Use :meth:`fit` to compute it from data.
    """

    early_nominal: Optional[np.ndarray] = None
    late_nominal: Optional[np.ndarray] = None
    scale: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        early_samples,
        early_nominal,
        late_nominal,
    ) -> "ShiftScaleTransform":
        """Fit the transform: nominal shifts plus early-stage std scaling.

        Only early-stage *distribution* data is needed — the whole point is
        that late-stage samples are scarce, so the scale must come from the
        abundant stage (Sec. 4.1: "scale both stages' data by the standard
        deviation of early-stage in each dimension").
        """
        early = as_samples(early_samples)
        e_nom = np.atleast_1d(np.asarray(early_nominal, dtype=float))
        l_nom = np.atleast_1d(np.asarray(late_nominal, dtype=float))
        d = early.shape[1]
        if e_nom.shape != (d,) or l_nom.shape != (d,):
            raise DimensionError(
                f"nominal vectors must have length {d}, got {e_nom.shape} and {l_nom.shape}"
            )
        if early.shape[0] < 2:
            raise InsufficientDataError("need at least 2 early samples to fit a scale")
        std = early.std(axis=0, ddof=0)
        if np.any(std == 0.0):
            raise InsufficientDataError(
                "an early-stage metric has zero variance; cannot scale"
            )
        return cls(early_nominal=e_nom, late_nominal=l_nom, scale=std)

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.early_nominal is None or self.late_nominal is None or self.scale is None:
            raise NotFittedError("ShiftScaleTransform is not fitted")

    @property
    def dim(self) -> int:
        """Number of performance metrics ``d``."""
        self._require_fitted()
        return self.early_nominal.shape[0]

    def _nominal(self, stage: str) -> np.ndarray:
        if stage == "early":
            return self.early_nominal
        if stage == "late":
            return self.late_nominal
        raise ValueError(f"stage must be 'early' or 'late', got {stage!r}")

    # ------------------------------------------------------------------
    def transform(self, samples, stage: str) -> np.ndarray:
        """Map physical-unit samples of ``stage`` into the isotropic space."""
        self._require_fitted()
        data = as_samples(samples)
        if data.shape[1] != self.dim:
            raise DimensionError(
                f"samples have {data.shape[1]} metrics, transform expects {self.dim}"
            )
        return (data - self._nominal(stage)) / self.scale

    def inverse_transform(self, samples, stage: str) -> np.ndarray:
        """Map isotropic-space samples of ``stage`` back to physical units."""
        self._require_fitted()
        data = as_samples(samples)
        if data.shape[1] != self.dim:
            raise DimensionError(
                f"samples have {data.shape[1]} metrics, transform expects {self.dim}"
            )
        return data * self.scale + self._nominal(stage)

    # ------------------------------------------------------------------
    def transform_moments(
        self, mean, covariance, stage: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Push physical-unit moments into the isotropic space.

        ``mean' = (mean - nominal) / scale``;
        ``cov'_ij = cov_ij / (scale_i scale_j)``.
        """
        self._require_fitted()
        mean_arr = np.atleast_1d(np.asarray(mean, dtype=float))
        cov_arr = symmetrize(np.asarray(covariance, dtype=float))
        inv = 1.0 / self.scale
        return (
            (mean_arr - self._nominal(stage)) * inv,
            symmetrize(cov_arr * np.outer(inv, inv)),
        )

    def inverse_transform_moments(
        self, mean, covariance, stage: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pull isotropic-space moments back into physical units."""
        self._require_fitted()
        mean_arr = np.atleast_1d(np.asarray(mean, dtype=float))
        cov_arr = symmetrize(np.asarray(covariance, dtype=float))
        return (
            mean_arr * self.scale + self._nominal(stage),
            symmetrize(cov_arr * np.outer(self.scale, self.scale)),
        )

    def isotropy_report(self, samples, stage: str) -> dict:
        """Diagnostics on how isotropic the transformed cloud is (Fig. 1).

        Returns the max |mean| and the per-dimension std range of the
        transformed samples; a well-matched stage pair shows means near 0
        and stds near 1.
        """
        z = self.transform(samples, stage)
        stds = z.std(axis=0, ddof=0)
        return {
            "max_abs_mean": float(np.max(np.abs(z.mean(axis=0)))),
            "min_std": float(np.min(stds)),
            "max_std": float(np.max(stds)),
        }
