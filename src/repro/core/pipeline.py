"""End-to-end BMF pipeline: Algorithm 1 plus the Sec. 4.1 preprocessing.

This is the one-call public API a circuit team would use:

>>> pipeline = BMFPipeline.fit(
...     early_samples, early_nominal, late_nominal)   # doctest: +SKIP
>>> result = pipeline.estimate(late_samples)          # doctest: +SKIP
>>> result.mean, result.covariance                    # physical units

Internally it (1) fits the shift-and-scale transform from the early-stage
data and the two nominal simulations, (2) measures the early-stage prior
moments in the isotropic space, (3) selects ``(kappa0, v0)`` by
two-dimensional cross validation on the transformed late samples, (4)
computes the MAP moments (Eq. 31–32), and (5) maps them back to physical
units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.bmf import BMFEstimator
from repro.core.estimators import MomentEstimate
from repro.core.hypergrid import HyperParameterGrid
from repro.core.preprocessing import ShiftScaleTransform
from repro.core.prior import PriorKnowledge
from repro.exceptions import DimensionError

__all__ = ["PipelineResult", "BMFPipeline"]


@dataclass(frozen=True)
class PipelineResult:
    """Fused late-stage moments in both physical and isotropic spaces."""

    #: MAP mean in physical units.
    mean: np.ndarray
    #: MAP covariance in physical units.
    covariance: np.ndarray
    #: The isotropic-space estimate (the space of Eq. 37–38).
    isotropic: MomentEstimate
    #: Selected hyper-parameters and diagnostics.
    info: Dict[str, float]


class BMFPipeline:
    """Fitted preprocessing + prior; reusable across late-stage datasets.

    Construct with :meth:`fit`; then call :meth:`estimate` for each batch
    of late-stage samples (e.g. per die, per corner).
    """

    def __init__(
        self,
        transform: ShiftScaleTransform,
        prior: PriorKnowledge,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> None:
        if transform.dim != prior.dim:
            raise DimensionError(
                f"transform dim {transform.dim} != prior dim {prior.dim}"
            )
        self.transform = transform
        self.prior = prior
        self.grid = grid
        self.n_folds = n_folds
        self.kappa0 = kappa0
        self.v0 = v0

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        early_samples,
        early_nominal,
        late_nominal,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> "BMFPipeline":
        """Fit preprocessing and prior from early-stage data.

        Parameters mirror :class:`~repro.core.bmf.BMFEstimator`; ``kappa0``
        / ``v0`` pin the hyper-parameters (ablation mode) and otherwise
        cross validation selects them per late-stage dataset.
        """
        transform = ShiftScaleTransform.fit(early_samples, early_nominal, late_nominal)
        early_iso = transform.transform(early_samples, stage="early")
        prior = PriorKnowledge.from_samples(early_iso)
        return cls(
            transform=transform,
            prior=prior,
            grid=grid,
            n_folds=n_folds,
            kappa0=kappa0,
            v0=v0,
        )

    # ------------------------------------------------------------------
    def estimate(
        self, late_samples, rng: Optional[np.random.Generator] = None
    ) -> PipelineResult:
        """Fuse prior knowledge with late-stage samples (Algorithm 1)."""
        late_iso = self.transform.transform(late_samples, stage="late")
        estimator = BMFEstimator(
            self.prior,
            kappa0=self.kappa0,
            v0=self.v0,
            grid=self.grid,
            n_folds=self.n_folds,
        )
        iso_estimate = estimator.estimate(late_iso, rng=rng)
        mean_phys, cov_phys = self.transform.inverse_transform_moments(
            iso_estimate.mean, iso_estimate.covariance, stage="late"
        )
        return PipelineResult(
            mean=mean_phys,
            covariance=cov_phys,
            isotropic=iso_estimate,
            info=dict(iso_estimate.info),
        )

    def estimate_mle(self, late_samples) -> PipelineResult:
        """Baseline MLE through the same preprocessing, for fair comparison."""
        from repro.core.mle import MLEstimator

        late_iso = self.transform.transform(late_samples, stage="late")
        iso_estimate = MLEstimator().estimate(late_iso)
        mean_phys, cov_phys = self.transform.inverse_transform_moments(
            iso_estimate.mean, iso_estimate.covariance, stage="late"
        )
        return PipelineResult(
            mean=mean_phys,
            covariance=cov_phys,
            isotropic=iso_estimate,
            info=dict(iso_estimate.info),
        )
