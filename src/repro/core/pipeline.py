"""End-to-end fusion pipeline: Algorithm 1 as composable stages.

The one-call public API a circuit team would use:

>>> pipeline = FusionPipeline.fit(
...     early_samples, early_nominal, late_nominal)   # doctest: +SKIP
>>> result = pipeline.estimate(late_samples)          # doctest: +SKIP
>>> result.mean, result.covariance                    # physical units

Internally the run is a fixed sequence of pluggable stages:

1. :class:`TransformStage` — map late samples into the isotropic space of
   the fitted Sec. 4.1 shift/scale transform (identity when disabled);
2. :class:`SelectionStage` — resolve ``(kappa0, v0)`` for hyper-parameter
   -aware estimators: the paper's two-dimensional CV, the fold-free
   evidence search, pinned values (``"fixed"``), or any selector
   registered via :func:`repro.core.registry.register_selector`;
3. :class:`EstimationStage` — build the configured estimator through the
   registry (*any* registered name, not just BMF) and run it;
4. :class:`InverseTransformStage` — map the fused moments back to
   physical units.

Which estimator runs, how hyper-parameters are selected, the grid, the
seed — all of it is declarative data in a
:class:`~repro.core.registry.FusionConfig`, and the returned
:class:`PipelineResult` carries a typed :class:`FusionProvenance` (estimator
name, selected hyper-parameters, seed, config hash) instead of a loose
``Dict[str, float]``, so a saved result is traceable to the exact
configuration that produced it.

:class:`BMFPipeline` keeps the original BMF-only constructor/`fit`
signature as a thin shim over the config-driven machinery.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.estimators import EstimateInfo, MomentEstimate
from repro.core.hypergrid import HyperParameterGrid
from repro.core.preprocessing import ShiftScaleTransform
from repro.core.prior import PriorKnowledge
from repro.core.registry import (
    EstimatorRegistry,
    EstimatorSpec,
    FusionConfig,
    default_registry,
    make_selector,
)
from repro.exceptions import ConfigError, DimensionError, HyperParameterError
from repro.linalg.validation import as_samples

__all__ = [
    "FusionProvenance",
    "PipelineResult",
    "PipelineContext",
    "PipelineStage",
    "TransformStage",
    "SelectionStage",
    "EstimationStage",
    "InverseTransformStage",
    "FusionPipeline",
    "BMFPipeline",
]


# ---------------------------------------------------------------------------
# typed provenance
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FusionProvenance:
    """What produced a fused estimate — enough to reproduce or audit it.

    Attributes
    ----------
    estimator:
        Registry name of the estimator that ran (e.g. ``"bmf"``).
    selector:
        How hyper-parameters were resolved (``"cv"``, ``"evidence"``,
        ``"fixed"``, ``"none"``); ``None`` for estimators that take no
        hyper-parameters.
    kappa0, v0:
        The normal-Wishart hyper-parameters actually used, when any.
    seed:
        The config's base seed, if the run's randomness derived from it
        (``None`` when the caller supplied its own generator).
    config_hash:
        Stable content hash of the full :class:`FusionConfig`.
    n_samples:
        Late-stage sample count consumed.
    diagnostics:
        Estimator/stage extras (selection scores, rejected-row counts...).
    """

    estimator: str
    selector: Optional[str] = None
    kappa0: Optional[float] = None
    v0: Optional[float] = None
    seed: Optional[int] = None
    config_hash: Optional[str] = None
    n_samples: int = 0
    diagnostics: EstimateInfo = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "estimator": self.estimator,
            "selector": self.selector,
            "kappa0": None if self.kappa0 is None else float(self.kappa0),
            "v0": None if self.v0 is None else float(self.v0),
            "seed": None if self.seed is None else int(self.seed),
            "config_hash": self.config_hash,
            "n_samples": int(self.n_samples),
            "diagnostics": dict(self.diagnostics),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FusionProvenance":
        if "estimator" not in payload:
            raise ConfigError("provenance payload missing 'estimator'")
        return cls(
            estimator=str(payload["estimator"]),
            selector=payload.get("selector"),
            kappa0=None if payload.get("kappa0") is None else float(payload["kappa0"]),
            v0=None if payload.get("v0") is None else float(payload["v0"]),
            seed=None if payload.get("seed") is None else int(payload["seed"]),
            config_hash=payload.get("config_hash"),
            n_samples=int(payload.get("n_samples", 0)),
            diagnostics=dict(payload.get("diagnostics", {})),
        )


@dataclass(frozen=True)
class PipelineResult:
    """Fused late-stage moments in both physical and isotropic spaces."""

    #: Fused mean in physical units.
    mean: np.ndarray
    #: Fused covariance in physical units.
    covariance: np.ndarray
    #: The isotropic-space estimate (the space of Eq. 37–38).
    isotropic: MomentEstimate
    #: Typed record of what produced this result.
    provenance: FusionProvenance
    #: The fitted preprocessing, so saved results are reconstructable
    #: (None when the pipeline ran without shift/scale).
    transform: Optional[ShiftScaleTransform] = None

    @property
    def info(self) -> EstimateInfo:
        """Legacy diagnostics view: the isotropic estimate's info dict."""
        return dict(self.isotropic.info)


# ---------------------------------------------------------------------------
# stages
# ---------------------------------------------------------------------------
@dataclass
class PipelineContext:
    """Mutable state threaded through the stages of one estimate call."""

    config: FusionConfig
    registry: EstimatorRegistry
    samples: np.ndarray
    rng: Optional[np.random.Generator] = None
    transform: Optional[ShiftScaleTransform] = None
    prior: Optional[PriorKnowledge] = None
    grid: Optional[HyperParameterGrid] = None
    late_iso: Optional[np.ndarray] = None
    kappa0: Optional[float] = None
    v0: Optional[float] = None
    selector_used: Optional[str] = None
    estimator_name: Optional[str] = None
    iso_estimate: Optional[MomentEstimate] = None
    mean: Optional[np.ndarray] = None
    covariance: Optional[np.ndarray] = None
    diagnostics: EstimateInfo = field(default_factory=dict)


class PipelineStage(abc.ABC):
    """One step of the fusion flow; stages mutate the shared context."""

    name: str = "stage"

    @abc.abstractmethod
    def run(self, ctx: PipelineContext) -> None:
        """Advance the context; raise on unmet preconditions."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TransformStage(PipelineStage):
    """Map physical late-stage samples into the isotropic space."""

    name = "transform"

    def run(self, ctx: PipelineContext) -> None:
        data = as_samples(ctx.samples)
        if ctx.transform is not None:
            ctx.late_iso = ctx.transform.transform(data, stage="late")
        else:
            ctx.late_iso = np.array(data, dtype=float, copy=True)


class SelectionStage(PipelineStage):
    """Resolve ``(kappa0, v0)`` per the config's selection policy.

    Runs only for estimators whose registry entry advertises
    ``accepts_hyperparams``; explicit values in the estimator spec's params
    short-circuit every policy (they *are* the selection).
    """

    name = "selection"

    def run(self, ctx: PipelineContext) -> None:
        entry = ctx.registry.entry(ctx.config.estimator.name)
        if not entry.accepts_hyperparams:
            return
        params = ctx.config.estimator.params
        if params.get("kappa0") is not None and params.get("v0") is not None:
            ctx.kappa0 = float(params["kappa0"])
            ctx.v0 = float(params["v0"])
            ctx.selector_used = "fixed"
            return
        policy = ctx.config.selector
        if policy == "none":
            return
        if policy == "fixed":
            if ctx.config.kappa0 is None or ctx.config.v0 is None:
                raise HyperParameterError(
                    "selector 'fixed' requires kappa0 and v0 in the config"
                )
            ctx.kappa0 = float(ctx.config.kappa0)
            ctx.v0 = float(ctx.config.v0)
            ctx.selector_used = "fixed"
            return
        if ctx.prior is None:
            raise ConfigError("hyper-parameter selection requires a fitted prior")
        grid = ctx.grid
        if grid is None:
            grid = HyperParameterGrid.paper_default(ctx.prior.dim)
        selector = make_selector(policy, ctx.prior, grid, ctx.config.n_folds)
        result = selector.select(ctx.late_iso, rng=ctx.rng)
        ctx.kappa0 = float(result.kappa0)
        ctx.v0 = float(result.v0)
        ctx.selector_used = policy
        best = getattr(result, "best_score", getattr(result, "best_log_evidence", None))
        if best is not None:
            ctx.diagnostics["selection_score"] = float(best)


class EstimationStage(PipelineStage):
    """Build the configured estimator through the registry and run it."""

    name = "estimation"

    def run(self, ctx: PipelineContext) -> None:
        estimator = ctx.registry.build(
            ctx.config.estimator,
            prior=ctx.prior,
            kappa0=ctx.kappa0,
            v0=ctx.v0,
        )
        ctx.iso_estimate = estimator.estimate(ctx.late_iso, rng=ctx.rng)
        ctx.estimator_name = ctx.config.estimator.name
        info = ctx.iso_estimate.info
        # An estimator that self-selected (selector "none") still reports
        # what it used; fold that back into the provenance.
        if ctx.kappa0 is None and "kappa0" in info:
            ctx.kappa0 = float(info["kappa0"])
            ctx.selector_used = ctx.selector_used or "estimator"
        if ctx.v0 is None and "v0" in info:
            ctx.v0 = float(info["v0"])


class InverseTransformStage(PipelineStage):
    """Pull the fused isotropic moments back into physical units."""

    name = "inverse-transform"

    def run(self, ctx: PipelineContext) -> None:
        estimate = ctx.iso_estimate
        if estimate is None:
            raise ConfigError("estimation stage must run before inverse transform")
        if ctx.transform is not None:
            ctx.mean, ctx.covariance = ctx.transform.inverse_transform_moments(
                estimate.mean, estimate.covariance, stage="late"
            )
        else:
            ctx.mean = np.array(estimate.mean, copy=True)
            ctx.covariance = np.array(estimate.covariance, copy=True)


#: The canonical stage order of Algorithm 1 + Sec. 4.1.
DEFAULT_STAGES = (
    TransformStage,
    SelectionStage,
    EstimationStage,
    InverseTransformStage,
)


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------
class FusionPipeline:
    """Fitted preprocessing + prior, running any registry estimator.

    Construct with :meth:`fit`; then call :meth:`estimate` for each batch
    of late-stage samples (e.g. per die, per corner).  The estimator, the
    hyper-parameter selection policy, and the grid are all data in a
    :class:`~repro.core.registry.FusionConfig` — swap estimators by
    editing the config (or use :meth:`estimate_with` for one-off runs),
    never by touching pipeline code.
    """

    def __init__(
        self,
        transform: Optional[ShiftScaleTransform],
        prior: PriorKnowledge,
        config: Optional[FusionConfig] = None,
        registry: Optional[EstimatorRegistry] = None,
        grid: Optional[HyperParameterGrid] = None,
        stages: Optional[Sequence[PipelineStage]] = None,
    ) -> None:
        if transform is not None and transform.dim != prior.dim:
            raise DimensionError(
                f"transform dim {transform.dim} != prior dim {prior.dim}"
            )
        self.transform = transform
        self.prior = prior
        self.config = config if config is not None else FusionConfig()
        self.registry = registry if registry is not None else default_registry()
        if grid is not None:
            self.grid: Optional[HyperParameterGrid] = grid
        elif self.config.grid is not None:
            self.grid = self.config.grid.materialize(prior.dim)
        else:
            self.grid = None
        self.stages: List[PipelineStage] = (
            list(stages) if stages is not None else [cls() for cls in DEFAULT_STAGES]
        )

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        early_samples,
        early_nominal=None,
        late_nominal=None,
        config: Optional[FusionConfig] = None,
        registry: Optional[EstimatorRegistry] = None,
        grid: Optional[HyperParameterGrid] = None,
    ) -> "FusionPipeline":
        """Fit preprocessing and prior from early-stage data.

        With ``config.shift_scale`` (the paper's flow) the two nominal
        vectors are required; without it the prior is measured from the
        raw early samples and no transform is fitted.
        """
        cfg = config if config is not None else FusionConfig()
        if cfg.shift_scale:
            if early_nominal is None or late_nominal is None:
                raise ConfigError(
                    "shift/scale preprocessing needs early_nominal and late_nominal"
                )
            transform: Optional[ShiftScaleTransform] = ShiftScaleTransform.fit(
                early_samples, early_nominal, late_nominal
            )
            early_iso = transform.transform(early_samples, stage="early")
        else:
            transform = None
            early_iso = as_samples(early_samples)
        prior = PriorKnowledge.from_samples(early_iso)
        return cls(
            transform=transform,
            prior=prior,
            config=cfg,
            registry=registry,
            grid=grid,
        )

    # ------------------------------------------------------------------
    def estimate(
        self,
        late_samples,
        rng: Optional[np.random.Generator] = None,
        config: Optional[FusionConfig] = None,
    ) -> PipelineResult:
        """Run the staged fusion flow on one late-stage batch.

        ``rng`` seeds stochastic stages (CV fold splits); when omitted and
        the config carries a ``seed``, a generator is derived from it so
        the whole run is reproducible from the config alone.
        """
        cfg = config if config is not None else self.config
        seed_used: Optional[int] = None
        if rng is None and cfg.seed is not None:
            rng = np.random.default_rng(cfg.seed)
            seed_used = cfg.seed
        grid = self.grid
        if config is not None and config.grid is not None and config is not self.config:
            grid = config.grid.materialize(self.prior.dim)
        ctx = PipelineContext(
            config=cfg,
            registry=self.registry,
            samples=late_samples,
            rng=rng,
            transform=self.transform,
            prior=self.prior,
            grid=grid,
        )
        for stage in self.stages:
            stage.run(ctx)
        assert ctx.iso_estimate is not None  # EstimationStage ran
        diagnostics: EstimateInfo = dict(ctx.iso_estimate.info)
        diagnostics.update(ctx.diagnostics)
        provenance = FusionProvenance(
            estimator=ctx.estimator_name or cfg.estimator.name,
            selector=ctx.selector_used,
            kappa0=ctx.kappa0,
            v0=ctx.v0,
            seed=seed_used,
            config_hash=cfg.config_hash(),
            n_samples=ctx.iso_estimate.n_samples,
            diagnostics=diagnostics,
        )
        return PipelineResult(
            mean=ctx.mean,
            covariance=ctx.covariance,
            isotropic=ctx.iso_estimate,
            provenance=provenance,
            transform=self.transform,
        )

    # ------------------------------------------------------------------
    def estimate_with(
        self,
        estimator: Union[str, EstimatorSpec],
        late_samples,
        rng: Optional[np.random.Generator] = None,
    ) -> PipelineResult:
        """Run a different registry estimator through the same fitted flow.

        The fair-comparison workhorse: identical preprocessing and prior,
        only the estimation stage changes.
        """
        spec = EstimatorSpec(estimator) if isinstance(estimator, str) else estimator
        cfg = self.config.replace(estimator=spec)
        return self.estimate(late_samples, rng=rng, config=cfg)

    def estimate_mle(
        self, late_samples, rng: Optional[np.random.Generator] = None
    ) -> PipelineResult:
        """Baseline MLE through the same preprocessing, for fair comparison."""
        return self.estimate_with("mle", late_samples, rng=rng)


class BMFPipeline(FusionPipeline):
    """The original BMF-only facade over the staged pipeline.

    Kept for source compatibility: the constructor and :meth:`fit` take the
    historical ``(grid, n_folds, kappa0, v0)`` arguments and translate them
    into a :class:`FusionConfig` targeting the ``"bmf"`` registry entry.
    """

    def __init__(
        self,
        transform: ShiftScaleTransform,
        prior: PriorKnowledge,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> None:
        config = FusionConfig(
            estimator=EstimatorSpec("bmf"),
            selector="fixed" if kappa0 is not None else "cv",
            kappa0=kappa0,
            v0=v0,
            n_folds=n_folds,
        )
        super().__init__(transform, prior, config=config, grid=grid)

    @classmethod
    def fit(
        cls,
        early_samples,
        early_nominal=None,
        late_nominal=None,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> "BMFPipeline":
        """Fit preprocessing and prior from early-stage data (legacy API).

        ``kappa0``/``v0`` pin the hyper-parameters (ablation mode) and
        otherwise cross validation selects them per late-stage dataset.
        """
        transform = ShiftScaleTransform.fit(early_samples, early_nominal, late_nominal)
        early_iso = transform.transform(early_samples, stage="early")
        prior = PriorKnowledge.from_samples(early_iso)
        return cls(
            transform=transform,
            prior=prior,
            grid=grid,
            n_folds=n_folds,
            kappa0=kappa0,
            v0=v0,
        )
