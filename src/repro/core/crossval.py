"""Two-dimensional Q-fold cross validation for ``(kappa0, v0)`` (Sec. 4.2).

For every candidate pair on a :class:`~repro.core.hypergrid.HyperParameterGrid`
the late-stage samples are split into ``Q`` folds; each fold in turn is held
out, the MAP moments (Eq. 31–32) are computed from the remaining folds, and
the held-out fold is scored with the Gaussian log-likelihood (Eq. 9).  The
pair maximising the average held-out log-likelihood wins — "larger
likelihood function value indicates more accurate estimation" (Sec. 4.2).

Implementation notes
--------------------
The fold statistics (mean, scatter) are computed once per fold and reused
across all grid candidates, so a full search costs
``O(Q * (n d^2 + d^3) + Q * |grid| * d^3)`` instead of re-touching the data
``|grid|`` times.  For the paper's ``d = 5`` this makes the entire
two-dimensional search sub-millisecond per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import InsufficientDataError, NotSPDError
from repro.linalg.validation import as_samples, clip_eigenvalues
from repro.stats.multivariate_gaussian import MultivariateGaussian

__all__ = ["CrossValidationResult", "TwoDimensionalCV", "make_folds"]


@dataclass(frozen=True)
class CrossValidationResult:
    """Winner of the two-dimensional search plus the full score surface.

    ``scores[i, j]`` is the average held-out log-likelihood for
    ``kappa0_values[i]`` and ``v0_values[j]`` — exactly the landscape the
    paper sketches in Fig. 2(a).
    """

    kappa0: float
    v0: float
    best_score: float
    kappa0_values: np.ndarray
    v0_values: np.ndarray
    scores: np.ndarray
    n_folds: int

    def score_at(self, kappa0: float, v0: float) -> float:
        """Score of a specific grid candidate (must be on the grid)."""
        i = int(np.argmin(np.abs(self.kappa0_values - kappa0)))
        j = int(np.argmin(np.abs(self.v0_values - v0)))
        return float(self.scores[i, j])


def make_folds(
    n: int, n_folds: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Partition ``range(n)`` into ``n_folds`` near-equal random folds.

    Matches Fig. 2(b): each sample appears in exactly one testing fold.
    Deterministic given ``rng``; with ``rng=None`` the split is still
    randomised (fresh generator) to avoid systematic ordering bias when
    samples arrive sorted.
    """
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n < n_folds:
        raise InsufficientDataError(
            f"cannot split {n} samples into {n_folds} folds"
        )
    gen = rng if rng is not None else np.random.default_rng()
    perm = gen.permutation(n)
    return [np.sort(part) for part in np.array_split(perm, n_folds)]


class TwoDimensionalCV:
    """Grid-search cross validator for the BMF hyper-parameters.

    Parameters
    ----------
    prior:
        Early-stage knowledge used by every candidate's MAP estimate.
    grid:
        Candidate ``(kappa0, v0)`` combinations.
    n_folds:
        Requested ``Q``; automatically reduced to ``n`` when fewer samples
        than folds are supplied (leave-one-out at the extreme).
    """

    def __init__(
        self,
        prior: PriorKnowledge,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
    ) -> None:
        self.prior = prior
        self.grid = grid if grid is not None else HyperParameterGrid.paper_default(prior.dim)
        if self.grid.dim != prior.dim:
            raise InsufficientDataError(
                f"grid dim {self.grid.dim} does not match prior dim {prior.dim}"
            )
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2, got {n_folds}")
        self.n_folds = int(n_folds)

    # ------------------------------------------------------------------
    def select(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> CrossValidationResult:
        """Run the full two-dimensional search and return the winner."""
        data = as_samples(samples)
        n, d = data.shape
        if d != self.prior.dim:
            raise InsufficientDataError(
                f"samples have {d} metrics but prior has {self.prior.dim}"
            )
        if n < 2:
            raise InsufficientDataError("cross validation needs at least 2 samples")
        q = min(self.n_folds, n)
        folds = make_folds(n, q, rng)
        fold_stats = [self._train_test_stats(data, fold) for fold in folds]

        kappas = self.grid.kappa0_values
        vs = self.grid.v0_values
        scores = np.full((kappas.size, vs.size), -np.inf)
        for i, kappa0 in enumerate(kappas):
            for j, v0 in enumerate(vs):
                scores[i, j] = self._score_candidate(fold_stats, float(kappa0), float(v0))

        best_flat = int(np.argmax(scores))
        bi, bj = np.unravel_index(best_flat, scores.shape)
        return CrossValidationResult(
            kappa0=float(kappas[bi]),
            v0=float(vs[bj]),
            best_score=float(scores[bi, bj]),
            kappa0_values=kappas.copy(),
            v0_values=vs.copy(),
            scores=scores,
            n_folds=q,
        )

    # ------------------------------------------------------------------
    def _train_test_stats(
        self, data: np.ndarray, test_idx: np.ndarray
    ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """Per-fold sufficient statistics reused by every grid candidate.

        Returns ``(n_train, xbar_train, scatter_train, test_rows)``.
        """
        n = data.shape[0]
        mask = np.ones(n, dtype=bool)
        mask[test_idx] = False
        train = data[mask]
        test = data[~mask]
        n_train = train.shape[0]
        if n_train == 0:
            raise InsufficientDataError("a training fold is empty; reduce n_folds")
        xbar = train.mean(axis=0)
        centered = train - xbar
        scatter = centered.T @ centered
        scatter = (scatter + scatter.T) / 2.0
        return n_train, xbar, scatter, test

    def _score_candidate(
        self,
        fold_stats: Sequence[Tuple[int, np.ndarray, np.ndarray, np.ndarray]],
        kappa0: float,
        v0: float,
    ) -> float:
        """Average held-out log-likelihood of one ``(kappa0, v0)`` pair."""
        d = self.prior.dim
        mu_e = self.prior.mean
        sigma_e = self.prior.covariance
        total = 0.0
        for n_train, xbar, scatter, test in fold_stats:
            diff = mu_e - xbar
            mu_map = (kappa0 * mu_e + n_train * xbar) / (kappa0 + n_train)
            numerator = (
                (v0 - d) * sigma_e
                + scatter
                + (kappa0 * n_train / (kappa0 + n_train)) * np.outer(diff, diff)
            )
            sigma_map = numerator / (v0 + n_train - d)
            sigma_map = (sigma_map + sigma_map.T) / 2.0
            try:
                gaussian = MultivariateGaussian(mu_map, sigma_map)
            except NotSPDError:
                # Degenerate candidate (v0 -> d with a rank-deficient
                # scatter): repair once, and if still singular score it out.
                try:
                    gaussian = MultivariateGaussian(
                        mu_map, clip_eigenvalues(sigma_map, 1e-10)
                    )
                except NotSPDError:
                    return -np.inf
            # Average per-sample log-likelihood keeps folds of slightly
            # different sizes comparable.
            total += gaussian.loglik(test) / test.shape[0]
        return total / len(fold_stats)
