"""Two-dimensional Q-fold cross validation for ``(kappa0, v0)`` (Sec. 4.2).

For every candidate pair on a :class:`~repro.core.hypergrid.HyperParameterGrid`
the late-stage samples are split into ``Q`` folds; each fold in turn is held
out, the MAP moments (Eq. 31–32) are computed from the remaining folds, and
the held-out fold is scored with the Gaussian log-likelihood (Eq. 9).  The
pair maximising the average held-out log-likelihood wins — "larger
likelihood function value indicates more accurate estimation" (Sec. 4.2).

Implementation notes
--------------------
The fold statistics (mean, scatter) are computed once per fold and reused
across all grid candidates.  The default ``"batched"`` scorer then exploits
that Eq. (31)–(32) are *affine* in those statistics: the MAP covariances of
every grid candidate and fold are assembled as one ``(Q * |grid|, d, d)``
stack by broadcasting, factorised by a single batched Cholesky (with a
vectorised jitter/eigenvalue-clip repair ladder for the non-SPD
stragglers), and every held-out fold is scored with batched triangular
solves — no Python-level per-candidate work at all.  The ``"loop"`` scorer
keeps the original one-``MultivariateGaussian``-per-candidate formulation
as the reference implementation; the equivalence suite pins the two to
``1e-10`` agreement.

Determinism contract
--------------------
Every entry point that splits folds accepts an ``rng``; passing a seeded
generator makes the whole search (folds, therefore scores and winner)
reproducible.  ``rng=None`` deliberately draws fresh OS entropy instead —
randomised folds protect against systematic ordering bias when samples
arrive sorted — so callers that need repeatability must thread their own
generator all the way through (``ErrorSweep`` and
:meth:`~repro.core.bmf.BMFEstimator.estimate` do exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import HyperParameterError, InsufficientDataError, NotSPDError
from repro.linalg.batched import (
    cholesky_batched_safe,
    logdet_batched,
    solve_triangular_batched,
)
from repro.linalg.validation import as_samples, clip_eigenvalues
from repro.stats.multivariate_gaussian import _LOG_2PI, MultivariateGaussian

__all__ = ["CrossValidationResult", "TwoDimensionalCV", "make_folds"]

#: Per-fold sufficient statistics: ``(n_train, xbar, scatter, test_rows)``.
FoldStats = Tuple[int, np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class CrossValidationResult:
    """Winner of the two-dimensional search plus the full score surface.

    ``scores[i, j]`` is the average held-out log-likelihood for
    ``kappa0_values[i]`` and ``v0_values[j]`` — exactly the landscape the
    paper sketches in Fig. 2(a).
    """

    kappa0: float
    v0: float
    best_score: float
    kappa0_values: np.ndarray
    v0_values: np.ndarray
    scores: np.ndarray
    n_folds: int

    def score_at(self, kappa0: float, v0: float, atol: float = 1e-9) -> float:
        """Score of a specific grid candidate.

        The query must name an actual grid point: each coordinate is
        matched against its axis within ``atol * max(1, |query|)`` (loose
        enough to absorb float round-trips through JSON or string
        formatting).  Off-grid queries raise
        :class:`~repro.exceptions.HyperParameterError` instead of silently
        snapping to the nearest candidate.
        """
        i = int(np.argmin(np.abs(self.kappa0_values - kappa0)))
        j = int(np.argmin(np.abs(self.v0_values - v0)))
        if abs(float(self.kappa0_values[i]) - kappa0) > atol * max(1.0, abs(kappa0)):
            raise HyperParameterError(
                f"kappa0={kappa0!r} is not on the grid (nearest candidate: "
                f"{float(self.kappa0_values[i])!r})"
            )
        if abs(float(self.v0_values[j]) - v0) > atol * max(1.0, abs(v0)):
            raise HyperParameterError(
                f"v0={v0!r} is not on the grid (nearest candidate: "
                f"{float(self.v0_values[j])!r})"
            )
        return float(self.scores[i, j])


def make_folds(
    n: int, n_folds: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Partition ``range(n)`` into ``n_folds`` near-equal random folds.

    Matches Fig. 2(b): each sample appears in exactly one testing fold.
    Deterministic given ``rng``.  With ``rng=None`` the split draws fresh
    OS entropy — still randomised to avoid systematic ordering bias when
    samples arrive sorted, but **not reproducible**; callers that need
    repeatable folds (every experiment harness in this repo) must pass a
    seeded generator.  See the module docstring's determinism contract.
    """
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n < n_folds:
        raise InsufficientDataError(
            f"cannot split {n} samples into {n_folds} folds"
        )
    gen = rng if rng is not None else np.random.default_rng()
    perm = gen.permutation(n)
    return [np.sort(part) for part in np.array_split(perm, n_folds)]


class TwoDimensionalCV:
    """Grid-search cross validator for the BMF hyper-parameters.

    Parameters
    ----------
    prior:
        Early-stage knowledge used by every candidate's MAP estimate.
    grid:
        Candidate ``(kappa0, v0)`` combinations.
    n_folds:
        Requested ``Q``; automatically reduced to ``n`` when fewer samples
        than folds are supplied (leave-one-out at the extreme).
    scoring:
        ``"batched"`` (default) scores the whole grid with one batched
        Cholesky over the ``(Q * |grid|, d, d)`` candidate stack;
        ``"loop"`` is the original per-candidate reference implementation.
        The two agree to ``1e-10``.
    """

    def __init__(
        self,
        prior: PriorKnowledge,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
        scoring: str = "batched",
    ) -> None:
        self.prior = prior
        self.grid = grid if grid is not None else HyperParameterGrid.paper_default(prior.dim)
        if self.grid.dim != prior.dim:
            raise InsufficientDataError(
                f"grid dim {self.grid.dim} does not match prior dim {prior.dim}"
            )
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2, got {n_folds}")
        self.n_folds = int(n_folds)
        if scoring not in ("batched", "loop"):
            raise ValueError(f"scoring must be 'batched' or 'loop', got {scoring!r}")
        self.scoring = scoring

    # ------------------------------------------------------------------
    def select(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> CrossValidationResult:
        """Run the full two-dimensional search and return the winner."""
        data = as_samples(samples)
        n, d = data.shape
        if d != self.prior.dim:
            raise InsufficientDataError(
                f"samples have {d} metrics but prior has {self.prior.dim}"
            )
        if n < 2:
            raise InsufficientDataError("cross validation needs at least 2 samples")
        q = min(self.n_folds, n)
        folds = make_folds(n, q, rng)
        fold_stats = [self._train_test_stats(data, fold) for fold in folds]

        kappas = self.grid.kappa0_values
        vs = self.grid.v0_values
        if self.scoring == "batched":
            scores = self._score_grid_batched(fold_stats)
        else:
            scores = np.full((kappas.size, vs.size), -np.inf)
            for i, kappa0 in enumerate(kappas):
                for j, v0 in enumerate(vs):
                    scores[i, j] = self._score_candidate(
                        fold_stats, float(kappa0), float(v0)
                    )

        best_flat = int(np.argmax(scores))
        bi, bj = np.unravel_index(best_flat, scores.shape)
        return CrossValidationResult(
            kappa0=float(kappas[bi]),
            v0=float(vs[bj]),
            best_score=float(scores[bi, bj]),
            kappa0_values=kappas.copy(),
            v0_values=vs.copy(),
            scores=scores,
            n_folds=q,
        )

    # ------------------------------------------------------------------
    def _train_test_stats(
        self, data: np.ndarray, test_idx: np.ndarray
    ) -> FoldStats:
        """Per-fold sufficient statistics reused by every grid candidate.

        Returns ``(n_train, xbar_train, scatter_train, test_rows)``.
        """
        n = data.shape[0]
        mask = np.ones(n, dtype=bool)
        mask[test_idx] = False
        train = data[mask]
        test = data[~mask]
        n_train = train.shape[0]
        if n_train == 0:
            raise InsufficientDataError("a training fold is empty; reduce n_folds")
        xbar = train.mean(axis=0)
        centered = train - xbar
        scatter = centered.T @ centered
        scatter = (scatter + scatter.T) / 2.0
        return n_train, xbar, scatter, test

    # ------------------------------------------------------------------
    # batched scorer (the default)
    # ------------------------------------------------------------------
    def _assemble_fold_stack(
        self, stats: FoldStats
    ) -> Tuple[np.ndarray, np.ndarray]:
        """MAP moments of *every* grid candidate for one fold, by broadcast.

        Eq. (31)–(32) are affine in the fold statistics, so the full
        ``(K, V)`` candidate block is a rank-one broadcast:
        ``numerator[k, v] = (v0[v] - d) Sigma_E + S + c[k] * outer`` with
        ``c[k] = kappa0[k] n / (kappa0[k] + n)``.  Returns
        ``(mu_stack, sigma_stack)`` flattened to ``(K * V, d)`` and
        ``(K * V, d, d)`` in C order (v0 fastest), matching the loop
        scorer's iteration order.
        """
        n_train, xbar, scatter, _test = stats
        d = self.prior.dim
        mu_e = self.prior.mean
        sigma_e = self.prior.covariance
        kappas = self.grid.kappa0_values
        vs = self.grid.v0_values

        diff = mu_e - xbar
        outer = np.outer(diff, diff)
        c = kappas * n_train / (kappas + n_train)  # (K,)
        base = (vs[:, None, None] - d) * sigma_e + scatter  # (V, d, d)
        numerator = base[None, :, :, :] + c[:, None, None, None] * outer
        sigma = numerator / (vs[None, :, None, None] + n_train - d)
        sigma = (sigma + np.swapaxes(sigma, -1, -2)) / 2.0

        mu = (kappas[:, None] * mu_e + n_train * xbar) / (kappas + n_train)[:, None]
        mu_stack = np.broadcast_to(
            mu[:, None, :], (kappas.size, vs.size, d)
        ).reshape(-1, d)
        return mu_stack, sigma.reshape(-1, d, d)

    def _score_grid_batched(self, fold_stats: Sequence[FoldStats]) -> np.ndarray:
        """Score the whole ``(K, V)`` grid with one batched Cholesky.

        The candidate covariances of all folds are stacked into a single
        ``(Q * K * V, d, d)`` array and factorised together (with the
        vectorised repair ladder); each held-out fold is then scored
        against its slice with batched triangular solves.  Candidates whose
        covariance is irreparable in *any* fold score ``-inf``, exactly as
        the loop scorer short-circuits.
        """
        d = self.prior.dim
        kappas = self.grid.kappa0_values
        vs = self.grid.v0_values
        block = kappas.size * vs.size

        mus, sigmas = zip(*(self._assemble_fold_stack(s) for s in fold_stats))
        chol, ok = cholesky_batched_safe(
            np.concatenate(sigmas, axis=0), jitter_rel=1e-10, clip_floor_rel=1e-10
        )
        log_det = logdet_batched(chol)

        total = np.zeros(block)
        usable = np.ones(block, dtype=bool)
        for q, stats in enumerate(fold_stats):
            test = stats[3]
            sel = slice(q * block, (q + 1) * block)
            usable &= ok[sel]
            diff = np.swapaxes(
                test[None, :, :] - mus[q][:, None, :], -1, -2
            )  # (block, d, n_test)
            z = solve_triangular_batched(chol[sel], diff, lower=True)
            maha = np.sum(z * z, axis=1)  # (block, n_test)
            logpdf = -0.5 * (d * _LOG_2PI + log_det[sel][:, None] + maha)
            # Average per-sample log-likelihood keeps folds of slightly
            # different sizes comparable (same normalisation as the loop).
            total += logpdf.sum(axis=1) / test.shape[0]
        total /= len(fold_stats)
        total[~usable] = -np.inf
        return total.reshape(kappas.size, vs.size)

    # ------------------------------------------------------------------
    # loop scorer (reference implementation)
    # ------------------------------------------------------------------
    def _score_candidate(
        self,
        fold_stats: Sequence[FoldStats],
        kappa0: float,
        v0: float,
    ) -> float:
        """Average held-out log-likelihood of one ``(kappa0, v0)`` pair."""
        d = self.prior.dim
        mu_e = self.prior.mean
        sigma_e = self.prior.covariance
        total = 0.0
        for n_train, xbar, scatter, test in fold_stats:
            diff = mu_e - xbar
            mu_map = (kappa0 * mu_e + n_train * xbar) / (kappa0 + n_train)
            numerator = (
                (v0 - d) * sigma_e
                + scatter
                + (kappa0 * n_train / (kappa0 + n_train)) * np.outer(diff, diff)
            )
            sigma_map = numerator / (v0 + n_train - d)
            sigma_map = (sigma_map + sigma_map.T) / 2.0
            try:
                gaussian = MultivariateGaussian(mu_map, sigma_map)
            except NotSPDError:
                # Degenerate candidate (v0 -> d with a rank-deficient
                # scatter): repair once, and if still singular score it out.
                try:
                    gaussian = MultivariateGaussian(
                        mu_map, clip_eigenvalues(sigma_map, 1e-10)
                    )
                except NotSPDError:
                    return -np.inf
            # Average per-sample log-likelihood keeps folds of slightly
            # different sizes comparable.
            total += gaussian.loglik(test) / test.shape[0]
        return total / len(fold_stats)
