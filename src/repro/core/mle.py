"""Maximum-likelihood moment estimation — the paper's comparison baseline.

Implements Eq. (10)–(11): sample mean and the ``1/n``-normalised sample
covariance.  With very few samples the covariance estimate is singular or
badly conditioned (it has rank at most ``n - 1``), which is precisely the
failure mode the paper's BMF method addresses; the optional eigenvalue
floor keeps downstream consumers (likelihood scoring, yield integration)
usable without changing the estimate materially.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.exceptions import InsufficientDataError
from repro.linalg.validation import clip_eigenvalues
from repro.stats.suffstats import SufficientStats

__all__ = ["MLEstimator"]


class MLEstimator(MomentEstimator):
    """Classical MLE of the Gaussian mean vector and covariance matrix.

    Parameters
    ----------
    eig_floor_rel:
        Relative eigenvalue floor applied to the covariance estimate so a
        rank-deficient estimate (``n <= d``) is still invertible.  Set to
        ``0`` to return the raw, possibly singular MLE.
    ddof:
        Degrees-of-freedom correction; ``0`` (default) matches Eq. (11),
        ``1`` gives the unbiased covariance.
    """

    name = "mle"

    def __init__(self, eig_floor_rel: float = 1e-8, ddof: int = 0) -> None:
        if eig_floor_rel < 0.0:
            raise ValueError(f"eig_floor_rel must be >= 0, got {eig_floor_rel}")
        if ddof not in (0, 1):
            raise ValueError(f"ddof must be 0 or 1, got {ddof}")
        self.eig_floor_rel = float(eig_floor_rel)
        self.ddof = int(ddof)

    def estimate(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """Estimate the moments via Eq. (10)–(11)."""
        data = self._check(samples)
        return self.estimate_from_stats(SufficientStats.from_samples(data))

    def estimate_from_stats(self, stats: SufficientStats) -> MomentEstimate:
        """Eq. (10)–(11) from accumulated sufficient statistics.

        ``Xbar`` and ``S/n`` are exactly the accumulator's ``(mean,
        scatter/n)``, so the MLE needs no raw samples either — the one-shot
        :meth:`estimate` funnels through here with a freshly built
        accumulator and is bit-identical to earlier inline revisions.
        """
        n = stats.n
        if n < 2:
            raise InsufficientDataError(
                f"MLE covariance needs at least 2 samples, got {n}"
            )
        mean = stats.mean
        cov = stats.scatter / n
        if self.ddof == 1:
            cov = cov * n / (n - 1)
        if self.eig_floor_rel > 0.0:
            cov = clip_eigenvalues(cov, self.eig_floor_rel)
        return MomentEstimate(
            mean=mean,
            covariance=cov,
            n_samples=n,
            method=self.name,
            info={"ddof": float(self.ddof)},
        )
