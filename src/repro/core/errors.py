"""Estimation-error criteria of Eq. (37)–(38).

The paper compares estimators in the shifted-and-scaled ("isotropic") space
using *absolute* norms — the normalisation already happened in the
preprocessing step, so the absolute error reflects the relative mismatch of
the distribution shapes equally across metrics of wildly different
magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimators import MomentEstimate
from repro.exceptions import DimensionError
from repro.linalg.norms import frobenius_norm, vector_2norm
from repro.linalg.validation import symmetrize

__all__ = ["mean_error", "covariance_error", "EstimationError", "estimation_error"]


def mean_error(estimated_mean, exact_mean) -> float:
    """``Error_mean = || mu_ESTI - mu_EXACT ||_2`` (Eq. 37)."""
    est = np.atleast_1d(np.asarray(estimated_mean, dtype=float))
    exact = np.atleast_1d(np.asarray(exact_mean, dtype=float))
    if est.shape != exact.shape:
        raise DimensionError(
            f"mean shapes differ: {est.shape} vs {exact.shape}"
        )
    return vector_2norm(est - exact)


def covariance_error(estimated_cov, exact_cov) -> float:
    """``Error_cov = || Sigma_ESTI - Sigma_EXACT ||_F`` (Eq. 38)."""
    est = symmetrize(np.asarray(estimated_cov, dtype=float))
    exact = symmetrize(np.asarray(exact_cov, dtype=float))
    if est.shape != exact.shape:
        raise DimensionError(
            f"covariance shapes differ: {est.shape} vs {exact.shape}"
        )
    return frobenius_norm(est - exact)


@dataclass(frozen=True)
class EstimationError:
    """Both error criteria for one estimate against the ground truth."""

    mean_error: float
    covariance_error: float
    method: str
    n_samples: int


def estimation_error(
    estimate: MomentEstimate, exact_mean, exact_cov
) -> EstimationError:
    """Evaluate Eq. (37)–(38) for a :class:`MomentEstimate`."""
    return EstimationError(
        mean_error=mean_error(estimate.mean, exact_mean),
        covariance_error=covariance_error(estimate.covariance, exact_cov),
        method=estimate.method,
        n_samples=estimate.n_samples,
    )
