"""Multi-population BMF: fusing across corners/configurations.

Reference [7] — the univariate predecessor the paper extends — exploits
that "data under different circuit configurations and corners are strongly
correlated".  This module lifts that idea to the multivariate setting.

Model: K populations (e.g., process corners) of the *same* circuit, each
with its own early-stage moments and a few late-stage samples.  The
early-to-late discrepancy (in the shared isotropic space) is driven by the
same physical causes for every population — layout parasitics, extraction
bias — so the populations can pool their scarce late samples to estimate a
**common mean-discrepancy vector**, then run the standard per-population
normal-Wishart fusion against a *discrepancy-corrected* prior:

1. ``delta_hat = sum_k n_k (Xbar_k - mu_E_k) / sum_k n_k``  (pooled shift)
2. prior for population k: ``N W`` anchored at
   ``(mu_E_k + w * delta_hat, Sigma_E_k)`` where the pooling weight
   ``w = n_total / (n_total + tau)`` shrinks the correction when total
   data is scarce;
3. per-population MAP fusion (Eq. 31-32) with hyper-parameters selected by
   the usual cross validation on that population's samples.

``tau`` is a 1-D credibility knob selected by held-out likelihood across
populations, mirroring the paper's 2-D CV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bmf import BMFEstimator
from repro.core.estimators import MomentEstimate
from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import DimensionError, InsufficientDataError
from repro.stats.multivariate_gaussian import (
    MultivariateGaussian,
    gaussian_loglik_batch,
)

__all__ = ["PopulationData", "MultiPopulationBMF"]


@dataclass(frozen=True)
class PopulationData:
    """One population's prior and late-stage samples (isotropic space)."""

    name: str
    prior: PriorKnowledge
    late_samples: np.ndarray

    def __post_init__(self) -> None:
        samples = np.atleast_2d(np.asarray(self.late_samples, dtype=float))
        if samples.shape[1] != self.prior.dim:
            raise DimensionError(
                f"population {self.name!r}: samples have {samples.shape[1]} "
                f"metrics, prior has {self.prior.dim}"
            )
        if samples.shape[0] < 2:
            raise InsufficientDataError(
                f"population {self.name!r} needs at least 2 late samples"
            )
        object.__setattr__(self, "late_samples", samples)

    @property
    def n(self) -> int:
        """Late-stage sample count."""
        return self.late_samples.shape[0]


class MultiPopulationBMF:
    """Joint fusion across K correlated populations.

    Parameters
    ----------
    populations:
        The per-population priors and late samples; all must share the
        metric dimensionality.
    tau_candidates:
        Candidates for the pooling-credibility knob ``tau``; ``tau -> inf``
        disables pooling (independent per-population BMF), ``tau -> 0``
        applies the pooled discrepancy at full strength.
    grid, n_folds:
        Forwarded to each population's :class:`BMFEstimator`.
    """

    def __init__(
        self,
        populations: Sequence[PopulationData],
        tau_candidates: Tuple[float, ...] = (1e-3, 1.0, 10.0, 100.0, 1e6),
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
    ) -> None:
        if len(populations) < 2:
            raise InsufficientDataError(
                "multi-population fusion needs at least 2 populations"
            )
        dims = {p.prior.dim for p in populations}
        if len(dims) != 1:
            raise DimensionError(f"populations disagree on dimensionality: {dims}")
        names = [p.name for p in populations]
        if len(set(names)) != len(names):
            raise DimensionError(f"duplicate population names: {names}")
        if not tau_candidates or any(t <= 0.0 for t in tau_candidates):
            raise DimensionError("tau candidates must be positive and non-empty")
        self.populations = list(populations)
        self.tau_candidates = tuple(tau_candidates)
        self.grid = grid
        self.n_folds = n_folds
        #: Selected tau after :meth:`estimate_all` (None before).
        self.selected_tau: Optional[float] = None
        #: The pooled discrepancy actually applied.
        self.pooled_delta: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _pooled_delta(populations: Sequence[PopulationData]) -> np.ndarray:
        """Element-wise *median* of the per-population discrepancies.

        The median (rather than the n-weighted mean) keeps one corner with
        an idiosyncratic shift — a common occurrence when layout effects
        interact with the corner offsets — from contaminating the pooled
        correction applied to all the others.
        """
        deltas = np.stack(
            [p.late_samples.mean(axis=0) - p.prior.mean for p in populations]
        )
        return np.median(deltas, axis=0)

    # ------------------------------------------------------------------
    def _score_tau(
        self, tau: float, rng: Optional[np.random.Generator]
    ) -> float:
        """Leave-population-out score of one tau candidate.

        For each held-out population, the delta is pooled from the
        *others*, the held-out prior is corrected, and the held-out
        samples are scored under the corrected prior's mode Gaussian —
        no CV inside to keep the selection cheap and unbiased.
        """
        score = 0.0
        for i, held_out in enumerate(self.populations):
            others = [p for j, p in enumerate(self.populations) if j != i]
            delta = self._pooled_delta(others)
            total_others = sum(p.n for p in others)
            weight = total_others / (total_others + tau)
            corrected_mean = held_out.prior.mean + weight * delta
            gaussian = MultivariateGaussian(
                corrected_mean, held_out.prior.covariance
            )
            score += gaussian.loglik(held_out.late_samples) / held_out.n
        return score / len(self.populations)

    def select_tau(
        self, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Pick tau by leave-population-out likelihood.

        All tau candidates are scored at once per held-out population: the
        corrected prior means form a ``(|tau|, d)`` stack under a shared
        covariance, so one :func:`gaussian_loglik_batch` call replaces the
        per-candidate :class:`MultivariateGaussian` constructions.  Ties
        keep the earliest candidate, matching the scalar scan.
        """
        taus = np.asarray(self.tau_candidates, dtype=float)
        scores = np.zeros(taus.size)
        for i, held_out in enumerate(self.populations):
            others = [p for j, p in enumerate(self.populations) if j != i]
            delta = self._pooled_delta(others)
            total_others = sum(p.n for p in others)
            weights = total_others / (total_others + taus)  # (|tau|,)
            means = held_out.prior.mean + weights[:, None] * delta
            covs = np.broadcast_to(
                held_out.prior.covariance,
                (taus.size,) + held_out.prior.covariance.shape,
            )
            scores += (
                gaussian_loglik_batch(means, covs, held_out.late_samples)
                / held_out.n
            )
        scores /= len(self.populations)
        return float(taus[int(np.argmax(scores))])

    # ------------------------------------------------------------------
    def estimate_all(
        self, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, MomentEstimate]:
        """Fuse every population with the pooled-discrepancy correction.

        Each population's prior is corrected with the discrepancy pooled
        from the *other* populations only (leave-one-out), so its own
        samples are never counted twice — once in the prior and once in
        the likelihood — which would overweight them and break the
        conjugate bookkeeping.
        """
        tau = self.select_tau(rng)
        self.selected_tau = tau
        total = sum(p.n for p in self.populations)
        self.pooled_delta = (
            self._pooled_delta(self.populations) * total / (total + tau)
        )

        out: Dict[str, MomentEstimate] = {}
        for i, population in enumerate(self.populations):
            others = [p for j, p in enumerate(self.populations) if j != i]
            delta = self._pooled_delta(others)
            n_others = sum(p.n for p in others)
            weight = n_others / (n_others + tau)
            corrected = PriorKnowledge(
                population.prior.mean + weight * delta,
                population.prior.covariance,
                n_samples=population.prior.n_samples,
            )
            estimator = BMFEstimator(
                corrected, grid=self.grid, n_folds=self.n_folds
            )
            estimate = estimator.estimate(population.late_samples, rng=rng)
            info = dict(estimate.info)
            info["tau"] = float(tau)
            out[population.name] = MomentEstimate(
                mean=estimate.mean,
                covariance=estimate.covariance,
                n_samples=estimate.n_samples,
                method="multipop_bmf",
                info=info,
            )
        return out

    def estimate_independent(
        self, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, MomentEstimate]:
        """Baseline: per-population BMF without any pooling."""
        out: Dict[str, MomentEstimate] = {}
        for population in self.populations:
            estimator = BMFEstimator(
                population.prior, grid=self.grid, n_folds=self.n_folds
            )
            out[population.name] = estimator.estimate(
                population.late_samples, rng=rng
            )
        return out
