"""Hyper-parameter search grids for the two-dimensional cross validation.

The paper searches ``v0`` and ``kappa0`` "from 1 to 1000" (Sec. 5.1) over a
grid of candidate combinations (Fig. 2a).  Exhaustively scoring a dense
linear grid is wasteful because the MAP estimates respond to the *order of
magnitude* of the hyper-parameters (they enter Eq. 31–32 as mixing weights
against ``n``), so the default grid is log-spaced.  ``v0`` candidates are
additionally shifted above ``d`` to satisfy the ``v0 > d`` constraint of
Eq. (20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import HyperParameterError

__all__ = ["HyperParameterGrid"]


@dataclass(frozen=True)
class HyperParameterGrid:
    """Cartesian grid of candidate ``(kappa0, v0)`` pairs.

    Attributes
    ----------
    kappa0_values:
        Strictly positive candidates for the mean-credibility knob.
    v0_values:
        Candidates for the covariance-credibility knob, each ``> dim``.
    dim:
        Metric dimensionality ``d`` the ``v0`` constraint was checked
        against.
    """

    kappa0_values: np.ndarray
    v0_values: np.ndarray
    dim: int

    def __post_init__(self) -> None:
        k = np.atleast_1d(np.asarray(self.kappa0_values, dtype=float))
        v = np.atleast_1d(np.asarray(self.v0_values, dtype=float))
        if k.size == 0 or v.size == 0:
            raise HyperParameterError("grid axes must be non-empty")
        if np.any(k <= 0.0):
            raise HyperParameterError("all kappa0 candidates must be > 0")
        if np.any(v <= self.dim):
            raise HyperParameterError(
                f"all v0 candidates must exceed d = {self.dim}"
            )
        object.__setattr__(self, "kappa0_values", np.unique(k))
        object.__setattr__(self, "v0_values", np.unique(v))

    # ------------------------------------------------------------------
    @classmethod
    def paper_default(
        cls, dim: int, n_kappa: int = 12, n_v: int = 12, upper: float = 1000.0
    ) -> "HyperParameterGrid":
        """Log-spaced grid spanning the paper's 1…1000 search range.

        ``kappa0`` spans ``[10^-2, upper]`` — the paper's lower bound of 1
        is extended downward so the "prior mean is useless" extreme
        (Eq. 34) is reachable even for tiny ``n``.  ``v0`` spans
        ``(d, d + upper]`` on a log scale of offsets, covering both the
        "ignore prior covariance" (``v0 -> d``, Eq. 36) and "trust prior
        covariance" (``v0`` large, Eq. 35) extremes.
        """
        if dim < 1:
            raise HyperParameterError(f"dim must be >= 1, got {dim}")
        if upper <= 1.0:
            raise HyperParameterError(f"upper must exceed 1, got {upper}")
        kappa = np.logspace(-2.0, np.log10(upper), n_kappa)
        v_offsets = np.logspace(-2.0, np.log10(upper), n_v)
        return cls(kappa0_values=kappa, v0_values=dim + v_offsets, dim=dim)

    @classmethod
    def linear(
        cls, dim: int, n_kappa: int = 10, n_v: int = 10, upper: float = 1000.0
    ) -> "HyperParameterGrid":
        """Linearly spaced grid, closest to the paper's literal description."""
        kappa = np.linspace(1.0, upper, n_kappa)
        v = np.linspace(dim + 1.0, dim + upper, n_v)
        return cls(kappa0_values=kappa, v0_values=v, dim=dim)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of candidate pairs."""
        return int(self.kappa0_values.size * self.v0_values.size)

    def pairs(self) -> Iterator[Tuple[float, float]]:
        """Iterate over all ``(kappa0, v0)`` combinations (Fig. 2a points)."""
        for kappa0 in self.kappa0_values:
            for v0 in self.v0_values:
                yield float(kappa0), float(v0)

    def refine_around(
        self, kappa0: float, v0: float, factor: float = 3.0, n_points: int = 5
    ) -> "HyperParameterGrid":
        """A finer local grid around a coarse-search winner.

        Used by the optional two-pass search: a coarse log grid finds the
        right decade, then a refined grid locates the optimum within it.
        """
        if factor <= 1.0:
            raise HyperParameterError(f"factor must exceed 1, got {factor}")
        kappa = np.logspace(
            np.log10(max(kappa0 / factor, 1e-6)),
            np.log10(kappa0 * factor),
            n_points,
        )
        v_off = max(v0 - self.dim, 1e-6)
        v = self.dim + np.logspace(
            np.log10(max(v_off / factor, 1e-6)),
            np.log10(v_off * factor),
            n_points,
        )
        return HyperParameterGrid(kappa0_values=kappa, v0_values=v, dim=self.dim)
