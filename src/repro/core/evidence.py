"""Evidence-based hyper-parameter selection (empirical Bayes).

The paper selects ``(kappa0, v0)`` by two-dimensional Q-fold cross
validation (Sec. 4.2).  The conjugate structure offers a cheaper,
fold-free alternative this module implements: maximise the **marginal
likelihood** (evidence) of the late-stage samples,

    log p(D | kappa0, v0) = log Z_n - log Z_0 - (n d / 2) log(2 pi),

where ``Z_0``/``Z_n`` are the normal-Wishart normalisers (Eq. 13) of the
prior and its conjugate posterior.  The identity is exact (it is verified
pointwise against Bayes' theorem by the property suite), so the evidence
costs one posterior update per grid candidate — no folds, no fold-split
randomness, and it uses every sample for both "training" and scoring in
the Bayesian-correct way.

Trade-off versus the paper's CV: the evidence integrates over the prior's
own uncertainty, so a *misspecified* prior (exactly the situation the CV's
held-out scoring is designed to catch) can be over-trusted at very small
``n``.  The ablation benchmark measures this on the circuit workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import InsufficientDataError, NotSPDError
from repro.linalg.batched import cholesky_batched, logdet_batched
from repro.linalg.validation import as_samples, cholesky_safe
from repro.stats.multigamma import multigammaln

__all__ = ["log_evidence", "log_evidence_grid", "EvidenceResult", "EvidenceSelector"]


def log_evidence(prior: PriorKnowledge, samples, kappa0: float, v0: float) -> float:
    """Closed-form marginal likelihood of ``samples`` under one prior setting."""
    data = as_samples(samples)
    n, d = data.shape
    if d != prior.dim:
        raise InsufficientDataError(
            f"samples have {d} metrics but prior has {prior.dim}"
        )
    nw_prior = prior.to_normal_wishart(kappa0, v0)
    nw_post = nw_prior.posterior(data)
    return (
        nw_post.log_normalizer()
        - nw_prior.log_normalizer()
        - n * d / 2.0 * math.log(2.0 * math.pi)
    )


def log_evidence_grid(
    prior: PriorKnowledge, samples, grid: HyperParameterGrid
) -> np.ndarray:
    """Marginal likelihood of every grid candidate in one batched pass.

    Expands the normal-Wishart normalisers analytically instead of
    materialising each posterior:

    * ``log |T0| = -log |Sigma_E| - d log(v0 - d)`` (Eq. 20), and
    * ``T_n^{-1} = (v0 - d) Sigma_E + S + kappa0 n/(kappa0 + n) *
      (mu_E - Xbar)(mu_E - Xbar)^T`` (Eq. 28) — the same affine-in-the-
      statistics structure the batched CV kernel exploits — so
      ``log |T_n|`` comes from one batched Cholesky over the
      ``(|grid|, d, d)`` stack.

    Candidates whose ``T_n^{-1}`` is numerically indefinite (``v0 -> d``
    with a rank-deficient scatter) score ``-inf`` instead of raising.
    Agrees with looping :func:`log_evidence` over the grid to floating
    point accuracy; returns a ``(|kappa0|, |v0|)`` array.
    """
    data = as_samples(samples)
    n, d = data.shape
    if d != prior.dim:
        raise InsufficientDataError(
            f"samples have {d} metrics but prior has {prior.dim}"
        )
    kappas = grid.kappa0_values
    vs = grid.v0_values

    xbar = data.mean(axis=0)
    centered = data - xbar
    scatter = centered.T @ centered
    scatter = (scatter + scatter.T) / 2.0
    diff = prior.mean - xbar
    outer = np.outer(diff, diff)

    log_det_sigma_e = 2.0 * float(
        np.sum(np.log(np.diag(cholesky_safe(prior.covariance, "prior covariance"))))
    )
    c = kappas * n / (kappas + n)  # (K,)
    t_n_inv = (
        ((vs[:, None, None] - d) * prior.covariance + scatter)[None]
        + c[:, None, None, None] * outer
    )  # (K, V, d, d)
    chol, ok = cholesky_batched(t_n_inv.reshape(-1, d, d))
    log_det_t_n = -logdet_batched(chol).reshape(kappas.size, vs.size)

    log_det_t0 = -log_det_sigma_e - d * np.log(vs - d)  # (V,)
    mgl_prior = np.array([multigammaln(v / 2.0, d) for v in vs])
    mgl_post = np.array([multigammaln((v + n) / 2.0, d) for v in vs])
    log_2pi = math.log(2.0 * math.pi)

    log_z0 = (
        d / 2.0 * (log_2pi - np.log(kappas))[:, None]
        + (vs / 2.0 * log_det_t0 + vs * d / 2.0 * math.log(2.0) + mgl_prior)[None, :]
    )
    log_zn = (
        d / 2.0 * (log_2pi - np.log(kappas + n))[:, None]
        + (vs[None, :] + n) / 2.0 * log_det_t_n
        + ((vs + n) * d / 2.0 * math.log(2.0) + mgl_post)[None, :]
    )
    scores = log_zn - log_z0 - n * d / 2.0 * log_2pi
    scores[~ok.reshape(scores.shape)] = -np.inf
    return scores


@dataclass(frozen=True)
class EvidenceResult:
    """Winner of the evidence search plus the full score surface."""

    kappa0: float
    v0: float
    best_log_evidence: float
    kappa0_values: np.ndarray
    v0_values: np.ndarray
    scores: np.ndarray


class EvidenceSelector:
    """Grid search maximising the marginal likelihood.

    Drop-in alternative to
    :class:`~repro.core.crossval.TwoDimensionalCV`: same grid, same
    ``select`` signature (the ``rng`` argument is accepted but unused —
    the evidence is deterministic).

    ``scoring="batched"`` (default) evaluates the whole grid through
    :func:`log_evidence_grid`; ``scoring="loop"`` keeps the original
    one-posterior-per-candidate reference path.
    """

    def __init__(
        self,
        prior: PriorKnowledge,
        grid: Optional[HyperParameterGrid] = None,
        scoring: str = "batched",
    ) -> None:
        self.prior = prior
        self.grid = grid if grid is not None else HyperParameterGrid.paper_default(prior.dim)
        if self.grid.dim != prior.dim:
            raise InsufficientDataError(
                f"grid dim {self.grid.dim} does not match prior dim {prior.dim}"
            )
        if scoring not in ("batched", "loop"):
            raise ValueError(f"scoring must be 'batched' or 'loop', got {scoring!r}")
        self.scoring = scoring

    def select(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> EvidenceResult:
        """Score every grid candidate and return the evidence maximiser."""
        data = as_samples(samples)
        if data.shape[0] < 2:
            raise InsufficientDataError("evidence selection needs at least 2 samples")
        kappas = self.grid.kappa0_values
        vs = self.grid.v0_values
        if self.scoring == "batched":
            scores = log_evidence_grid(self.prior, data, self.grid)
        else:
            scores = np.full((kappas.size, vs.size), -np.inf)
            for i, kappa0 in enumerate(kappas):
                for j, v0 in enumerate(vs):
                    try:
                        scores[i, j] = log_evidence(
                            self.prior, data, float(kappa0), float(v0)
                        )
                    except NotSPDError:
                        scores[i, j] = -np.inf
        bi, bj = np.unravel_index(int(np.argmax(scores)), scores.shape)
        return EvidenceResult(
            kappa0=float(kappas[bi]),
            v0=float(vs[bj]),
            best_log_evidence=float(scores[bi, bj]),
            kappa0_values=kappas.copy(),
            v0_values=vs.copy(),
            scores=scores,
        )
