"""Evidence-based hyper-parameter selection (empirical Bayes).

The paper selects ``(kappa0, v0)`` by two-dimensional Q-fold cross
validation (Sec. 4.2).  The conjugate structure offers a cheaper,
fold-free alternative this module implements: maximise the **marginal
likelihood** (evidence) of the late-stage samples,

    log p(D | kappa0, v0) = log Z_n - log Z_0 - (n d / 2) log(2 pi),

where ``Z_0``/``Z_n`` are the normal-Wishart normalisers (Eq. 13) of the
prior and its conjugate posterior.  The identity is exact (it is verified
pointwise against Bayes' theorem by the property suite), so the evidence
costs one posterior update per grid candidate — no folds, no fold-split
randomness, and it uses every sample for both "training" and scoring in
the Bayesian-correct way.

Trade-off versus the paper's CV: the evidence integrates over the prior's
own uncertainty, so a *misspecified* prior (exactly the situation the CV's
held-out scoring is designed to catch) can be over-trusted at very small
``n``.  The ablation benchmark measures this on the circuit workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import InsufficientDataError
from repro.linalg.validation import as_samples

__all__ = ["log_evidence", "EvidenceResult", "EvidenceSelector"]


def log_evidence(prior: PriorKnowledge, samples, kappa0: float, v0: float) -> float:
    """Closed-form marginal likelihood of ``samples`` under one prior setting."""
    data = as_samples(samples)
    n, d = data.shape
    if d != prior.dim:
        raise InsufficientDataError(
            f"samples have {d} metrics but prior has {prior.dim}"
        )
    nw_prior = prior.to_normal_wishart(kappa0, v0)
    nw_post = nw_prior.posterior(data)
    return (
        nw_post.log_normalizer()
        - nw_prior.log_normalizer()
        - n * d / 2.0 * math.log(2.0 * math.pi)
    )


@dataclass(frozen=True)
class EvidenceResult:
    """Winner of the evidence search plus the full score surface."""

    kappa0: float
    v0: float
    best_log_evidence: float
    kappa0_values: np.ndarray
    v0_values: np.ndarray
    scores: np.ndarray


class EvidenceSelector:
    """Grid search maximising the marginal likelihood.

    Drop-in alternative to
    :class:`~repro.core.crossval.TwoDimensionalCV`: same grid, same
    ``select`` signature (the ``rng`` argument is accepted but unused —
    the evidence is deterministic).
    """

    def __init__(
        self,
        prior: PriorKnowledge,
        grid: Optional[HyperParameterGrid] = None,
    ) -> None:
        self.prior = prior
        self.grid = grid if grid is not None else HyperParameterGrid.paper_default(prior.dim)
        if self.grid.dim != prior.dim:
            raise InsufficientDataError(
                f"grid dim {self.grid.dim} does not match prior dim {prior.dim}"
            )

    def select(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> EvidenceResult:
        """Score every grid candidate and return the evidence maximiser."""
        data = as_samples(samples)
        if data.shape[0] < 2:
            raise InsufficientDataError("evidence selection needs at least 2 samples")
        kappas = self.grid.kappa0_values
        vs = self.grid.v0_values
        scores = np.full((kappas.size, vs.size), -np.inf)
        for i, kappa0 in enumerate(kappas):
            for j, v0 in enumerate(vs):
                scores[i, j] = log_evidence(self.prior, data, float(kappa0), float(v0))
        bi, bj = np.unravel_index(int(np.argmax(scores)), scores.shape)
        return EvidenceResult(
            kappa0=float(kappas[bi]),
            v0=float(vs[bj]),
            best_log_evidence=float(scores[bi, bj]),
            kappa0_values=kappas.copy(),
            v0_values=vs.copy(),
            scores=scores,
        )
