"""Estimator registry and declarative fusion configuration.

The paper's comparison structure — the MLE baseline (Eq. 10–11) against
the proposed BMF MAP estimator (Eq. 31–32), plus the prior art it extends
(univariate BMF of Gu et al., Bernoulli-yield BMF of Fang et al.) and the
prior-free shrinkage baselines — implies a *family* of interchangeable
moment estimators.  This module makes that family explicit:

* estimators register under short string names (``"mle"``, ``"bmf"``,
  ``"robust-bmf"``, ``"ledoit-wolf"``, ...) with a factory and typed
  metadata (:class:`EstimatorEntry`);
* an :class:`EstimatorSpec` names an estimator plus its constructor
  parameters and is JSON-serializable, so experiment method lists and CLI
  invocations become *config*, not code;
* a :class:`FusionConfig` bundles everything one fusion run needs —
  estimator spec, hyper-parameter selection policy, CV fold count, search
  grid, preprocessing switch, seed — and round-trips losslessly through
  dict/JSON (see :mod:`repro.io`), with a stable :meth:`content hash
  <FusionConfig.config_hash>` for provenance tracking.

Adding a new estimator is a one-file operation: implement the
:class:`~repro.core.estimators.MomentEstimator` protocol, call
:func:`register_estimator`, and it is immediately usable from the
pipeline (:class:`~repro.core.pipeline.FusionPipeline`), every experiment
sweep, and the CLI — none of those layers name concrete classes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.estimators import MomentEstimator
from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import ConfigError, HyperParameterError, UnknownEstimatorError

__all__ = [
    "EstimatorSpec",
    "GridSpec",
    "FusionConfig",
    "EstimatorEntry",
    "EstimatorRegistry",
    "default_registry",
    "register_estimator",
    "make_estimator",
    "available_estimators",
    "register_selector",
    "make_selector",
    "available_selectors",
]

#: JSON-safe scalar accepted in spec parameter dicts.
ParamValue = Any


def _canonical_name(name: str) -> str:
    """Registry names are hyphenated; accept underscore spellings too."""
    return name.strip().lower().replace("_", "-")


# ---------------------------------------------------------------------------
# estimator spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EstimatorSpec:
    """A registry estimator name plus its constructor parameters.

    Instances are callable with a fitted
    :class:`~repro.core.prior.PriorKnowledge` (or ``None``), returning a
    fresh estimator — the same factory signature the experiment sweeps
    always used, so a spec drops in anywhere a factory was accepted.
    """

    name: str
    params: Dict[str, ParamValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(f"estimator spec name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "name", _canonical_name(self.name))
        object.__setattr__(self, "params", dict(self.params))

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EstimatorSpec":
        """Inverse of :meth:`to_dict`; tolerates a bare ``{"name": ...}``."""
        if isinstance(payload, str):
            return cls(name=payload)
        if "name" not in payload:
            raise ConfigError(f"estimator spec payload missing 'name': {payload!r}")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ConfigError(f"estimator spec 'params' must be a mapping, got {params!r}")
        return cls(name=str(payload["name"]), params=dict(params))

    def with_params(self, **params: ParamValue) -> "EstimatorSpec":
        """A copy with extra/overridden constructor parameters."""
        merged = dict(self.params)
        merged.update(params)
        return EstimatorSpec(name=self.name, params=merged)

    # -- factory protocol ----------------------------------------------
    def build(
        self,
        prior: Optional[PriorKnowledge] = None,
        registry: Optional["EstimatorRegistry"] = None,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> MomentEstimator:
        """Construct the estimator through the (default) registry."""
        reg = registry if registry is not None else default_registry()
        return reg.build(self, prior=prior, kappa0=kappa0, v0=v0)

    def __call__(self, prior: Optional[PriorKnowledge] = None) -> MomentEstimator:
        return self.build(prior=prior)


# ---------------------------------------------------------------------------
# hyper-parameter grid spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GridSpec:
    """Serializable recipe for a :class:`HyperParameterGrid`.

    The concrete grid depends on the metric dimensionality ``d`` (the
    ``v0 > d`` constraint), which is only known once the prior is fitted —
    so configs carry this recipe and the pipeline materialises it.
    """

    kind: str = "paper-default"
    n_kappa: int = 12
    n_v: int = 12
    upper: float = 1000.0

    def __post_init__(self) -> None:
        kind = _canonical_name(self.kind)
        if kind not in ("paper-default", "linear"):
            raise ConfigError(
                f"grid kind must be 'paper-default' or 'linear', got {self.kind!r}"
            )
        object.__setattr__(self, "kind", kind)
        if self.n_kappa < 1 or self.n_v < 1:
            raise ConfigError("grid axis sizes must be >= 1")

    def materialize(self, dim: int) -> HyperParameterGrid:
        """Build the concrete grid for ``d = dim``."""
        if self.kind == "linear":
            return HyperParameterGrid.linear(
                dim, n_kappa=self.n_kappa, n_v=self.n_v, upper=self.upper
            )
        return HyperParameterGrid.paper_default(
            dim, n_kappa=self.n_kappa, n_v=self.n_v, upper=self.upper
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "n_kappa": int(self.n_kappa),
            "n_v": int(self.n_v),
            "upper": float(self.upper),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GridSpec":
        try:
            return cls(
                kind=str(payload.get("kind", "paper-default")),
                n_kappa=int(payload.get("n_kappa", 12)),
                n_v=int(payload.get("n_v", 12)),
                upper=float(payload.get("upper", 1000.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed grid spec payload: {payload!r}") from exc


# ---------------------------------------------------------------------------
# fusion config
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FusionConfig:
    """Everything one fusion run needs, as declarative, serializable data.

    Attributes
    ----------
    estimator:
        Which registry estimator to run, with constructor parameters.
    selector:
        Hyper-parameter selection policy for estimators that take
        ``(kappa0, v0)``: ``"cv"`` (the paper's two-dimensional Q-fold
        cross validation), ``"evidence"`` (fold-free marginal likelihood),
        ``"fixed"`` (pin :attr:`kappa0`/:attr:`v0`), or ``"none"`` (leave
        selection to the estimator itself).  Custom selectors registered
        via :func:`register_selector` are addressed by name.
    kappa0, v0:
        Pinned hyper-parameters, used when ``selector == "fixed"``.
    n_folds:
        CV fold count ``Q`` (Sec. 4.2).
    grid:
        Search-grid recipe; ``None`` means the paper-default grid.
    shift_scale:
        Apply the Sec. 4.1 shift/scale preprocessing (the paper's flow).
    seed:
        Optional base seed; when set, an unseeded ``estimate`` call derives
        its generator from it, making the whole run reproducible from the
        config alone.
    """

    estimator: EstimatorSpec = field(default_factory=lambda: EstimatorSpec("bmf"))
    selector: str = "cv"
    kappa0: Optional[float] = None
    v0: Optional[float] = None
    n_folds: int = 4
    grid: Optional[GridSpec] = None
    shift_scale: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.estimator, str):
            object.__setattr__(self, "estimator", EstimatorSpec(self.estimator))
        object.__setattr__(self, "selector", _canonical_name(self.selector))
        if (self.kappa0 is None) != (self.v0 is None):
            raise HyperParameterError(
                "kappa0 and v0 must be supplied together or both left None"
            )
        if self.selector == "fixed" and self.kappa0 is None:
            raise HyperParameterError(
                "selector 'fixed' requires kappa0 and v0 to be set"
            )
        if self.n_folds < 2:
            raise ConfigError(f"n_folds must be >= 2, got {self.n_folds}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; the exact inverse of :meth:`from_dict`."""
        return {
            "estimator": self.estimator.to_dict(),
            "selector": self.selector,
            "kappa0": None if self.kappa0 is None else float(self.kappa0),
            "v0": None if self.v0 is None else float(self.v0),
            "n_folds": int(self.n_folds),
            "grid": None if self.grid is None else self.grid.to_dict(),
            "shift_scale": bool(self.shift_scale),
            "seed": None if self.seed is None else int(self.seed),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FusionConfig":
        if not isinstance(payload, Mapping):
            raise ConfigError(f"fusion config payload must be a mapping, got {payload!r}")
        unknown = set(payload) - {
            "estimator", "selector", "kappa0", "v0", "n_folds", "grid",
            "shift_scale", "seed",
        }
        if unknown:
            raise ConfigError(f"fusion config payload has unknown fields: {sorted(unknown)}")
        grid = payload.get("grid")
        return cls(
            estimator=EstimatorSpec.from_dict(payload.get("estimator", "bmf")),
            selector=str(payload.get("selector", "cv")),
            kappa0=None if payload.get("kappa0") is None else float(payload["kappa0"]),
            v0=None if payload.get("v0") is None else float(payload["v0"]),
            n_folds=int(payload.get("n_folds", 4)),
            grid=None if grid is None else GridSpec.from_dict(grid),
            shift_scale=bool(payload.get("shift_scale", True)),
            seed=None if payload.get("seed") is None else int(payload["seed"]),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FusionConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fusion config is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def config_hash(self) -> str:
        """Stable 12-hex-digit content hash for provenance records."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    def replace(self, **changes: Any) -> "FusionConfig":
        """A copy with the given fields replaced (dataclass semantics)."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
#: Factory signature: ``factory(prior, **params) -> MomentEstimator``.
#: ``prior`` is ``None`` for estimators with ``requires_prior=False``.
EstimatorFactory = Callable[..., MomentEstimator]


@dataclass(frozen=True)
class EstimatorEntry:
    """Registered estimator: factory plus typed capability metadata.

    ``accepts_hyperparams`` marks the normal-Wishart family whose
    ``(kappa0, v0)`` the pipeline's selection stage can resolve;
    ``data_kind`` records the sample layout the estimator consumes
    (``"multivariate"`` (n, d) rows, ``"univariate"`` scalar metric,
    ``"binary"`` pass/fail indicators).
    """

    name: str
    factory: EstimatorFactory
    summary: str = ""
    requires_prior: bool = True
    accepts_hyperparams: bool = False
    data_kind: str = "multivariate"


class EstimatorRegistry:
    """Name -> :class:`EstimatorEntry` mapping with helpful failure modes."""

    def __init__(self) -> None:
        self._entries: Dict[str, EstimatorEntry] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: EstimatorFactory,
        summary: str = "",
        requires_prior: bool = True,
        accepts_hyperparams: bool = False,
        data_kind: str = "multivariate",
        overwrite: bool = False,
    ) -> EstimatorEntry:
        """Register ``factory`` under ``name`` (hyphen-canonicalised)."""
        key = _canonical_name(name)
        if not key:
            raise ConfigError("estimator name must be non-empty")
        if data_kind not in ("multivariate", "univariate", "binary"):
            raise ConfigError(
                f"data_kind must be multivariate/univariate/binary, got {data_kind!r}"
            )
        if key in self._entries and not overwrite:
            raise ConfigError(
                f"estimator {key!r} is already registered; pass overwrite=True to replace it"
            )
        entry = EstimatorEntry(
            name=key,
            factory=factory,
            summary=summary,
            requires_prior=requires_prior,
            accepts_hyperparams=accepts_hyperparams,
            data_kind=data_kind,
        )
        self._entries[key] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registration (used by tests to keep the registry clean)."""
        self._entries.pop(_canonical_name(name), None)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and _canonical_name(name) in self._entries

    def entry(self, name: str) -> EstimatorEntry:
        """Look up a registration; unknown names list what *is* available."""
        key = _canonical_name(name)
        if key not in self._entries:
            raise UnknownEstimatorError(
                f"unknown estimator {name!r}; available: {', '.join(self.names())}"
            )
        return self._entries[key]

    def entries(self) -> List[EstimatorEntry]:
        """All registrations, sorted by name."""
        return [self._entries[k] for k in self.names()]

    # ------------------------------------------------------------------
    def build(
        self,
        spec: "EstimatorSpec | str",
        prior: Optional[PriorKnowledge] = None,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> MomentEstimator:
        """Construct a fresh estimator from a spec (or bare name).

        ``kappa0``/``v0`` are *defaults* injected for hyper-parameter-aware
        estimators (the pipeline's selection stage uses this); explicit
        spec params always win.
        """
        if isinstance(spec, str):
            spec = EstimatorSpec(spec)
        entry = self.entry(spec.name)
        if entry.requires_prior and prior is None:
            raise ConfigError(
                f"estimator {spec.name!r} requires a fitted PriorKnowledge"
            )
        kwargs = dict(spec.params)
        if entry.accepts_hyperparams:
            if kappa0 is not None:
                kwargs.setdefault("kappa0", kappa0)
            if v0 is not None:
                kwargs.setdefault("v0", v0)
        return entry.factory(prior, **kwargs)


# ---------------------------------------------------------------------------
# default registry + built-in registrations
# ---------------------------------------------------------------------------
_DEFAULT_REGISTRY = EstimatorRegistry()


def default_registry() -> EstimatorRegistry:
    """The process-wide registry the pipeline/sweeps/CLI consult."""
    return _DEFAULT_REGISTRY


def register_estimator(
    name: str,
    factory: EstimatorFactory,
    summary: str = "",
    requires_prior: bool = True,
    accepts_hyperparams: bool = False,
    data_kind: str = "multivariate",
    overwrite: bool = False,
) -> EstimatorEntry:
    """Register an estimator in the default registry (plug-in entry point)."""
    return _DEFAULT_REGISTRY.register(
        name,
        factory,
        summary=summary,
        requires_prior=requires_prior,
        accepts_hyperparams=accepts_hyperparams,
        data_kind=data_kind,
        overwrite=overwrite,
    )


def make_estimator(
    spec: "EstimatorSpec | str",
    prior: Optional[PriorKnowledge] = None,
    registry: Optional[EstimatorRegistry] = None,
    kappa0: Optional[float] = None,
    v0: Optional[float] = None,
) -> MomentEstimator:
    """Build an estimator by registry name or :class:`EstimatorSpec`."""
    reg = registry if registry is not None else _DEFAULT_REGISTRY
    return reg.build(spec, prior=prior, kappa0=kappa0, v0=v0)


def available_estimators(registry: Optional[EstimatorRegistry] = None) -> List[str]:
    """Sorted names usable with :func:`make_estimator` / ``fuse --estimator``."""
    reg = registry if registry is not None else _DEFAULT_REGISTRY
    return reg.names()


# The built-in factories import their classes lazily: the registry is
# imported by repro.core's __init__ before most estimator modules finish
# loading, and deferred imports keep that order irrelevant.
def _make_mle(prior: Optional[PriorKnowledge] = None, **params: Any) -> MomentEstimator:
    from repro.core.mle import MLEstimator

    return MLEstimator(**params)


def _make_bmf(prior: Optional[PriorKnowledge] = None, **params: Any) -> MomentEstimator:
    from repro.core.bmf import BMFEstimator

    return BMFEstimator(prior, **params)


def _make_robust_bmf(prior: Optional[PriorKnowledge] = None, **params: Any) -> MomentEstimator:
    # Lazy upward import: extensions subclass core's estimators, so the
    # registry's built-in catalogue can only name them via a deferred
    # function-scope import — a module-level one would be a real cycle.
    from repro.extensions.robust import RobustBMFEstimator  # reprolint: disable=RPL003 -- plugin factory

    return RobustBMFEstimator(prior, **params)


def _make_sequential_bmf(prior: Optional[PriorKnowledge] = None, **params: Any) -> MomentEstimator:
    from repro.extensions.sequential import SequentialBMFEstimator  # reprolint: disable=RPL003 -- plugin factory

    return SequentialBMFEstimator(prior, **params)


def _make_univariate_bmf(prior: Optional[PriorKnowledge] = None, **params: Any) -> MomentEstimator:
    from repro.core.univariate_bmf import UnivariateBMFEstimator

    return UnivariateBMFEstimator(prior, **params)


def _make_bmf_bd(prior: Optional[PriorKnowledge] = None, **params: Any) -> MomentEstimator:
    from repro.core.bmf_bd import BernoulliMomentEstimator

    return BernoulliMomentEstimator(prior, **params)


def _make_shrinkage(kind: str) -> EstimatorFactory:
    def factory(prior: Optional[PriorKnowledge] = None, **params: Any) -> MomentEstimator:
        from repro.core.baselines import ShrinkageEstimator

        return ShrinkageEstimator(kind, **params)

    return factory


_DEFAULT_REGISTRY.register(
    "mle",
    _make_mle,
    summary="Maximum-likelihood moments, the paper's baseline (Eq. 10-11)",
    requires_prior=False,
)
_DEFAULT_REGISTRY.register(
    "bmf",
    _make_bmf,
    summary="Multivariate Bayesian model fusion MAP moments (Eq. 31-32)",
    accepts_hyperparams=True,
)
_DEFAULT_REGISTRY.register(
    "robust-bmf",
    _make_robust_bmf,
    summary="BMF with a prior-based Mahalanobis outlier gate",
    accepts_hyperparams=True,
)
_DEFAULT_REGISTRY.register(
    "sequential-bmf",
    _make_sequential_bmf,
    summary="Streaming conjugate BMF; batch-equivalent final state",
    accepts_hyperparams=True,
)
_DEFAULT_REGISTRY.register(
    "univariate-bmf",
    _make_univariate_bmf,
    summary="Single-metric normal-gamma BMF (Gu et al., the prior art)",
    data_kind="univariate",
)
_DEFAULT_REGISTRY.register(
    "bmf-bd",
    _make_bmf_bd,
    summary="Beta-Bernoulli yield fusion on pass/fail data (Fang et al.)",
    requires_prior=False,
    data_kind="binary",
)
_DEFAULT_REGISTRY.register(
    "ledoit-wolf",
    _make_shrinkage("ledoit_wolf"),
    summary="Prior-free Ledoit-Wolf shrinkage towards scaled identity",
    requires_prior=False,
)
_DEFAULT_REGISTRY.register(
    "oas",
    _make_shrinkage("oas"),
    summary="Prior-free Oracle Approximating Shrinkage covariance",
    requires_prior=False,
)
_DEFAULT_REGISTRY.register(
    "diagonal-shrinkage",
    _make_shrinkage("diagonal"),
    summary="Convex shrinkage of the sample covariance towards its diagonal",
    requires_prior=False,
)


# ---------------------------------------------------------------------------
# hyper-parameter selector registry (the pipeline's pluggable stage 3)
# ---------------------------------------------------------------------------
#: Selector factory: ``(prior, grid, n_folds) -> object with .select(data, rng)``
#: returning a result exposing ``.kappa0`` and ``.v0``.
SelectorFactory = Callable[[PriorKnowledge, HyperParameterGrid, int], Any]

_SELECTORS: Dict[str, SelectorFactory] = {}


def register_selector(name: str, factory: SelectorFactory, overwrite: bool = False) -> None:
    """Register a hyper-parameter search strategy under ``name``."""
    key = _canonical_name(name)
    if key in ("fixed", "none"):
        raise ConfigError(f"selector name {key!r} is reserved")
    if key in _SELECTORS and not overwrite:
        raise ConfigError(
            f"selector {key!r} is already registered; pass overwrite=True to replace it"
        )
    _SELECTORS[key] = factory


def make_selector(
    name: str, prior: PriorKnowledge, grid: HyperParameterGrid, n_folds: int
) -> Any:
    """Build a registered selector; unknown names list the alternatives."""
    key = _canonical_name(name)
    if key not in _SELECTORS:
        raise UnknownEstimatorError(
            f"unknown selector {name!r}; available: "
            f"{', '.join(available_selectors())} (plus 'fixed' and 'none')"
        )
    return _SELECTORS[key](prior, grid, n_folds)


def available_selectors() -> List[str]:
    """Sorted search-based selector names (excludes 'fixed'/'none')."""
    return sorted(_SELECTORS)


def _make_cv_selector(prior: PriorKnowledge, grid: HyperParameterGrid, n_folds: int) -> Any:
    from repro.core.crossval import TwoDimensionalCV

    return TwoDimensionalCV(prior, grid, n_folds=n_folds)


def _make_evidence_selector(prior: PriorKnowledge, grid: HyperParameterGrid, n_folds: int) -> Any:
    from repro.core.evidence import EvidenceSelector

    return EvidenceSelector(prior, grid)


register_selector("cv", _make_cv_selector)
register_selector("evidence", _make_evidence_selector)
