"""Core contribution: multivariate BMF moment estimation (Algorithm 1)."""

from repro.core.bmf import BMFEstimator, map_moments
from repro.core.baselines import ShrinkageEstimator
from repro.core.confidence import (
    CredibleSummary,
    mean_credible_region,
    mean_region_contains,
    posterior_credible_summary,
)
from repro.core.bmf_bd import BernoulliBMF, BernoulliMomentEstimator, BetaPrior
from repro.core.crossval import CrossValidationResult, TwoDimensionalCV, make_folds
from repro.core.evidence import (
    EvidenceResult,
    EvidenceSelector,
    log_evidence,
    log_evidence_grid,
)
from repro.core.errors import (
    EstimationError,
    covariance_error,
    estimation_error,
    mean_error,
)
from repro.core.estimators import EstimateInfo, MomentEstimate, MomentEstimator
from repro.core.hypergrid import HyperParameterGrid
from repro.core.mle import MLEstimator
from repro.core.multipop import MultiPopulationBMF, PopulationData
from repro.core.pipeline import (
    BMFPipeline,
    FusionPipeline,
    FusionProvenance,
    PipelineResult,
)
from repro.core.preprocessing import ShiftScaleTransform
from repro.core.prior import PriorKnowledge
from repro.core.registry import (
    EstimatorRegistry,
    EstimatorSpec,
    FusionConfig,
    GridSpec,
    available_estimators,
    default_registry,
    make_estimator,
    register_estimator,
    register_selector,
)
from repro.core.univariate_bmf import (
    NormalGammaPrior,
    UnivariateBMF,
    UnivariateBMFEstimator,
)

__all__ = [
    "BMFEstimator",
    "BMFPipeline",
    "BernoulliBMF",
    "BernoulliMomentEstimator",
    "BetaPrior",
    "CredibleSummary",
    "CrossValidationResult",
    "EstimateInfo",
    "EstimationError",
    "EstimatorRegistry",
    "EstimatorSpec",
    "EvidenceResult",
    "EvidenceSelector",
    "FusionConfig",
    "FusionPipeline",
    "FusionProvenance",
    "GridSpec",
    "HyperParameterGrid",
    "MLEstimator",
    "MomentEstimate",
    "MomentEstimator",
    "MultiPopulationBMF",
    "NormalGammaPrior",
    "PipelineResult",
    "PopulationData",
    "PriorKnowledge",
    "ShiftScaleTransform",
    "ShrinkageEstimator",
    "TwoDimensionalCV",
    "UnivariateBMF",
    "UnivariateBMFEstimator",
    "available_estimators",
    "covariance_error",
    "default_registry",
    "estimation_error",
    "log_evidence",
    "log_evidence_grid",
    "make_estimator",
    "make_folds",
    "map_moments",
    "mean_credible_region",
    "mean_region_contains",
    "mean_error",
    "posterior_credible_summary",
    "register_estimator",
    "register_selector",
]
