"""Core contribution: multivariate BMF moment estimation (Algorithm 1)."""

from repro.core.bmf import BMFEstimator, map_moments
from repro.core.confidence import (
    CredibleSummary,
    mean_credible_region,
    mean_region_contains,
    posterior_credible_summary,
)
from repro.core.bmf_bd import BernoulliBMF, BetaPrior
from repro.core.crossval import CrossValidationResult, TwoDimensionalCV, make_folds
from repro.core.evidence import (
    EvidenceResult,
    EvidenceSelector,
    log_evidence,
    log_evidence_grid,
)
from repro.core.errors import (
    EstimationError,
    covariance_error,
    estimation_error,
    mean_error,
)
from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.core.hypergrid import HyperParameterGrid
from repro.core.mle import MLEstimator
from repro.core.multipop import MultiPopulationBMF, PopulationData
from repro.core.pipeline import BMFPipeline, PipelineResult
from repro.core.preprocessing import ShiftScaleTransform
from repro.core.prior import PriorKnowledge
from repro.core.univariate_bmf import NormalGammaPrior, UnivariateBMF

__all__ = [
    "BMFEstimator",
    "BMFPipeline",
    "BernoulliBMF",
    "BetaPrior",
    "CredibleSummary",
    "CrossValidationResult",
    "EstimationError",
    "EvidenceResult",
    "EvidenceSelector",
    "HyperParameterGrid",
    "MLEstimator",
    "MomentEstimate",
    "MomentEstimator",
    "MultiPopulationBMF",
    "NormalGammaPrior",
    "PipelineResult",
    "PopulationData",
    "PriorKnowledge",
    "ShiftScaleTransform",
    "TwoDimensionalCV",
    "UnivariateBMF",
    "covariance_error",
    "estimation_error",
    "log_evidence",
    "log_evidence_grid",
    "make_folds",
    "map_moments",
    "mean_credible_region",
    "mean_region_contains",
    "mean_error",
    "posterior_credible_summary",
]
