"""BMF-BD: Bayesian model fusion on Bernoulli distribution (reference [5]).

Fang et al. (DAC 2014) fuse an early-stage *yield* (pass probability) into
a late-stage yield estimate when observations are binary pass/fail.  The
Bernoulli likelihood's conjugate prior is the Beta distribution; anchoring
its mode at the early-stage yield mirrors the moment-matching of the main
paper.

Included because the paper's Sec. 2 positions it as prior art and because
the yield-estimation example (:mod:`examples.yield_estimation`) compares
moment-based parametric yield against this direct pass/fail fusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.core.prior import PriorKnowledge
from repro.exceptions import DimensionError, HyperParameterError, InsufficientDataError

__all__ = ["BetaPrior", "BernoulliBMF", "BernoulliMomentEstimator"]


@dataclass(frozen=True)
class BetaPrior:
    """Beta(a, b) prior over a pass probability."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a <= 0.0 or self.b <= 0.0:
            raise HyperParameterError(
                f"Beta parameters must be > 0, got a={self.a}, b={self.b}"
            )

    @classmethod
    def from_early_yield(cls, yield_e: float, strength: float) -> "BetaPrior":
        """Prior whose mode is the early-stage yield.

        ``strength`` is the equivalent prior sample count (``a + b - 2``);
        larger values express more confidence in the early-stage yield.
        """
        if not 0.0 < yield_e < 1.0:
            raise HyperParameterError(
                f"early yield must lie strictly in (0, 1), got {yield_e}"
            )
        if strength <= 0.0:
            raise HyperParameterError(f"strength must be > 0, got {strength}")
        return cls(a=1.0 + strength * yield_e, b=1.0 + strength * (1.0 - yield_e))

    @property
    def mode(self) -> Optional[float]:
        """Mode ``(a - 1)/(a + b - 2)`` when defined (a, b > 1)."""
        if self.a <= 1.0 or self.b <= 1.0:
            return None
        return (self.a - 1.0) / (self.a + self.b - 2.0)

    @property
    def mean(self) -> float:
        """Mean ``a / (a + b)``."""
        return self.a / (self.a + self.b)

    def posterior(self, passes: int, fails: int) -> "BetaPrior":
        """Conjugate update with observed pass/fail counts."""
        if passes < 0 or fails < 0:
            raise ValueError("counts must be non-negative")
        return BetaPrior(a=self.a + passes, b=self.b + fails)

    def credible_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Equal-tailed credible interval for the pass probability."""
        from scipy import stats as sps

        if not 0.0 < level < 1.0:
            raise ValueError(f"level must lie in (0, 1), got {level}")
        tail = (1.0 - level) / 2.0
        return (
            float(sps.beta.ppf(tail, self.a, self.b)),
            float(sps.beta.ppf(1.0 - tail, self.a, self.b)),
        )


class BernoulliBMF:
    """Late-stage yield estimation by Beta-Bernoulli fusion.

    Parameters
    ----------
    yield_e:
        Early-stage yield estimate (from abundant early samples).
    strength:
        Equivalent prior sample count encoding credibility of ``yield_e``.
    """

    def __init__(self, yield_e: float, strength: float = 20.0) -> None:
        self.prior = BetaPrior.from_early_yield(yield_e, strength)

    def estimate(self, outcomes) -> float:
        """MAP yield after fusing binary late-stage outcomes.

        ``outcomes`` is an array-like of booleans/0-1 values (pass=1).
        """
        arr = np.atleast_1d(np.asarray(outcomes)).ravel()
        if arr.size == 0:
            raise InsufficientDataError("need at least one late-stage outcome")
        values = arr.astype(float)
        # Exact comparison is intentional: inputs are bools/0-1 flags, and
        # both literals are exactly representable; 0.5 must be rejected.
        if np.any((values != 0.0) & (values != 1.0)):  # reprolint: disable=RPL004 -- binary validation
            raise ValueError("outcomes must be binary (0/1 or booleans)")
        passes = int(values.sum())
        posterior = self.prior.posterior(passes, arr.size - passes)
        mode = posterior.mode
        # Posterior of a proper fused prior always has a, b > 1, but guard
        # for degenerate user-supplied priors.
        return mode if mode is not None else posterior.mean

    def estimate_batch(self, outcomes) -> np.ndarray:
        """Vectorised :meth:`estimate` over a stack of outcome vectors.

        ``outcomes`` is ``(B, n)`` (rows are independent late-stage runs,
        e.g. one per replication of a sweep); returns the ``(B,)`` MAP
        yields.  All posterior updates happen in one NumPy pass — no
        per-row Python work — and each entry equals ``estimate(row)``.
        """
        arr = np.atleast_2d(np.asarray(outcomes, dtype=float))
        if arr.ndim != 2 or arr.shape[1] == 0:
            raise InsufficientDataError(
                "outcomes must be a (B, n) stack with at least one column"
            )
        if np.any((arr != 0.0) & (arr != 1.0)):  # reprolint: disable=RPL004 -- binary validation
            raise ValueError("outcomes must be binary (0/1 or booleans)")
        passes = arr.sum(axis=1)
        a = self.prior.a + passes
        b = self.prior.b + (arr.shape[1] - passes)
        # Mode (a-1)/(a+b-2) where defined, posterior mean a/(a+b) otherwise
        # (degenerate user-supplied priors), matching the scalar path.
        has_mode = (a > 1.0) & (b > 1.0)
        denom_mode = np.where(has_mode, a + b - 2.0, 1.0)
        return np.where(has_mode, (a - 1.0) / denom_mode, a / (a + b))

    def estimate_with_interval(self, outcomes, level: float = 0.95):
        """MAP yield plus an equal-tailed credible interval."""
        arr = np.atleast_1d(np.asarray(outcomes)).ravel().astype(float)
        passes = int(arr.sum())
        posterior = self.prior.posterior(passes, arr.size - passes)
        point = posterior.mode if posterior.mode is not None else posterior.mean
        return point, posterior.credible_interval(level)


class BernoulliMomentEstimator(MomentEstimator):
    """Protocol adapter: Beta-Bernoulli yield fusion as a moment estimator.

    The fused pass probability ``p`` *is* the first moment of the binary
    pass indicator, and ``p (1 - p)`` its variance — so the BMF-BD prior
    art slots into the registry as a ``d = 1`` estimator over 0/1 samples.

    The early yield comes either from explicit ``yield_e`` or from a 1-D
    :class:`~repro.core.prior.PriorKnowledge` whose mean is the early-stage
    pass fraction (the natural prior when the single "metric" is the pass
    indicator itself); it is clipped into the open unit interval.
    """

    name = "bmf_bd"

    def __init__(
        self,
        prior: Optional[PriorKnowledge] = None,
        yield_e: Optional[float] = None,
        strength: float = 20.0,
    ) -> None:
        if yield_e is None and prior is not None:
            if prior.dim != 1:
                raise DimensionError(
                    f"BMF-BD needs a 1-D pass-indicator prior, got d = {prior.dim}"
                )
            yield_e = float(prior.mean[0])
        if yield_e is None:
            raise HyperParameterError(
                "supply either yield_e or a 1-D pass-indicator PriorKnowledge"
            )
        eps = 1e-6
        self.yield_e = float(np.clip(yield_e, eps, 1.0 - eps))
        self.strength = float(strength)
        self._inner = BernoulliBMF(self.yield_e, self.strength)

    def estimate(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """Fused yield as ``(mean, variance)`` moments of the pass indicator."""
        arr = np.asarray(samples, dtype=float)
        if arr.ndim == 2 and arr.shape[1] == 1:
            arr = arr[:, 0]
        if arr.ndim != 1:
            raise DimensionError(
                f"BMF-BD takes (n,) or (n, 1) binary samples, got {arr.shape}"
            )
        p = float(self._inner.estimate(arr))
        eps = 1e-9
        p = float(np.clip(p, eps, 1.0 - eps))
        return MomentEstimate(
            mean=np.array([p]),
            covariance=np.array([[p * (1.0 - p)]]),
            n_samples=int(arr.size),
            method=self.name,
            info={"yield_early": self.yield_e, "strength": self.strength},
        )
