"""Common estimator API for multivariate moment estimation.

Every estimator in :mod:`repro.core` — MLE (the paper's baseline, Eq.
10–11), the proposed multivariate BMF (Eq. 31–32), and the shrinkage
baselines wrapped from :mod:`repro.linalg.shrinkage` — consumes an
``(n, d)`` late-stage sample matrix and produces a :class:`MomentEstimate`.
A shared interface keeps the experiment sweeps (:mod:`repro.experiments`)
estimator-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import DimensionError
from repro.linalg.validation import as_samples, assert_spd
from repro.stats.multivariate_gaussian import MultivariateGaussian

__all__ = ["EstimateInfo", "InfoValue", "MomentEstimate", "MomentEstimator"]

#: A single diagnostic value.  Estimators record hyper-parameters (floats),
#: counters (ints), switches (bools), and mode labels (strs); the old
#: ``Dict[str, float]`` annotation was a lie that :mod:`repro.io` then
#: hardened into a crash by coercing every value through ``float``.
InfoValue = Union[bool, int, float, str]

#: Estimator-specific diagnostics attached to a :class:`MomentEstimate`.
EstimateInfo = Dict[str, InfoValue]


@dataclass(frozen=True)
class MomentEstimate:
    """Estimated first two moments of the late-stage metric distribution.

    Attributes
    ----------
    mean:
        Estimated mean vector, length ``d``.
    covariance:
        Estimated ``(d, d)`` SPD covariance matrix.
    n_samples:
        Number of late-stage samples the estimate consumed.
    method:
        Human-readable estimator name (``"mle"``, ``"bmf"``...).
    info:
        Estimator-specific diagnostics, e.g. the selected hyper-parameters
        ``{"kappa0": ..., "v0": ...}`` for BMF or the rejected-row count
        for the robust gate.  Values are JSON-safe scalars (see
        :data:`InfoValue`).
    """

    mean: np.ndarray
    covariance: np.ndarray
    n_samples: int
    method: str
    info: EstimateInfo = field(default_factory=dict)

    @property
    def dim(self) -> int:
        """Number of performance metrics ``d``."""
        return self.mean.shape[0]

    def validate(self) -> "MomentEstimate":
        """Check shape consistency and SPD-ness of the covariance."""
        if self.mean.ndim != 1:
            raise DimensionError("estimate mean must be 1-D")
        if self.covariance.shape != (self.dim, self.dim):
            raise DimensionError(
                f"estimate covariance shape {self.covariance.shape} "
                f"does not match mean dim {self.dim}"
            )
        assert_spd(self.covariance, "estimated covariance")
        return self

    def to_gaussian(self) -> MultivariateGaussian:
        """The plug-in Gaussian ``N(mean, covariance)`` for this estimate."""
        return MultivariateGaussian(self.mean, self.covariance)

    def loglik(self, x: ArrayLike) -> float:
        """Gaussian log-likelihood of data ``x`` under this estimate (Eq. 9)."""
        return self.to_gaussian().loglik(x)


class MomentEstimator(abc.ABC):
    """Abstract base class for multivariate moment estimators."""

    #: Short name reported in :attr:`MomentEstimate.method`.
    name: str = "base"

    @abc.abstractmethod
    def estimate(
        self, samples: ArrayLike, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """Estimate the late-stage moments from ``(n, d)`` samples.

        ``rng`` is accepted by all estimators so stochastic ones (e.g. BMF
        with randomised cross-validation folds) are reproducible; purely
        deterministic estimators ignore it.
        """

    def _check(self, samples: ArrayLike) -> np.ndarray:
        return as_samples(samples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
