"""Multivariate Bayesian model fusion estimator — Eq. (31)–(32), Algorithm 1.

Given early-stage prior knowledge ``(mu_E, Sigma_E)`` and ``n`` late-stage
samples, the MAP estimates under the normal-Wishart prior are closed-form:

    mu_MAP    = (kappa0 * mu_E + n * Xbar) / (kappa0 + n)                (31)
    Sigma_MAP = [ (v0 - d) * Sigma_E
                  + S
                  + kappa0*n/(kappa0+n) * (mu_E - Xbar)(mu_E - Xbar)^T ]
                / (v0 + n - d)                                           (32)

The hyper-parameters ``(kappa0, v0)`` weight the early-stage knowledge for
the mean and covariance respectively (Sec. 3.3); by default they are chosen
by the two-dimensional Q-fold cross validation of Sec. 4.2, but callers may
pin them for ablation studies.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.crossval import CrossValidationResult, TwoDimensionalCV
from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import HyperParameterError, InsufficientDataError
from repro.linalg.validation import as_samples, clip_eigenvalues, symmetrize
from repro.stats.suffstats import SufficientStats

__all__ = ["map_moments", "map_moments_from_stats", "BMFEstimator"]


def map_moments_from_stats(
    prior: PriorKnowledge,
    stats: SufficientStats,
    kappa0: float,
    v0: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """MAP mean and covariance (Eq. 31–32) from sufficient statistics.

    The posterior mode touches the late-stage data only through
    ``(n, Xbar, S)``, so the estimate can be produced from a
    :class:`~repro.stats.suffstats.SufficientStats` accumulator without
    re-visiting raw samples — this is what makes the one-shot and
    streaming (serving) paths provably identical: both funnel through
    this single arithmetic.

    ``n == 0`` is allowed and returns the prior mode ``(mu_E, Sigma_E)``
    exactly — the natural answer for a serving session that has not yet
    ingested any late-stage measurements.
    """
    d = prior.dim
    if stats.dim != d:
        raise InsufficientDataError(
            f"late-stage statistics have {stats.dim} metrics but prior has {d}"
        )
    if kappa0 <= 0.0:
        raise HyperParameterError(f"kappa0 must be > 0, got {kappa0}")
    if v0 <= d:
        raise HyperParameterError(f"v0 must exceed d = {d}, got {v0}")

    n = stats.n
    diff = prior.mean - stats.mean
    mu_map = (kappa0 * prior.mean + n * stats.mean) / (kappa0 + n)
    numerator = (
        (v0 - d) * prior.covariance
        + stats.scatter
        + (kappa0 * n / (kappa0 + n)) * np.outer(diff, diff)
    )
    sigma_map = symmetrize(numerator / (v0 + n - d))
    return mu_map, sigma_map


def map_moments(
    prior: PriorKnowledge,
    samples: np.ndarray,
    kappa0: float,
    v0: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-form MAP mean and covariance (Eq. 31–32).

    Parameters
    ----------
    prior:
        Early-stage moments ``(mu_E, Sigma_E)``.
    samples:
        ``(n, d)`` late-stage sample matrix.
    kappa0, v0:
        Normal-Wishart hyper-parameters; ``kappa0 > 0`` and ``v0 > d``.

    Returns
    -------
    ``(mu_map, sigma_map)`` with ``sigma_map`` symmetric positive definite
    (it is a positively weighted sum of an SPD matrix and PSD terms).

    This is a thin wrapper over :func:`map_moments_from_stats`; the
    one-shot statistics use the same batch formulas as always, so results
    are bit-identical to earlier revisions that inlined them.
    """
    data = as_samples(samples)
    if data.shape[1] != prior.dim:
        raise InsufficientDataError(
            f"late-stage samples have {data.shape[1]} metrics but prior has {prior.dim}"
        )
    return map_moments_from_stats(
        prior, SufficientStats.from_samples(data), kappa0, v0
    )


class BMFEstimator(MomentEstimator):
    """The paper's multivariate BMF moment estimator (Algorithm 1).

    Parameters
    ----------
    prior:
        Early-stage knowledge; build with
        :meth:`repro.core.prior.PriorKnowledge.from_samples`.
    kappa0, v0:
        Fixed hyper-parameters.  Leave both ``None`` (the default) to select
        them by two-dimensional cross validation, matching the paper's flow.
        Supplying both pins them (ablation mode); supplying exactly one is
        an error because the CV search is joint.
    grid:
        Hyper-parameter search grid for the CV; defaults to
        :meth:`HyperParameterGrid.paper_default` (1…1000 in both axes,
        Sec. 5.1).
    n_folds:
        Number of cross-validation folds ``Q`` (Sec. 4.2).  Clamped to the
        sample count when ``n < Q``.
    selector:
        ``"cv"`` (the paper's two-dimensional Q-fold cross validation,
        default) or ``"evidence"`` (fold-free marginal-likelihood
        maximisation, see :mod:`repro.core.evidence`).
    """

    name = "bmf"

    def __init__(
        self,
        prior: PriorKnowledge,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
        selector: str = "cv",
    ) -> None:
        if (kappa0 is None) != (v0 is None):
            raise HyperParameterError(
                "kappa0 and v0 must be supplied together or both left None"
            )
        self.prior = prior
        self.kappa0 = None if kappa0 is None else float(kappa0)
        self.v0 = None if v0 is None else float(v0)
        if self.kappa0 is not None:
            if self.kappa0 <= 0.0:
                raise HyperParameterError(f"kappa0 must be > 0, got {kappa0}")
            if self.v0 <= prior.dim:
                raise HyperParameterError(
                    f"v0 must exceed d = {prior.dim}, got {v0}"
                )
        self.grid = grid if grid is not None else HyperParameterGrid.paper_default(prior.dim)
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2, got {n_folds}")
        self.n_folds = int(n_folds)
        if selector not in ("cv", "evidence"):
            raise HyperParameterError(
                f"selector must be 'cv' or 'evidence', got {selector!r}"
            )
        self.selector = selector
        #: Result of the last hyper-parameter search (None in pinned mode).
        self.last_cv_result = None

    # ------------------------------------------------------------------
    def estimate(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """Run Algorithm 1 on the late-stage samples."""
        data = self._check(samples)
        n = data.shape[0]
        if n < 2:
            raise InsufficientDataError(f"BMF needs at least 2 late samples, got {n}")

        if self.kappa0 is not None:
            kappa0, v0 = self.kappa0, self.v0
            self.last_cv_result = None
        else:
            self.last_cv_result = self._select(data, rng)
            kappa0 = self.last_cv_result.kappa0
            v0 = self.last_cv_result.v0

        mu_map, sigma_map = map_moments(self.prior, data, kappa0, v0)
        # A tiny eigenvalue floor guards against accumulated rounding when
        # (v0 - d) is minuscule and n is tiny; it never changes results at
        # the paper's operating points.
        sigma_map = clip_eigenvalues(sigma_map, 1e-12)
        return MomentEstimate(
            mean=mu_map,
            covariance=sigma_map,
            n_samples=n,
            method=self.name,
            info={"kappa0": float(kappa0), "v0": float(v0)},
        )

    # ------------------------------------------------------------------
    def estimate_from_stats(self, stats: SufficientStats) -> MomentEstimate:
        """MAP estimate from accumulated sufficient statistics.

        The streaming entry point: no raw samples are touched, so the
        serving layer can answer ``estimate`` queries straight from a
        session's :class:`~repro.stats.suffstats.SufficientStats`.  Only
        pinned-hyper-parameter mode is supported — fold-based cross
        validation needs the raw rows to split, which an accumulator has
        deliberately discarded.
        """
        if self.kappa0 is None or self.v0 is None:
            raise HyperParameterError(
                "estimate_from_stats requires pinned (kappa0, v0); "
                "cross-validated selection needs raw samples"
            )
        mu_map, sigma_map = map_moments_from_stats(
            self.prior, stats, self.kappa0, self.v0
        )
        sigma_map = clip_eigenvalues(sigma_map, 1e-12)
        return MomentEstimate(
            mean=mu_map,
            covariance=sigma_map,
            n_samples=stats.n,
            method=self.name,
            info={"kappa0": float(self.kappa0), "v0": float(self.v0)},
        )

    # ------------------------------------------------------------------
    def posterior(self, samples, rng: Optional[np.random.Generator] = None):
        """Full normal-Wishart posterior for the selected hyper-parameters.

        Runs the same selection as :meth:`estimate` but returns the
        :class:`repro.stats.normal_wishart.NormalWishart` posterior, giving
        access to uncertainty (posterior predictive, sampling) beyond the
        point MAP estimate the paper reports.

        ``rng`` seeds the CV fold split exactly as in :meth:`estimate`;
        leaving it ``None`` draws a fresh nondeterministic split (see the
        determinism contract in :mod:`repro.core.crossval`).  Previously
        the generator could not be threaded through here at all, so
        ``posterior`` was unreproducible even for callers that seeded
        everything else.
        """
        data = self._check(samples)
        if self.kappa0 is not None:
            kappa0, v0 = self.kappa0, self.v0
        else:
            result = self._select(data, rng)
            kappa0, v0 = result.kappa0, result.v0
        return self.prior.to_normal_wishart(kappa0, v0).posterior(data)

    def _select(self, data, rng):
        """Run the configured hyper-parameter search."""
        if self.selector == "evidence":
            from repro.core.evidence import EvidenceSelector

            return EvidenceSelector(self.prior, self.grid).select(data, rng=rng)
        cv = TwoDimensionalCV(self.prior, self.grid, n_folds=self.n_folds)
        return cv.select(data, rng=rng)
