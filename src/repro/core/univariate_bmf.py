"""Univariate BMF moment estimation — the prior art the paper extends.

Reference [7] (Gu et al., DAC 2013) fuses early-stage knowledge into the
mean and variance of a *single* Gaussian performance metric.  The conjugate
machinery is the scalar specialisation of the paper's normal-Wishart: a
normal-gamma prior over ``(mu, lambda = 1/sigma^2)``.

Provided for two reasons:

* completeness — downstream users migrating from single-metric BMF can
  validate against it;
* the ``d = 1`` consistency ablation — the multivariate estimator with
  ``d = 1`` must agree with this implementation exactly, which the property
  tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import HyperParameterError, InsufficientDataError

__all__ = ["NormalGammaPrior", "UnivariateBMF"]


@dataclass(frozen=True)
class NormalGammaPrior:
    """Normal-gamma prior ``NG(mu, lambda | mu0, kappa0, alpha0, beta0)``.

    ``mu | lambda ~ N(mu0, (kappa0 lambda)^{-1})`` and
    ``lambda ~ Gamma(alpha0, rate=beta0)``.  The joint mode over
    ``(mu, lambda)`` is ``(mu0, (alpha0 - 1/2) / beta0)`` for
    ``alpha0 > 1/2``.
    """

    mu0: float
    kappa0: float
    alpha0: float
    beta0: float

    def __post_init__(self) -> None:
        if self.kappa0 <= 0.0:
            raise HyperParameterError(f"kappa0 must be > 0, got {self.kappa0}")
        if self.alpha0 <= 0.5:
            raise HyperParameterError(
                f"alpha0 must exceed 1/2 for a proper joint mode, got {self.alpha0}"
            )
        if self.beta0 <= 0.0:
            raise HyperParameterError(f"beta0 must be > 0, got {self.beta0}")

    # ------------------------------------------------------------------
    @classmethod
    def from_early_stage(
        cls, mean_e: float, var_e: float, kappa0: float, alpha0: float
    ) -> "NormalGammaPrior":
        """Anchor the prior mode at the early-stage ``(mean, variance)``.

        The joint mode of ``lambda`` is ``(alpha0 - 1/2)/beta0``; setting it
        to the early precision ``1/var_e`` gives
        ``beta0 = (alpha0 - 1/2) * var_e`` — the scalar twin of Eq. (20).
        """
        if var_e <= 0.0:
            raise HyperParameterError(f"early variance must be > 0, got {var_e}")
        beta0 = (alpha0 - 0.5) * var_e
        return cls(mu0=float(mean_e), kappa0=kappa0, alpha0=alpha0, beta0=beta0)

    def mode(self) -> Tuple[float, float]:
        """Joint mode ``(mu_M, lambda_M)``."""
        return self.mu0, (self.alpha0 - 0.5) / self.beta0

    # ------------------------------------------------------------------
    def posterior(self, samples) -> "NormalGammaPrior":
        """Exact conjugate update after observing scalar samples."""
        data = np.atleast_1d(np.asarray(samples, dtype=float)).ravel()
        n = data.size
        if n == 0:
            raise InsufficientDataError("posterior update needs at least one sample")
        xbar = float(data.mean())
        ss = float(np.sum((data - xbar) ** 2))
        kappa_n = self.kappa0 + n
        mu_n = (self.kappa0 * self.mu0 + n * xbar) / kappa_n
        alpha_n = self.alpha0 + n / 2.0
        beta_n = (
            self.beta0
            + ss / 2.0
            + self.kappa0 * n * (xbar - self.mu0) ** 2 / (2.0 * kappa_n)
        )
        return NormalGammaPrior(mu0=mu_n, kappa0=kappa_n, alpha0=alpha_n, beta0=beta_n)


class UnivariateBMF:
    """Single-metric BMF mean/variance estimator (reference [7]).

    Parameters
    ----------
    mean_e, var_e:
        Early-stage mean and variance.
    kappa0, alpha0:
        Credibility hyper-parameters (mean and variance respectively);
        ``alpha0`` plays the role of ``v0`` in the multivariate method.
    """

    def __init__(
        self, mean_e: float, var_e: float, kappa0: float = 1.0, alpha0: float = 1.0
    ) -> None:
        self.prior = NormalGammaPrior.from_early_stage(mean_e, var_e, kappa0, alpha0)

    def estimate(self, samples) -> Tuple[float, float]:
        """MAP ``(mean, variance)`` after fusing the late-stage samples."""
        posterior = self.prior.posterior(samples)
        mu_map, lambda_map = posterior.mode()
        return mu_map, 1.0 / lambda_map

    def estimate_mean(self, samples) -> float:
        """MAP mean only (the quantity [7] reports)."""
        return self.estimate(samples)[0]

    def estimate_variance(self, samples) -> float:
        """MAP variance only."""
        return self.estimate(samples)[1]
