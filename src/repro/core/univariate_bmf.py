"""Univariate BMF moment estimation — the prior art the paper extends.

Reference [7] (Gu et al., DAC 2013) fuses early-stage knowledge into the
mean and variance of a *single* Gaussian performance metric.  The conjugate
machinery is the scalar specialisation of the paper's normal-Wishart: a
normal-gamma prior over ``(mu, lambda = 1/sigma^2)``.

Provided for two reasons:

* completeness — downstream users migrating from single-metric BMF can
  validate against it;
* the ``d = 1`` consistency ablation — the multivariate estimator with
  ``d = 1`` must agree with this implementation exactly, which the property
  tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.core.prior import PriorKnowledge
from repro.exceptions import DimensionError, HyperParameterError, InsufficientDataError

__all__ = ["NormalGammaPrior", "UnivariateBMF", "UnivariateBMFEstimator"]


@dataclass(frozen=True)
class NormalGammaPrior:
    """Normal-gamma prior ``NG(mu, lambda | mu0, kappa0, alpha0, beta0)``.

    ``mu | lambda ~ N(mu0, (kappa0 lambda)^{-1})`` and
    ``lambda ~ Gamma(alpha0, rate=beta0)``.  The joint mode over
    ``(mu, lambda)`` is ``(mu0, (alpha0 - 1/2) / beta0)`` for
    ``alpha0 > 1/2``.
    """

    mu0: float
    kappa0: float
    alpha0: float
    beta0: float

    def __post_init__(self) -> None:
        if self.kappa0 <= 0.0:
            raise HyperParameterError(f"kappa0 must be > 0, got {self.kappa0}")
        if self.alpha0 <= 0.5:
            raise HyperParameterError(
                f"alpha0 must exceed 1/2 for a proper joint mode, got {self.alpha0}"
            )
        if self.beta0 <= 0.0:
            raise HyperParameterError(f"beta0 must be > 0, got {self.beta0}")

    # ------------------------------------------------------------------
    @classmethod
    def from_early_stage(
        cls, mean_e: float, var_e: float, kappa0: float, alpha0: float
    ) -> "NormalGammaPrior":
        """Anchor the prior mode at the early-stage ``(mean, variance)``.

        The joint mode of ``lambda`` is ``(alpha0 - 1/2)/beta0``; setting it
        to the early precision ``1/var_e`` gives
        ``beta0 = (alpha0 - 1/2) * var_e`` — the scalar twin of Eq. (20).
        """
        if var_e <= 0.0:
            raise HyperParameterError(f"early variance must be > 0, got {var_e}")
        beta0 = (alpha0 - 0.5) * var_e
        return cls(mu0=float(mean_e), kappa0=kappa0, alpha0=alpha0, beta0=beta0)

    def mode(self) -> Tuple[float, float]:
        """Joint mode ``(mu_M, lambda_M)``."""
        return self.mu0, (self.alpha0 - 0.5) / self.beta0

    # ------------------------------------------------------------------
    def posterior(self, samples) -> "NormalGammaPrior":
        """Exact conjugate update after observing scalar samples."""
        data = np.atleast_1d(np.asarray(samples, dtype=float)).ravel()
        n = data.size
        if n == 0:
            raise InsufficientDataError("posterior update needs at least one sample")
        xbar = float(data.mean())
        ss = float(np.sum((data - xbar) ** 2))
        kappa_n = self.kappa0 + n
        mu_n = (self.kappa0 * self.mu0 + n * xbar) / kappa_n
        alpha_n = self.alpha0 + n / 2.0
        beta_n = (
            self.beta0
            + ss / 2.0
            + self.kappa0 * n * (xbar - self.mu0) ** 2 / (2.0 * kappa_n)
        )
        return NormalGammaPrior(mu0=mu_n, kappa0=kappa_n, alpha0=alpha_n, beta0=beta_n)


class UnivariateBMF:
    """Single-metric BMF mean/variance estimator (reference [7]).

    Parameters
    ----------
    mean_e, var_e:
        Early-stage mean and variance.
    kappa0, alpha0:
        Credibility hyper-parameters (mean and variance respectively);
        ``alpha0`` plays the role of ``v0`` in the multivariate method.
    """

    def __init__(
        self, mean_e: float, var_e: float, kappa0: float = 1.0, alpha0: float = 1.0
    ) -> None:
        self.prior = NormalGammaPrior.from_early_stage(mean_e, var_e, kappa0, alpha0)

    def estimate(self, samples) -> Tuple[float, float]:
        """MAP ``(mean, variance)`` after fusing the late-stage samples."""
        posterior = self.prior.posterior(samples)
        mu_map, lambda_map = posterior.mode()
        return mu_map, 1.0 / lambda_map

    def estimate_mean(self, samples) -> float:
        """MAP mean only (the quantity [7] reports)."""
        return self.estimate(samples)[0]

    def estimate_variance(self, samples) -> float:
        """MAP variance only."""
        return self.estimate(samples)[1]


class UnivariateBMFEstimator(MomentEstimator):
    """Protocol adapter: reference-[7] BMF as a ``d = 1`` moment estimator.

    Accepts either a one-dimensional
    :class:`~repro.core.prior.PriorKnowledge` (the pipeline path) or
    explicit ``mean_e``/``var_e`` early-stage moments.  Samples may be a
    flat vector or an ``(n, 1)`` matrix; the estimate comes back with a
    ``1 x 1`` covariance so every downstream consumer (errors, yield,
    serialization) works unchanged.
    """

    name = "univariate_bmf"

    def __init__(
        self,
        prior: Optional[PriorKnowledge] = None,
        mean_e: Optional[float] = None,
        var_e: Optional[float] = None,
        kappa0: float = 1.0,
        alpha0: float = 2.0,
    ) -> None:
        if prior is not None:
            if prior.dim != 1:
                raise DimensionError(
                    f"univariate BMF needs a 1-D prior, got d = {prior.dim}"
                )
            mean_e = float(prior.mean[0])
            var_e = float(prior.covariance[0, 0])
        if mean_e is None or var_e is None:
            raise HyperParameterError(
                "supply either a 1-D PriorKnowledge or both mean_e and var_e"
            )
        self.kappa0 = float(kappa0)
        self.alpha0 = float(alpha0)
        self._inner = UnivariateBMF(
            mean_e=mean_e, var_e=var_e, kappa0=self.kappa0, alpha0=self.alpha0
        )

    def estimate(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """MAP mean/variance of the single metric, packaged as moments."""
        data = np.asarray(samples, dtype=float)
        if data.ndim == 2:
            if data.shape[1] != 1:
                raise DimensionError(
                    f"univariate BMF takes (n,) or (n, 1) samples, got {data.shape}"
                )
            data = data[:, 0]
        elif data.ndim != 1:
            raise DimensionError(
                f"univariate BMF takes (n,) or (n, 1) samples, got {data.shape}"
            )
        if data.size < 2:
            raise InsufficientDataError(
                f"univariate BMF needs at least 2 samples, got {data.size}"
            )
        mu, var = self._inner.estimate(data)
        return MomentEstimate(
            mean=np.array([mu]),
            covariance=np.array([[var]]),
            n_samples=int(data.size),
            method=self.name,
            info={"kappa0": self.kappa0, "alpha0": self.alpha0},
        )
