"""Early-stage prior knowledge container (Sec. 3.2, Eq. 17–21).

:class:`PriorKnowledge` carries the early-stage mean vector and covariance
matrix and knows how to materialise the normal-Wishart prior whose mode
coincides with them for any candidate hyper-parameter pair ``(kappa0, v0)``.
Keeping the early-stage moments separate from the hyper-parameters mirrors
the paper's flow: the moments are *data* (measured once from abundant
early-stage samples), the hyper-parameters are *credibility knobs* selected
later by cross validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import DimensionError, InsufficientDataError
from repro.linalg.validation import as_samples, assert_spd, inv_spd
from repro.stats.moments import mle_covariance, sample_mean
from repro.stats.normal_wishart import NormalWishart

__all__ = ["PriorKnowledge"]


@dataclass(frozen=True)
class PriorKnowledge:
    """Early-stage moments ``(mu_E, Sigma_E)`` used to anchor the prior.

    Attributes
    ----------
    mean:
        Early-stage mean vector ``mu_E`` (Eq. 17/19).
    covariance:
        Early-stage covariance ``Sigma_E``; its inverse is the precision
        ``Lambda_E`` of Eq. (18)/(20).
    n_samples:
        How many early-stage samples produced the moments (0 when supplied
        analytically); recorded for reporting only.
    """

    mean: np.ndarray
    covariance: np.ndarray
    n_samples: int = 0

    def __post_init__(self) -> None:
        mean = np.atleast_1d(np.asarray(self.mean, dtype=float))
        if mean.ndim != 1:
            raise DimensionError("prior mean must be 1-D")
        cov = assert_spd(self.covariance, "prior covariance")
        if cov.shape != (mean.shape[0], mean.shape[0]):
            raise DimensionError(
                f"prior covariance shape {cov.shape} does not match mean dim {mean.shape[0]}"
            )
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "covariance", cov)

    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, early_samples) -> "PriorKnowledge":
        """Measure ``(mu_E, Sigma_E)`` from an early-stage sample matrix.

        The early stage is assumed data-rich (e.g. thousands of cheap
        schematic-level simulations), so the plain MLE moments are used.
        """
        samples = as_samples(early_samples)
        n, d = samples.shape
        if n < d + 1:
            raise InsufficientDataError(
                f"need at least d + 1 = {d + 1} early samples for an "
                f"invertible covariance, got {n}"
            )
        return cls(
            mean=sample_mean(samples),
            covariance=mle_covariance(samples),
            n_samples=n,
        )

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of performance metrics ``d``."""
        return self.mean.shape[0]

    @property
    def precision(self) -> np.ndarray:
        """Early-stage precision matrix ``Lambda_E = Sigma_E^{-1}`` (Eq. 18)."""
        return inv_spd(self.covariance, "covariance")

    def to_normal_wishart(self, kappa0: float, v0: float) -> NormalWishart:
        """Normal-Wishart prior of Eq. (21) for hyper-parameters ``(kappa0, v0)``.

        The returned prior peaks at ``(mu_E, Lambda_E)`` by construction
        (Eq. 15–20).
        """
        return NormalWishart.from_early_stage(self.mean, self.covariance, kappa0, v0)

    def min_v0(self) -> float:
        """Smallest admissible ``v0`` (must strictly exceed ``d``, Eq. 20)."""
        return float(self.dim)
