"""Prior-free baseline estimators wrapping :mod:`repro.linalg.shrinkage`.

The shrinkage functions (Ledoit-Wolf, OAS, diagonal shrinkage) return bare
covariance matrices; :class:`ShrinkageEstimator` lifts them to the
:class:`~repro.core.estimators.MomentEstimator` protocol so they slot into
the registry, the pipeline, and every experiment sweep exactly like MLE and
BMF.  They are the ablation benches' control group: if BMF merely
*regularised*, these would match it — the gap that remains measures the
value of the early-stage prior's content.

The class lives in :mod:`repro.core` (not :mod:`repro.linalg`) because the
protocol base class sits above the linalg layer; wrapping here keeps the
dependency arrow pointing one way.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.linalg.shrinkage import diagonal_shrinkage, ledoit_wolf, oas

__all__ = ["ShrinkageEstimator", "SHRINKAGE_KINDS"]

#: Supported shrinkage kinds mapped to their covariance functions.
SHRINKAGE_KINDS: Dict[str, Callable[..., np.ndarray]] = {
    "ledoit_wolf": ledoit_wolf,
    "oas": oas,
    "diagonal": diagonal_shrinkage,
}


class ShrinkageEstimator(MomentEstimator):
    """Sample mean plus a prior-free shrinkage covariance.

    Parameters
    ----------
    kind:
        ``"ledoit_wolf"``, ``"oas"``, or ``"diagonal"`` (hyphenated
        spellings accepted).
    alpha:
        Diagonal-shrinkage mixing weight; only meaningful for
        ``kind="diagonal"``.
    """

    def __init__(self, kind: str, alpha: Optional[float] = None) -> None:
        key = str(kind).replace("-", "_")
        if key not in SHRINKAGE_KINDS:
            raise ValueError(
                f"kind must be one of {sorted(SHRINKAGE_KINDS)}, got {kind!r}"
            )
        if alpha is not None and key != "diagonal":
            raise ValueError(f"alpha only applies to kind='diagonal', got kind={kind!r}")
        self.kind = key
        self.alpha = None if alpha is None else float(alpha)
        self.name = key

    def estimate(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """Sample mean plus the selected shrinkage covariance."""
        data = self._check(samples)
        fn = SHRINKAGE_KINDS[self.kind]
        if self.kind == "diagonal" and self.alpha is not None:
            cov = fn(data, alpha=self.alpha)
        else:
            cov = fn(data)
        info: dict = {"shrinkage_kind": self.kind}
        if self.alpha is not None:
            info["alpha"] = self.alpha
        return MomentEstimate(
            mean=data.mean(axis=0),
            covariance=cov,
            n_samples=data.shape[0],
            method=self.name,
            info=info,
        )
