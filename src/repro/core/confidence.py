"""Credible intervals and regions for the fused moments.

The paper reports only the MAP point estimate; the normal-Wishart posterior
carries full uncertainty, and in the small-n regime that uncertainty is the
difference between "the yield is 92 %" and "the yield is 92 +/- 6 %".

Closed-form marginals of the normal-Wishart posterior used here:

* ``mu_j`` marginally follows a scaled Student-t:
  ``(mu_j - mu_n_j) / sqrt(s_jj / (kappa_n * (v_n - d + 1)))``
  is t-distributed with ``v_n - d + 1`` dof, where ``s = T_n^{-1}``;
* ``Sigma_jj`` marginally follows an inverse-gamma / scaled inverse
  chi-square: ``Sigma_jj ~ s_jj / chi2(v_n - d + 1)``.

(Marginalisation references: Gelman et al., *Bayesian Data Analysis*,
Sec. 3.6 — the multivariate normal with unknown mean and covariance.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats as sps

from repro.exceptions import DimensionError, HyperParameterError
from repro.linalg.validation import inv_spd, solve_spd
from repro.stats.normal_wishart import NormalWishart

__all__ = [
    "CredibleSummary",
    "mean_credible_region",
    "mean_region_contains",
    "posterior_credible_summary",
]


@dataclass(frozen=True)
class CredibleSummary:
    """Per-dimension equal-tailed credible intervals for mean and variance."""

    level: float
    mean_point: np.ndarray
    mean_lower: np.ndarray
    mean_upper: np.ndarray
    var_point: np.ndarray
    var_lower: np.ndarray
    var_upper: np.ndarray

    @property
    def dim(self) -> int:
        """Number of metrics."""
        return self.mean_point.shape[0]

    def mean_interval(self, j: int) -> Tuple[float, float]:
        """Interval for ``mu_j``."""
        return float(self.mean_lower[j]), float(self.mean_upper[j])

    def variance_interval(self, j: int) -> Tuple[float, float]:
        """Interval for ``Sigma_jj``."""
        return float(self.var_lower[j]), float(self.var_upper[j])


def posterior_credible_summary(
    posterior: NormalWishart, level: float = 0.95
) -> CredibleSummary:
    """Closed-form marginal credible intervals from a NW posterior.

    Parameters
    ----------
    posterior:
        The posterior returned by
        :meth:`repro.core.bmf.BMFEstimator.posterior` (or any
        :class:`NormalWishart`).
    level:
        Credible mass, e.g. ``0.95``.
    """
    if not 0.0 < level < 1.0:
        raise HyperParameterError(f"level must lie in (0, 1), got {level}")
    d = posterior.dim
    dof = posterior.v0 - d + 1.0
    if dof <= 0.0:
        raise HyperParameterError(
            f"marginal dof v0 - d + 1 = {dof} must be positive"
        )
    s = inv_spd(posterior.T0, "T0")
    s_diag = np.diag(s)
    tail = (1.0 - level) / 2.0

    # Mean marginals: scaled Student-t.
    scale = np.sqrt(s_diag / (posterior.kappa0 * dof))
    t_crit = float(sps.t.ppf(1.0 - tail, dof))
    mean_point = posterior.mu0.copy()
    mean_lower = mean_point - t_crit * scale
    mean_upper = mean_point + t_crit * scale

    # Variance marginals: Sigma_jj ~ s_jj / chi2(dof).
    chi_lo = float(sps.chi2.ppf(1.0 - tail, dof))
    chi_hi = float(sps.chi2.ppf(tail, dof))
    var_lower = s_diag / chi_lo
    var_upper = s_diag / chi_hi
    # Point value: the MAP covariance diagonal.
    var_point = np.diag(posterior.map_estimate().covariance)

    return CredibleSummary(
        level=level,
        mean_point=mean_point,
        mean_lower=mean_lower,
        mean_upper=mean_upper,
        var_point=var_point,
        var_lower=var_lower,
        var_upper=var_upper,
    )


def mean_credible_region(
    posterior: NormalWishart, level: float = 0.95
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Joint credible ellipsoid for the mean vector.

    The marginal posterior of ``mu`` is multivariate-t; the set
    ``{mu : (mu - mu_n)^T M^{-1} (mu - mu_n) <= r2}`` with
    ``M = T_n^{-1} / (kappa_n * dof)`` and
    ``r2 = d * F_{d, dof}(level)`` contains ``level`` posterior mass.

    Returns ``(center, shape_matrix, radius_sq)``; a point ``mu`` is inside
    iff its Mahalanobis-squared distance under ``shape_matrix`` is at most
    ``radius_sq``.
    """
    if not 0.0 < level < 1.0:
        raise HyperParameterError(f"level must lie in (0, 1), got {level}")
    d = posterior.dim
    dof = posterior.v0 - d + 1.0
    if dof <= 0.0:
        raise HyperParameterError(
            f"marginal dof v0 - d + 1 = {dof} must be positive"
        )
    shape = inv_spd(posterior.T0, "T0") / (posterior.kappa0 * dof)
    radius_sq = d * float(sps.f.ppf(level, d, dof))
    return posterior.mu0.copy(), shape, radius_sq


def mean_region_contains(
    center: np.ndarray, shape: np.ndarray, radius_sq: float, points
) -> np.ndarray:
    """Membership test for the ellipsoid from :func:`mean_credible_region`."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[1] != center.shape[0]:
        raise DimensionError(
            f"points have {pts.shape[1]} columns, expected {center.shape[0]}"
        )
    diff = pts - center
    solve = solve_spd(shape, diff.T, "shape").T
    maha = np.sum(diff * solve, axis=1)
    return maha <= radius_sq
