"""repro — Multivariate Bayesian Model Fusion for AMS moment estimation.

Reproduction of Huang, Fang, Yang, Zeng & Li, "Efficient Multivariate
Moment Estimation via Bayesian Model Fusion for Analog and Mixed-Signal
Circuits", DAC 2015.

Quick start::

    from repro import FusionPipeline
    pipeline = FusionPipeline.fit(early_samples, early_nominal, late_nominal)
    result = pipeline.estimate(late_samples)   # fused mean + covariance
    result.provenance                          # estimator, (kappa0, v0), config hash

Every estimator lives in a registry (``repro.available_estimators()``);
which one a pipeline runs is declarative data in a ``FusionConfig``.

Sub-packages
------------
``repro.core``
    The paper's contribution: normal-Wishart BMF, MLE baseline,
    shift/scale preprocessing, two-dimensional cross validation.
``repro.stats``
    Probability substrate (multivariate Gaussian, Wishart, normal-Wishart,
    normality diagnostics).
``repro.linalg``
    SPD utilities, norms, shrinkage baselines.
``repro.circuits``
    Behavioural circuit simulators standing in for the paper's SPICE runs
    (two-stage op-amp, flash ADC, MNA AC solver, process variations).
``repro.yieldest``
    Parametric yield from fused moments.
``repro.experiments``
    Harness regenerating every figure of the paper's Sec. 5.
``repro.extensions``
    Future-work features: higher-order moments, sequential fusion,
    robust fusion.
"""

from repro._version import __version__
from repro.core import (
    BMFEstimator,
    BMFPipeline,
    EstimatorSpec,
    FusionConfig,
    FusionPipeline,
    FusionProvenance,
    GridSpec,
    HyperParameterGrid,
    MLEstimator,
    MomentEstimate,
    PipelineResult,
    PriorKnowledge,
    ShiftScaleTransform,
    TwoDimensionalCV,
    available_estimators,
    covariance_error,
    default_registry,
    make_estimator,
    map_moments,
    mean_error,
    register_estimator,
)
from repro.exceptions import ReproError
from repro.stats import MultivariateGaussian, NormalWishart

__all__ = [
    "BMFEstimator",
    "BMFPipeline",
    "EstimatorSpec",
    "FusionConfig",
    "FusionPipeline",
    "FusionProvenance",
    "GridSpec",
    "HyperParameterGrid",
    "MLEstimator",
    "MomentEstimate",
    "MultivariateGaussian",
    "NormalWishart",
    "PipelineResult",
    "PriorKnowledge",
    "ReproError",
    "ShiftScaleTransform",
    "TwoDimensionalCV",
    "__version__",
    "available_estimators",
    "covariance_error",
    "default_registry",
    "make_estimator",
    "map_moments",
    "mean_error",
    "register_estimator",
]
