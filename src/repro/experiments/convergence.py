"""Asymptotic convergence analysis of the estimators.

Classical theory predicts:

* MLE errors decay like ``n^{-1/2}`` in both criteria — a log-log slope of
  ``-0.5`` on the figures' curves;
* BMF inherits the same asymptotic rate (the prior washes out, Eq. 34/36)
  but starts from a much lower intercept — until the prior's residual bias
  floor, where the curve flattens.

:func:`fit_decay` extracts slope/intercept from a sweep curve and
:func:`convergence_report` packages both methods' fits plus the estimated
BMF floor.  The bench asserts the MLE slope lands near -0.5, a strong
end-to-end sanity check of the whole pipeline (simulator included).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.exceptions import DimensionError
from repro.experiments.sweep import SweepResult

__all__ = ["DecayFit", "fit_decay", "convergence_report"]


@dataclass(frozen=True)
class DecayFit:
    """Power-law fit ``error ~ C * n^slope`` of one error curve."""

    slope: float
    log_intercept: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Error predicted at sample count ``n``."""
        return math.exp(self.log_intercept + self.slope * math.log(n))


def fit_decay(curve: Dict[int, float]) -> DecayFit:
    """Least-squares log-log fit of an error-vs-n curve."""
    if len(curve) < 3:
        raise DimensionError("need at least 3 sweep points to fit a decay")
    ns = np.array(sorted(curve))
    errs = np.array([curve[n] for n in ns])
    if np.any(errs <= 0.0):
        raise DimensionError("error curve must be strictly positive")
    x = np.log(ns.astype(float))
    y = np.log(errs)
    slope, intercept = np.polyfit(x, y, 1)
    fitted = intercept + slope * x
    ss_res = float(np.sum((y - fitted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return DecayFit(slope=float(slope), log_intercept=float(intercept), r_squared=r2)


def convergence_report(
    result: SweepResult, metric: str = "covariance"
) -> Dict[str, object]:
    """Fit both methods' curves and estimate the BMF advantage structure.

    Returns a dict with per-method :class:`DecayFit`, the implied
    intercept ratio (how much cheaper BMF starts out), and a crude BMF
    floor estimate (its smallest observed error — the prior-bias plateau
    if the curve has flattened).
    """
    if metric not in ("mean", "covariance"):
        raise ValueError(f"metric must be 'mean' or 'covariance', got {metric!r}")
    get = result.mean_error_curve if metric == "mean" else result.cov_error_curve
    fits = {m: fit_decay(get(m)) for m in result.methods}
    out: Dict[str, object] = {"fits": fits, "metric": metric}
    if "mle" in fits and "bmf" in fits:
        mle, bmf = fits["mle"], fits["bmf"]
        # Equal-error sample ratio at the reference point n=16, implied by
        # the two power laws: solve C_m n_m^s_m = C_b 16^s_b for n_m.
        target = bmf.predict(16.0)
        if mle.slope < 0.0:
            n_equiv = math.exp(
                (math.log(target) - mle.log_intercept) / mle.slope
            )
            out["implied_cost_ratio_at_16"] = n_equiv / 16.0
        bmf_curve = get("bmf")
        out["bmf_floor"] = min(bmf_curve.values())
    return out
