"""Plain-text reporting: the figure series and headline rows as the paper prints them.

All benchmark harnesses funnel through these helpers so `pytest
benchmarks/ --benchmark-only` output contains, for every reproduced figure,
the same rows/series the paper reports (error vs sample count per method,
selected hyper-parameters, cost-reduction headline).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.experiments.cost import CostReduction
from repro.experiments.sweep import SweepResult

__all__ = [
    "format_table",
    "format_error_series",
    "format_cost_reduction",
    "format_hyperparams",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return ">range"
        if value != 0.0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_error_series(
    result: SweepResult, metric: str, title: str
) -> str:
    """One figure's series: sample count vs per-method average error."""
    if metric not in ("mean", "covariance"):
        raise ValueError(f"metric must be 'mean' or 'covariance', got {metric!r}")
    curves = {
        m: (
            result.mean_error_curve(m)
            if metric == "mean"
            else result.cov_error_curve(m)
        )
        for m in result.methods
    }
    ns = sorted(result.config.sample_sizes)
    headers = ["n_late"] + [f"{m}_error" for m in result.methods]
    rows = [[n] + [curves[m][n] for m in result.methods] for n in ns]
    return format_table(headers, rows, title=title)


def format_cost_reduction(reduction: CostReduction, title: str) -> str:
    """Headline table: per-operating-point and best cost-reduction ratio."""
    headers = ["bmf_n", "mle_equivalent_ratio"]
    rows = [[n, r] for n, r in sorted(reduction.ratios.items())]
    table = format_table(headers, rows, title=title)
    best = reduction.best
    best_str = "beyond sweep range (>max)" if math.isinf(best) else f"{best:.1f}x"
    return f"{table}\nbest cost reduction ({reduction.metric}): {best_str}"


def format_hyperparams(result: SweepResult, title: str) -> str:
    """Median CV-selected ``(kappa0, v0)`` per sample count."""
    headers = ["n_late", "median_kappa0", "median_v0"]
    rows = []
    for n in sorted(result.config.sample_sizes):
        if result.hyperparams.get(n):
            k0, v0 = result.hyperparam_medians(n)
            rows.append([n, k0, v0])
    return format_table(headers, rows, title=title)
