"""Error-versus-sample-count sweeps (the x/y data of Figures 4 and 5).

For each late-stage sample count ``n`` the sweep repeats ``n_repeats``
times (the paper uses 100 "repeated runs based on independent samples to
average out random fluctuations"): draw ``n`` late rows, run every
estimator, and record the Eq. (37)–(38) errors against the exact moments
measured from the *full* late-stage bank.  Everything happens in the
shifted-and-scaled space of Sec. 4.1, exactly as the paper computes its
error criteria.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.montecarlo import PairedDataset
from repro.core.errors import covariance_error, mean_error
from repro.core.estimators import MomentEstimator
from repro.core.preprocessing import ShiftScaleTransform
from repro.core.prior import PriorKnowledge
from repro.core.registry import EstimatorSpec
from repro.exceptions import DimensionError
from repro.experiments.parallel import replicate, resolve_n_jobs
from repro.stats.moments import mle_covariance, sample_mean

__all__ = ["SweepConfig", "SweepResult", "ErrorSweep", "default_estimators"]

#: Factory signature: receives the fitted prior, returns a fresh estimator.
#: An :class:`~repro.core.registry.EstimatorSpec` *is* such a factory, so
#: sweeps accept registry names, specs, and plain callables interchangeably.
EstimatorFactory = Callable[[PriorKnowledge], MomentEstimator]

#: What callers may put in an ``estimators`` mapping.
EstimatorLike = Union[str, EstimatorSpec, EstimatorFactory]


def default_estimators() -> Dict[str, EstimatorSpec]:
    """The paper's two contenders: MLE baseline and the proposed BMF.

    Returned as registry specs — swap in any other registered name (see
    :func:`repro.core.registry.available_estimators`) without touching
    sweep code.
    """
    return {
        "mle": EstimatorSpec("mle"),
        "bmf": EstimatorSpec("bmf"),
    }


def _normalize_estimators(
    estimators: Union[Mapping[str, EstimatorLike], Sequence[str], None],
) -> Dict[str, EstimatorFactory]:
    """Coerce registry names/specs/callables into a name -> factory dict.

    A bare sequence of registry names (``["mle", "bmf", "oas"]``) becomes a
    mapping keyed by those names; string values become
    :class:`EstimatorSpec` (which is itself a ``prior -> estimator``
    factory); callables pass through untouched for back-compatibility.
    """
    if estimators is None:
        return dict(default_estimators())
    if not isinstance(estimators, Mapping):
        estimators = {name: name for name in estimators}
    out: Dict[str, EstimatorFactory] = {}
    for name, value in estimators.items():
        if isinstance(value, str):
            out[name] = EstimatorSpec(value)
        elif isinstance(value, EstimatorSpec) or callable(value):
            out[name] = value
        else:
            raise TypeError(
                f"estimator {name!r} must be a registry name, EstimatorSpec, "
                f"or factory callable, got {type(value).__name__}"
            )
    if not out:
        raise DimensionError("estimators mapping must be non-empty")
    return out


@dataclass(frozen=True)
class SweepConfig:
    """Sweep parameters.

    Attributes
    ----------
    sample_sizes:
        Late-stage sample counts ``n`` (the figures' x-axis).
    n_repeats:
        Independent repetitions per ``n`` (paper: 100).
    seed:
        Base RNG seed; repetition ``r`` uses a child seed so runs are
        reproducible yet independent.
    n_jobs:
        Worker processes for the replication loop: ``1`` (default) runs
        serially, ``-1`` uses every CPU, any other positive value is taken
        literally.  Because each repetition derives all randomness from its
        own ``SeedSequence`` child, results are **bit-identical** for every
        ``n_jobs`` setting.
    """

    sample_sizes: Tuple[int, ...] = (8, 16, 32, 64, 128, 256)
    n_repeats: int = 100
    seed: int = 7
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if not self.sample_sizes:
            raise DimensionError("sample_sizes must be non-empty")
        if any(n < 2 for n in self.sample_sizes):
            raise DimensionError("every sample size must be >= 2")
        if self.n_repeats < 1:
            raise DimensionError("n_repeats must be >= 1")
        resolve_n_jobs(self.n_jobs)


@dataclass
class SweepResult:
    """Raw and summarised sweep outcomes.

    ``mean_errors[method][n]`` / ``cov_errors[method][n]`` hold one error
    per repetition; the ``*_curve`` methods average them into the series
    plotted in the paper's figures.
    """

    config: SweepConfig
    mean_errors: Dict[str, Dict[int, List[float]]]
    cov_errors: Dict[str, Dict[int, List[float]]]
    hyperparams: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)

    @property
    def methods(self) -> List[str]:
        """Estimator names present in the sweep."""
        return sorted(self.mean_errors)

    def mean_error_curve(self, method: str) -> Dict[int, float]:
        """Average Eq. (37) error per sample count (Fig. 4a / 5a series)."""
        return {
            n: float(np.mean(errs)) for n, errs in sorted(self.mean_errors[method].items())
        }

    def cov_error_curve(self, method: str) -> Dict[int, float]:
        """Average Eq. (38) error per sample count (Fig. 4b / 5b series)."""
        return {
            n: float(np.mean(errs)) for n, errs in sorted(self.cov_errors[method].items())
        }

    def hyperparam_medians(self, n: int) -> Tuple[float, float]:
        """Median selected ``(kappa0, v0)`` at sample count ``n``."""
        pairs = self.hyperparams.get(n, [])
        if not pairs:
            raise KeyError(f"no hyper-parameter records for n={n}")
        arr = np.asarray(pairs, dtype=float)
        return float(np.median(arr[:, 0])), float(np.median(arr[:, 1]))


class ErrorSweep:
    """Runs the paper's accuracy-vs-cost experiment on a paired dataset.

    Parameters
    ----------
    dataset:
        Paired early/late bank for one circuit.
    estimators:
        Which estimators to compare: a mapping of display name to registry
        name / :class:`~repro.core.registry.EstimatorSpec` / factory
        callable, or simply a sequence of registry names.  Defaults to the
        paper's MLE-vs-BMF pair.
    config:
        Sample sizes / repeats / seed.
    shift_scale:
        Apply the Sec. 4.1 preprocessing (True, the paper's flow).  The
        ``False`` setting exists for the ablation benchmark showing why
        the step matters.
    """

    def __init__(
        self,
        dataset: PairedDataset,
        estimators: Union[Mapping[str, EstimatorLike], Sequence[str], None] = None,
        config: Optional[SweepConfig] = None,
        shift_scale: bool = True,
    ) -> None:
        self.dataset = dataset
        self.estimators = _normalize_estimators(estimators)
        self.config = config if config is not None else SweepConfig()
        max_n = max(self.config.sample_sizes)
        if max_n > dataset.n_samples:
            raise DimensionError(
                f"largest sweep size {max_n} exceeds dataset size {dataset.n_samples}"
            )
        self.shift_scale = bool(shift_scale)
        self._prepare()

    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        ds = self.dataset
        if self.shift_scale:
            self._transform = ShiftScaleTransform.fit(
                ds.early, ds.early_nominal, ds.late_nominal
            )
            self._early = self._transform.transform(ds.early, "early")
            self._late = self._transform.transform(ds.late, "late")
        else:
            self._transform = None
            self._early = ds.early.copy()
            self._late = ds.late.copy()
        self.prior = PriorKnowledge.from_samples(self._early)
        # Ground truth: moments of the full late-stage bank (the paper's
        # mu_EXACT / Sigma_EXACT measured from all 5000/1000 samples).
        self.exact_mean = sample_mean(self._late)
        self.exact_cov = mle_covariance(self._late)

    # ------------------------------------------------------------------
    def _run_repetition(
        self, task: Tuple[int, np.random.SeedSequence]
    ) -> Tuple[Dict[str, Tuple[float, float]], List[Tuple[float, float]]]:
        """One independent repetition: draw ``n`` rows, run every estimator.

        Pure given the task's seed child — the repetition-level unit the
        parallel engine fans out.  Returns per-estimator ``(mean_error,
        cov_error)`` plus any recorded ``(kappa0, v0)`` selections, in
        estimator order.
        """
        n, child = task
        rng = np.random.default_rng(child)
        idx = rng.choice(self._late.shape[0], size=n, replace=False)
        subset = self._late[idx]
        errors: Dict[str, Tuple[float, float]] = {}
        selected: List[Tuple[float, float]] = []
        for name, factory in self.estimators.items():
            estimator = factory(self.prior)
            estimate = estimator.estimate(subset, rng=rng)
            errors[name] = (
                mean_error(estimate.mean, self.exact_mean),
                covariance_error(estimate.covariance, self.exact_cov),
            )
            if "kappa0" in estimate.info and "v0" in estimate.info:
                selected.append((estimate.info["kappa0"], estimate.info["v0"]))
        return errors, selected

    def run(self) -> SweepResult:
        """Execute the full sweep.

        Repetitions run through :func:`repro.experiments.parallel.replicate`
        honouring ``config.n_jobs``; every repetition owns a
        ``SeedSequence`` child and results are reassembled in task order,
        so the outcome is bit-identical whatever the worker count.
        """
        cfg = self.config
        mean_errors: Dict[str, Dict[int, List[float]]] = {
            name: {n: [] for n in cfg.sample_sizes} for name in self.estimators
        }
        cov_errors: Dict[str, Dict[int, List[float]]] = {
            name: {n: [] for n in cfg.sample_sizes} for name in self.estimators
        }
        hyperparams: Dict[int, List[Tuple[float, float]]] = {
            n: [] for n in cfg.sample_sizes
        }
        seed_seq = np.random.SeedSequence(cfg.seed)
        children = seed_seq.spawn(cfg.n_repeats * len(cfg.sample_sizes))
        tasks = [
            (n, children[i * cfg.n_repeats + r])
            for i, n in enumerate(cfg.sample_sizes)
            for r in range(cfg.n_repeats)
        ]
        rows = replicate(self._run_repetition, tasks, n_jobs=cfg.n_jobs)
        for (n, _child), (errors, selected) in zip(tasks, rows):
            for name, (m_err, c_err) in errors.items():
                mean_errors[name][n].append(m_err)
                cov_errors[name][n].append(c_err)
            hyperparams[n].extend(selected)
        return SweepResult(
            config=cfg,
            mean_errors=mean_errors,
            cov_errors=cov_errors,
            hyperparams=hyperparams,
        )
