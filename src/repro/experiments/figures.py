"""Figure drivers: one function per figure in the paper's Sec. 5.

Each driver runs the corresponding experiment end-to-end and returns the
:class:`~repro.experiments.sweep.SweepResult` whose series *are* the
figure.  The benchmark files under ``benchmarks/`` call these and print
the paper-versus-measured comparison.

* Figure 4(a)/(b): op-amp mean / covariance error vs late-stage samples.
* Figure 5(a)/(b): flash-ADC mean / covariance error vs samples.
* Figure 1: shift-and-scale isotropy demonstration.
* Figure 2(a): the cross-validation likelihood landscape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.montecarlo import PairedDataset
from repro.core.crossval import CrossValidationResult, TwoDimensionalCV
from repro.core.preprocessing import ShiftScaleTransform
from repro.core.prior import PriorKnowledge
from repro.experiments import datasets
from repro.experiments.sweep import ErrorSweep, SweepConfig, SweepResult

__all__ = [
    "figure4_opamp",
    "figure5_adc",
    "figure1_shift_scale",
    "figure2_cv_surface",
    "FigureData",
]


def _clamp_sizes(sample_sizes: Tuple[int, ...], n_bank: int) -> Tuple[int, ...]:
    """Drop sweep sizes a reduced bank cannot support (keep at least one)."""
    kept = tuple(n for n in sample_sizes if n <= n_bank)
    if not kept:
        kept = (min(min(sample_sizes), n_bank),)
    return kept


@dataclass(frozen=True)
class FigureData:
    """A finished figure experiment: the sweep plus its dataset context."""

    name: str
    sweep: SweepResult
    dataset: PairedDataset


def figure4_opamp(
    n_bank: int = datasets.PAPER_OPAMP_SAMPLES,
    sample_sizes: Tuple[int, ...] = (8, 16, 32, 64, 128, 256),
    n_repeats: int = 100,
    seed: int = 7,
) -> FigureData:
    """Reproduce Figure 4: op-amp error-vs-samples for MLE and BMF.

    Defaults match the paper (5000-sample bank, 100 repeats); reduce
    ``n_bank``/``n_repeats`` for quick runs.
    """
    dataset = datasets.opamp_dataset(n_bank)
    sweep = ErrorSweep(
        dataset,
        config=SweepConfig(
            sample_sizes=_clamp_sizes(sample_sizes, n_bank),
            n_repeats=n_repeats,
            seed=seed,
        ),
    ).run()
    return FigureData(name="figure4_opamp", sweep=sweep, dataset=dataset)


def figure5_adc(
    n_bank: int = datasets.PAPER_ADC_SAMPLES,
    sample_sizes: Tuple[int, ...] = (8, 16, 32, 64, 128),
    n_repeats: int = 100,
    seed: int = 11,
) -> FigureData:
    """Reproduce Figure 5: flash-ADC error-vs-samples for MLE and BMF."""
    dataset = datasets.adc_dataset(n_bank)
    sweep = ErrorSweep(
        dataset,
        config=SweepConfig(
            sample_sizes=_clamp_sizes(sample_sizes, n_bank),
            n_repeats=n_repeats,
            seed=seed,
        ),
    ).run()
    return FigureData(name="figure5_adc", sweep=sweep, dataset=dataset)


def figure1_shift_scale(
    n_bank: int = 2000,
) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 1's point: shift+scale makes both stages isotropic.

    Returns isotropy diagnostics (max |mean| in sigma units, std range)
    for the raw and the transformed op-amp clouds at both stages.
    """
    ds = datasets.opamp_dataset(n_bank)
    transform = ShiftScaleTransform.fit(ds.early, ds.early_nominal, ds.late_nominal)
    out: Dict[str, Dict[str, float]] = {}
    for stage, raw in (("early", ds.early), ("late", ds.late)):
        raw_means = raw.mean(axis=0)
        raw_stds = raw.std(axis=0, ddof=0)
        out[f"{stage}_raw"] = {
            "mean_magnitude_range": float(
                np.log10(
                    max(np.abs(raw_means).max(), 1e-300)
                    / max(np.abs(raw_means).min(), 1e-300)
                )
            ),
            "std_magnitude_range": float(
                np.log10(raw_stds.max() / raw_stds.min())
            ),
        }
        out[f"{stage}_transformed"] = transform.isotropy_report(raw, stage)
    return out


def figure2_cv_surface(
    n_late: int = 32,
    n_bank: int = 2000,
    seed: int = 3,
) -> CrossValidationResult:
    """Reproduce Figure 2(a): the CV likelihood surface over (kappa0, v0).

    Runs the two-dimensional search once on an ``n_late``-sample op-amp
    draw and returns the full score grid.
    """
    ds = datasets.opamp_dataset(n_bank)
    transform = ShiftScaleTransform.fit(ds.early, ds.early_nominal, ds.late_nominal)
    early_iso = transform.transform(ds.early, "early")
    late_iso = transform.transform(ds.late, "late")
    prior = PriorKnowledge.from_samples(early_iso)
    rng = np.random.default_rng(seed)
    idx = rng.choice(late_iso.shape[0], size=n_late, replace=False)
    return TwoDimensionalCV(prior).select(late_iso[idx], rng=rng)
