"""Experiment harness regenerating every figure and headline of Sec. 5."""

from repro.experiments.ablations import (
    ShrinkageEstimator,
    ablate_dimensionality,
    ablate_fixed_hyperparams,
    ablate_fold_count,
    ablate_non_gaussian,
    ablate_prior_quality,
    ablate_process_quality,
    ablate_selector,
    ablate_shift_scale,
    ablate_shrinkage_baselines,
)
from repro.experiments.budget import BudgetPlan, BudgetPlanner
from repro.experiments.convergence import DecayFit, convergence_report, fit_decay
from repro.experiments.cost import CostReduction, cost_reduction, samples_to_reach
from repro.experiments.similarity import StageSimilarity, stage_similarity
from repro.experiments.datasets import (
    PAPER_ADC_SAMPLES,
    PAPER_OPAMP_SAMPLES,
    adc_dataset,
    clear_cache,
    opamp_dataset,
)
from repro.experiments.figures import (
    FigureData,
    figure1_shift_scale,
    figure2_cv_surface,
    figure4_opamp,
    figure5_adc,
)
from repro.experiments.reporting import (
    format_cost_reduction,
    format_error_series,
    format_hyperparams,
    format_table,
)
from repro.experiments.sweep import (
    ErrorSweep,
    SweepConfig,
    SweepResult,
    default_estimators,
)

__all__ = [
    "BudgetPlan",
    "BudgetPlanner",
    "CostReduction",
    "DecayFit",
    "ErrorSweep",
    "FigureData",
    "PAPER_ADC_SAMPLES",
    "PAPER_OPAMP_SAMPLES",
    "ShrinkageEstimator",
    "SweepConfig",
    "StageSimilarity",
    "SweepResult",
    "ablate_dimensionality",
    "ablate_fixed_hyperparams",
    "ablate_fold_count",
    "ablate_non_gaussian",
    "ablate_prior_quality",
    "ablate_process_quality",
    "ablate_selector",
    "ablate_shift_scale",
    "ablate_shrinkage_baselines",
    "adc_dataset",
    "clear_cache",
    "convergence_report",
    "cost_reduction",
    "default_estimators",
    "figure1_shift_scale",
    "figure2_cv_surface",
    "figure4_opamp",
    "figure5_adc",
    "fit_decay",
    "format_cost_reduction",
    "format_error_series",
    "format_hyperparams",
    "format_table",
    "opamp_dataset",
    "samples_to_reach",
    "stage_similarity",
]
