"""Process-based replication engine for the experiment harnesses.

The paper's figures average ~100 independent repetitions per sample size;
each repetition is pure given its :class:`numpy.random.SeedSequence` child,
so they parallelise embarrassingly.  :func:`replicate` fans a task list out
over a ``ProcessPoolExecutor`` and returns results **in task order**, which
— together with per-task child seeds — makes the output bit-identical
regardless of the worker count.

Two practical constraints shape the implementation:

* Experiment callables close over unpicklable state (estimator factories
  are lambdas, datasets are large arrays).  The pool therefore uses the
  ``fork`` start method and passes the callable and task list to workers
  through a module-level global captured at fork time; only task *indices*
  travel over the pipe, and only results travel back.
* On platforms without ``fork`` (or when ``n_jobs == 1``) the engine falls
  back to a plain serial loop, which is also the reference semantics the
  determinism tests compare against.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from repro.exceptions import DimensionError

__all__ = ["replicate", "resolve_n_jobs", "fork_available", "thread_map"]

#: Callable + task list inherited by forked workers (never pickled).
_FORK_STATE: dict = {}


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    positive values are taken literally.  ``0`` and values below ``-1``
    are rejected — they are invariably typos.
    """
    if n_jobs is None:
        return 1
    jobs = int(n_jobs)
    if jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if jobs < 1:
        raise DimensionError(f"n_jobs must be a positive int or -1, got {n_jobs}")
    return jobs


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def thread_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    n_jobs: Optional[int] = 1,
) -> List[Any]:
    """Evaluate ``fn(task)`` for every task on a thread pool, order-preserving.

    The thread-side sibling of :func:`replicate`, for tasks that are
    lock- or I/O-bound rather than CPU-bound (the serving router fanning a
    query out over shard workers is the motivating case: each call mostly
    waits on a per-shard store lock).  ``fn`` may close over arbitrary
    shared state — nothing is pickled.  The serial path (``n_jobs`` of
    ``None``/``1``, or a single task) is the reference semantics; because
    results come back in task order, the output is identical for every
    worker count whenever ``fn`` is pure in its task.
    """
    jobs = resolve_n_jobs(n_jobs)
    task_list = list(tasks)
    if jobs <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    with ThreadPoolExecutor(max_workers=min(jobs, len(task_list))) as pool:
        return list(pool.map(fn, task_list))


def _call_indexed(index: int) -> Any:
    """Worker entry point: run the fork-inherited callable on task ``index``."""
    return _FORK_STATE["fn"](_FORK_STATE["tasks"][index])


def replicate(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    n_jobs: Optional[int] = 1,
) -> List[Any]:
    """Evaluate ``fn(task)`` for every task, order-preserving.

    ``fn`` must be pure in its task (any randomness derived from seed
    material inside the task, e.g. a ``SeedSequence`` child), so the result
    list is bit-identical for every ``n_jobs`` — the serial path *is* the
    specification.  ``fn`` may be a closure or bound method over arbitrary
    unpicklable state; only the returned values must pickle.
    """
    jobs = resolve_n_jobs(n_jobs)
    task_list = list(tasks)
    if jobs <= 1 or len(task_list) <= 1 or not fork_available():
        return [fn(task) for task in task_list]

    _FORK_STATE["fn"] = fn
    _FORK_STATE["tasks"] = task_list
    try:
        context = multiprocessing.get_context("fork")
        workers = min(jobs, len(task_list))
        chunksize = max(1, len(task_list) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            return list(
                pool.map(_call_indexed, range(len(task_list)), chunksize=chunksize)
            )
    finally:
        _FORK_STATE.clear()
