"""Sample-budget planning: how many late-stage samples do I need?

The practical question behind the paper's cost-reduction numbers, asked in
the forward direction: *given* an accuracy target (or a bench-time budget),
how many post-layout simulations / silicon measurements should be planned?

:class:`BudgetPlanner` answers it from a pilot sweep: it fits the decay
laws of both estimators (:mod:`repro.experiments.convergence`) and inverts
them, reporting for each accuracy target the required sample counts and
the implied saving.  The pilot sweep can be run on a *cheap proxy bank*
(a reduced Monte-Carlo population), because only the decay shape is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError
from repro.experiments.convergence import DecayFit, fit_decay
from repro.experiments.sweep import SweepResult

__all__ = ["BudgetPlan", "BudgetPlanner"]


@dataclass(frozen=True)
class BudgetPlan:
    """Sample counts required to reach one accuracy target."""

    target_error: float
    n_mle: Optional[float]
    n_bmf: Optional[float]

    @property
    def saving(self) -> Optional[float]:
        """``n_mle / n_bmf`` when both are defined and finite."""
        if self.n_mle is None or self.n_bmf is None or self.n_bmf <= 0.0:
            return None
        return self.n_mle / self.n_bmf


class BudgetPlanner:
    """Inverts fitted error-decay laws into sample requirements.

    Parameters
    ----------
    result:
        A pilot sweep containing ``"mle"`` and ``"bmf"`` methods.
    metric:
        ``"covariance"`` or ``"mean"``.
    """

    def __init__(self, result: SweepResult, metric: str = "covariance") -> None:
        if metric not in ("mean", "covariance"):
            raise ValueError(f"metric must be 'mean' or 'covariance', got {metric!r}")
        self.metric = metric
        missing = {"mle", "bmf"} - set(result.methods)
        if missing:
            raise DimensionError(f"pilot sweep is missing methods: {sorted(missing)}")
        get = result.mean_error_curve if metric == "mean" else result.cov_error_curve
        self._curves = {m: get(m) for m in ("mle", "bmf")}
        self.fits: Dict[str, DecayFit] = {
            m: fit_decay(c) for m, c in self._curves.items()
        }
        #: BMF's smallest observed error: targets below it are unreachable
        #: by fusion alone (the prior-bias plateau).
        self.bmf_floor = min(self._curves["bmf"].values())

    # ------------------------------------------------------------------
    def _invert(self, fit: DecayFit, target: float) -> Optional[float]:
        if target <= 0.0:
            raise DimensionError(f"target error must be > 0, got {target}")
        if fit.slope >= 0.0:
            return None
        n = math.exp((math.log(target) - fit.log_intercept) / fit.slope)
        return max(n, 2.0)

    def plan(self, target_error: float) -> BudgetPlan:
        """Sample counts needed by each estimator for ``target_error``.

        ``n_bmf`` is ``None`` when the target sits below the observed BMF
        floor — more samples will not get fusion there; improve the prior
        (tighter early-stage model) instead.
        """
        n_mle = self._invert(self.fits["mle"], target_error)
        if target_error < self.bmf_floor:
            n_bmf = None
        else:
            n_bmf = self._invert(self.fits["bmf"], target_error)
            # The fitted BMF decay is shallow; never report more samples
            # than MLE would need (fusion can always fall back to MLE).
            if n_bmf is not None and n_mle is not None:
                n_bmf = min(n_bmf, n_mle)
        return BudgetPlan(target_error=target_error, n_mle=n_mle, n_bmf=n_bmf)

    def plan_table(self, targets: Sequence[float]) -> list:
        """Plans for several targets, sorted loosest-first."""
        if not targets:
            raise DimensionError("need at least one target error")
        return [self.plan(t) for t in sorted(targets, reverse=True)]

    def max_error_for_budget(self, n_samples: int, method: str = "bmf") -> float:
        """Expected error when only ``n_samples`` can be afforded."""
        if n_samples < 2:
            raise DimensionError(f"n_samples must be >= 2, got {n_samples}")
        if method not in self.fits:
            raise DimensionError(f"unknown method {method!r}")
        predicted = self.fits[method].predict(float(n_samples))
        if method == "bmf":
            return max(predicted, self.bmf_floor * 0.8)
        return predicted
