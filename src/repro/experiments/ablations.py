"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation isolates one ingredient of the paper's method:

* :func:`ablate_shift_scale` — run the fusion with and without the
  Sec. 4.1 preprocessing (quantifies why Fig. 1 matters);
* :func:`ablate_fixed_hyperparams` — CV-selected versus pinned
  ``(kappa0, v0)`` (quantifies why Sec. 4.2 matters);
* :func:`ablate_fold_count` — sensitivity to the CV fold count ``Q``;
* :func:`ablate_shrinkage_baselines` — BMF versus prior-free shrinkage
  (Ledoit-Wolf / OAS), separating "prior content" from "regularisation";
* :func:`ablate_prior_quality` — degrade the early-stage moments and watch
  the CV re-weight them (the Eq. 33-36 extremes, measured);
* :func:`ablate_selector` — the paper's Q-fold CV versus fold-free
  evidence (marginal-likelihood) hyper-parameter selection;
* :func:`ablate_non_gaussian` — robustness of the advantage when the
  joint-Gaussian assumption is violated (the Sec. 1 caveat);
* :func:`ablate_dimensionality` — synthetic d-sweep showing the gain grows
  with the number of correlated metrics.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.montecarlo import PairedDataset

# Re-exported for source compatibility: the adapter moved to core.baselines
# when it joined the estimator registry ("ledoit-wolf" / "oas" / ...).
from repro.core.baselines import ShrinkageEstimator
from repro.linalg.validation import cholesky_safe
from repro.core.errors import covariance_error, mean_error
from repro.core.prior import PriorKnowledge
from repro.core.registry import EstimatorSpec, make_estimator
from repro.experiments.parallel import replicate
from repro.experiments.sweep import ErrorSweep, SweepConfig, SweepResult
from repro.stats.multivariate_gaussian import MultivariateGaussian

__all__ = [
    "ablate_shift_scale",
    "ablate_fixed_hyperparams",
    "ablate_fold_count",
    "ablate_non_gaussian",
    "ablate_shrinkage_baselines",
    "ablate_prior_quality",
    "ablate_process_quality",
    "ablate_selector",
    "ablate_dimensionality",
    "ShrinkageEstimator",
]


def ablate_shift_scale(
    dataset: PairedDataset,
    config: Optional[SweepConfig] = None,
    n_jobs: int = 1,
) -> Dict[str, SweepResult]:
    """BMF with versus without the Sec. 4.1 preprocessing.

    Without the shift, the early/late nominal gap leaks into the rank-one
    term of Eq. (32); without the scale, large-magnitude metrics dominate
    the CV likelihood.  Note the errors of the two runs live in different
    spaces — compare each arm's BMF *relative to its own MLE*.

    ``n_jobs`` applies when ``config`` is None (otherwise set it on the
    config); same convention for every sweep-delegating ablation below.
    """
    cfg = config if config is not None else SweepConfig(n_repeats=30, n_jobs=n_jobs)
    return {
        "with_shift_scale": ErrorSweep(dataset, config=cfg, shift_scale=True).run(),
        "without_shift_scale": ErrorSweep(dataset, config=cfg, shift_scale=False).run(),
    }


def ablate_fixed_hyperparams(
    dataset: PairedDataset,
    pinned: Tuple[Tuple[float, float], ...] = ((1.0, 10.0), (10.0, 100.0), (100.0, 1000.0)),
    config: Optional[SweepConfig] = None,
    n_jobs: int = 1,
) -> SweepResult:
    """CV-selected hyper-parameters versus pinned settings."""
    cfg = config if config is not None else SweepConfig(n_repeats=30, n_jobs=n_jobs)
    d = dataset.early.shape[1]
    estimators: Dict[str, EstimatorSpec] = {"bmf_cv": EstimatorSpec("bmf")}
    for kappa0, v0 in pinned:
        estimators[f"bmf_k{kappa0:g}_v{v0:g}"] = EstimatorSpec(
            "bmf", {"kappa0": kappa0, "v0": max(v0, d + 1.0)}
        )
    return ErrorSweep(dataset, estimators=estimators, config=cfg).run()


def ablate_fold_count(
    dataset: PairedDataset,
    fold_counts: Tuple[int, ...] = (2, 4, 8),
    config: Optional[SweepConfig] = None,
    n_jobs: int = 1,
) -> SweepResult:
    """Sensitivity of the BMF accuracy to the CV fold count Q (Sec. 4.2)."""
    cfg = config if config is not None else SweepConfig(n_repeats=30, n_jobs=n_jobs)
    estimators = {
        f"bmf_q{q}": EstimatorSpec("bmf", {"n_folds": q}) for q in fold_counts
    }
    return ErrorSweep(dataset, estimators=estimators, config=cfg).run()


def ablate_shrinkage_baselines(
    dataset: PairedDataset,
    config: Optional[SweepConfig] = None,
    n_jobs: int = 1,
) -> SweepResult:
    """BMF versus MLE versus prior-free shrinkage covariances.

    If BMF merely regularised, Ledoit-Wolf/OAS would match it; the gap
    that remains measures the value of the early-stage *content*.
    """
    cfg = config if config is not None else SweepConfig(n_repeats=30, n_jobs=n_jobs)
    estimators = {
        "mle": EstimatorSpec("mle"),
        "bmf": EstimatorSpec("bmf"),
        "ledoit_wolf": EstimatorSpec("ledoit-wolf"),
        "oas": EstimatorSpec("oas"),
    }
    return ErrorSweep(dataset, estimators=estimators, config=cfg).run()


def ablate_prior_quality(
    dataset: PairedDataset,
    mean_bias_sigmas: Tuple[float, ...] = (0.0, 0.5, 2.0),
    n_late: int = 32,
    n_repeats: int = 30,
    seed: int = 5,
    n_jobs: int = 1,
) -> Dict[float, Dict[str, float]]:
    """Degrade the prior mean and watch CV shrink ``kappa0`` (Eq. 33-34).

    For each bias level (in per-dimension sigma units added to the early
    mean) returns the average selected ``kappa0``/``v0`` and the BMF
    errors — an executable version of the paper's Sec. 3.3 discussion.

    Repetition ``r`` uses the same ``SeedSequence`` child at every bias
    level — a paired design: each level sees identical late-stage draws,
    so level-to-level differences isolate the prior bias.  ``n_jobs``
    parallelises the repetitions (bit-identical to serial).
    """
    from repro.core.preprocessing import ShiftScaleTransform

    transform = ShiftScaleTransform.fit(
        dataset.early, dataset.early_nominal, dataset.late_nominal
    )
    early_iso = transform.transform(dataset.early, "early")
    late_iso = transform.transform(dataset.late, "late")
    base_prior = PriorKnowledge.from_samples(early_iso)
    exact_mean = late_iso.mean(axis=0)
    centered = late_iso - exact_mean
    exact_cov = centered.T @ centered / late_iso.shape[0]

    children = np.random.SeedSequence(seed).spawn(n_repeats)
    direction = np.ones(base_prior.dim) / np.sqrt(base_prior.dim)
    sigmas = np.sqrt(np.diag(base_prior.covariance))

    def one_repetition(task):
        bias_value, child = task
        prior = PriorKnowledge(
            base_prior.mean + bias_value * sigmas * direction,
            base_prior.covariance,
        )
        rng = np.random.default_rng(child)
        idx = rng.choice(late_iso.shape[0], size=n_late, replace=False)
        est = make_estimator("bmf", prior).estimate(late_iso[idx], rng=rng)
        return (
            est.info["kappa0"],
            est.info["v0"],
            mean_error(est.mean, exact_mean),
            covariance_error(est.covariance, exact_cov),
        )

    out: Dict[float, Dict[str, float]] = {}
    for bias in mean_bias_sigmas:
        tasks = [(float(bias), child) for child in children]
        rows = replicate(one_repetition, tasks, n_jobs=n_jobs)
        k0s, v0s, merrs, cerrs = map(list, zip(*rows))
        out[float(bias)] = {
            "median_kappa0": float(np.median(k0s)),
            "median_v0": float(np.median(v0s)),
            "mean_error": float(np.mean(merrs)),
            "cov_error": float(np.mean(cerrs)),
        }
    return out


def ablate_process_quality(
    local_scales: Tuple[float, ...] = (0.5, 1.0, 2.0),
    n_bank: int = 600,
    n_late: int = 16,
    n_repeats: int = 20,
    seed: int = 29,
    n_jobs: int = 1,
) -> Dict[float, Dict[str, float]]:
    """BMF advantage versus process mismatch severity.

    Regenerates the op-amp banks with the Pelgrom local-mismatch sigmas
    scaled by ``local_scale`` (0.5 = a mature process, 2.0 = a noisy early
    node) and measures both estimators at ``n_late`` samples.  Both error
    *levels* rise with mismatch, but the BMF/MLE ratio should be roughly
    scale-free: the isotropic-space geometry is largely unchanged when all
    local sigmas scale together.
    """
    from repro.circuits.montecarlo import PairedDataset
    from repro.circuits.opamp import OPAMP_METRIC_NAMES, TwoStageOpAmp
    from repro.circuits.process import ProcessVariationModel

    out: Dict[float, Dict[str, float]] = {}
    for scale_factor in local_scales:
        if scale_factor <= 0.0:
            raise ValueError(f"local scale must be > 0, got {scale_factor}")
        early_sim = TwoStageOpAmp.schematic()
        late_sim = TwoStageOpAmp.post_layout()
        base = early_sim.process_model()
        model = ProcessVariationModel(
            sigma_vth_global=base.sigma_vth_global,
            sigma_kp_rel_global=base.sigma_kp_rel_global,
            polarity_correlation=base.polarity_correlation,
            local_scale=scale_factor,
        )
        rng = np.random.default_rng(seed)
        samples = model.sample(early_sim.devices, n_bank, rng)
        dataset = PairedDataset(
            early=early_sim.simulate_batch(samples),
            late=late_sim.simulate_batch(samples),
            early_nominal=early_sim.simulate_nominal().as_array(),
            late_nominal=late_sim.simulate_nominal().as_array(),
            metric_names=OPAMP_METRIC_NAMES,
        )
        sweep = ErrorSweep(
            dataset,
            config=SweepConfig(
                sample_sizes=(n_late,), n_repeats=n_repeats, seed=seed,
                n_jobs=n_jobs,
            ),
        ).run()
        bmf = sweep.cov_error_curve("bmf")[n_late]
        mle = sweep.cov_error_curve("mle")[n_late]
        out[float(scale_factor)] = {
            "bmf_cov_error": bmf,
            "mle_cov_error": mle,
            "advantage": mle / max(bmf, 1e-12),
        }
    return out


def ablate_selector(
    dataset: PairedDataset,
    config: Optional[SweepConfig] = None,
    n_jobs: int = 1,
) -> SweepResult:
    """The paper's Q-fold CV versus evidence (marginal-likelihood) selection.

    Both search the same grid; CV scores held-out likelihood (robust to
    prior misspecification, fold-split randomness), evidence scores the
    exact marginal likelihood (deterministic, fold-free, but can
    over-trust a misspecified prior at small n).  Run on the circuit
    workloads, where the prior *is* mildly misspecified by construction.
    """
    cfg = config if config is not None else SweepConfig(n_repeats=30, n_jobs=n_jobs)
    estimators = {
        "bmf_cv": EstimatorSpec("bmf", {"selector": "cv"}),
        "bmf_evidence": EstimatorSpec("bmf", {"selector": "evidence"}),
        "mle": EstimatorSpec("mle"),
    }
    return ErrorSweep(dataset, estimators=estimators, config=cfg).run()


def ablate_non_gaussian(
    skew_levels: Tuple[float, ...] = (0.0, 0.5, 1.0),
    n_late: int = 16,
    n_repeats: int = 30,
    seed: int = 23,
    n_jobs: int = 1,
) -> Dict[float, Dict[str, float]]:
    """Robustness to the joint-Gaussian assumption (the Sec. 1 caveat).

    Generates sinh-skewed populations (a Gaussian pushed through
    ``x + skew * (exp(x / 2) - 1)`` per dimension — smooth, monotone, and
    increasingly asymmetric with ``skew``), then measures how both
    estimators' errors against the *true* population moments degrade.
    BMF's relative advantage should persist: both methods fit the same
    misspecified Gaussian family, so the prior's variance reduction keeps
    paying even when the model is wrong.

    Repetition ``r`` reuses the same seed child across skew levels (paired
    design); ``n_jobs`` parallelises repetitions bit-identically.  Returns
    per-skew-level average errors plus the BMF/MLE error ratio.
    """
    rng = np.random.default_rng(seed)
    d = 4
    a = rng.standard_normal((d, d))
    cov_base = a @ a.T / d + np.eye(d)
    chol = cholesky_safe(cov_base, "cov_base")

    def population(skew: float, n: int, gen: np.random.Generator) -> np.ndarray:
        z = gen.standard_normal((n, d)) @ chol.T
        return z + skew * (np.exp(z / 2.0) - 1.0)

    children = np.random.SeedSequence(seed).spawn(n_repeats)
    out: Dict[float, Dict[str, float]] = {}
    for skew in skew_levels:
        # Ground truth + prior from a large population of the same law.
        big = population(skew, 60_000, np.random.default_rng(seed + 1))
        exact_mean = big.mean(axis=0)
        exact_cov = np.cov(big.T, bias=True)
        prior = PriorKnowledge(exact_mean, exact_cov)

        def one_repetition(child, skew=skew, prior=prior, exact_cov=exact_cov):
            gen = np.random.default_rng(child)
            late = population(skew, n_late, gen)
            bmf = make_estimator("bmf", prior).estimate(late, rng=gen)
            mle = make_estimator("mle").estimate(late)
            return (
                covariance_error(bmf.covariance, exact_cov),
                covariance_error(mle.covariance, exact_cov),
            )

        rows = replicate(one_repetition, children, n_jobs=n_jobs)
        bmf_errs, mle_errs = zip(*rows)
        bmf_mean = float(np.mean(bmf_errs))
        mle_mean = float(np.mean(mle_errs))
        out[float(skew)] = {
            "bmf_cov_error": bmf_mean,
            "mle_cov_error": mle_mean,
            "advantage": mle_mean / max(bmf_mean, 1e-12),
        }
    return out


def ablate_dimensionality(
    dims: Tuple[int, ...] = (2, 5, 10),
    n_late: int = 16,
    n_repeats: int = 30,
    seed: int = 9,
    n_jobs: int = 1,
) -> Dict[int, Dict[str, float]]:
    """Synthetic d-sweep: BMF's covariance advantage grows with d.

    The MLE covariance has rank <= n-1, so at fixed ``n`` its error grows
    with ``d`` while a good prior keeps BMF flat.  The population per
    dimension is built from a shared setup generator (as before); the
    repetitions draw from per-repetition seed children and run through the
    parallel engine.  Returns per-dimension average errors for both
    methods.
    """
    rng = np.random.default_rng(seed)
    children = np.random.SeedSequence(seed).spawn(n_repeats)
    out: Dict[int, Dict[str, float]] = {}
    for d in dims:
        a = rng.standard_normal((d, d))
        sigma_true = a @ a.T / d + np.eye(d)
        mu_true = rng.standard_normal(d) * 0.3
        truth = MultivariateGaussian(mu_true, sigma_true)
        prior = PriorKnowledge(mu_true + 0.05, sigma_true * 1.1)

        def one_repetition(child, truth=truth, prior=prior, sigma_true=sigma_true):
            gen = np.random.default_rng(child)
            late = truth.sample(n_late, gen)
            bmf = make_estimator("bmf", prior).estimate(late, rng=gen)
            mle = make_estimator("mle").estimate(late)
            return (
                covariance_error(bmf.covariance, sigma_true),
                covariance_error(mle.covariance, sigma_true),
            )

        rows = replicate(one_repetition, children, n_jobs=n_jobs)
        bmf_c, mle_c = zip(*rows)
        out[d] = {
            "bmf_cov_error": float(np.mean(bmf_c)),
            "mle_cov_error": float(np.mean(mle_c)),
            "advantage": float(np.mean(mle_c) / max(np.mean(bmf_c), 1e-12)),
        }
    return out
