"""Cached Monte-Carlo sample banks for the paper's two experiments.

Generating the op-amp bank (5000 paired simulations) takes a few seconds;
benchmarks and examples share one instance per configuration through this
module's process-level cache instead of regenerating it.  Underneath, the
generators keep a persistent disk cache keyed by the full generation
config (see :func:`repro.circuits.montecarlo.dataset_cache_path`), so a
fresh process re-running an identical sweep skips simulation entirely.

``FAST`` sizes are provided for unit/integration tests where statistical
resolution is not the point.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.circuits.montecarlo import (
    PairedDataset,
    generate_adc_dataset,
    generate_opamp_dataset,
)

__all__ = [
    "opamp_dataset",
    "adc_dataset",
    "clear_cache",
    "PAPER_OPAMP_SAMPLES",
    "PAPER_ADC_SAMPLES",
]

#: Sample counts used in the paper (Sec. 5.1 / 5.2).
PAPER_OPAMP_SAMPLES = 5000
PAPER_ADC_SAMPLES = 1000

_CACHE: Dict[Tuple[str, int, int], PairedDataset] = {}


def opamp_dataset(n_samples: int = PAPER_OPAMP_SAMPLES, seed: int = 2015) -> PairedDataset:
    """The op-amp bank of Sec. 5.1 (cached per ``(n_samples, seed)``)."""
    key = ("opamp", n_samples, seed)
    if key not in _CACHE:
        _CACHE[key] = generate_opamp_dataset(n_samples=n_samples, seed=seed)
    return _CACHE[key]


def adc_dataset(n_samples: int = PAPER_ADC_SAMPLES, seed: int = 2015) -> PairedDataset:
    """The flash-ADC bank of Sec. 5.2 (cached per ``(n_samples, seed)``)."""
    key = ("adc", n_samples, seed)
    if key not in _CACHE:
        _CACHE[key] = generate_adc_dataset(n_samples=n_samples, seed=seed)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached banks (frees memory in long sessions)."""
    _CACHE.clear()
