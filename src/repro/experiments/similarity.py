"""Stage-similarity diagnostics: is a dataset a good BMF candidate?

BMF pays off exactly when the early and late distributions are similar
after the Sec. 4.1 shift and scale.  This module turns that premise into
numbers a user can check *before* spending late-stage samples:

* per-metric mean mismatch in early-sigma units (drives ``kappa0``),
* per-metric std ratio and the covariance Frobenius gap (drive ``v0``),
* Gaussian distribution distances between the stage fits,
* a coarse recommendation string.

The same report was used to calibrate this repository's circuit simulators
against the paper's hyper-parameter regimes (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.circuits.montecarlo import PairedDataset
from repro.core.preprocessing import ShiftScaleTransform
from repro.linalg.norms import frobenius_norm, vector_2norm
from repro.stats.distances import hellinger_gaussian, wasserstein2_gaussian

__all__ = ["StageSimilarity", "stage_similarity"]


@dataclass(frozen=True)
class StageSimilarity:
    """Quantified early/late similarity in the isotropic space."""

    #: Per-metric late-minus-early mean offset, in early-sigma units.
    mean_mismatch: np.ndarray
    #: Norm of :attr:`mean_mismatch` — the prior-mean error floor.
    mean_mismatch_norm: float
    #: Per-metric late/early std ratio (1.0 = perfectly matched spread).
    std_ratio: np.ndarray
    #: Frobenius gap between the stage covariances — prior-cov error floor.
    cov_gap: float
    #: Largest absolute correlation-entry change between stages.
    corr_gap: float
    #: Hellinger distance between the Gaussian stage fits (0..1).
    hellinger: float
    #: 2-Wasserstein distance between the Gaussian stage fits.
    wasserstein2: float
    metric_names: Tuple[str, ...]

    # ------------------------------------------------------------------
    def expected_kappa0_regime(self, n_late: int) -> str:
        """Coarse prediction of the CV's kappa0 regime at ``n_late``.

        The prior mean wins while its error floor is below the sample-mean
        error ``~ sqrt(d / n)``; compare the two.
        """
        d = self.mean_mismatch.shape[0]
        sampling_error = float(np.sqrt(d / max(n_late, 1)))
        if self.mean_mismatch_norm < 0.5 * sampling_error:
            return "large"
        if self.mean_mismatch_norm < 1.5 * sampling_error:
            return "moderate"
        return "small"

    def expected_v0_regime(self, n_late: int) -> str:
        """Coarse prediction of the CV's v0 regime at ``n_late``.

        The MLE covariance error scales like ``~ d / sqrt(n)`` in Frobenius
        norm for unit-variance metrics; the prior wins while its gap is
        below that.
        """
        d = self.std_ratio.shape[0]
        sampling_error = float(d / np.sqrt(max(n_late, 1)))
        if self.cov_gap < 0.5 * sampling_error:
            return "large"
        if self.cov_gap < 1.5 * sampling_error:
            return "moderate"
        return "small"

    def recommendation(self, n_late: int = 16) -> str:
        """One-line verdict on whether BMF is worth running."""
        k_regime = self.expected_kappa0_regime(n_late)
        v_regime = self.expected_v0_regime(n_late)
        if k_regime == "small" and v_regime == "small":
            return (
                "stages dissimilar in both moments: BMF will mostly fall "
                "back to MLE; expect little gain"
            )
        parts = []
        if v_regime != "small":
            parts.append("covariance prior useful")
        if k_regime != "small":
            parts.append("mean prior useful")
        return "BMF recommended: " + " and ".join(parts)


def stage_similarity(dataset: PairedDataset) -> StageSimilarity:
    """Compute the similarity report for a paired dataset."""
    transform = ShiftScaleTransform.fit(
        dataset.early, dataset.early_nominal, dataset.late_nominal
    )
    early = transform.transform(dataset.early, "early")
    late = transform.transform(dataset.late, "late")

    mu_e, mu_l = early.mean(axis=0), late.mean(axis=0)
    # A tiny eigenvalue floor keeps the Gaussian distances defined when
    # two metrics are nearly collinear (e.g. both linear in one bias
    # current) and the sample covariance is numerically singular.
    from repro.linalg.validation import clip_eigenvalues

    cov_e = clip_eigenvalues(np.cov(early.T, bias=True), 1e-10)
    cov_l = clip_eigenvalues(np.cov(late.T, bias=True), 1e-10)
    std_e = np.sqrt(np.diag(cov_e))
    std_l = np.sqrt(np.diag(cov_l))
    corr_e = cov_e / np.outer(std_e, std_e)
    corr_l = cov_l / np.outer(std_l, std_l)

    mismatch = mu_l - mu_e
    return StageSimilarity(
        mean_mismatch=mismatch,
        mean_mismatch_norm=vector_2norm(mismatch),
        std_ratio=std_l / std_e,
        cov_gap=frobenius_norm(cov_l - cov_e),
        corr_gap=float(np.max(np.abs(corr_l - corr_e))),
        hellinger=hellinger_gaussian(mu_e, cov_e, mu_l, cov_l),
        wasserstein2=wasserstein2_gaussian(mu_e, cov_e, mu_l, cov_l),
        metric_names=dataset.metric_names,
    )
