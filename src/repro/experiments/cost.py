"""Cost-reduction analysis: the paper's headline "16x" numbers.

The paper quantifies BMF's advantage as *cost reduction*: how many more
late-stage samples MLE needs to reach the accuracy BMF achieves with few.
"BMF achieves more than 16x cost reduction over MLE in covariance matrix
estimation" means MLE needed >16x the samples for the same Eq. (38) error.

:func:`cost_reduction` computes that ratio from a sweep result by
log-interpolating the MLE error curve at each BMF accuracy level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.sweep import SweepResult

__all__ = ["CostReduction", "cost_reduction", "samples_to_reach"]


@dataclass(frozen=True)
class CostReduction:
    """Cost-reduction ratios per BMF operating point.

    ``ratios[n]`` is (samples MLE needs to match BMF at ``n``) / ``n``.
    ``math.inf`` means MLE never reaches that accuracy within the sweep.
    """

    metric: str
    ratios: Dict[int, float]

    @property
    def best(self) -> float:
        """Largest finite ratio (the paper's "up to N x" headline)."""
        finite = [r for r in self.ratios.values() if math.isfinite(r)]
        if not finite:
            return math.inf if self.ratios else 0.0
        return max(finite)


def samples_to_reach(
    curve: Dict[int, float], target_error: float
) -> Optional[float]:
    """Samples needed for an error curve to drop to ``target_error``.

    Log-log interpolation between sweep points; ``None`` when the target
    is never reached within the sweep range.  Monotone decrease is not
    assumed — the first crossing is reported.
    """
    ns = sorted(curve)
    errs = [curve[n] for n in ns]
    if errs[0] <= target_error:
        return float(ns[0])
    for i in range(1, len(ns)):
        if errs[i] <= target_error:
            n_lo, n_hi = ns[i - 1], ns[i]
            e_lo, e_hi = errs[i - 1], errs[i]
            if e_lo == e_hi:
                return float(n_hi)
            frac = (math.log(e_lo) - math.log(target_error)) / (
                math.log(e_lo) - math.log(e_hi)
            )
            return math.exp(
                math.log(n_lo) + frac * (math.log(n_hi) - math.log(n_lo))
            )
    return None


def cost_reduction(
    result: SweepResult,
    metric: str = "covariance",
    bmf_name: str = "bmf",
    baseline_name: str = "mle",
) -> CostReduction:
    """Cost-reduction ratios of ``bmf_name`` over ``baseline_name``.

    Parameters
    ----------
    result:
        A finished sweep containing both methods.
    metric:
        ``"covariance"`` (Eq. 38, the 16x headline) or ``"mean"``
        (Eq. 37, the ~3x headline).
    """
    if metric not in ("mean", "covariance"):
        raise ValueError(f"metric must be 'mean' or 'covariance', got {metric!r}")
    get_curve = (
        result.mean_error_curve if metric == "mean" else result.cov_error_curve
    )
    bmf_curve = get_curve(bmf_name)
    mle_curve = get_curve(baseline_name)

    ratios: Dict[int, float] = {}
    for n, err in sorted(bmf_curve.items()):
        needed = samples_to_reach(mle_curve, err)
        ratios[n] = math.inf if needed is None else needed / n
    return CostReduction(metric=metric, ratios=ratios)
