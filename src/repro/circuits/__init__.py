"""Circuit-simulation substrate: MNA solver, op-amp and flash-ADC workloads."""

from repro.circuits.adc import ADC_METRIC_NAMES, ADCMetrics, FlashADC, FlashADCDesign
from repro.circuits.components import (
    GROUND,
    Capacitor,
    Component,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VoltageSource,
)
from repro.circuits.dies import die_draw_bank
from repro.circuits.linearity import (
    LinearityResult,
    inl_dnl_from_dac_levels,
    inl_dnl_from_histogram,
    inl_dnl_from_levels,
)
from repro.circuits.corners import (
    STANDARD_CORNERS,
    CornerSpec,
    generate_corner_datasets,
)
from repro.circuits.devices import Mosfet, MosfetGeometry, MosfetProcess, SmallSignal
from repro.circuits.mna import (
    ACAnalysis,
    ACSolution,
    BatchedACSolution,
    MNAStamps,
    StampPlan,
)
from repro.circuits.montecarlo import (
    PairedDataset,
    dataset_cache_path,
    generate_adc_dataset,
    generate_opamp_dataset,
)
from repro.circuits.netlist import Netlist
from repro.circuits.ota import (
    OTA_METRIC_NAMES,
    FoldedCascodeDesign,
    FoldedCascodeOTA,
    OTAMetrics,
    generate_ota_dataset,
)
from repro.circuits.opamp import (
    OPAMP_METRIC_NAMES,
    OpAmpDesign,
    OpAmpMetrics,
    TwoStageOpAmp,
)
from repro.circuits.r2r_dac import (
    R2R_DAC_METRIC_NAMES,
    R2RDACDesign,
    R2RDACMetrics,
    R2RLadderDAC,
)
from repro.circuits.registry import (
    CircuitEntry,
    circuit_names,
    generate_dataset,
    get_circuit,
)
from repro.circuits.sar_adc import (
    SAR_ADC_METRIC_NAMES,
    SarADC,
    SarADCDesign,
    SarADCMetrics,
)
from repro.circuits.svf import (
    SVF_METRIC_NAMES,
    GmCFilterDesign,
    GmCStateVariableFilter,
    SVFMetrics,
)
from repro.circuits.variants import (
    CircuitVariant,
    corner_spec,
    scale_divergence,
    scaled_process_model,
)
from repro.circuits.sensitivity import (
    SensitivityResult,
    metric_sensitivities,
    variance_budget,
)
from repro.circuits.spice_io import (
    format_value,
    parse_netlist,
    parse_value,
    write_netlist,
)
from repro.circuits.process import GlobalVariation, ProcessSample, ProcessVariationModel
from repro.circuits.noise import BOLTZMANN, NoiseAnalysis, NoiseResult
from repro.circuits.transient import (
    TransientAnalysis,
    TransientResult,
    sine,
    step,
)
from repro.circuits.testbench import (
    SpectralAnalyzer,
    SpectralMetrics,
    SpectralMetricsBatch,
    coherent_frequency,
    sine_record,
)

__all__ = [
    "ACAnalysis",
    "BOLTZMANN",
    "ACSolution",
    "ADCMetrics",
    "BatchedACSolution",
    "ADC_METRIC_NAMES",
    "Capacitor",
    "CircuitEntry",
    "CircuitVariant",
    "CornerSpec",
    "Component",
    "CurrentSource",
    "FlashADC",
    "FlashADCDesign",
    "FoldedCascodeDesign",
    "FoldedCascodeOTA",
    "GmCFilterDesign",
    "GmCStateVariableFilter",
    "GROUND",
    "GlobalVariation",
    "Inductor",
    "LinearityResult",
    "MNAStamps",
    "Mosfet",
    "MosfetGeometry",
    "MosfetProcess",
    "Netlist",
    "NoiseAnalysis",
    "NoiseResult",
    "OPAMP_METRIC_NAMES",
    "OTAMetrics",
    "OTA_METRIC_NAMES",
    "OpAmpDesign",
    "OpAmpMetrics",
    "PairedDataset",
    "ProcessSample",
    "ProcessVariationModel",
    "R2RDACDesign",
    "R2RDACMetrics",
    "R2RLadderDAC",
    "R2R_DAC_METRIC_NAMES",
    "Resistor",
    "STANDARD_CORNERS",
    "SAR_ADC_METRIC_NAMES",
    "SVFMetrics",
    "SVF_METRIC_NAMES",
    "SarADC",
    "SarADCDesign",
    "SarADCMetrics",
    "SensitivityResult",
    "SmallSignal",
    "SpectralAnalyzer",
    "SpectralMetrics",
    "SpectralMetricsBatch",
    "StampPlan",
    "TransientAnalysis",
    "TransientResult",
    "TwoStageOpAmp",
    "VCCS",
    "VoltageSource",
    "circuit_names",
    "coherent_frequency",
    "corner_spec",
    "dataset_cache_path",
    "die_draw_bank",
    "format_value",
    "generate_adc_dataset",
    "generate_corner_datasets",
    "generate_dataset",
    "generate_ota_dataset",
    "generate_opamp_dataset",
    "get_circuit",
    "inl_dnl_from_dac_levels",
    "inl_dnl_from_histogram",
    "inl_dnl_from_levels",
    "metric_sensitivities",
    "scale_divergence",
    "scaled_process_model",
    "parse_netlist",
    "parse_value",
    "sine",
    "sine_record",
    "step",
    "variance_budget",
    "write_netlist",
]
