"""Behavioural MOSFET device model (square-law, strong inversion).

The paper's circuits are simulated at transistor level in SPICE with
"device-level variations of all transistors" (Sec. 5.1).  Our substitute
maps each transistor's varied process parameters to the small-signal
quantities the MNA macromodels consume:

* transconductance      ``gm  = sqrt(2 * kp * (W/L) * Id)``
* output conductance    ``gds = lambda_ * Id``
* overdrive voltage     ``Vov = sqrt(2 * Id / (kp * W/L))``
* gate capacitance      ``cgg ~= (2/3) * W * L * cox + W * cov``

Threshold-voltage shifts and mobility (``kp``) fluctuations are the two
variation channels, consistent with the classical Pelgrom mismatch model
where ``sigma(dVth) ~ Avt / sqrt(W L)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import SimulationError

__all__ = ["MosfetGeometry", "MosfetProcess", "SmallSignal", "Mosfet"]


@dataclass(frozen=True)
class MosfetGeometry:
    """Drawn geometry of one transistor (metres)."""

    width: float
    length: float

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.length <= 0.0:
            raise SimulationError(
                f"transistor geometry must be positive, got W={self.width}, L={self.length}"
            )

    @property
    def ratio(self) -> float:
        """Aspect ratio ``W / L``."""
        return self.width / self.length

    @property
    def area(self) -> float:
        """Gate area ``W * L`` (drives Pelgrom mismatch)."""
        return self.width * self.length


@dataclass(frozen=True)
class MosfetProcess:
    """Nominal process parameters of one device type.

    Attributes
    ----------
    vth:
        Threshold voltage magnitude (V).
    kp:
        Process transconductance ``mu * Cox`` (A/V^2).
    lambda_:
        Channel-length modulation (1/V).
    cox:
        Gate-oxide capacitance per area (F/m^2).
    cov:
        Overlap capacitance per width (F/m).
    avt:
        Pelgrom threshold-mismatch coefficient (V*m).
    akp:
        Pelgrom relative-``kp``-mismatch coefficient (m).
    """

    vth: float
    kp: float
    lambda_: float
    cox: float = 9e-3
    cov: float = 3e-10
    avt: float = 3.5e-9
    akp: float = 1.0e-8

    def __post_init__(self) -> None:
        if self.kp <= 0.0:
            raise SimulationError(f"kp must be > 0, got {self.kp}")
        if self.lambda_ < 0.0:
            raise SimulationError(f"lambda must be >= 0, got {self.lambda_}")


@dataclass(frozen=True)
class SmallSignal:
    """Small-signal operating point of one biased transistor."""

    gm: float
    gds: float
    vov: float
    cgg: float
    id_: float

    @property
    def intrinsic_gain(self) -> float:
        """``gm / gds``; infinite for an ideal (lambda=0) device."""
        if self.gds == 0.0:
            return math.inf
        return self.gm / self.gds


class Mosfet:
    """A biased MOSFET combining geometry, process and variations.

    Parameters
    ----------
    name:
        Instance name (``"M1"``...), used in error messages.
    geometry, process:
        Drawn geometry and nominal process parameters.
    dvth:
        Additive threshold shift (V) sampled by the process model.
    dkp_rel:
        Relative ``kp`` deviation (e.g. ``0.03`` for +3 %).
    """

    def __init__(
        self,
        name: str,
        geometry: MosfetGeometry,
        process: MosfetProcess,
        dvth: float = 0.0,
        dkp_rel: float = 0.0,
    ) -> None:
        self.name = name
        self.geometry = geometry
        self.process = process
        self.dvth = float(dvth)
        self.dkp_rel = float(dkp_rel)
        if self.kp_effective <= 0.0:
            raise SimulationError(
                f"{name}: kp variation {dkp_rel} drives kp non-positive"
            )

    # ------------------------------------------------------------------
    @property
    def vth_effective(self) -> float:
        """Threshold including the sampled variation."""
        return self.process.vth + self.dvth

    @property
    def kp_effective(self) -> float:
        """``kp`` including the sampled relative variation."""
        return self.process.kp * (1.0 + self.dkp_rel)

    @property
    def beta(self) -> float:
        """Current factor ``kp_eff * W / L``."""
        return self.kp_effective * self.geometry.ratio

    def with_variation(self, dvth: float, dkp_rel: float) -> "Mosfet":
        """A copy of this device with different sampled variations."""
        return Mosfet(self.name, self.geometry, self.process, dvth, dkp_rel)

    # ------------------------------------------------------------------
    def small_signal(self, bias_current: float) -> SmallSignal:
        """Small-signal parameters at drain current ``bias_current`` (A).

        The bias current is assumed to be enforced by the surrounding bias
        network (current mirrors), which is how the two-stage op-amp is
        biased; the device parameters then determine ``gm`` and ``gds``.
        """
        if bias_current <= 0.0:
            raise SimulationError(
                f"{self.name}: bias current must be > 0, got {bias_current}"
            )
        beta = self.beta
        gm = math.sqrt(2.0 * beta * bias_current)
        vov = math.sqrt(2.0 * bias_current / beta)
        gds = self.process.lambda_ * bias_current
        geom = self.geometry
        cgg = (2.0 / 3.0) * geom.area * self.process.cox + geom.width * self.process.cov
        return SmallSignal(gm=gm, gds=gds, vov=vov, cgg=cgg, id_=bias_current)

    def saturation_current(self, vgs: float) -> float:
        """Square-law drain current at gate-source voltage ``vgs`` (V).

        Returns 0 below threshold (no subthreshold model — the op-amp and
        ADC operate their devices in strong inversion).
        """
        vov = vgs - self.vth_effective
        if vov <= 0.0:
            return 0.0
        return 0.5 * self.beta * vov * vov

    # ------------------------------------------------------------------
    def mismatch_sigma(self) -> tuple:
        """Pelgrom standard deviations ``(sigma_dvth, sigma_dkp_rel)``.

        ``sigma(dVth) = Avt / sqrt(W L)`` and
        ``sigma(dkp/kp) = Akp / sqrt(W L)``.
        """
        root_area = math.sqrt(self.geometry.area)
        return (self.process.avt / root_area, self.process.akp / root_area)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Mosfet({self.name!r}, W/L={self.geometry.ratio:.1f}, "
            f"dvth={self.dvth:+.3e})"
        )
