"""AC noise analysis: output noise PSD and integrated RMS noise.

Thermal noise is the third classical small-signal analysis (after AC and
transient).  Every resistor contributes a white current-noise source of
PSD ``4 k T / R`` (A^2/Hz) across its terminals; the output noise PSD is
the sum of each source's contribution through its own transfer impedance:

    S_out(f) = sum_R  (4 k T / R) * | Z_{out,R}(f) |^2,

where ``Z_{out,R}`` is the transfer impedance from a current injected
across resistor R to the output voltage.  Each contribution is obtained by
re-solving the MNA system with a unit current source across that resistor
— the straightforward (non-adjoint) method, perfectly adequate for
macromodel-sized netlists.

Validation anchor: an RC low-pass integrates to the textbook ``kT/C``
total output noise regardless of R — the test suite checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from repro.circuits.components import CurrentSource, Resistor, VoltageSource
from repro.circuits.mna import ACAnalysis
from repro.circuits.netlist import Netlist
from repro.exceptions import SimulationError

__all__ = ["BOLTZMANN", "NoiseResult", "NoiseAnalysis"]

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23


@dataclass(frozen=True)
class NoiseResult:
    """Output noise spectrum with per-resistor contributions."""

    freqs: np.ndarray
    #: Total output noise PSD (V^2/Hz) at each frequency.
    psd: np.ndarray
    #: Per-resistor PSD contributions, same length arrays.
    contributions: Dict[str, np.ndarray]

    def rms(self) -> float:
        """Total RMS output noise, integrating the PSD over the grid.

        Trapezoidal integration over the supplied (typically log-spaced)
        frequency grid; the grid must bracket the circuit's bandwidth for
        the number to be meaningful.
        """
        return float(np.sqrt(np.trapezoid(self.psd, self.freqs)))

    def dominant_contributor(self) -> str:
        """The resistor contributing the most integrated noise power."""
        powers = {
            name: float(np.trapezoid(contrib, self.freqs))
            for name, contrib in self.contributions.items()
        }
        return max(powers, key=powers.get)


class NoiseAnalysis:
    """Thermal-noise analysis of a linear netlist.

    Parameters
    ----------
    netlist:
        The circuit.  Independent sources are zeroed for noise analysis
        (voltage sources become shorts via their branch equations with
        zero amplitude; current sources become opens), exactly as SPICE
        does.
    temperature:
        Device temperature in kelvin (default 300 K).
    """

    def __init__(self, netlist: Netlist, temperature: float = 300.0) -> None:
        if temperature <= 0.0:
            raise SimulationError(f"temperature must be > 0 K, got {temperature}")
        self.temperature = float(temperature)
        self._netlist = self._zero_sources(netlist)
        self._resistors = [
            comp for comp in self._netlist.components if isinstance(comp, Resistor)
        ]
        if not self._resistors:
            raise SimulationError("netlist has no resistors: no thermal noise")

    # ------------------------------------------------------------------
    @staticmethod
    def _zero_sources(netlist: Netlist) -> Netlist:
        """Copy the netlist with all independent sources set to zero."""
        out = Netlist(title=netlist.title)
        for comp in netlist.components:
            if isinstance(comp, VoltageSource):
                out.voltage_source(comp.name, comp.pos, comp.neg, 0.0)
            elif isinstance(comp, CurrentSource):
                # A zero current source stamps nothing; keep topology by
                # omitting it (it is an open circuit).
                continue
            else:
                out.add(comp)
        return out

    # ------------------------------------------------------------------
    def output_noise(self, out_node: Hashable, freqs) -> NoiseResult:
        """Output noise PSD at ``out_node`` over the frequency grid."""
        f = np.atleast_1d(np.asarray(freqs, dtype=float))
        if f.size < 2:
            raise SimulationError("noise analysis needs at least 2 frequencies")
        contributions: Dict[str, np.ndarray] = {}
        total = np.zeros(f.size)
        kt4 = 4.0 * BOLTZMANN * self.temperature
        for resistor in self._resistors:
            z = self._transfer_impedance(resistor, out_node, f)
            contrib = (kt4 / resistor.value) * np.abs(z) ** 2
            contributions[resistor.name] = contrib
            total += contrib
        return NoiseResult(freqs=f, psd=total, contributions=contributions)

    def _transfer_impedance(
        self, resistor: Resistor, out_node: Hashable, freqs: np.ndarray
    ) -> np.ndarray:
        """``V(out) / I`` for a unit current injected across ``resistor``."""
        probe = Netlist(title=self._netlist.title)
        for comp in self._netlist.components:
            probe.add(comp)
        probe.current_source(
            f"_inoise_{resistor.name}", resistor.pos, resistor.neg, 1.0
        )
        solution = ACAnalysis(probe).solve(freqs)
        return solution.voltage(out_node)

    # ------------------------------------------------------------------
    def input_referred_noise(
        self,
        out_node: Hashable,
        in_source: str,
        freqs,
        original: Optional[Netlist] = None,
    ) -> np.ndarray:
        """Input-referred noise PSD: output PSD divided by ``|H(f)|^2``.

        ``in_source`` names the voltage source in the *original* netlist
        (the one with non-zero excitation) that defines the signal path;
        ``original`` defaults to the netlist passed at construction before
        source zeroing — callers that constructed the analysis from a
        netlist with a unit AC source can omit it.
        """
        base = original if original is not None else self._original_with_unit(in_source)
        f = np.atleast_1d(np.asarray(freqs, dtype=float))
        solution = ACAnalysis(base).solve(f)
        source = base[in_source]
        h = solution.transfer(out_node, source.pos)
        gain_sq = np.abs(h) ** 2
        if np.any(gain_sq <= 0.0):
            raise SimulationError("zero forward gain: cannot refer noise to input")
        return self.output_noise(out_node, f).psd / gain_sq

    def _original_with_unit(self, in_source: str) -> Netlist:
        out = Netlist(title=self._netlist.title)
        found = False
        for comp in self._netlist.components:
            if isinstance(comp, VoltageSource) and comp.name == in_source:
                out.voltage_source(comp.name, comp.pos, comp.neg, 1.0)
                found = True
            else:
                out.add(comp)
        if not found:
            raise SimulationError(f"no voltage source named {in_source!r}")
        return out
