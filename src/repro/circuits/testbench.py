"""Dynamic ADC test bench: coherent sine test plus FFT spectral metrics.

The paper's flash-ADC experiment (Sec. 5.2) measures SNR, SINAD, SFDR and
THD — the standard dynamic metrics of IEEE Std 1241.  This module provides
the measurement half of that experiment:

* :func:`coherent_frequency` picks an input frequency so an integer, odd
  number of cycles fits in the record (no spectral leakage, so a plain
  rectangular window is exact);
* :class:`SpectralAnalyzer` turns a captured output record into the four
  metrics from its single-sided power spectrum, folding aliased harmonics
  back into the first Nyquist zone exactly the way a bench analyzer does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "coherent_frequency",
    "SpectralMetrics",
    "SpectralMetricsBatch",
    "SpectralAnalyzer",
    "sine_record",
]


def coherent_frequency(n_samples: int, n_cycles: int, sample_rate: float) -> float:
    """Input frequency for coherent sampling.

    ``n_cycles`` must be odd and co-prime with ``n_samples`` so every
    sample lands on a distinct phase of the sine — the textbook recipe for
    exercising all ADC codes without windowing.
    """
    if n_samples < 8:
        raise SimulationError(f"record too short: {n_samples}")
    if n_cycles < 1 or n_cycles >= n_samples // 2:
        raise SimulationError(
            f"n_cycles must lie in [1, n_samples/2), got {n_cycles}"
        )
    if math.gcd(n_samples, n_cycles) != 1:
        raise SimulationError(
            f"n_cycles={n_cycles} shares a factor with n_samples={n_samples}"
        )
    return n_cycles * sample_rate / n_samples


def sine_record(
    n_samples: int,
    n_cycles: int,
    amplitude: float,
    offset: float = 0.0,
    phase: float = 0.0,
) -> np.ndarray:
    """A coherently sampled sine record (unitless time base)."""
    t = np.arange(n_samples)
    return offset + amplitude * np.sin(2.0 * np.pi * n_cycles * t / n_samples + phase)


@dataclass(frozen=True)
class SpectralMetricsBatch:
    """Dynamic metrics for a bank of records; each field is ``(n_records,)``."""

    snr: np.ndarray
    sinad: np.ndarray
    sfdr: np.ndarray
    thd: np.ndarray
    enob: np.ndarray


@dataclass(frozen=True)
class SpectralMetrics:
    """Dynamic ADC metrics, all in dB (dBc for distortion quantities)."""

    snr: float
    sinad: float
    sfdr: float
    thd: float
    enob: float

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """``(snr, sinad, sfdr, thd)`` — the paper's four dynamic metrics."""
        return (self.snr, self.sinad, self.sfdr, self.thd)


class SpectralAnalyzer:
    """FFT-based dynamic metric extraction for coherent records.

    Parameters
    ----------
    n_harmonics:
        Number of harmonics (2nd..) treated as distortion for THD; IEEE
        1241 commonly uses the first five.
    """

    def __init__(self, n_harmonics: int = 5) -> None:
        if n_harmonics < 1:
            raise SimulationError(f"n_harmonics must be >= 1, got {n_harmonics}")
        self.n_harmonics = int(n_harmonics)

    # ------------------------------------------------------------------
    @staticmethod
    def _fold_bin(k: int, n: int) -> int:
        """Alias a harmonic bin back into the first Nyquist zone."""
        k = k % n
        half = n // 2
        if k > half:
            k = n - k
        return k

    def _harmonic_bins(self, n: int, signal_bin: int):
        """Folded first-zone bins of harmonics 2..(1+n_harmonics)."""
        n_bins = n // 2 + 1
        harmonic_bins = []
        for h in range(2, 2 + self.n_harmonics):
            hb = self._fold_bin(h * signal_bin, n)
            if 0 < hb < n_bins and hb != signal_bin:
                harmonic_bins.append(hb)
        return sorted(set(harmonic_bins))

    def analyze(self, record, signal_bin: int) -> SpectralMetrics:
        """Compute the metrics of a coherently captured record.

        Parameters
        ----------
        record:
            Length-``n`` output record (codes or volts — metrics are
            ratios, so units cancel).
        signal_bin:
            The coherent input's bin index (= ``n_cycles``).
        """
        x = np.asarray(record, dtype=float).ravel()
        n = x.size
        if n < 16:
            raise SimulationError(f"record too short for analysis: {n}")
        if not 0 < signal_bin < n // 2:
            raise SimulationError(
                f"signal bin {signal_bin} outside (0, {n // 2})"
            )
        spectrum = np.fft.rfft(x)
        power = np.abs(spectrum) ** 2
        power[0] = 0.0  # discard DC

        p_signal = float(power[signal_bin])
        if p_signal <= 0.0:
            raise SimulationError("no signal power at the coherent bin")

        harmonic_bins = self._harmonic_bins(n, signal_bin)
        p_harm = float(np.sum(power[harmonic_bins])) if harmonic_bins else 0.0

        p_total = float(np.sum(power))
        p_noise = p_total - p_signal - p_harm
        p_noise = max(p_noise, 1e-30 * p_signal)
        p_nad = p_total - p_signal
        p_nad = max(p_nad, 1e-30 * p_signal)

        spur_power = power.copy()
        spur_power[signal_bin] = 0.0
        p_spur = float(np.max(spur_power))
        p_spur = max(p_spur, 1e-30 * p_signal)

        snr = 10.0 * math.log10(p_signal / p_noise)
        sinad = 10.0 * math.log10(p_signal / p_nad)
        sfdr = 10.0 * math.log10(p_signal / p_spur)
        thd = (
            10.0 * math.log10(p_harm / p_signal)
            if p_harm > 0.0
            else -300.0
        )
        enob = (sinad - 1.76) / 6.02
        return SpectralMetrics(snr=snr, sinad=sinad, sfdr=sfdr, thd=thd, enob=enob)

    def analyze_batch(self, records, signal_bin: int) -> SpectralMetricsBatch:
        """Vectorized :meth:`analyze` over a ``(n_records, n)`` record bank.

        One batched real FFT replaces the per-record transform; the power
        bookkeeping mirrors the scalar path expression-for-expression so the
        two agree to floating-point round-off.
        """
        x = np.asarray(records, dtype=float)
        if x.ndim != 2:
            raise SimulationError(
                f"analyze_batch expects a (n_records, n) bank, got shape {x.shape}"
            )
        if x.shape[0] == 0:
            raise SimulationError("analyze_batch requires at least one record")
        n = x.shape[1]
        if n < 16:
            raise SimulationError(f"record too short for analysis: {n}")
        if not 0 < signal_bin < n // 2:
            raise SimulationError(
                f"signal bin {signal_bin} outside (0, {n // 2})"
            )
        spectrum = np.fft.rfft(x, axis=1)
        power = np.abs(spectrum) ** 2
        power[:, 0] = 0.0  # discard DC

        p_signal = power[:, signal_bin].copy()
        if np.any(p_signal <= 0.0):
            raise SimulationError("no signal power at the coherent bin")

        harmonic_bins = self._harmonic_bins(n, signal_bin)
        if harmonic_bins:
            p_harm = np.sum(power[:, harmonic_bins], axis=1)
        else:
            p_harm = np.zeros(x.shape[0])

        p_total = np.sum(power, axis=1)
        floor = 1e-30 * p_signal
        p_noise = np.maximum(p_total - p_signal - p_harm, floor)
        p_nad = np.maximum(p_total - p_signal, floor)

        power[:, signal_bin] = 0.0  # p_total already captured; reuse as spur power
        p_spur = np.maximum(np.max(power, axis=1), floor)

        snr = 10.0 * np.log10(p_signal / p_noise)
        sinad = 10.0 * np.log10(p_signal / p_nad)
        sfdr = 10.0 * np.log10(p_signal / p_spur)
        thd = np.full(x.shape[0], -300.0)
        has_harm = p_harm > 0.0
        if np.any(has_harm):
            thd[has_harm] = 10.0 * np.log10(p_harm[has_harm] / p_signal[has_harm])
        enob = (sinad - 1.76) / 6.02
        return SpectralMetricsBatch(snr=snr, sinad=sinad, sfdr=sfdr, thd=thd, enob=enob)
