"""Circuit variants: corner / mismatch / divergence knobs over any circuit.

The scenario compiler (:mod:`repro.scenarios`) fans one declarative config
out into many concrete workloads.  Three of its axes are *circuit-agnostic*
— which process corner the population is centred on, how strong the random
mismatch is, and how far the post-layout (late) stage diverges from the
schematic (early) stage.  :class:`CircuitVariant` is the typed carrier of
those three knobs; how each circuit realises them differs by simulator
seam and lives next to the dataset builders in
:mod:`repro.circuits.registry`:

* **corner** — named deterministic global process shift.  Process-sample
  circuits (op-amp, gm-C filter) re-centre their draws with
  :meth:`repro.circuits.corners.CornerSpec.apply`; die-seed circuits
  (flash ADC, R-2R DAC, SAR ADC) shift their design nominals (bias
  currents, sheet resistance, noise) deterministically.
* **mismatch** — multiplies every random variation sigma; ``1.0`` is the
  process as characterised, larger values emulate a noisier corner.
* **divergence** — scales the fixed early/late deviation set (parasitics
  or layout effects), interpolating between "layout changes nothing"
  (``0.0``) and "worse than extracted" (``> 1.0``).

The default variant is the identity: :func:`CircuitVariant.as_config`
returns an empty mapping for it, and the dataset cache key deliberately
omits the variant in that case so every pre-variant cache entry keeps its
exact path (see :func:`repro.circuits.montecarlo._dataset_cache_key`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Sequence, TypeVar, Union

from repro.circuits.corners import STANDARD_CORNERS, CornerSpec
from repro.circuits.process import ProcessVariationModel
from repro.exceptions import ConfigError

__all__ = [
    "CircuitVariant",
    "corner_spec",
    "scale_divergence",
    "scaled_process_model",
]

T = TypeVar("T")

_CORNER_NAMES = tuple(c.name for c in STANDARD_CORNERS)


def corner_spec(name: str) -> CornerSpec:
    """Look up a standard corner by name (``TT``/``SS``/``FF``/``SF``/``FS``)."""
    for corner in STANDARD_CORNERS:
        if corner.name == name:
            return corner
    raise ConfigError(
        f"unknown corner {name!r}; expected one of {', '.join(_CORNER_NAMES)}"
    )


@dataclass(frozen=True)
class CircuitVariant:
    """One (corner, mismatch, divergence) point of the variant space.

    Attributes
    ----------
    corner:
        Named process corner the population is centred on (``"TT"`` is
        the characterised centre).
    mismatch_scale:
        Multiplier on every random variation sigma (global and local).
    divergence_scale:
        Multiplier on the early/late deviation set: ``0.0`` collapses the
        late stage onto the early stage, ``1.0`` is the circuit's stock
        post-layout model.
    """

    corner: str = "TT"
    mismatch_scale: float = 1.0
    divergence_scale: float = 1.0

    def __post_init__(self) -> None:
        corner_spec(self.corner)  # validates the name
        if self.mismatch_scale < 0.0:
            raise ConfigError(
                f"mismatch_scale must be >= 0, got {self.mismatch_scale}"
            )
        if self.divergence_scale < 0.0:
            raise ConfigError(
                f"divergence_scale must be >= 0, got {self.divergence_scale}"
            )

    @property
    def is_default(self) -> bool:
        """True when this variant is the identity (TT, both scales 1)."""
        return self == CircuitVariant()

    def as_config(self) -> Dict[str, Union[str, float]]:
        """JSON-safe config mapping; empty for the default variant.

        Only non-default fields appear, so the mapping (and anything
        hashed over it) is stable when later fields are added with
        identity defaults.
        """
        default = CircuitVariant()
        out: Dict[str, Union[str, float]] = {}
        if self.corner != default.corner:
            out["corner"] = self.corner
        if self.mismatch_scale != default.mismatch_scale:
            out["mismatch_scale"] = float(self.mismatch_scale)
        if self.divergence_scale != default.divergence_scale:
            out["divergence_scale"] = float(self.divergence_scale)
        return out

    @property
    def spec(self) -> CornerSpec:
        """The :class:`CornerSpec` this variant centres on."""
        return corner_spec(self.corner)


def scale_divergence(effects: T, scale: float, pivot_one: Sequence[str] = ()) -> T:
    """Scale a parasitics/layout-effects dataclass toward or past schematic.

    Every float field is multiplied by ``scale``; fields named in
    ``pivot_one`` are *inflation factors* whose neutral value is ``1.0``,
    so their deviation from 1 is scaled instead (``1 + (x - 1) * scale``).
    ``scale=1`` returns an equal instance; ``scale=0`` returns the
    all-neutral (schematic) set.
    """
    changes = {}
    for field in dataclasses.fields(effects):  # type: ignore[arg-type]
        value = getattr(effects, field.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if field.name in pivot_one:
            changes[field.name] = 1.0 + (float(value) - 1.0) * scale
        else:
            changes[field.name] = float(value) * scale
    return dataclasses.replace(effects, **changes)  # type: ignore[type-var]


def scaled_process_model(
    model: ProcessVariationModel, mismatch_scale: float
) -> ProcessVariationModel:
    """A process model with every variation sigma scaled by ``mismatch_scale``."""
    return ProcessVariationModel(
        sigma_vth_global=model.sigma_vth_global * mismatch_scale,
        sigma_kp_rel_global=model.sigma_kp_rel_global * mismatch_scale,
        polarity_correlation=model.polarity_correlation,
        sigma_temp=model.sigma_temp * mismatch_scale,
        local_scale=model.local_scale * mismatch_scale,
    )
