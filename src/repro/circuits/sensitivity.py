"""Metric-to-process sensitivity analysis and variance budgeting.

Designers do not just want the covariance of their metrics — they want to
know *which device causes it*.  This module answers that with central
finite differences on any simulator following the package convention
(``simulate(ProcessSample) -> metrics``, ``devices``, ``process_model()``):

* :func:`metric_sensitivities` — the Jacobian ``d(metric) / d(parameter)``
  for every device's local ``(dvth, dkp_rel)``;
* :func:`variance_budget` — the first-order variance decomposition
  ``Var[m] ~ sum_i (dm/dp_i * sigma_i)^2`` with each device's share, plus
  the Monte-Carlo variance alongside so the linearisation quality is
  visible rather than assumed.

Works with :class:`~repro.circuits.opamp.TwoStageOpAmp` and
:class:`~repro.circuits.ota.FoldedCascodeOTA` out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.process import ProcessSample
from repro.exceptions import SimulationError

__all__ = ["SensitivityResult", "metric_sensitivities", "variance_budget"]

#: The two local parameters perturbed per device.
_PARAMS: Tuple[str, ...] = ("dvth", "dkp_rel")


@dataclass(frozen=True)
class SensitivityResult:
    """Jacobian of metrics with respect to per-device local parameters.

    ``jacobian[(device, param)]`` is the length-``n_metrics`` derivative
    vector; ``metric_names`` labels its entries.
    """

    jacobian: Dict[Tuple[str, str], np.ndarray]
    metric_names: Tuple[str, ...]

    def of(self, device: str, param: str) -> np.ndarray:
        """Derivative vector for one ``(device, param)`` pair."""
        try:
            return self.jacobian[(device, param)]
        except KeyError as exc:
            raise SimulationError(
                f"no sensitivity recorded for ({device!r}, {param!r})"
            ) from exc

    def ranked_for_metric(self, metric_index: int) -> List[Tuple[str, str, float]]:
        """Parameters sorted by absolute sensitivity to one metric."""
        entries = [
            (dev, param, float(vec[metric_index]))
            for (dev, param), vec in self.jacobian.items()
        ]
        return sorted(entries, key=lambda e: abs(e[2]), reverse=True)


def _nominal_sample(simulator) -> ProcessSample:
    model = simulator.process_model()
    return model.nominal_sample(simulator.devices)


def _perturbed(sample: ProcessSample, device: str, param: str, delta: float) -> ProcessSample:
    local = dict(sample.local)
    dvth, dkp = local.get(device, (0.0, 0.0))
    if param == "dvth":
        local[device] = (dvth + delta, dkp)
    else:
        local[device] = (dvth, dkp + delta)
    return ProcessSample(global_variation=sample.global_variation, local=local)


def metric_sensitivities(
    simulator,
    step_vth: float = 1e-3,
    step_kp: float = 1e-3,
) -> SensitivityResult:
    """Central-difference Jacobian at the nominal operating point.

    ``step_vth`` is in volts, ``step_kp`` in relative ``kp`` units; both
    default to values far above float noise yet well inside the linear
    regime of the square-law models.
    """
    if step_vth <= 0.0 or step_kp <= 0.0:
        raise SimulationError("finite-difference steps must be positive")
    nominal = _nominal_sample(simulator)
    jacobian: Dict[Tuple[str, str], np.ndarray] = {}
    metric_names: Optional[Tuple[str, ...]] = None
    for device in simulator.devices:
        for param, step in (("dvth", step_vth), ("dkp_rel", step_kp)):
            plus = simulator.simulate(
                _perturbed(nominal, device.name, param, +step)
            ).as_array()
            minus = simulator.simulate(
                _perturbed(nominal, device.name, param, -step)
            ).as_array()
            jacobian[(device.name, param)] = (plus - minus) / (2.0 * step)
            if metric_names is None:
                metric_names = _metric_names_of(simulator)
    return SensitivityResult(jacobian=jacobian, metric_names=metric_names)


def _metric_names_of(simulator) -> Tuple[str, ...]:
    from repro.circuits.opamp import OPAMP_METRIC_NAMES, TwoStageOpAmp

    if isinstance(simulator, TwoStageOpAmp):
        return OPAMP_METRIC_NAMES
    try:
        from repro.circuits.ota import OTA_METRIC_NAMES, FoldedCascodeOTA

        if isinstance(simulator, FoldedCascodeOTA):
            return OTA_METRIC_NAMES
    except ImportError:  # pragma: no cover
        pass
    return tuple(f"m{j}" for j in range(5))


def variance_budget(
    simulator,
    metric_index: int,
    n_mc: int = 300,
    seed: int = 0,
) -> Dict[str, object]:
    """First-order variance decomposition of one metric.

    Combines the local-mismatch Jacobian with each device's Pelgrom sigmas
    (local variation only — global variation shifts all devices together
    and partially cancels, so it is reported as the residual).  Returns:

    * ``linear_variance`` — ``sum (dm/dp * sigma_p)^2`` over local params;
    * ``shares`` — each device's fraction of ``linear_variance``;
    * ``mc_variance`` — the Monte-Carlo variance with local variation only,
      so ``linear_variance / mc_variance`` measures the linearisation
      quality directly.
    """
    sens = metric_sensitivities(simulator)
    model = simulator.process_model()

    contributions: Dict[str, float] = {}
    for device in simulator.devices:
        s_vth, s_kp = device.mismatch_sigma()
        c = (
            float(sens.of(device.name, "dvth")[metric_index]) * s_vth
        ) ** 2 + (
            float(sens.of(device.name, "dkp_rel")[metric_index]) * s_kp
        ) ** 2
        contributions[device.name] = c
    linear_variance = sum(contributions.values())
    shares = {
        name: (c / linear_variance if linear_variance > 0.0 else 0.0)
        for name, c in contributions.items()
    }

    # Local-only Monte Carlo for the linearisation check.
    from repro.circuits.process import ProcessVariationModel

    local_model = ProcessVariationModel(
        sigma_vth_global=0.0,
        sigma_kp_rel_global=0.0,
        polarity_correlation=model.polarity_correlation,
        local_scale=model.local_scale,
    )
    rng = np.random.default_rng(seed)
    samples = local_model.sample(simulator.devices, n_mc, rng)
    values = np.array(
        [simulator.simulate(s).as_array()[metric_index] for s in samples]
    )
    return {
        "metric": sens.metric_names[metric_index],
        "linear_variance": linear_variance,
        "shares": shares,
        "mc_variance": float(values.var(ddof=0)),
    }
