"""Behavioural flash ADC (the paper's second test circuit).

Sec. 5.2 uses a flash analog-to-digital converter in a 0.18 um CMOS process
and measures five correlated metrics — **SNR, SINAD, SFDR, THD and power**
— at schematic level and post-layout.  This module rebuilds the experiment:

* a ``b``-bit flash converter = resistor reference ladder + ``2^b - 1``
  comparators + thermometer decode;
* every Monte-Carlo die draws per-comparator input offsets (Pelgrom-style),
  ladder resistor mismatch and comparator bias-current variation from a
  shared :class:`np.random.Generator` stream keyed by the die, so the
  schematic and post-layout variants of the *same die* are physically
  correlated;
* the dynamic metrics come from an actual coherent sine conversion followed
  by FFT analysis (:mod:`repro.circuits.testbench`) — INL-induced harmonic
  distortion, offset-induced code noise and their correlations emerge from
  the conversion, not from formulas;
* the post-layout variant adds: comparator offset inflation (routing
  asymmetry), a linear reference-ladder gradient (IR drop in the ladder
  rails), a mild input-settling compression nonlinearity (incomplete
  settling through the post-layout input network), and clock/buffer power
  overhead.  These shift all five metrics while leaving the *correlation
  structure* close to schematic level — which is why the paper finds both
  early-stage mean and covariance useful for the ADC (large optimal
  ``kappa_0`` *and* ``v_0``).
"""

from __future__ import annotations

import hashlib
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.circuits.testbench import SpectralAnalyzer, sine_record
from repro.exceptions import SimulationError

__all__ = ["FlashADCDesign", "ADCMetrics", "FlashADC", "ADC_METRIC_NAMES"]

#: Metric ordering used by every returned array.
ADC_METRIC_NAMES: Tuple[str, ...] = ("snr", "sinad", "sfdr", "thd", "power")


# ---------------------------------------------------------------------------
# per-die standard-normal draw bank
# ---------------------------------------------------------------------------
# The per-die RNG gather loop dominates the vectorized ADC engine (each die
# spins up a fresh PCG64 just to replay the scalar draw order).  The draws
# are *stage-independent* standard normals — stage scaling happens later —
# so the same bank serves the schematic and post-layout simulators of a
# paired dataset, and every repeat of the same seed bank (the common case:
# early/late pairs, benchmark repeats, cache regeneration) skips the loop
# entirely.  Keyed by a content hash of the seeds plus the draw geometry;
# LRU-bounded so sweeps over many banks cannot grow without limit.
_DRAW_BANK_CACHE: "OrderedDict[Tuple[str, int, int], np.ndarray]" = OrderedDict()
_DRAW_BANK_CACHE_MAX_ROWS = 4096
_DRAW_BANK_LOCK = threading.Lock()


def _die_draw_bank(seeds: np.ndarray, n_cmp: int, n_rec: int) -> np.ndarray:
    """Standard-normal draws of every die, one read-only ``(n_dies, stride)`` row each.

    Row layout is the scalar draw order — offsets ``[0, n_cmp)``, ladder
    ``[n_cmp, 2*n_cmp+1)``, bias ``[2*n_cmp+1, 3*n_cmp+1)``, record noise
    ``[3*n_cmp+1, stride)``.  Filling the whole row with a single
    ``standard_normal(out=...)`` call draws the identical value sequence
    as the four separate calls of the scalar path (the generator consumes
    the stream value by value), so the bank is bit-identical to the
    per-die draws it replaces.
    """
    stride = 3 * n_cmp + 1 + n_rec
    key = (hashlib.sha256(seeds.tobytes()).hexdigest(), n_cmp, n_rec)
    with _DRAW_BANK_LOCK:
        cached = _DRAW_BANK_CACHE.get(key)
        if cached is not None:
            _DRAW_BANK_CACHE.move_to_end(key)
            return cached
    bank = np.empty((seeds.size, stride))
    for i, seed in enumerate(seeds):
        die_rng = np.random.default_rng(np.random.SeedSequence(int(seed)))
        die_rng.standard_normal(out=bank[i])
    bank.flags.writeable = False
    with _DRAW_BANK_LOCK:
        _DRAW_BANK_CACHE[key] = bank
        total = sum(b.shape[0] for b in _DRAW_BANK_CACHE.values())
        while total > _DRAW_BANK_CACHE_MAX_ROWS and len(_DRAW_BANK_CACHE) > 1:
            _, evicted = _DRAW_BANK_CACHE.popitem(last=False)
            total -= evicted.shape[0]
    return bank


@dataclass(frozen=True)
class FlashADCDesign:
    """Architecture and nominal electrical parameters of the converter."""

    n_bits: int = 6
    vref: float = 1.8            # full-scale reference (0.18 um supply)
    sigma_offset: float = 4e-3   # comparator input offset std (V), schematic
    sigma_ladder_rel: float = 2e-3  # per-resistor relative mismatch std
    comparator_bias: float = 55e-6  # nominal per-comparator current (A)
    sigma_bias_rel: float = 0.07    # per-comparator bias current mismatch
    ladder_current: float = 350e-6  # reference ladder static current (A)
    noise_rms: float = 0.6e-3       # input-referred thermal noise (V rms)
    n_samples: int = 2048           # conversion record length
    n_cycles: int = 67              # coherent cycles (odd, co-prime)

    def __post_init__(self) -> None:
        if not 2 <= self.n_bits <= 12:
            raise SimulationError(f"n_bits must lie in [2, 12], got {self.n_bits}")
        if math.gcd(self.n_samples, self.n_cycles) != 1:
            raise SimulationError("n_cycles must be co-prime with n_samples")

    @property
    def n_comparators(self) -> int:
        """``2^b - 1`` comparators in the flash bank."""
        return (1 << self.n_bits) - 1

    @property
    def lsb(self) -> float:
        """Ideal code width in volts."""
        return self.vref / (1 << self.n_bits)


@dataclass(frozen=True)
class _LayoutEffects:
    """Post-layout deviations (all neutral at schematic level)."""

    offset_inflation: float = 1.0   # multiplies comparator offsets
    ladder_gradient: float = 0.0    # full-scale linear reference tilt (V)
    input_compression: float = 0.0  # 3rd-order settling compression coeff
    power_overhead_rel: float = 0.0
    extra_noise_rms: float = 0.0    # supply/substrate coupling noise (V)


@dataclass(frozen=True)
class ADCMetrics:
    """The five measured performances of one simulated die."""

    snr: float
    sinad: float
    sfdr: float
    thd: float
    power: float

    def as_array(self) -> np.ndarray:
        """Metrics in :data:`ADC_METRIC_NAMES` order."""
        return np.array([self.snr, self.sinad, self.sfdr, self.thd, self.power])


class FlashADC:
    """Simulator for one design stage of the flash converter.

    Build stage pairs with :meth:`schematic` / :meth:`post_layout` and feed
    both the *same die seeds* so early/late samples are correlated.
    """

    def __init__(
        self, design: FlashADCDesign, layout: Optional[_LayoutEffects] = None
    ) -> None:
        self.design = design
        self.layout = layout if layout is not None else _LayoutEffects()
        self._analyzer = SpectralAnalyzer(n_harmonics=5)
        # Reusable (vin, codes) planes for the vectorized engine — repeat
        # calls at the same chunk shape skip ~8 MB of page-faulted fresh
        # allocations per chunk.  Per-instance, so the forked ``n_jobs``
        # workers each own their scratch; not safe for concurrent threaded
        # calls on one instance (nothing else about the class is either).
        self._scratch: dict = {}

    # ------------------------------------------------------------------
    @classmethod
    def schematic(cls, design: Optional[FlashADCDesign] = None) -> "FlashADC":
        """Early-stage simulator: ideal layout."""
        return cls(design if design is not None else FlashADCDesign())

    @classmethod
    def post_layout(cls, design: Optional[FlashADCDesign] = None) -> "FlashADC":
        """Late-stage simulator with extracted layout effects."""
        return cls(
            design if design is not None else FlashADCDesign(),
            _LayoutEffects(
                offset_inflation=1.01,
                ladder_gradient=0.12e-3,
                input_compression=0.0,
                power_overhead_rel=0.12,
                extra_noise_rms=0.02e-3,
            ),
        )

    # ------------------------------------------------------------------
    def _die_variations(
        self, die_rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one die's raw variations (stage-independent).

        Returns ``(offsets_z, ladder_z, bias_z)`` as *standard-normal*
        draws; the stage-specific scaling happens in :meth:`simulate` so
        the same die produces correlated early/late metrics.
        """
        n_cmp = self.design.n_comparators
        return (
            die_rng.standard_normal(n_cmp),
            die_rng.standard_normal(n_cmp + 1),
            die_rng.standard_normal(n_cmp),
        )

    def _thresholds(
        self, offsets_z: np.ndarray, ladder_z: np.ndarray
    ) -> np.ndarray:
        """Actual comparator trip points including every mismatch source."""
        design = self.design
        layout = self.layout
        n_cmp = design.n_comparators
        # Reference ladder: n_cmp + 1 nominally equal resistors; tap k sits
        # at the cumulative fraction of total resistance.
        resistors = 1.0 + design.sigma_ladder_rel * ladder_z
        resistors = np.maximum(resistors, 0.1)
        cumulative = np.cumsum(resistors)[:-1]
        taps = design.vref * cumulative / float(np.sum(resistors))
        # Post-layout IR-drop gradient tilts the ladder linearly.
        if layout.ladder_gradient != 0.0:
            frac = np.arange(1, n_cmp + 1) / (n_cmp + 1)
            taps = taps + layout.ladder_gradient * (frac - 0.5)
        offsets = design.sigma_offset * layout.offset_inflation * offsets_z
        return taps + offsets

    def _thresholds_batch(
        self, offsets_z: np.ndarray, ladder_z: np.ndarray
    ) -> np.ndarray:
        """Row-wise :meth:`_thresholds` for ``(n_dies, ...)`` draw banks.

        Mirrors the scalar expressions with ``axis=1`` reductions so each
        row is bit-identical to a scalar call on the same draws.
        """
        design = self.design
        layout = self.layout
        n_cmp = design.n_comparators
        resistors = 1.0 + design.sigma_ladder_rel * ladder_z
        resistors = np.maximum(resistors, 0.1)
        cumulative = np.cumsum(resistors, axis=1)[:, :-1]
        taps = design.vref * cumulative / np.sum(resistors, axis=1, keepdims=True)
        if layout.ladder_gradient != 0.0:
            frac = np.arange(1, n_cmp + 1) / (n_cmp + 1)
            taps = taps + layout.ladder_gradient * (frac - 0.5)
        offsets = design.sigma_offset * layout.offset_inflation * offsets_z
        return taps + offsets

    def _input_record(self) -> np.ndarray:
        """Deterministic input drive: near-full-scale coherent sine.

        Shared by the scalar and vectorized engines (per-die noise is added
        by the caller), including the post-layout settling compression.
        """
        design = self.design
        layout = self.layout
        amplitude = 0.49 * design.vref
        mid = 0.5 * design.vref
        vin = sine_record(design.n_samples, design.n_cycles, amplitude, offset=mid)
        if layout.input_compression != 0.0:
            # Incomplete settling through the post-layout input RC network
            # compresses large swings: v' = v - a * v_ac^3 (odd-order term
            # generating 3rd-harmonic distortion).
            ac = vin - mid
            vin = vin - layout.input_compression * (ac / amplitude) ** 3 * ac
        return vin

    # ------------------------------------------------------------------
    def simulate(self, die_seed: int) -> ADCMetrics:
        """Convert a coherent sine on die ``die_seed`` and measure metrics.

        The seed identifies the *die*: calling the schematic and
        post-layout simulators with the same seed replays the same process
        draws through both stages.
        """
        design = self.design
        layout = self.layout
        die_rng = np.random.default_rng(np.random.SeedSequence(die_seed))
        offsets_z, ladder_z, bias_z = self._die_variations(die_rng)
        thresholds = np.sort(self._thresholds(offsets_z, ladder_z))

        vin = self._input_record()
        noise_rms = math.hypot(design.noise_rms, layout.extra_noise_rms)
        vin = vin + noise_rms * die_rng.standard_normal(design.n_samples)

        # Thermometer conversion: the output code counts trip points below
        # the input — exactly what the comparator bank plus encoder does.
        codes = np.searchsorted(thresholds, vin, side="left").astype(float)

        spectral = self._analyzer.analyze(codes, design.n_cycles)

        bias = design.comparator_bias * (1.0 + design.sigma_bias_rel * bias_z)
        bias = np.maximum(bias, 0.0)
        supply = design.vref
        nominal_core = design.n_comparators * design.comparator_bias + design.ladder_current
        # Clock tree / output buffers burn a fixed (variation-free) power
        # adder post-layout, so the overhead shifts the mean without
        # re-scaling the variation.
        power = supply * (
            float(np.sum(bias))
            + design.ladder_current
            + layout.power_overhead_rel * nominal_core
        )
        return ADCMetrics(
            snr=spectral.snr,
            sinad=spectral.sinad,
            sfdr=spectral.sfdr,
            thd=spectral.thd,
            power=power,
        )

    def simulate_nominal(self) -> ADCMetrics:
        """Variation-free conversion (``P_NOM`` for the Sec. 4.1 shift).

        Uses zeroed mismatch and noise but keeps the deterministic layout
        effects, mirroring a nominal post-layout SPICE run.
        """
        design = self.design
        n_cmp = design.n_comparators
        thresholds = np.sort(
            self._thresholds(np.zeros(n_cmp), np.zeros(n_cmp + 1))
        )
        vin = self._input_record()
        codes = np.searchsorted(thresholds, vin, side="left").astype(float)
        spectral = self._analyzer.analyze(codes, design.n_cycles)
        nominal_core = n_cmp * design.comparator_bias + design.ladder_current
        power = design.vref * nominal_core * (1.0 + self.layout.power_overhead_rel)
        return ADCMetrics(
            snr=spectral.snr,
            sinad=spectral.sinad,
            sfdr=spectral.sfdr,
            thd=spectral.thd,
            power=power,
        )

    def measure_linearity(self, die_seed: int):
        """Static INL/DNL of one die's transfer curve (end-point fit).

        Complements the dynamic metrics of :meth:`simulate`; the lab
        equivalent is a ramp or histogram test.  Returns a
        :class:`repro.circuits.linearity.LinearityResult`.
        """
        from repro.circuits.linearity import inl_dnl_from_levels

        die_rng = np.random.default_rng(np.random.SeedSequence(die_seed))
        offsets_z, ladder_z, _bias_z = self._die_variations(die_rng)
        thresholds = np.sort(self._thresholds(offsets_z, ladder_z))
        return inl_dnl_from_levels(thresholds)

    #: Dies per vectorized sweep; sized so the working set (record bank,
    #: spectrum, power planes) stays cache-resident.
    _PIPELINE_CHUNK = 256

    def simulate_batch(
        self,
        die_seeds,
        engine: str = "vectorized",
        memory_budget_mb: float = 512.0,
        n_jobs: Optional[int] = None,
    ) -> np.ndarray:
        """Metrics matrix ``(len(die_seeds), 5)`` in metric-name order.

        ``engine="vectorized"`` (default) converts the whole bank through
        batched threshold construction and one row-wise FFT per chunk;
        ``engine="loop"`` is the per-die reference path.  ``n_jobs`` shards
        the bank across forked workers; results are bit-identical to the
        single-process engine for any ``memory_budget_mb``/``n_jobs``.
        """
        seeds = np.atleast_1d(np.asarray(die_seeds, dtype=np.int64))
        if seeds.size == 0:
            raise SimulationError("simulate_batch requires at least one die seed")
        if engine == "loop":
            return np.array([self.simulate(int(s)).as_array() for s in seeds])
        if engine != "vectorized":
            raise SimulationError(
                f"unknown simulate_batch engine {engine!r} (use 'vectorized' or 'loop')"
            )
        from repro.experiments.parallel import (
            fork_available,
            replicate,
            resolve_n_jobs,
        )

        jobs = min(resolve_n_jobs(n_jobs), seeds.size)
        if jobs > 1 and fork_available():
            shards = [s for s in np.array_split(seeds, jobs) if s.size]
            parts = replicate(
                lambda shard: self._simulate_chunked(shard, memory_budget_mb),
                shards,
                n_jobs=jobs,
            )
            return np.vstack(parts)
        return self._simulate_chunked(seeds, memory_budget_mb)

    def _simulate_chunked(
        self, seeds: np.ndarray, memory_budget_mb: float
    ) -> np.ndarray:
        """Run the vectorized engine in memory-bounded, cache-friendly chunks."""
        if memory_budget_mb <= 0.0:
            raise SimulationError(
                f"memory_budget_mb must be positive, got {memory_budget_mb}"
            )
        # Per-die working set: record + noise + codes (float) and the rfft
        # spectrum (complex), with headroom for the power bookkeeping.
        per_die = self.design.n_samples * 8 * 12
        budget_rows = int(memory_budget_mb * 2**20 // per_die)
        chunk = max(1, min(self._PIPELINE_CHUNK, budget_rows))
        if seeds.size <= chunk:
            return self._simulate_batch_vectorized(seeds)
        return np.vstack(
            [
                self._simulate_batch_vectorized(seeds[start : start + chunk])
                for start in range(0, seeds.size, chunk)
            ]
        )

    def _simulate_batch_vectorized(self, seeds: np.ndarray) -> np.ndarray:
        """Convert every die in ``seeds`` through stacked array sweeps."""
        design = self.design
        layout = self.layout
        n_dies = seeds.size
        n_cmp = design.n_comparators
        n_rec = design.n_samples

        # Per-die draws come from the shared bank (scalar draw order,
        # bit-identical; see :func:`_die_draw_bank`), so the paired
        # simulator of the same dies reuses them instead of re-running the
        # per-die RNG gather loop — the engine's former bottleneck.
        bank = _die_draw_bank(seeds, n_cmp, n_rec)
        offsets_z = bank[:, :n_cmp]
        ladder_z = bank[:, n_cmp : 2 * n_cmp + 1]
        bias_z = bank[:, 2 * n_cmp + 1 : 3 * n_cmp + 1]
        noise_z = bank[:, 3 * n_cmp + 1 :]

        thresholds = np.sort(self._thresholds_batch(offsets_z, ladder_z), axis=1)

        base = self._input_record()
        noise_rms = math.hypot(design.noise_rms, layout.extra_noise_rms)
        shape = (n_dies, n_rec)
        if shape not in self._scratch:
            self._scratch = {shape: (np.empty(shape), np.empty(shape))}
        vin, codes = self._scratch[shape]
        # `noise_z` aliases the cached (read-only) bank: scale into the
        # scratch plane, then add the shared record in place on the copy.
        np.multiply(noise_z, noise_rms, out=vin)
        vin += base

        for i in range(n_dies):
            codes[i] = thresholds[i].searchsorted(vin[i], side="left")

        spectral = self._analyzer.analyze_batch(codes, design.n_cycles)

        bias = design.comparator_bias * (1.0 + design.sigma_bias_rel * bias_z)
        bias = np.maximum(bias, 0.0)
        supply = design.vref
        nominal_core = n_cmp * design.comparator_bias + design.ladder_current
        power = supply * (
            np.sum(bias, axis=1)
            + design.ladder_current
            + layout.power_overhead_rel * nominal_core
        )
        return np.column_stack(
            [spectral.snr, spectral.sinad, spectral.sfdr, spectral.thd, power]
        )
