"""Small-signal circuit components for the MNA solver.

The paper's experiments run schematic-level and post-layout SPICE on a
two-stage op-amp and a flash ADC.  Our substitute substrate is a linear
small-signal AC simulator: each component contributes stamps to the
complex admittance system ``(G + j*omega*C) v = i`` assembled by
:mod:`repro.circuits.mna`.  Supported elements cover everything the
behavioural op-amp macromodel needs:

* :class:`Resistor` — conductance stamp into ``G``.
* :class:`Capacitor` — susceptance stamp into ``C``.
* :class:`Inductor` — modelled with an auxiliary branch current (full MNA).
* :class:`VCCS` — voltage-controlled current source (a transistor's ``gm``).
* :class:`CurrentSource` — independent AC excitation.
* :class:`VoltageSource` — independent AC excitation via an auxiliary row.

Nodes are arbitrary hashable labels; ``GROUND`` (``"0"``) is the reference.
"""

from __future__ import annotations

import abc
from typing import Hashable, Tuple

from repro.exceptions import NetlistError

__all__ = [
    "GROUND",
    "Component",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VCCS",
    "CurrentSource",
    "VoltageSource",
]

#: Reference node label shared by every netlist.
GROUND: Hashable = "0"


class Component(abc.ABC):
    """Base class for all circuit elements.

    Subclasses expose the node labels they touch via :meth:`nodes` and
    (for elements needing an extra MNA unknown) declare
    ``needs_branch_current``.
    """

    #: True for elements that add an auxiliary branch-current unknown.
    needs_branch_current: bool = False

    def __init__(self, name: str) -> None:
        if not name:
            raise NetlistError("component name must be non-empty")
        self.name = str(name)

    @abc.abstractmethod
    def nodes(self) -> Tuple[Hashable, ...]:
        """All node labels this component connects to."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class TwoTerminal(Component):
    """A component with a positive and a negative terminal."""

    def __init__(self, name: str, pos: Hashable, neg: Hashable, value: float) -> None:
        super().__init__(name)
        if pos == neg:
            raise NetlistError(f"{name}: both terminals on node {pos!r}")
        self.pos = pos
        self.neg = neg
        self.value = float(value)

    def nodes(self) -> Tuple[Hashable, ...]:
        return (self.pos, self.neg)


class Resistor(TwoTerminal):
    """Linear resistor; ``value`` in ohms, must be positive."""

    def __init__(self, name: str, pos: Hashable, neg: Hashable, resistance: float) -> None:
        if resistance <= 0.0:
            raise NetlistError(f"{name}: resistance must be > 0, got {resistance}")
        super().__init__(name, pos, neg, resistance)

    @property
    def conductance(self) -> float:
        """``1 / R`` stamped into the real admittance matrix."""
        return 1.0 / self.value


class Capacitor(TwoTerminal):
    """Linear capacitor; ``value`` in farads, must be non-negative.

    A zero-valued capacitor is legal (parasitic placeholders that a
    process corner may or may not populate) and stamps nothing.
    """

    def __init__(self, name: str, pos: Hashable, neg: Hashable, capacitance: float) -> None:
        if capacitance < 0.0:
            raise NetlistError(f"{name}: capacitance must be >= 0, got {capacitance}")
        # Bypass the pos==neg check relaxation: capacitors still need two nodes.
        super().__init__(name, pos, neg, capacitance)


class Inductor(TwoTerminal):
    """Linear inductor; handled with an auxiliary branch current.

    The branch equation is ``v_pos - v_neg - j*omega*L*i_L = 0``.
    """

    needs_branch_current = True

    def __init__(self, name: str, pos: Hashable, neg: Hashable, inductance: float) -> None:
        if inductance <= 0.0:
            raise NetlistError(f"{name}: inductance must be > 0, got {inductance}")
        super().__init__(name, pos, neg, inductance)


class VCCS(Component):
    """Voltage-controlled current source ``i = gm * (v_cp - v_cn)``.

    Current flows from ``pos`` through the source to ``neg`` (i.e. a
    positive ``gm`` and positive control voltage pushes current *into*
    node ``neg``), matching the SPICE ``G`` element convention.  This is
    the MOSFET transconductance in a small-signal macromodel.
    """

    def __init__(
        self,
        name: str,
        pos: Hashable,
        neg: Hashable,
        ctrl_pos: Hashable,
        ctrl_neg: Hashable,
        gm: float,
    ) -> None:
        super().__init__(name)
        if pos == neg:
            raise NetlistError(f"{name}: output terminals coincide on {pos!r}")
        self.pos = pos
        self.neg = neg
        self.ctrl_pos = ctrl_pos
        self.ctrl_neg = ctrl_neg
        self.gm = float(gm)

    def nodes(self) -> Tuple[Hashable, ...]:
        return (self.pos, self.neg, self.ctrl_pos, self.ctrl_neg)


class CurrentSource(Component):
    """Independent AC current source; ``amplitude`` flows from pos to neg."""

    def __init__(self, name: str, pos: Hashable, neg: Hashable, amplitude: complex = 1.0) -> None:
        super().__init__(name)
        if pos == neg:
            raise NetlistError(f"{name}: both terminals on node {pos!r}")
        self.pos = pos
        self.neg = neg
        self.amplitude = complex(amplitude)

    def nodes(self) -> Tuple[Hashable, ...]:
        return (self.pos, self.neg)


class VoltageSource(Component):
    """Independent AC voltage source with an auxiliary branch current.

    Enforces ``v_pos - v_neg = amplitude``; the branch current becomes an
    extra MNA unknown.
    """

    needs_branch_current = True

    def __init__(self, name: str, pos: Hashable, neg: Hashable, amplitude: complex = 1.0) -> None:
        super().__init__(name)
        if pos == neg:
            raise NetlistError(f"{name}: both terminals on node {pos!r}")
        self.pos = pos
        self.neg = neg
        self.amplitude = complex(amplitude)

    def nodes(self) -> Tuple[Hashable, ...]:
        return (self.pos, self.neg)
