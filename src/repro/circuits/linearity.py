"""Static ADC linearity analysis: INL/DNL from transfer levels or histograms.

Dynamic metrics (SNR/SINAD/SFDR/THD) are what the paper fuses, but every
ADC validation lab also reports the static linearity of the transfer curve.
This module completes the ADC substrate with the two standard procedures:

* :func:`inl_dnl_from_levels` — direct computation from the measured
  comparator trip points (what our simulator knows exactly);
* :func:`inl_dnl_from_histogram` — the IEEE 1241 sine-wave code-density
  (histogram) test, which estimates the same quantities from conversion
  records only — the method a bench uses on real silicon.

Both use the end-point-fit convention: DNL_k is the deviation of code-bin
``k``'s width from 1 LSB; INL_k is the cumulative deviation of transition
level ``k`` from the end-point-fit line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "LinearityResult",
    "inl_dnl_from_levels",
    "inl_dnl_from_dac_levels",
    "inl_dnl_from_histogram",
]


@dataclass(frozen=True)
class LinearityResult:
    """Static linearity of one converter transfer curve.

    ``dnl``/``inl`` are in LSB.  ``dnl[k]`` refers to the bin between
    transition ``k`` and ``k+1``; ``inl[k]`` to transition ``k``.
    """

    dnl: np.ndarray
    inl: np.ndarray

    @property
    def dnl_max(self) -> float:
        """Worst-case |DNL| (LSB)."""
        return float(np.max(np.abs(self.dnl)))

    @property
    def inl_max(self) -> float:
        """Worst-case |INL| (LSB)."""
        return float(np.max(np.abs(self.inl)))

    @property
    def monotonic(self) -> bool:
        """True when no code bin has collapsed (DNL > -1 everywhere)."""
        return bool(np.all(self.dnl > -1.0 + 1e-12))


def inl_dnl_from_levels(levels) -> LinearityResult:
    """INL/DNL from measured transition levels (end-point fit).

    Parameters
    ----------
    levels:
        Sorted 1-D array of the converter's ``2^b - 1`` transition voltages.
    """
    lv = np.asarray(levels, dtype=float).ravel()
    if lv.size < 3:
        raise SimulationError(f"need at least 3 transition levels, got {lv.size}")
    if np.any(np.diff(lv) <= 0.0):
        # A non-monotonic raw ladder is physically possible (large offsets)
        # but the standard procedure measures the *sorted* transitions.
        lv = np.sort(lv)
    n_trans = lv.size
    # End-point fit: the ideal line passes through the first and last
    # transitions, so INL[0] = INL[-1] = 0 by construction.
    lsb = (lv[-1] - lv[0]) / (n_trans - 1)
    if lsb <= 0.0:
        raise SimulationError("degenerate transfer curve: zero full-scale range")
    ideal = lv[0] + lsb * np.arange(n_trans)
    inl = (lv - ideal) / lsb
    dnl = np.diff(lv) / lsb - 1.0
    return LinearityResult(dnl=dnl, inl=inl)


def inl_dnl_from_dac_levels(levels) -> LinearityResult:
    """INL/DNL of a DAC transfer curve (end-point fit, *no sorting*).

    Parameters
    ----------
    levels:
        1-D array of the converter's output level per input code, in code
        order (``2^b`` entries for a ``b``-bit DAC).

    Unlike :func:`inl_dnl_from_levels` — which measures the sorted
    transition set of an ADC ladder — a DAC's transfer curve is indexed by
    the digital input code, so the level order *is* the measurement:
    sorting would erase exactly the non-monotonicity a DAC linearity test
    exists to catch.  A decreasing step shows up as ``DNL < -1`` and the
    :attr:`LinearityResult.monotonic` flag reports it.
    """
    lv = np.asarray(levels, dtype=float).ravel()
    if lv.size < 3:
        raise SimulationError(f"need at least 3 DAC levels, got {lv.size}")
    n_levels = lv.size
    lsb = (lv[-1] - lv[0]) / (n_levels - 1)
    if lsb <= 0.0:
        raise SimulationError("degenerate transfer curve: non-positive full scale")
    ideal = lv[0] + lsb * np.arange(n_levels)
    inl = (lv - ideal) / lsb
    dnl = np.diff(lv) / lsb - 1.0
    return LinearityResult(dnl=dnl, inl=inl)


def inl_dnl_from_histogram(
    codes,
    n_codes: int,
    sine_amplitude_rel: float = 0.98,
    min_hits_per_code: int = 8,
) -> LinearityResult:
    """IEEE 1241 sine-wave histogram (code-density) test.

    Parameters
    ----------
    codes:
        Conversion record (integer output codes) of a sine that overdrives
        the converter slightly, so every code is exercised.
    n_codes:
        Total number of output codes (``2^b``).
    sine_amplitude_rel:
        Unused by the classical estimator (the arcsine correction is
        derived from the record itself); kept for API compatibility with
        lab scripts that log it.
    min_hits_per_code:
        Minimum average hits per interior code; fewer raises, because the
        estimate would be statistically meaningless.

    Notes
    -----
    The code-density method inverts the arcsine distribution of a sampled
    sine: the estimated transition level for code ``k`` is
    ``T(k) = -A * cos(pi * CDF(k))`` where ``CDF`` is the cumulative hit
    fraction below code ``k``.  The end bins absorb the clipped tails and
    are excluded, as in the standard.
    """
    arr = np.asarray(codes).ravel().astype(int)
    if arr.size == 0:
        raise SimulationError("empty conversion record")
    if n_codes < 4:
        raise SimulationError(f"n_codes must be >= 4, got {n_codes}")
    if np.any(arr < 0) or np.any(arr >= n_codes):
        raise SimulationError("codes outside [0, n_codes)")
    interior = n_codes - 2
    if arr.size < min_hits_per_code * interior:
        raise SimulationError(
            f"record too short: {arr.size} samples for {interior} interior codes"
        )
    hist = np.bincount(arr, minlength=n_codes).astype(float)
    if hist[1:-1].min() == 0.0:
        raise SimulationError(
            "an interior code received no hits; increase the record length "
            "or the sine amplitude"
        )
    total = hist.sum()
    # Cumulative fraction strictly below each transition k (between code
    # k-1 and k), for k = 1 .. n_codes - 1.
    cumulative = np.cumsum(hist)[:-1] / total
    cumulative = np.clip(cumulative, 1e-12, 1.0 - 1e-12)
    transitions = -np.cos(np.pi * cumulative)
    return inl_dnl_from_levels(transitions)
