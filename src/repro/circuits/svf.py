"""Behavioural gm-C state-variable filter (scenario-library circuit block).

A classic two-integrator-loop (Tow-Thomas style) gm-C biquad built from
four transconductors and two capacitors:

* ``Gin`` injects the input into the band-pass node;
* ``Rq`` is a diode-connected gm cell (``1/gm_q``) that sets the loop
  damping, i.e. the quality factor;
* ``Gfb``/``Gint`` close the two-integrator loop between the band-pass
  node (``bp``) and the low-pass node (``lp``).

With ideal elements ``H_bp(s) = -gm1 s C2 / (s^2 C1 C2 + s C2 gm_q +
gm2 gm3)``, so the centre frequency is ``sqrt(gm2 gm3 / (C1 C2))`` and
``Q = sqrt(gm2 gm3 C1 / C2) / gm_q`` — but nothing here uses those
formulas: the response comes from a genuine MNA AC solve of the
macromodel (including the transconductors' finite output conductance),
and every ``gm`` is produced by square-law bias mirrors over mismatched
devices, so the metrics *emerge* from the solved network.

The bias chain deliberately crosses polarities — an NMOS reference
mirror pulls the master current through a PMOS diode whose gate line
feeds the PMOS tail sources of all four (PMOS-input) transconductors —
so both NMOS and PMOS process shifts move the filter, and process
corners (SF/FS included) act on it the way they act on real silicon.

Five correlated metrics per die, in :data:`SVF_METRIC_NAMES` order:
band-pass centre frequency (Hz), quality factor (from the measured
-3 dB band edges), peak band-pass gain (V/V), DC low-pass gain (V/V)
and power (W).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.devices import Mosfet, MosfetGeometry, MosfetProcess
from repro.circuits.mna import ACAnalysis, StampPlan
from repro.circuits.netlist import Netlist
from repro.circuits.process import ProcessSample, ProcessVariationModel
from repro.exceptions import SimulationError

__all__ = ["GmCFilterDesign", "SVFMetrics", "GmCStateVariableFilter", "SVF_METRIC_NAMES"]

#: Metric ordering used by every returned array.
SVF_METRIC_NAMES: Tuple[str, ...] = (
    "f_center",    # Hz
    "q_factor",    # dimensionless (f_center / measured -3 dB width)
    "peak_gain",   # linear V/V at the band-pass peak
    "dc_gain_lp",  # linear V/V of the low-pass output at DC
    "power",       # W
)


@dataclass(frozen=True)
class GmCFilterDesign:
    """Sizing and bias plan of the two-integrator-loop filter.

    Defaults give a ~40 MHz, Q ~= 3 band-pass in the same 45 nm-flavoured
    behavioural process as the op-amp.
    """

    vdd: float = 1.2
    i_in: float = 20e-6     # input transconductor tail current
    i_int1: float = 20e-6   # feedback integrator tail current
    i_int2: float = 20e-6   # forward integrator tail current
    i_q: float = 8e-6       # damping (1/gm_q) cell tail current
    i_bias: float = 5e-6    # master reference current
    c_bp: float = 2.0e-12
    c_lp: float = 2.0e-12

    nmos: MosfetProcess = field(
        default_factory=lambda: MosfetProcess(vth=0.45, kp=4.0e-4, lambda_=0.15)
    )
    pmos: MosfetProcess = field(
        default_factory=lambda: MosfetProcess(vth=0.45, kp=2.0e-4, lambda_=0.20)
    )

    def devices(self) -> List[Tuple[Mosfet, str]]:
        """All transistors with their polarity, nominal (unvaried) instances.

        ``MND``/``MNB`` form the NMOS reference mirror, ``MPD`` the PMOS
        bias diode, ``MT*`` the PMOS tail sources (widths ratioed to their
        tail currents) and ``MI*`` the PMOS input pairs of the four
        transconductors (one representative device per pair).
        """
        um = 1e-6
        geo = MosfetGeometry
        ratio = 1.0 / self.i_bias
        return [
            (Mosfet("MND", geo(0.5 * um, 0.5 * um), self.nmos), "n"),
            (Mosfet("MNB", geo(0.5 * um, 0.5 * um), self.nmos), "n"),
            (Mosfet("MPD", geo(1.0 * um, 0.5 * um), self.pmos), "p"),
            (Mosfet("MT1", geo(self.i_in * ratio * um, 0.5 * um), self.pmos), "p"),
            (Mosfet("MT2", geo(self.i_int1 * ratio * um, 0.5 * um), self.pmos), "p"),
            (Mosfet("MT3", geo(self.i_int2 * ratio * um, 0.5 * um), self.pmos), "p"),
            (Mosfet("MTQ", geo(self.i_q * ratio * um, 0.5 * um), self.pmos), "p"),
            (Mosfet("MI1", geo(16 * um, 0.25 * um), self.pmos), "p"),
            (Mosfet("MI2", geo(16 * um, 0.25 * um), self.pmos), "p"),
            (Mosfet("MI3", geo(16 * um, 0.25 * um), self.pmos), "p"),
            (Mosfet("MIQ", geo(4 * um, 0.25 * um), self.pmos), "p"),
        ]


@dataclass(frozen=True)
class SVFMetrics:
    """The five measured performances of one simulated die."""

    f_center: float
    q_factor: float
    peak_gain: float
    dc_gain_lp: float
    power: float

    def as_array(self) -> np.ndarray:
        """Metrics in :data:`SVF_METRIC_NAMES` order."""
        return np.array(
            [self.f_center, self.q_factor, self.peak_gain, self.dc_gain_lp, self.power]
        )


@dataclass(frozen=True)
class _SvfParasitics:
    """Post-layout deviations (all zero at schematic level)."""

    c_bp_par: float = 0.0      # routing capacitance at the band-pass node
    c_lp_par: float = 0.0      # routing capacitance at the low-pass node
    gm_derate_rel: float = 0.0  # source-degeneration / routing gm loss
    power_overhead_rel: float = 0.0  # guard rings / bias distribution
    bias_current_rel: float = 0.0    # IR-drop-induced bias re-tune
    extraction_derate: float = 0.0   # signoff-extraction parasitic shortfall


class GmCStateVariableFilter:
    """Simulator for one design stage (schematic or post-layout).

    Same seam as :class:`repro.circuits.opamp.TwoStageOpAmp`: build the
    early/late pair with :meth:`schematic` / :meth:`post_layout` and feed
    both the same :class:`ProcessSample` bank.
    """

    #: Log-spaced analysis grid; brackets the band-pass peak and both
    #: -3 dB edges across corners, mismatch inflation and divergence.
    _FREQ_GRID = np.logspace(4, 10, 481)

    #: Component names whose stamp values vary per process draw.
    _VARIABLE = ("Gin", "Rq", "Cbp", "Gfb", "Gint", "Clp", "Rop1", "Rop2")

    def __init__(
        self, design: GmCFilterDesign, parasitics: Optional[_SvfParasitics] = None
    ) -> None:
        self.design = design
        self.parasitics = parasitics if parasitics is not None else _SvfParasitics()
        self._devices = design.devices()
        self._plan: Optional[StampPlan] = None

    # ------------------------------------------------------------------
    @classmethod
    def schematic(cls, design: Optional[GmCFilterDesign] = None) -> "GmCStateVariableFilter":
        """Early-stage (pre-layout) simulator: no parasitics."""
        return cls(design if design is not None else GmCFilterDesign())

    @classmethod
    def post_layout(cls, design: Optional[GmCFilterDesign] = None) -> "GmCStateVariableFilter":
        """Late-stage simulator: extracted-parasitic equivalents included."""
        return cls(
            design if design is not None else GmCFilterDesign(),
            _SvfParasitics(
                c_bp_par=0.12e-12,
                c_lp_par=0.10e-12,
                gm_derate_rel=0.03,
                power_overhead_rel=0.08,
                bias_current_rel=0.015,
                extraction_derate=0.2,
            ),
        )

    # ------------------------------------------------------------------
    @property
    def devices(self) -> List[Mosfet]:
        """Nominal device instances (for process-model sampling)."""
        return [dev for dev, _pol in self._devices]

    def process_model(self) -> ProcessVariationModel:
        """The default variation model used in the paper reproduction."""
        return ProcessVariationModel(
            sigma_vth_global=0.012,
            sigma_kp_rel_global=0.045,
            polarity_correlation=0.6,
        )

    # ------------------------------------------------------------------
    def _varied_devices(self, sample: ProcessSample) -> Dict[str, Mosfet]:
        return {dev.name: sample.apply(dev, pol) for dev, pol in self._devices}

    def _bias_currents(self, devs: Dict[str, Mosfet]) -> Dict[str, float]:
        """Tail currents from the cross-polarity square-law bias chain.

        The master current ``i_bias`` flows through NMOS diode ``MND``;
        ``MNB`` mirrors it and pulls the result through PMOS diode
        ``MPD``, whose gate line biases the PMOS tails.  Every stage is
        exact square law, so NMOS *and* PMOS threshold/mobility shifts
        both propagate (nonlinearly) into the tail currents.
        """
        design = self.design
        mnd = devs["MND"]
        vov_nd = math.sqrt(2.0 * design.i_bias / mnd.beta)
        vgs_n = mnd.vth_effective + vov_nd
        mnb = devs["MNB"]
        vov_nb = vgs_n - mnb.vth_effective
        if vov_nb <= 0.0:
            raise SimulationError(
                f"MNB: bias mirror output device cut off (Vov={vov_nb:.3f})"
            )
        i_pull = 0.5 * mnb.beta * vov_nb * vov_nb

        mpd = devs["MPD"]
        vov_pd = math.sqrt(2.0 * i_pull / mpd.beta)
        vsg_p = mpd.vth_effective + vov_pd

        scale = 1.0 + self.parasitics.bias_current_rel
        out: Dict[str, float] = {"bias": i_pull}
        for tail, key in (("MT1", "i_in"), ("MT2", "i_int1"), ("MT3", "i_int2"), ("MTQ", "i_q")):
            dev = devs[tail]
            vov = vsg_p - dev.vth_effective
            if vov <= 0.0:
                raise SimulationError(
                    f"{dev.name}: tail current source cut off (Vov={vov:.3f})"
                )
            out[key] = 0.5 * dev.beta * vov * vov * scale
        return out

    # ------------------------------------------------------------------
    def _macromodel(self, devs: Dict[str, Mosfet], currents: Dict[str, float]) -> Netlist:
        """Small-signal macromodel netlist for the current process draw."""
        design = self.design
        par = self.parasitics
        keep = 1.0 - par.gm_derate_rel

        gm1 = devs["MI1"].small_signal(currents["i_in"] / 2.0).gm * keep
        gm2 = devs["MI2"].small_signal(currents["i_int1"] / 2.0).gm * keep
        gm3 = devs["MI3"].small_signal(currents["i_int2"] / 2.0).gm * keep
        gmq = devs["MIQ"].small_signal(currents["i_q"] / 2.0).gm * keep

        lam = self.design.nmos.lambda_ + self.design.pmos.lambda_
        g_bp = lam * (currents["i_in"] / 2.0 + currents["i_int1"] / 2.0)
        g_lp = lam * (currents["i_int2"] / 2.0)

        net = Netlist(title="gm-C state-variable filter macromodel")
        net.voltage_source("Vin", "in", "0", 1.0)
        # Input transconductor into the band-pass node.
        net.vccs("Gin", "bp", "0", "in", "0", gm1)
        # Diode-connected damping cell: a 1/gm_q resistor.
        net.resistor("Rq", "bp", "0", 1.0 / gmq)
        net.capacitor("Cbp", "bp", "0", design.c_bp + par.c_bp_par)
        # Two-integrator loop: lp feeds back into bp (reversed control so
        # the loop is degenerative), bp integrates forward into lp.
        net.vccs("Gfb", "bp", "0", "0", "lp", gm2)
        net.vccs("Gint", "lp", "0", "bp", "0", gm3)
        net.capacitor("Clp", "lp", "0", design.c_lp + par.c_lp_par)
        # Finite output conductance of the transconductor stacks.
        net.resistor("Rop1", "bp", "0", 1.0 / g_bp)
        net.resistor("Rop2", "lp", "0", 1.0 / g_lp)
        return net

    # ------------------------------------------------------------------
    # band-pass feature extraction (shared by both engines, row-wise)
    # ------------------------------------------------------------------
    def _bandpass_features(self, mag_bp: np.ndarray) -> Tuple[float, float, float]:
        """``(f_center, q_factor, peak_gain)`` from one |H_bp| row.

        The peak is refined by a log-parabola over the uniform log-f grid;
        the -3 dB edges by log-log interpolation on each side.  Used
        verbatim by the scalar and vectorized engines so their metric
        extraction is *identical* math.
        """
        grid = self._FREQ_GRID
        logf = np.log10(grid)
        y = np.log10(mag_bp)
        i = int(np.argmax(y))
        if i == 0 or i == y.size - 1:
            raise SimulationError(
                "band-pass peak at the edge of the analysis grid; "
                "the design has left the supported frequency window"
            )
        # Parabolic refinement on the uniform log-f grid.
        denom = y[i - 1] - 2.0 * y[i] + y[i + 1]
        delta = 0.0 if denom == 0.0 else 0.5 * (y[i - 1] - y[i + 1]) / denom
        delta = float(np.clip(delta, -0.5, 0.5))
        step = logf[1] - logf[0]
        f_center = 10.0 ** (logf[i] + delta * step)
        peak_log = y[i] - 0.25 * (y[i - 1] - y[i + 1]) * delta
        peak_gain = 10.0 ** peak_log

        target = peak_log - 0.5 * math.log10(2.0)  # -3 dB in log magnitude

        def crossing(start: int, stop: int, step_dir: int) -> float:
            k = start
            while k != stop and y[k] > target:
                k += step_dir
            if y[k] > target:
                raise SimulationError(
                    "-3 dB edge outside the analysis grid; widen _FREQ_GRID"
                )
            # y[k] <= target < y[k - step_dir]: interpolate in log-log
            # between k and its neighbour toward the peak.
            k2 = k - step_dir
            frac = (target - y[k]) / (y[k2] - y[k])
            return 10.0 ** (logf[k] + frac * (logf[k2] - logf[k]))

        f_lo = crossing(i - 1, 0, -1)
        f_hi = crossing(i + 1, y.size - 1, 1)
        return f_center, f_center / (f_hi - f_lo), peak_gain

    # ------------------------------------------------------------------
    def simulate(self, sample: ProcessSample) -> SVFMetrics:
        """Measure the five metrics for one process draw."""
        devs = self._varied_devices(sample)
        currents = self._bias_currents(devs)
        net = self._macromodel(devs, currents)
        solution = ACAnalysis(net).solve(self._FREQ_GRID)
        mag_bp = np.abs(solution.transfer("bp", "in"))
        mag_lp = np.abs(solution.transfer("lp", "in"))

        f_center, q_factor, peak_gain = self._bandpass_features(mag_bp)
        design = self.design
        nominal_budget = (
            design.i_in + design.i_int1 + design.i_int2 + design.i_q + 2.0 * design.i_bias
        )
        total = (
            currents["i_in"]
            + currents["i_int1"]
            + currents["i_int2"]
            + currents["i_q"]
            + design.i_bias
            + currents["bias"]
        )
        power = design.vdd * (
            total + self.parasitics.power_overhead_rel * nominal_budget
        )
        return SVFMetrics(
            f_center=f_center,
            q_factor=q_factor,
            peak_gain=peak_gain,
            dc_gain_lp=float(mag_lp[0]),
            power=power,
        )

    def simulate_nominal(self) -> SVFMetrics:
        """Nominal (variation-free) run; supplies ``P_NOM`` for Sec. 4.1.

        As with the op-amp, ``extraction_derate`` makes the nominal run
        see only a fraction of the layout parasitics — an under-capturing
        signoff deck — so the Sec. 4.1 shift cannot fully align the early
        and late means.
        """
        sim = self
        derate = self.parasitics.extraction_derate
        if derate != 0.0:
            import dataclasses

            keep = 1.0 - derate
            par = dataclasses.replace(
                self.parasitics,
                c_bp_par=self.parasitics.c_bp_par * keep,
                c_lp_par=self.parasitics.c_lp_par * keep,
                gm_derate_rel=self.parasitics.gm_derate_rel * keep,
                power_overhead_rel=self.parasitics.power_overhead_rel * keep,
                bias_current_rel=self.parasitics.bias_current_rel * keep,
                extraction_derate=0.0,
            )
            sim = GmCStateVariableFilter(self.design, par)
        model = ProcessVariationModel(0.0, 0.0, 0.0, 0.0, 0.0)
        nominal = model.nominal_sample(sim.devices)
        return sim.simulate(nominal)

    def simulate_batch(
        self,
        samples: List[ProcessSample],
        engine: str = "vectorized",
        memory_budget_mb: float = 512.0,
        n_jobs: Optional[int] = None,
        mna_backend: Optional[str] = None,
    ) -> np.ndarray:
        """Metrics matrix ``(len(samples), 5)`` in metric-name order.

        Same contract as :meth:`TwoStageOpAmp.simulate_batch`: the
        vectorized engine stamps one symbolic plan and solves the whole
        bank in memory-bounded chunks; ``"loop"`` is the per-die reference
        path; ``n_jobs`` shards across forked workers order-preservingly;
        ``mna_backend`` is forwarded to the batched MNA solve.
        """
        sample_list = list(samples)
        if not sample_list:
            raise SimulationError("simulate_batch requires at least one process sample")
        if engine == "loop":
            return np.array([self.simulate(s).as_array() for s in sample_list])
        if engine != "vectorized":
            raise SimulationError(
                f"unknown engine {engine!r}; expected 'vectorized' or 'loop'"
            )
        from repro.experiments.parallel import fork_available, replicate, resolve_n_jobs

        jobs = min(resolve_n_jobs(n_jobs), len(sample_list))
        if jobs > 1 and fork_available():
            self._stamp_plan()  # build once; workers inherit it through fork
            shards = [
                s for s in np.array_split(np.arange(len(sample_list)), jobs) if s.size
            ]
            parts = replicate(
                lambda idx: self._simulate_chunked(
                    [sample_list[i] for i in idx], memory_budget_mb, mna_backend
                ),
                shards,
                n_jobs=jobs,
            )
            return np.vstack(parts)
        return self._simulate_chunked(sample_list, memory_budget_mb, mna_backend)

    # ------------------------------------------------------------------
    # vectorized engine
    # ------------------------------------------------------------------
    #: Samples per pipeline pass (see TwoStageOpAmp._PIPELINE_CHUNK).
    _PIPELINE_CHUNK = 512

    def _simulate_chunked(
        self,
        samples: List[ProcessSample],
        memory_budget_mb: float,
        mna_backend: Optional[str] = None,
    ) -> np.ndarray:
        """Run the vectorized engine in cache-sized sample chunks."""
        budget_rows = int(
            memory_budget_mb * 2**20 // (self._FREQ_GRID.size * 8 * 32)
        )
        chunk = max(1, min(self._PIPELINE_CHUNK, budget_rows))
        if len(samples) <= chunk:
            return self._simulate_batch_vectorized(samples, memory_budget_mb, mna_backend)
        return np.vstack(
            [
                self._simulate_batch_vectorized(
                    samples[i : i + chunk], memory_budget_mb, mna_backend
                )
                for i in range(0, len(samples), chunk)
            ]
        )

    def _stamp_plan(self) -> StampPlan:
        """The macromodel's symbolic scatter plan (topology-only, cached)."""
        if self._plan is None:
            model = ProcessVariationModel(0.0, 0.0, 0.0, 0.0, 0.0)
            devs = self._varied_devices(model.nominal_sample(self.devices))
            template = self._macromodel(devs, self._bias_currents(devs))
            self._plan = StampPlan(template, variable=self._VARIABLE)
        return self._plan

    def _batched_device_arrays(
        self, samples: List[ProcessSample]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        """Per-device variation arrays, mirroring :meth:`_varied_devices`."""
        n = len(samples)
        dvth_g = {
            "n": np.array([s.global_variation.dvth_n for s in samples]),
            "p": np.array([s.global_variation.dvth_p for s in samples]),
        }
        dkp_g = {
            "n": np.array([s.global_variation.dkp_rel_n for s in samples]),
            "p": np.array([s.global_variation.dkp_rel_p for s in samples]),
        }
        out: Dict[str, Dict[str, np.ndarray]] = {}
        for dev, pol in self._devices:
            local = np.array(
                [s.local.get(dev.name, (0.0, 0.0)) for s in samples]
            ).reshape(n, 2)
            dvth = dvth_g[pol] + local[:, 0]
            dkp = dkp_g[pol] + local[:, 1]
            kp_eff = dev.process.kp * (1.0 + dkp)
            if np.any(kp_eff <= 0.0):
                raise SimulationError(
                    f"{dev.name}: kp variation drives kp non-positive in batch"
                )
            out[dev.name] = {
                "vth": dev.process.vth + dvth,
                "beta": kp_eff * dev.geometry.ratio,
            }
        return out

    def _batched_bias_currents(
        self, devs: Dict[str, Dict[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        """Vectorized mirror of :meth:`_bias_currents`."""
        design = self.design
        mnd = devs["MND"]
        vov_nd = np.sqrt(2.0 * design.i_bias / mnd["beta"])
        vgs_n = mnd["vth"] + vov_nd
        vov_nb = vgs_n - devs["MNB"]["vth"]
        if np.any(vov_nb <= 0.0):
            bad = int(np.argmax(vov_nb <= 0.0))
            raise SimulationError(
                f"MNB: bias mirror output device cut off "
                f"(Vov={float(vov_nb[bad]):.3f} at sample {bad})"
            )
        i_pull = 0.5 * devs["MNB"]["beta"] * vov_nb * vov_nb

        vov_pd = np.sqrt(2.0 * i_pull / devs["MPD"]["beta"])
        vsg_p = devs["MPD"]["vth"] + vov_pd

        scale = 1.0 + self.parasitics.bias_current_rel
        out: Dict[str, np.ndarray] = {"bias": i_pull}
        for tail, key in (("MT1", "i_in"), ("MT2", "i_int1"), ("MT3", "i_int2"), ("MTQ", "i_q")):
            vov = vsg_p - devs[tail]["vth"]
            if np.any(vov <= 0.0):
                bad = int(np.argmax(vov <= 0.0))
                raise SimulationError(
                    f"{tail}: tail current source cut off "
                    f"(Vov={float(vov[bad]):.3f} at sample {bad})"
                )
            out[key] = 0.5 * devs[tail]["beta"] * vov * vov * scale
        return out

    def _simulate_batch_vectorized(
        self,
        samples: List[ProcessSample],
        memory_budget_mb: float,
        mna_backend: Optional[str] = None,
    ) -> np.ndarray:
        n = len(samples)
        design = self.design
        par = self.parasitics
        devs = self._batched_device_arrays(samples)
        currents = self._batched_bias_currents(devs)
        keep = 1.0 - par.gm_derate_rel

        def pair_gm(name: str, current: np.ndarray) -> np.ndarray:
            return np.sqrt(2.0 * devs[name]["beta"] * current) * keep

        gm1 = pair_gm("MI1", currents["i_in"] / 2.0)
        gm2 = pair_gm("MI2", currents["i_int1"] / 2.0)
        gm3 = pair_gm("MI3", currents["i_int2"] / 2.0)
        gmq = pair_gm("MIQ", currents["i_q"] / 2.0)

        lam = design.nmos.lambda_ + design.pmos.lambda_
        g_bp = lam * (currents["i_in"] / 2.0 + currents["i_int1"] / 2.0)
        g_lp = lam * (currents["i_int2"] / 2.0)

        ones = np.ones(n)
        values = {
            "Gin": gm1,
            "Rq": 1.0 / gmq,
            "Cbp": (design.c_bp + par.c_bp_par) * ones,
            "Gfb": gm2,
            "Gint": gm3,
            "Clp": (design.c_lp + par.c_lp_par) * ones,
            "Rop1": 1.0 / g_bp,
            "Rop2": 1.0 / g_lp,
        }
        plan = self._stamp_plan()
        solution = plan.solve_batched(
            values,
            self._FREQ_GRID,
            memory_budget_mb=memory_budget_mb,
            outputs=["bp", "lp"],
            backend=mna_backend,
        )
        mag_bp = np.abs(solution.transfer("bp", "in"))
        mag_lp = np.abs(solution.transfer("lp", "in"))

        features = np.array([self._bandpass_features(row) for row in mag_bp])
        nominal_budget = (
            design.i_in + design.i_int1 + design.i_int2 + design.i_q + 2.0 * design.i_bias
        )
        total = (
            currents["i_in"]
            + currents["i_int1"]
            + currents["i_int2"]
            + currents["i_q"]
            + design.i_bias
            + currents["bias"]
        )
        power = design.vdd * (total + par.power_overhead_rel * nominal_budget)
        return np.column_stack(
            [features[:, 0], features[:, 1], features[:, 2], mag_lp[:, 0], power]
        )
