"""Linear transient analysis on the MNA stamps (trapezoidal integration).

The AC solver answers "what is the frequency response"; validation labs
also ask time-domain questions — settling time to a step, overshoot,
ringing.  For the linear macromodels used throughout this package the
transient problem is the linear DAE

    C x'(t) + G x(t) = b * u(t),

with ``G``, ``C``, ``b`` exactly the matrices already assembled by
:class:`~repro.circuits.mna.ACAnalysis` and ``u(t)`` a scalar source
waveform scaling the excitation vector.  The trapezoidal rule (SPICE's
default) gives the unconditionally-stable update

    (C/h + G/2) x_{n+1} = (C/h - G/2) x_n + b (u_n + u_{n+1}) / 2.

One LU-factorisation is reused for the whole run (fixed step), so a
10k-point transient of a 5-node macromodel costs milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.circuits.mna import ACAnalysis
from repro.circuits.netlist import Netlist
from repro.exceptions import SimulationError

__all__ = ["TransientResult", "TransientAnalysis", "step", "sine"]


def step(t0: float = 0.0) -> Callable[[np.ndarray], np.ndarray]:
    """Unit step waveform ``u(t) = 1[t >= t0]``."""

    def waveform(t: np.ndarray) -> np.ndarray:
        return (t >= t0).astype(float)

    return waveform


def sine(freq: float, phase: float = 0.0) -> Callable[[np.ndarray], np.ndarray]:
    """Unit sine waveform ``u(t) = sin(2 pi f t + phase)``."""
    if freq <= 0.0:
        raise SimulationError(f"sine frequency must be > 0, got {freq}")

    def waveform(t: np.ndarray) -> np.ndarray:
        return np.sin(2.0 * np.pi * freq * t + phase)

    return waveform


@dataclass(frozen=True)
class TransientResult:
    """Waveforms of one transient run."""

    times: np.ndarray
    _solution: np.ndarray
    _node_map: Dict[Hashable, int]

    def voltage(self, node: Hashable) -> np.ndarray:
        """Voltage waveform of ``node`` (zeros for ground)."""
        if node == "0":
            return np.zeros_like(self.times)
        try:
            idx = self._node_map[node]
        except KeyError as exc:
            raise SimulationError(f"unknown node {node!r}") from exc
        return self._solution[:, idx]

    # ------------------------------------------------------------------
    def settling_time(
        self, node: Hashable, tolerance: float = 0.01
    ) -> float:
        """First time after which the waveform stays within ``tolerance``
        (relative) of its final value.

        Raises when the waveform has not settled by the end of the run —
        a truncated transient must not silently report a wrong number.
        """
        if not 0.0 < tolerance < 1.0:
            raise SimulationError(f"tolerance must lie in (0, 1), got {tolerance}")
        v = self.voltage(node)
        final = float(v[-1])
        band = tolerance * max(abs(final), 1e-30)
        outside = np.nonzero(np.abs(v - final) > band)[0]
        if outside.size == 0:
            return float(self.times[0])
        last_out = int(outside[-1])
        # The last sample equals `final` by construction, so a waveform
        # that is still moving leaves the band until almost the end.
        # Demand a settled tail of at least 5% of the run before trusting
        # the settling time.
        if last_out >= int(0.95 * v.size):
            raise SimulationError(
                "waveform still outside the settling band near the end of "
                "the run; extend t_stop"
            )
        return float(self.times[last_out + 1])

    def overshoot(self, node: Hashable) -> float:
        """Peak overshoot relative to the final value (0 = none).

        Defined for step-like responses: ``max(v) / v_final - 1`` when the
        final value is positive (sign-flipped otherwise).
        """
        v = self.voltage(node)
        final = float(v[-1])
        if final == 0.0:
            raise SimulationError("overshoot undefined for zero final value")
        peak = float(np.max(v * np.sign(final)))
        return max(peak / abs(final) - 1.0, 0.0)


class TransientAnalysis:
    """Fixed-step trapezoidal transient simulator for a linear netlist.

    Parameters
    ----------
    netlist:
        The circuit; sources' amplitudes are scaled by the run's waveform.
    """

    def __init__(self, netlist: Netlist) -> None:
        ac = ACAnalysis(netlist)
        self._stamps = ac.stamps
        self.netlist = netlist
        self._node_map = {
            node: netlist.node_index(node)
            for comp in netlist.components
            for node in comp.nodes()
            if node != "0"
        }

    # ------------------------------------------------------------------
    def run(
        self,
        t_stop: float,
        dt: float,
        waveform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        x0: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Integrate from 0 to ``t_stop`` with step ``dt``.

        ``waveform`` scales the assembled excitation vector (default: unit
        step at t=0).  ``x0`` is the initial state (default: all zeros —
        capacitors discharged, inductor currents zero).
        """
        if t_stop <= 0.0 or dt <= 0.0:
            raise SimulationError("t_stop and dt must be positive")
        n_steps = int(round(t_stop / dt))
        if n_steps < 2:
            raise SimulationError("transient needs at least 2 time steps")
        if n_steps > 5_000_000:
            raise SimulationError(
                f"{n_steps} steps requested; raise dt or lower t_stop"
            )
        times = np.arange(n_steps + 1) * dt
        u = (waveform if waveform is not None else step())(times)

        g = self._stamps.G
        c = self._stamps.C
        b = np.real(self._stamps.b)
        size = self._stamps.size
        state = np.zeros(size) if x0 is None else np.asarray(x0, dtype=float).copy()
        if state.shape != (size,):
            raise SimulationError(f"x0 must have shape ({size},)")

        lhs = c / dt + g / 2.0
        rhs_mat = c / dt - g / 2.0
        try:
            lu = lu_factor(lhs)
        except (ValueError, np.linalg.LinAlgError) as exc:  # singular/non-finite lhs
            raise SimulationError("singular transient system matrix") from exc

        out = np.empty((n_steps + 1, size))
        out[0] = state
        for k in range(n_steps):
            rhs = rhs_mat @ state + b * (u[k] + u[k + 1]) / 2.0
            state = lu_solve(lu, rhs)
            out[k + 1] = state
        if not np.all(np.isfinite(out)):
            raise SimulationError("transient solution diverged")
        return TransientResult(times=times, _solution=out, _node_map=self._node_map)
