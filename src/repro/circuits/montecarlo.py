"""Monte-Carlo engine producing paired early/late metric datasets.

The paper generates "5000 Monte-Carlo samples by both schematic-level and
post-layout simulations" for the op-amp and 1000 for the ADC (Sec. 5).
:class:`PairedDataset` is the in-memory equivalent of those sample banks:
two aligned ``(n, d)`` metric matrices plus the two nominal vectors needed
by the Sec. 4.1 shift-and-scale step.

An optional measurement-noise model emulates the post-silicon validation
use case, where late-stage "samples" are bench measurements with their own
instrumentation error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.circuits.adc import FlashADCDesign
from repro.circuits.opamp import OpAmpDesign
from repro.exceptions import DimensionError, ReproError, SimulationError

__all__ = [
    "PairedDataset",
    "dataset_cache_path",
    "generate_opamp_dataset",
    "generate_adc_dataset",
]

#: Environment variable selecting the dataset cache directory.
DATASET_CACHE_ENV = "REPRO_DATASET_CACHE_DIR"

#: Bump whenever a simulator change alters generated metric values, so
#: stale cache entries are never reused across code versions.
_DATASET_CACHE_VERSION = 1


@dataclass(frozen=True)
class PairedDataset:
    """Aligned early/late Monte-Carlo metric banks for one circuit.

    Attributes
    ----------
    early, late:
        ``(n, d)`` metric matrices; row ``i`` of both corresponds to the
        *same die* simulated at the two stages.
    early_nominal, late_nominal:
        Nominal metric vectors (one variation-free run per stage).
    metric_names:
        Column labels.
    """

    early: np.ndarray
    late: np.ndarray
    early_nominal: np.ndarray
    late_nominal: np.ndarray
    metric_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.early.shape != self.late.shape:
            raise DimensionError(
                f"stage shapes differ: {self.early.shape} vs {self.late.shape}"
            )
        d = self.early.shape[1]
        if self.early_nominal.shape != (d,) or self.late_nominal.shape != (d,):
            raise DimensionError("nominal vectors must match the metric count")
        if len(self.metric_names) != d:
            raise DimensionError("metric_names must match the metric count")

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of paired dies."""
        return self.early.shape[0]

    @property
    def dim(self) -> int:
        """Number of performance metrics ``d``."""
        return self.early.shape[1]

    def late_subset(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw ``n`` late-stage rows without replacement.

        This emulates collecting only ``n`` expensive late-stage samples
        out of the population; the paper's sweeps repeat this 100 times
        "based on independent samples to average out random fluctuations".
        """
        if not 1 <= n <= self.n_samples:
            raise SimulationError(
                f"subset size {n} outside [1, {self.n_samples}]"
            )
        gen = rng if rng is not None else np.random.default_rng()
        idx = gen.choice(self.n_samples, size=n, replace=False)
        return self.late[idx]

    def with_measurement_noise(
        self, noise_std_rel, rng: Optional[np.random.Generator] = None
    ) -> "PairedDataset":
        """A copy whose late-stage bank carries instrumentation noise.

        ``noise_std_rel`` is a scalar or length-``d`` vector of noise
        standard deviations *relative to each metric's late-stage std* —
        the post-silicon validation scenario where bench measurements are
        themselves noisy.
        """
        rel = np.broadcast_to(np.asarray(noise_std_rel, dtype=float), (self.dim,))
        if np.any(rel < 0.0):
            raise SimulationError("noise levels must be non-negative")
        gen = rng if rng is not None else np.random.default_rng()
        stds = self.late.std(axis=0, ddof=0)
        noisy = self.late + gen.standard_normal(self.late.shape) * stds * rel
        return PairedDataset(
            early=self.early,
            late=noisy,
            early_nominal=self.early_nominal,
            late_nominal=self.late_nominal,
            metric_names=self.metric_names,
        )


# ---------------------------------------------------------------------------
# dataset disk cache
# ---------------------------------------------------------------------------
def _resolve_cache_dir(cache_dir: Optional[Union[str, Path]]) -> Path:
    """Cache directory: explicit argument > env var > XDG cache default."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(DATASET_CACHE_ENV, "")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "datasets"


def _dataset_cache_key(
    circuit: str, n_samples: int, seed: int, design, extra: Optional[dict] = None
) -> str:
    """Content hash over everything that determines the generated bank.

    ``extra`` carries additional generation config beyond the design —
    today the scenario compiler's non-default circuit variant (corner /
    mismatch / divergence knobs).  It is folded into the hashed payload
    *only when present*, so every pre-variant configuration keeps its
    exact historical cache path.
    """
    config = {
        "circuit": circuit,
        "version": _DATASET_CACHE_VERSION,
        "n_samples": int(n_samples),
        "seed": int(seed),
        "design": dataclasses.asdict(design),
    }
    if extra:
        config["extra"] = extra
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_cache_path(
    circuit: str,
    n_samples: int,
    seed: int,
    design,
    cache_dir: Optional[Union[str, Path]] = None,
    extra: Optional[dict] = None,
) -> Path:
    """Where the cache entry for this exact configuration lives (may not exist)."""
    key = _dataset_cache_key(circuit, n_samples, seed, design, extra)
    return _resolve_cache_dir(cache_dir) / f"{circuit}-{key[:20]}.npz"


def _cached_dataset(
    circuit: str,
    n_samples: int,
    seed: int,
    design,
    builder: Callable[[], PairedDataset],
    cache_dir: Optional[Union[str, Path]],
    use_cache: bool,
    extra: Optional[dict] = None,
) -> PairedDataset:
    """Round a dataset build through the disk cache.

    Cache entries are keyed by a hash of the full generation config
    (circuit, design parameters, ``n_samples``, ``seed`` and the engine
    version), so any config change lands on a different file and a stale
    entry is never served.  Writes are atomic (temp file + ``os.replace``)
    so concurrent sweep workers cannot observe a torn ``.npz``.
    """
    if not use_cache:
        return builder()
    path = dataset_cache_path(circuit, n_samples, seed, design, cache_dir, extra)
    if path.exists():
        # Lazy upward import: repro.io owns (de)serialisation and already
        # depends on circuits for PairedDataset, so the cache round-trip
        # has to call up a layer at function scope to avoid an import cycle.
        from repro.io import load_dataset  # reprolint: disable=RPL003 -- lazy cache IO, see above

        try:
            return load_dataset(path)
        except (OSError, EOFError, KeyError, ValueError, zipfile.BadZipFile, ReproError):
            # Torn/corrupt/stale cache entry (np.load raises any of these);
            # fall through and regenerate it.  Everything else propagates.
            pass
    dataset = builder()
    from repro.io import save_dataset  # reprolint: disable=RPL003 -- lazy cache IO, see above

    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
        save_dataset(dataset, tmp)
        os.replace(tmp, path)  # reprolint: disable=RPL008 -- cache entry: atomicity (no torn .npz) is required, power-loss durability is not; a lost or corrupt entry is detected on load and regenerated
    except OSError:
        pass  # read-only cache location: serve the fresh build uncached
    return dataset


def generate_opamp_dataset(
    n_samples: int = 5000,
    seed: int = 2015,
    design: Optional[OpAmpDesign] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    mna_backend: Optional[str] = None,
) -> PairedDataset:
    """Generate the paper's op-amp sample bank (Sec. 5.1).

    Draws one process-sample list and replays it through both the
    schematic and the post-layout simulator so rows are paired by die.
    Identical configurations are served from the disk cache (see
    :func:`dataset_cache_path`); pass ``use_cache=False`` to force a
    fresh simulation.

    ``mna_backend`` picks the MNA solve strategy (``"dense"``,
    ``"sparse"``, ``None``/``"auto"``).  It is deliberately *not* part of
    the cache key: the backend-equivalence suite gates dense and sparse
    to <=1e-9 relative agreement on every solve, so both produce the same
    dataset up to solver round-off and a bank cached under one backend is
    valid for the other — a performance knob, not a config change.
    """
    # Lazy upward import: the registry aggregates every circuit module
    # (this one included), so dispatching through it at module scope
    # would be an import cycle.
    from repro.circuits.registry import generate_dataset

    return generate_dataset(
        "opamp",
        n_samples=n_samples,
        seed=seed,
        design=design,
        cache_dir=cache_dir,
        use_cache=use_cache,
        mna_backend=mna_backend,
    )


def generate_adc_dataset(
    n_samples: int = 1000,
    seed: int = 2015,
    design: Optional[FlashADCDesign] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
) -> PairedDataset:
    """Generate the paper's flash-ADC sample bank (Sec. 5.2).

    Die seeds are shared between stages so each row pair is the same die.
    Identical configurations are served from the disk cache (see
    :func:`dataset_cache_path`); pass ``use_cache=False`` to force a
    fresh simulation.
    """
    from repro.circuits.registry import generate_dataset

    return generate_dataset(
        "adc",
        n_samples=n_samples,
        seed=seed,
        design=design,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
