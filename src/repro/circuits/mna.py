"""Modified nodal analysis (MNA) AC solver.

Assembles the complex system ``(G + j*omega*C) x = b`` from a
:class:`~repro.circuits.netlist.Netlist` and solves it over a frequency
grid.  The unknown vector ``x`` stacks node voltages followed by auxiliary
branch currents (voltage sources, inductors).

The solver is deliberately dense: the behavioural op-amp macromodel has a
handful of nodes, and a batched ``numpy.linalg.solve`` over the whole
frequency grid is faster than any sparse machinery at that size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.circuits.components import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VoltageSource,
)
from repro.circuits.netlist import Netlist
from repro.exceptions import SimulationError

__all__ = ["MNAStamps", "ACSolution", "ACAnalysis"]


@dataclass(frozen=True)
class MNAStamps:
    """Frequency-independent MNA matrices for a netlist.

    ``G`` collects resistive/transconductance stamps, ``C`` reactive ones,
    and ``b`` the excitation vector; the system at angular frequency
    ``omega`` is ``(G + 1j*omega*C) x = b``.  Inductor branch equations put
    ``-L`` into ``C`` at their branch diagonal.
    """

    G: np.ndarray
    C: np.ndarray
    b: np.ndarray

    @property
    def size(self) -> int:
        """System dimension."""
        return self.G.shape[0]


class ACSolution:
    """Node voltages over a frequency grid.

    Wraps the raw ``(n_freq, size)`` solution matrix with name-based
    access so callers never deal in matrix indices.
    """

    def __init__(
        self,
        freqs: np.ndarray,
        solution: np.ndarray,
        node_map: Dict[Hashable, int],
        branch_map: Dict[str, int],
    ) -> None:
        self.freqs = freqs
        self._solution = solution
        self._node_map = node_map
        self._branch_map = branch_map

    def voltage(self, node: Hashable) -> np.ndarray:
        """Complex voltage of ``node`` at every frequency (0 for ground)."""
        if node == "0":
            return np.zeros_like(self.freqs, dtype=complex)
        try:
            idx = self._node_map[node]
        except KeyError as exc:
            raise SimulationError(f"unknown node {node!r}") from exc
        return self._solution[:, idx]

    def branch_current(self, name: str) -> np.ndarray:
        """Complex branch current of a voltage source / inductor."""
        try:
            idx = self._branch_map[name]
        except KeyError as exc:
            raise SimulationError(f"no branch current for component {name!r}") from exc
        return self._solution[:, idx]

    def transfer(self, out_node: Hashable, in_node: Hashable) -> np.ndarray:
        """Voltage transfer function ``V(out) / V(in)`` over frequency."""
        vin = self.voltage(in_node)
        if np.any(np.abs(vin) == 0.0):
            raise SimulationError(f"input node {in_node!r} has zero voltage")
        return self.voltage(out_node) / vin


class ACAnalysis:
    """Small-signal AC analysis of a netlist.

    Parameters
    ----------
    netlist:
        The circuit; validated at construction.

    Notes
    -----
    Stamp conventions follow standard MNA texts (e.g. Vlach & Singhal):

    * two-terminal admittance ``y``: ``+y`` at ``(p, p)``/``(n, n)``,
      ``-y`` at ``(p, n)``/``(n, p)``;
    * VCCS ``gm`` from control pair ``(cp, cn)`` into output pair
      ``(p, n)``: ``+gm`` at ``(p, cp)``, ``-gm`` at ``(p, cn)``, ``-gm``
      at ``(n, cp)``, ``+gm`` at ``(n, cn)``;
    * voltage source branch ``k``: ``+1`` at ``(p, k)``/``(k, p)``, ``-1``
      at ``(n, k)``/``(k, n)``, RHS ``b[k] = amplitude``;
    * independent current source from ``p`` to ``n``: ``b[p] -= I``,
      ``b[n] += I`` (current leaves ``p``, enters ``n`` externally).
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._stamps = self._assemble()

    # ------------------------------------------------------------------
    @property
    def stamps(self) -> MNAStamps:
        """The assembled frequency-independent matrices."""
        return self._stamps

    def _assemble(self) -> MNAStamps:
        net = self.netlist
        size = net.size
        g = np.zeros((size, size))
        c = np.zeros((size, size))
        b = np.zeros(size, dtype=complex)

        def stamp_admittance(mat: np.ndarray, p: int, n: int, y: float) -> None:
            if p >= 0:
                mat[p, p] += y
            if n >= 0:
                mat[n, n] += y
            if p >= 0 and n >= 0:
                mat[p, n] -= y
                mat[n, p] -= y

        for comp in net.components:
            if isinstance(comp, Resistor):
                p, n = net.node_index(comp.pos), net.node_index(comp.neg)
                stamp_admittance(g, p, n, comp.conductance)
            elif isinstance(comp, Capacitor):
                p, n = net.node_index(comp.pos), net.node_index(comp.neg)
                stamp_admittance(c, p, n, comp.value)
            elif isinstance(comp, Inductor):
                p, n = net.node_index(comp.pos), net.node_index(comp.neg)
                k = net.branch_index(comp.name)
                for node, sign in ((p, 1.0), (n, -1.0)):
                    if node >= 0:
                        g[node, k] += sign
                        g[k, node] += sign
                c[k, k] -= comp.value
            elif isinstance(comp, VCCS):
                p, n = net.node_index(comp.pos), net.node_index(comp.neg)
                cp, cn = net.node_index(comp.ctrl_pos), net.node_index(comp.ctrl_neg)
                for out_node, out_sign in ((p, 1.0), (n, -1.0)):
                    if out_node < 0:
                        continue
                    if cp >= 0:
                        g[out_node, cp] += out_sign * comp.gm
                    if cn >= 0:
                        g[out_node, cn] -= out_sign * comp.gm
            elif isinstance(comp, VoltageSource):
                p, n = net.node_index(comp.pos), net.node_index(comp.neg)
                k = net.branch_index(comp.name)
                for node, sign in ((p, 1.0), (n, -1.0)):
                    if node >= 0:
                        g[node, k] += sign
                        g[k, node] += sign
                b[k] += comp.amplitude
            elif isinstance(comp, CurrentSource):
                p, n = net.node_index(comp.pos), net.node_index(comp.neg)
                if p >= 0:
                    b[p] -= comp.amplitude
                if n >= 0:
                    b[n] += comp.amplitude
            else:  # pragma: no cover - future component types
                raise SimulationError(f"unsupported component {type(comp).__name__}")
        return MNAStamps(G=g, C=c, b=b)

    # ------------------------------------------------------------------
    def solve(self, freqs) -> ACSolution:
        """Solve the AC system at every frequency in ``freqs`` (hertz).

        Uses one batched dense solve over the whole grid.  Raises
        :class:`SimulationError` when the system is singular at any
        frequency (e.g. a floating node escaped validation).
        """
        f = np.atleast_1d(np.asarray(freqs, dtype=float))
        if f.ndim != 1 or f.size == 0:
            raise SimulationError("frequency grid must be a non-empty 1-D array")
        if np.any(f < 0.0):
            raise SimulationError("frequencies must be non-negative")
        omega = 2.0 * np.pi * f
        st = self._stamps
        systems = st.G[None, :, :] + 1j * omega[:, None, None] * st.C[None, :, :]
        rhs = np.broadcast_to(st.b, (f.size, st.size))
        try:
            solution = np.linalg.solve(systems, rhs[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise SimulationError("singular MNA system; check for floating nodes") from exc
        if not np.all(np.isfinite(solution)):
            raise SimulationError("non-finite AC solution")
        node_map = {node: net_idx for node, net_idx in self._node_items()}
        branch_map = {
            comp.name: self.netlist.branch_index(comp.name)
            for comp in self.netlist.components
            if comp.needs_branch_current
        }
        return ACSolution(f, solution, node_map, branch_map)

    def _node_items(self):
        net = self.netlist
        seen = set()
        for comp in net.components:
            for node in comp.nodes():
                if node != "0" and node not in seen:
                    seen.add(node)
                    yield node, net.node_index(node)

    # ------------------------------------------------------------------
    def dc_gain(self, out_node: Hashable, in_node: Hashable) -> float:
        """Zero-frequency transfer magnitude (one solve at f=0)."""
        sol = self.solve(np.array([0.0]))
        return float(np.abs(sol.transfer(out_node, in_node))[0])
