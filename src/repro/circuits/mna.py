"""Modified nodal analysis (MNA) AC solver.

Assembles the complex system ``(G + j*omega*C) x = b`` from a
:class:`~repro.circuits.netlist.Netlist` and solves it over a frequency
grid.  The unknown vector ``x`` stacks node voltages followed by auxiliary
branch currents (voltage sources, inductors).

The solver is deliberately dense: the behavioural op-amp macromodel has a
handful of nodes, and a batched ``numpy.linalg.solve`` over the whole
frequency grid is faster than any sparse machinery at that size.

For Monte-Carlo populations the per-die loop (rebuild netlist, re-stamp,
solve) is pure overhead: process variation changes stamp *values*, never
the topology.  :class:`StampPlan` exploits that by assembling the scatter
structure once (a COO-style index/sign plan) and then stamping and solving
*all dies at once*: per-sample component values arrive as arrays, are
scattered into stacked ``(n_samples, n_freq, m, m)`` complex systems, and
solved in chunks sized by a memory budget.  Nodes driven by a grounded
voltage source are eliminated symbolically, which shrinks the op-amp
macromodel to a 2x2/3x3 core solved in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.components import (
    GROUND,
    Capacitor,
    Component,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VoltageSource,
)
from repro.circuits.netlist import Netlist
from repro.exceptions import SimulationError, SingularMatrixError
from repro.linalg.backends import resolve_mna_backend
from repro.linalg.backends import sparse_mna as _sparse_mna
from repro.linalg.batched import solve_batched

__all__ = [
    "MNAStamps",
    "ACSolution",
    "ACAnalysis",
    "StampPlan",
    "BatchedACSolution",
]

#: Matrix identifiers used by the shared stamp generator.
_MAT_G = 0
_MAT_C = 1

#: COO entry ``(matrix, row, col, coefficient)``; the stamped value is
#: ``coefficient * value`` for value entries, ``coefficient`` for constants.
_Entry = Tuple[int, int, int, float]


def _component_stamps(
    comp: Component, net: Netlist
) -> Tuple[float, List[_Entry], List[_Entry], List[Tuple[int, complex]]]:
    """One component's stamps, split into value-scaled and constant parts.

    Returns ``(value, value_entries, const_entries, b_updates)`` where
    ``value_entries`` are scaled by the component's primitive value
    (conductance, capacitance, inductance, gm), ``const_entries`` are
    fixed coefficients (source/inductor branch links), and ``b_updates``
    are ``(index, amount)`` additions to the excitation vector.  Entry
    order matches the historical element-by-element stamping so dense
    assembly stays bit-identical.
    """
    value_entries: List[_Entry] = []
    const_entries: List[_Entry] = []
    b_updates: List[Tuple[int, complex]] = []

    def admittance(mat: int, p: int, n: int) -> None:
        if p >= 0:
            value_entries.append((mat, p, p, 1.0))
        if n >= 0:
            value_entries.append((mat, n, n, 1.0))
        if p >= 0 and n >= 0:
            value_entries.append((mat, p, n, -1.0))
            value_entries.append((mat, n, p, -1.0))

    if isinstance(comp, Resistor):
        admittance(_MAT_G, net.node_index(comp.pos), net.node_index(comp.neg))
        return comp.conductance, value_entries, const_entries, b_updates
    if isinstance(comp, Capacitor):
        admittance(_MAT_C, net.node_index(comp.pos), net.node_index(comp.neg))
        return comp.value, value_entries, const_entries, b_updates
    if isinstance(comp, Inductor):
        p, n = net.node_index(comp.pos), net.node_index(comp.neg)
        k = net.branch_index(comp.name)
        for node, sign in ((p, 1.0), (n, -1.0)):
            if node >= 0:
                const_entries.append((_MAT_G, node, k, sign))
                const_entries.append((_MAT_G, k, node, sign))
        value_entries.append((_MAT_C, k, k, -1.0))
        return comp.value, value_entries, const_entries, b_updates
    if isinstance(comp, VCCS):
        p, n = net.node_index(comp.pos), net.node_index(comp.neg)
        cp, cn = net.node_index(comp.ctrl_pos), net.node_index(comp.ctrl_neg)
        for out_node, out_sign in ((p, 1.0), (n, -1.0)):
            if out_node < 0:
                continue
            if cp >= 0:
                value_entries.append((_MAT_G, out_node, cp, out_sign))
            if cn >= 0:
                value_entries.append((_MAT_G, out_node, cn, -out_sign))
        return comp.gm, value_entries, const_entries, b_updates
    if isinstance(comp, VoltageSource):
        p, n = net.node_index(comp.pos), net.node_index(comp.neg)
        k = net.branch_index(comp.name)
        for node, sign in ((p, 1.0), (n, -1.0)):
            if node >= 0:
                const_entries.append((_MAT_G, node, k, sign))
                const_entries.append((_MAT_G, k, node, sign))
        b_updates.append((k, comp.amplitude))
        return 1.0, value_entries, const_entries, b_updates
    if isinstance(comp, CurrentSource):
        p, n = net.node_index(comp.pos), net.node_index(comp.neg)
        if p >= 0:
            b_updates.append((p, -comp.amplitude))
        if n >= 0:
            b_updates.append((n, comp.amplitude))
        return 1.0, value_entries, const_entries, b_updates
    raise SimulationError(f"unsupported component {type(comp).__name__}")


def _node_map(net: Netlist) -> Dict[Hashable, int]:
    """Name -> matrix index for every non-ground node, insertion order."""
    out: Dict[Hashable, int] = {}
    for comp in net.components:
        for node in comp.nodes():
            if node != GROUND and node not in out:
                out[node] = net.node_index(node)
    return out


def _branch_map(net: Netlist) -> Dict[str, int]:
    """Component name -> branch-current matrix index."""
    return {
        comp.name: net.branch_index(comp.name)
        for comp in net.components
        if comp.needs_branch_current
    }


def _validate_freqs(freqs) -> np.ndarray:
    f = np.atleast_1d(np.asarray(freqs, dtype=float))
    if f.ndim != 1 or f.size == 0:
        raise SimulationError("frequency grid must be a non-empty 1-D array")
    if np.any(f < 0.0):
        raise SimulationError("frequencies must be non-negative")
    return f


@dataclass(frozen=True)
class MNAStamps:
    """Frequency-independent MNA matrices for a netlist.

    ``G`` collects resistive/transconductance stamps, ``C`` reactive ones,
    and ``b`` the excitation vector; the system at angular frequency
    ``omega`` is ``(G + 1j*omega*C) x = b``.  Inductor branch equations put
    ``-L`` into ``C`` at their branch diagonal.
    """

    G: np.ndarray
    C: np.ndarray
    b: np.ndarray

    @property
    def size(self) -> int:
        """System dimension."""
        return self.G.shape[0]


class ACSolution:
    """Node voltages over a frequency grid.

    Wraps the raw ``(n_freq, size)`` solution matrix with name-based
    access so callers never deal in matrix indices.
    """

    def __init__(
        self,
        freqs: np.ndarray,
        solution: np.ndarray,
        node_map: Dict[Hashable, int],
        branch_map: Dict[str, int],
    ) -> None:
        self.freqs = freqs
        self._solution = solution
        self._node_map = node_map
        self._branch_map = branch_map

    def voltage(self, node: Hashable) -> np.ndarray:
        """Complex voltage of ``node`` at every frequency (0 for ground)."""
        if node == "0":
            return np.zeros_like(self.freqs, dtype=complex)
        try:
            idx = self._node_map[node]
        except KeyError as exc:
            raise SimulationError(f"unknown node {node!r}") from exc
        return self._solution[:, idx]

    def branch_current(self, name: str) -> np.ndarray:
        """Complex branch current of a voltage source / inductor."""
        try:
            idx = self._branch_map[name]
        except KeyError as exc:
            raise SimulationError(f"no branch current for component {name!r}") from exc
        return self._solution[:, idx]

    def transfer(self, out_node: Hashable, in_node: Hashable) -> np.ndarray:
        """Voltage transfer function ``V(out) / V(in)`` over frequency."""
        vin = self.voltage(in_node)
        if np.any(np.abs(vin) == 0.0):
            raise SimulationError(f"input node {in_node!r} has zero voltage")
        return self.voltage(out_node) / vin


class ACAnalysis:
    """Small-signal AC analysis of a netlist.

    Parameters
    ----------
    netlist:
        The circuit; validated at construction.

    Notes
    -----
    Stamp conventions follow standard MNA texts (e.g. Vlach & Singhal):

    * two-terminal admittance ``y``: ``+y`` at ``(p, p)``/``(n, n)``,
      ``-y`` at ``(p, n)``/``(n, p)``;
    * VCCS ``gm`` from control pair ``(cp, cn)`` into output pair
      ``(p, n)``: ``+gm`` at ``(p, cp)``, ``-gm`` at ``(p, cn)``, ``-gm``
      at ``(n, cp)``, ``+gm`` at ``(n, cn)``;
    * voltage source branch ``k``: ``+1`` at ``(p, k)``/``(k, p)``, ``-1``
      at ``(n, k)``/``(k, n)``, RHS ``b[k] = amplitude``;
    * independent current source from ``p`` to ``n``: ``b[p] -= I``,
      ``b[n] += I`` (current leaves ``p``, enters ``n`` externally).
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._stamps = self._assemble()
        # Name->index maps are pure topology; building them once here (not
        # on every solve) keeps repeated solve()/dc_gain() calls cheap.
        self._node_map = _node_map(netlist)
        self._branch_map = _branch_map(netlist)

    # ------------------------------------------------------------------
    @property
    def stamps(self) -> MNAStamps:
        """The assembled frequency-independent matrices."""
        return self._stamps

    def _assemble(self) -> MNAStamps:
        net = self.netlist
        size = net.size
        mats = (np.zeros((size, size)), np.zeros((size, size)))
        b = np.zeros(size, dtype=complex)
        for comp in net.components:
            value, value_entries, const_entries, b_updates = _component_stamps(comp, net)
            for mat, row, col, coeff in value_entries:
                mats[mat][row, col] += coeff * value
            for mat, row, col, coeff in const_entries:
                mats[mat][row, col] += coeff
            for idx, amount in b_updates:
                b[idx] += amount
        return MNAStamps(G=mats[_MAT_G], C=mats[_MAT_C], b=b)

    # ------------------------------------------------------------------
    def solve(self, freqs) -> ACSolution:
        """Solve the AC system at every frequency in ``freqs`` (hertz).

        Uses one batched dense solve over the whole grid.  Raises
        :class:`SimulationError` when the system is singular at any
        frequency (e.g. a floating node escaped validation).
        """
        f = _validate_freqs(freqs)
        omega = 2.0 * np.pi * f
        st = self._stamps
        systems = st.G[None, :, :] + 1j * omega[:, None, None] * st.C[None, :, :]
        rhs = np.broadcast_to(st.b, (f.size, st.size))
        try:
            solution = solve_batched(systems, rhs)
        except SingularMatrixError as exc:
            raise SimulationError("singular MNA system; check for floating nodes") from exc
        if not np.all(np.isfinite(solution)):
            raise SimulationError("non-finite AC solution")
        return ACSolution(f, solution, self._node_map, self._branch_map)

    # ------------------------------------------------------------------
    def dc_gain(self, out_node: Hashable, in_node: Hashable) -> float:
        """Zero-frequency transfer magnitude (one solve at f=0)."""
        sol = self.solve(np.array([0.0]))
        return float(np.abs(sol.transfer(out_node, in_node))[0])


# ---------------------------------------------------------------------------
# batched Monte-Carlo engine
# ---------------------------------------------------------------------------
class BatchedACSolution:
    """Node voltages for a whole sample bank over a frequency grid.

    Same name-based access as :class:`ACSolution` but every quantity has a
    leading sample axis: :meth:`voltage` returns ``(n_samples, n_freq)``.
    Nodes eliminated as known (driven by a grounded voltage source) are
    reconstructed as constants; branch currents are available only for
    non-eliminated sources/inductors.  When the solve was restricted to
    specific ``outputs``, only those quantities are available.

    The solution is stored column-major — ``(n_columns, n_samples,
    n_freq)`` — so every :meth:`voltage` access returns one contiguous
    array with no strided gather.
    """

    def __init__(
        self,
        freqs: np.ndarray,
        solution: np.ndarray,
        column_of: Dict[Hashable, int],
        known: Dict[Hashable, complex],
        branch_column_of: Dict[str, int],
    ) -> None:
        self.freqs = freqs
        self._solution = solution
        self._column_of = column_of
        self._known = known
        self._branch_column_of = branch_column_of

    @property
    def n_samples(self) -> int:
        """Batch dimension."""
        return self._solution.shape[1]

    def voltage(self, node: Hashable) -> np.ndarray:
        """Complex ``(n_samples, n_freq)`` voltage of ``node``."""
        shape = (self.n_samples, self.freqs.size)
        if node == GROUND:
            return np.zeros(shape, dtype=complex)
        if node in self._known:
            return np.full(shape, self._known[node], dtype=complex)
        try:
            col = self._column_of[node]
        except KeyError as exc:
            raise SimulationError(
                f"unknown node {node!r} (not in the netlist, or not among the "
                "requested solve outputs)"
            ) from exc
        return self._solution[col]

    def branch_current(self, name: str) -> np.ndarray:
        """Complex ``(n_samples, n_freq)`` branch current of ``name``."""
        try:
            col = self._branch_column_of[name]
        except KeyError as exc:
            raise SimulationError(
                f"no branch current available for component {name!r} "
                "(eliminated sources carry none in the batched solve)"
            ) from exc
        return self._solution[col]

    def transfer(self, out_node: Hashable, in_node: Hashable) -> np.ndarray:
        """``V(out) / V(in)`` as a ``(n_samples, n_freq)`` array."""
        if in_node in self._known:
            vin = self._known[in_node]
            if vin == 0.0:
                raise SimulationError(f"input node {in_node!r} has zero voltage")
            return self.voltage(out_node) / vin
        vin_arr = self.voltage(in_node)
        if np.any(np.abs(vin_arr) == 0.0):
            raise SimulationError(f"input node {in_node!r} has zero voltage")
        return self.voltage(out_node) / vin_arr


@dataclass(frozen=True)
class _SparsePlanData:
    """Sparse lowering of a :class:`StampPlan` (cached symbolic analysis).

    ``base_data_*`` hold the constant stamps pre-scattered into the shared
    CSC ``pattern``; ``var_*`` map variable-component contributions into
    it as ``(slots, proj_cols)`` pairs (data slot per entry, column into
    the dense scatter projection).  ``rhs_*`` are ``(proj_cols, rows,
    kv_idx)`` triples for variable entries whose column was eliminated as
    known — they fold into the RHS exactly like the dense path's
    ``[keep, known]`` slice products.
    """

    pattern: _sparse_mna.SparsePattern
    base_data_g: np.ndarray
    base_data_c: np.ndarray
    var_g: Optional[Tuple[np.ndarray, np.ndarray]]
    var_c: Optional[Tuple[np.ndarray, np.ndarray]]
    rhs_g: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    rhs_c: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    rhs0_base: np.ndarray
    rhs1_base: np.ndarray


class StampPlan:
    """Symbolic scatter plan: netlist topology assembled once, values later.

    Parameters
    ----------
    netlist:
        The circuit template; validated at construction.  Its component
        values for the names in ``variable`` are placeholders — every
        batched solve supplies per-sample values for them.
    variable:
        Names of components whose primitive value changes per Monte-Carlo
        sample (resistance, capacitance, inductance or VCCS ``gm``).
        Sources cannot be variable.

    Notes
    -----
    The plan separates what never changes across process draws (where each
    stamp lands: a COO index/sign scatter plan, plus all constant stamps)
    from what does (the stamp values).  ``solve_batched`` then:

    1. evaluates per-sample stamp values as arrays and scatter-adds them
       into stacked ``(n_samples, m, m)`` G/C matrices via a precomputed
       slot->entry projection,
    2. eliminates nodes pinned by grounded voltage sources (their voltage
       is known, so the row enforcing it and the branch unknown drop out),
    3. forms ``(chunk, n_freq, m', m')`` complex systems chunk by chunk —
       the chunk size is bounded by ``memory_budget_mb`` — and solves them
       in closed form for ``m' <= 3`` or with one stacked
       ``np.linalg.solve`` otherwise.

    Large reduced systems can instead run on the **sparse backend**
    (``solve_batched(..., backend="sparse")``): the COO scatter plan is
    lowered once to a shared CSC pattern (symbolic analysis, done a
    single time per topology) and every ``(sample, frequency)`` system is
    factorised by ``scipy.sparse.linalg.splu`` — ``O(nnz)`` memory per
    system instead of ``O(m'^2)``, so node counts can grow 10-100x past
    where the dense stacks exhaust ``memory_budget_mb``.  ``"auto"``
    (the default) picks dense for small cores and sparse beyond
    :data:`repro.linalg.backends.DENSE_AUTO_MAX_REDUCED_SIZE` nodes.
    Dense and sparse agree to ~1e-9 relative (different factorisation
    algorithms on the same systems), which the equivalence suite gates.
    """

    def __init__(self, netlist: Netlist, variable: Sequence[str] = ()) -> None:
        netlist.validate()
        self.netlist = netlist
        self.variable = tuple(variable)
        if len(set(self.variable)) != len(self.variable):
            raise SimulationError(f"duplicate variable names: {self.variable}")
        self._size = netlist.size
        self._node_map = _node_map(netlist)
        self._branch_map = _branch_map(netlist)

        variable_set = set(self.variable)
        for name in self.variable:
            if name not in netlist:
                raise SimulationError(f"variable component {name!r} not in netlist")

        size = self._size
        base = (np.zeros((size, size)), np.zeros((size, size)))
        b = np.zeros(size, dtype=complex)
        entries: List[Tuple[int, int, int, int, float]] = []  # slot, mat, row, col, coeff
        self._slot_kinds: List[type] = [type(netlist[name]) for name in self.variable]
        for comp in netlist.components:
            value, value_entries, const_entries, b_updates = _component_stamps(
                comp, netlist
            )
            if comp.name in variable_set:
                if not isinstance(comp, (Resistor, Capacitor, Inductor, VCCS)):
                    raise SimulationError(
                        f"{comp.name}: {type(comp).__name__} cannot be variable"
                    )
                slot = self.variable.index(comp.name)
                entries.extend(
                    (slot, mat, row, col, coeff) for mat, row, col, coeff in value_entries
                )
            else:
                for mat, row, col, coeff in value_entries:
                    base[mat][row, col] += coeff * value
            for mat, row, col, coeff in const_entries:
                base[mat][row, col] += coeff
            for idx, amount in b_updates:
                b[idx] += amount
        self._base_g, self._base_c = base
        self._base_b = b

        # Scatter plan as flat arrays: contribution of sample values to the
        # stacked matrices is `values @ projection` at the unique flat
        # positions, built once here.
        self._scatter = []
        n_slots = len(self.variable)
        for mat in (_MAT_G, _MAT_C):
            sel = [(s, r, c, coeff) for s, m_, r, c, coeff in entries if m_ == mat]
            if not sel:
                self._scatter.append(None)
                continue
            slots = np.array([s for s, _r, _c, _coeff in sel])
            flat = np.array([r * size + c for _s, r, c, _coeff in sel])
            coeffs = np.array([coeff for _s, _r, _c, coeff in sel])
            uniq, inv = np.unique(flat, return_inverse=True)
            projection = np.zeros((n_slots, uniq.size))
            np.add.at(projection, (slots, inv), coeffs)
            self._scatter.append((uniq, projection))

        # Grounded voltage sources pin their hot node: eliminate the node
        # column (known voltage -> RHS) together with the branch unknown
        # and the row that would have determined it.
        self._known: Dict[Hashable, complex] = {}
        eliminated: List[int] = []
        for comp in netlist.components:
            if not isinstance(comp, VoltageSource) or comp.name in variable_set:
                continue
            if comp.neg == GROUND:
                node, amplitude = comp.pos, comp.amplitude
            elif comp.pos == GROUND:
                node, amplitude = comp.neg, -comp.amplitude
            else:
                continue
            if node in self._known:
                continue
            self._known[node] = amplitude
            eliminated.append(netlist.node_index(node))
            eliminated.append(netlist.branch_index(comp.name))
        keep = [i for i in range(size) if i not in set(eliminated)]
        self._keep = np.array(keep, dtype=int)
        self._known_cols = np.array(
            [netlist.node_index(n) for n in self._known], dtype=int
        )
        self._known_values = np.array(
            [self._known[n] for n in self._known], dtype=complex
        )
        keep_pos = {full: red for red, full in enumerate(keep)}
        self._column_of = {
            node: keep_pos[idx]
            for node, idx in self._node_map.items()
            if idx in keep_pos
        }
        self._branch_column_of = {
            name: keep_pos[idx]
            for name, idx in self._branch_map.items()
            if idx in keep_pos
        }
        # Lazily-built sparse lowering of the plan (symbolic analysis is
        # done once per topology, on first sparse solve).
        self._sparse_data: Optional[_SparsePlanData] = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Full MNA dimension (before elimination)."""
        return self._size

    @property
    def reduced_size(self) -> int:
        """Dimension actually solved per (sample, frequency)."""
        return int(self._keep.size)

    @property
    def known_nodes(self) -> Dict[Hashable, complex]:
        """Nodes with symbolically known voltages (copy)."""
        return dict(self._known)

    # ------------------------------------------------------------------
    def _slot_values(self, values) -> np.ndarray:
        """Normalise per-sample values to a ``(n, n_slots)`` stamp array."""
        n_slots = len(self.variable)
        if isinstance(values, Mapping):
            missing = [name for name in self.variable if name not in values]
            if missing:
                raise SimulationError(f"missing values for components: {missing}")
            cols = [np.asarray(values[name], dtype=float) for name in self.variable]
            arr = np.column_stack(cols) if cols else np.empty((0, 0))
        else:
            arr = np.asarray(values, dtype=float)
            if arr.ndim == 1 and n_slots == 1:
                arr = arr[:, None]
        if arr.ndim != 2 or arr.shape[1] != n_slots:
            raise SimulationError(
                f"expected values of shape (n_samples, {n_slots}), got {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise SimulationError("batched solve requires at least one sample")
        if not np.all(np.isfinite(arr)):
            raise SimulationError("non-finite component values in batch")
        stamped = arr.copy()
        for slot, kind in enumerate(self._slot_kinds):
            col = stamped[:, slot]
            if kind is Resistor:
                if np.any(col <= 0.0):
                    raise SimulationError(
                        f"{self.variable[slot]}: resistance must be > 0"
                    )
                stamped[:, slot] = 1.0 / col
            elif kind is Capacitor:
                if np.any(col < 0.0):
                    raise SimulationError(
                        f"{self.variable[slot]}: capacitance must be >= 0"
                    )
            elif kind is Inductor:
                if np.any(col <= 0.0):
                    raise SimulationError(
                        f"{self.variable[slot]}: inductance must be > 0"
                    )
        return stamped

    def assemble_batched(self, values) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stacked ``(n, m, m)`` G and C plus the shared excitation ``b``."""
        stamped = self._slot_values(values)
        n = stamped.shape[0]
        size = self._size
        out = []
        for mat, base in ((_MAT_G, self._base_g), (_MAT_C, self._base_c)):
            stack = np.broadcast_to(base, (n, size, size)).copy()
            scatter = self._scatter[mat]
            if scatter is not None:
                uniq, projection = scatter
                flat = stack.reshape(n, size * size)
                flat[:, uniq] += stamped @ projection
            out.append(stack)
        return out[0], out[1], self._base_b.copy()

    # ------------------------------------------------------------------
    def _chunk_samples(
        self, n: int, n_freq: int, memory_budget_mb: float, poly: bool = False
    ) -> int:
        """Largest sample chunk whose working set fits the budget."""
        if memory_budget_mb <= 0.0:
            raise SimulationError(
                f"memory budget must be positive, got {memory_budget_mb}"
            )
        m = max(self.reduced_size, 1)
        if poly:
            # Polynomial path: a handful of real (chunk, n_freq) planes
            # (det/numerator parts, denominator, per-column temporaries).
            per_sample = n_freq * 8 * (8 + 6 * m)
        else:
            # Complex systems + RHS + solution + solver workspace headroom.
            per_sample = n_freq * (m * m + 2 * m) * 16 * 3
        chunk = int(memory_budget_mb * 2**20 / per_sample)
        if chunk < 1:
            # The dense stacks cannot hold even one sample: fail loudly
            # instead of silently blowing past the budget.  The sparse
            # backend needs O(nnz) per system and has no such wall.
            raise SimulationError(
                f"dense MNA backend: one sample needs ~{per_sample / 2**20:.1f} MiB "
                f"(reduced size {m}, {n_freq} frequencies), which exceeds "
                f"memory_budget_mb={memory_budget_mb:g}; raise the budget or "
                "solve with backend='sparse'"
            )
        return min(n, chunk)

    def _output_columns(self, outputs) -> List[int]:
        """Reduced column indices to solve for (all of them by default)."""
        if outputs is None:
            return list(range(self.reduced_size))
        want = set()
        for name in outputs:
            if name == GROUND or name in self._known:
                continue
            if name in self._column_of:
                want.add(self._column_of[name])
            elif name in self._branch_column_of:
                want.add(self._branch_column_of[name])
            else:
                raise SimulationError(f"unknown output {name!r}")
        return sorted(want)

    def solve_batched(
        self,
        values,
        freqs,
        memory_budget_mb: float = 512.0,
        outputs: Optional[Sequence[Hashable]] = None,
        backend: Optional[str] = None,
    ) -> BatchedACSolution:
        """Solve all samples over the grid with chunked stacked solves.

        ``values`` is a mapping of component name to ``(n_samples,)``
        primitive values (resistance/capacitance/inductance/gm), or an
        equivalent ``(n_samples, n_variable)`` array in ``self.variable``
        order.  Peak memory is bounded by ``memory_budget_mb``.  When
        ``outputs`` names the only nodes/branches the caller will read,
        the solve skips the Cramer numerators of every other unknown.
        ``backend`` selects the system-solve strategy: ``"dense"``,
        ``"sparse"``, or ``None``/``"auto"`` (dense for small reduced
        cores, sparse — when scipy is importable — beyond
        :data:`repro.linalg.backends.DENSE_AUTO_MAX_REDUCED_SIZE`).
        """
        f = _validate_freqs(freqs)
        m = self._keep.size
        if m == 0:
            raise SimulationError("every unknown was eliminated; nothing to solve")
        backend_name = resolve_mna_backend(backend, m)
        omega = 2.0 * np.pi * f
        want = self._output_columns(outputs)
        slot_of = {red: slot for slot, red in enumerate(want)}
        column_of = {
            node: slot_of[red]
            for node, red in self._column_of.items()
            if red in slot_of
        }
        branch_column_of = {
            name: slot_of[red]
            for name, red in self._branch_column_of.items()
            if red in slot_of
        }

        if backend_name == "sparse":
            stamped = self._slot_values(values)
            n = stamped.shape[0]
            solution = np.empty((len(want), n, f.size), dtype=complex)
            self._solve_sparse(stamped, omega, want, memory_budget_mb, solution)
            if not np.all(np.isfinite(solution)):
                raise SimulationError("non-finite AC solution in batch")
            return BatchedACSolution(
                f, solution, column_of, dict(self._known), branch_column_of
            )

        g_stack, c_stack, b = self.assemble_batched(values)
        n = g_stack.shape[0]
        keep = self._keep
        g_red = g_stack[:, keep[:, None], keep[None, :]]
        c_red = c_stack[:, keep[:, None], keep[None, :]]
        rhs0 = np.broadcast_to(b[keep], (n, m)).astype(complex)
        rhs1 = np.zeros((n, m), dtype=complex)
        if self._known_cols.size:
            kc = self._known_cols
            kv = self._known_values
            rhs0 = rhs0 - g_stack[:, keep[:, None], kc[None, :]] @ kv
            rhs1 = -(c_stack[:, keep[:, None], kc[None, :]] @ kv)

        # The fast path treats det(G + sC) and every Cramer numerator as
        # polynomials in s = j*omega with real (n,)-array coefficients:
        # coefficients are computed once per sample, then evaluated over
        # the grid with real outer products — no stacked (n, n_freq, m, m)
        # complex systems are ever materialised.  Requires a real
        # excitation (always true for the circuit testbenches here).
        use_poly = (
            m <= 3
            and np.all(rhs0.imag == 0.0)
            and np.all(rhs1.imag == 0.0)
        )
        solution = np.empty((len(want), n, f.size), dtype=complex)
        chunk = self._chunk_samples(n, f.size, memory_budget_mb, poly=use_poly)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            if use_poly and _polynomial_solve(
                g_red[start:stop],
                c_red[start:stop],
                rhs0[start:stop].real,
                rhs1[start:stop].real,
                omega,
                solution[:, start:stop],
                want,
            ):
                continue
            systems = (
                g_red[start:stop, None, :, :]
                + 1j * omega[None, :, None, None] * c_red[start:stop, None, :, :]
            )
            rhs = (
                rhs0[start:stop, None, :]
                + 1j * omega[None, :, None] * rhs1[start:stop, None, :]
            )
            x = self._solve_stacked(systems, rhs)
            for slot, red in enumerate(want):
                solution[slot, start:stop] = x[:, :, red]
        if not np.all(np.isfinite(solution)):
            raise SimulationError("non-finite AC solution in batch")
        return BatchedACSolution(
            f, solution, column_of, dict(self._known), branch_column_of
        )

    # ------------------------------------------------------------------
    # sparse backend
    # ------------------------------------------------------------------
    def _sparse_plan(self) -> "_SparsePlanData":
        """Lower the scatter plan to a reduced CSC pattern (built once).

        Symbolic analysis: the union sparsity structure of the reduced
        ``G``/``C`` pair — constant stamps plus every variable-component
        position — is shared by all Monte-Carlo samples and frequencies,
        so it is computed here a single time and cached on the plan.
        Variable entries whose column was eliminated as known contribute
        to the RHS instead (same elimination the dense path performs via
        its ``[keep, known]`` slices).
        """
        if self._sparse_data is not None:
            return self._sparse_data
        keep = self._keep
        m = keep.size
        size = self._size
        full_to_red = np.full(size, -1, dtype=np.int64)
        full_to_red[keep] = np.arange(m, dtype=np.int64)
        known_pos = np.full(size, -1, dtype=np.int64)
        if self._known_cols.size:
            known_pos[self._known_cols] = np.arange(self._known_cols.size, dtype=np.int64)

        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        base_entries = []
        var_entries = []
        rhs_entries = []
        red_ix = np.ix_(keep, keep)
        for base in (self._base_g, self._base_c):
            red = base[red_ix]
            rb, cb = np.nonzero(red)
            base_entries.append((rb, cb, red[rb, cb]))
            rows_parts.append(rb.astype(np.int64))
            cols_parts.append(cb.astype(np.int64))
        for scatter in self._scatter:
            if scatter is None:
                var_entries.append(None)
                rhs_entries.append(None)
                continue
            uniq, _projection = scatter
            r_full = uniq // size
            c_full = uniq % size
            r_red = full_to_red[r_full]
            c_red = full_to_red[c_full]
            in_mat = (r_red >= 0) & (c_red >= 0)
            var_entries.append((np.flatnonzero(in_mat), r_red[in_mat], c_red[in_mat]))
            rows_parts.append(r_red[in_mat])
            cols_parts.append(c_red[in_mat])
            to_rhs = (r_red >= 0) & (known_pos[c_full] >= 0)
            rhs_entries.append(
                (np.flatnonzero(to_rhs), r_red[to_rhs], known_pos[c_full[to_rhs]])
            )
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
        if rows.size == 0:
            raise SimulationError("reduced system has no matrix entries; nothing to solve")
        cols = np.concatenate(cols_parts)
        pattern, slot = _sparse_mna.build_pattern(rows, cols, m)

        # Split the slot array back into the segments appended above.  A
        # matrix without variable entries contributed no segment, so the
        # variable segments are consumed positionally, not zipped.
        offsets = np.cumsum([part.size for part in rows_parts])
        seg = list(np.split(slot, offsets[:-1]))
        base_data = []
        for (rb, _cb, vals), slots in zip(base_entries, seg[:2]):
            data = np.zeros(pattern.nnz)
            np.add.at(data, slots, vals)
            base_data.append(data)
        var_maps: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        var_seg = iter(seg[2:])
        for entry in var_entries:
            if entry is None:
                var_maps.append(None)
            else:
                proj_cols, _r, _c = entry
                var_maps.append((next(var_seg), proj_cols))

        rhs0_base = self._base_b[keep].astype(complex)
        rhs1_base = np.zeros(m, dtype=complex)
        if self._known_cols.size:
            kc = self._known_cols
            kv = self._known_values
            rhs0_base = rhs0_base - self._base_g[np.ix_(keep, kc)] @ kv
            rhs1_base = -(self._base_c[np.ix_(keep, kc)] @ kv)

        self._sparse_data = _SparsePlanData(
            pattern=pattern,
            base_data_g=base_data[0],
            base_data_c=base_data[1],
            var_g=var_maps[0],
            var_c=var_maps[1],
            rhs_g=rhs_entries[0],
            rhs_c=rhs_entries[1],
            rhs0_base=rhs0_base,
            rhs1_base=rhs1_base,
        )
        return self._sparse_data

    def _solve_sparse(
        self,
        stamped: np.ndarray,
        omega: np.ndarray,
        want: Sequence[int],
        memory_budget_mb: float,
        solution: np.ndarray,
    ) -> None:
        """Sparse-backend solve: per-chunk CSC data assembly + splu loop."""
        if memory_budget_mb <= 0.0:
            raise SimulationError(
                f"memory budget must be positive, got {memory_budget_mb}"
            )
        sp = self._sparse_plan()
        pattern = sp.pattern
        n = stamped.shape[0]
        m = self._keep.size
        kv = self._known_values
        # Per-sample working set: two real CSC data rows, two complex RHS
        # rows, factorisation headroom.  O(nnz), never O(m^2).
        per_sample = pattern.nnz * 8 * 2 + m * 16 * 4 + pattern.nnz * 32
        chunk = max(1, min(n, int(memory_budget_mb * 2**20 / per_sample)))
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            sub = stamped[start:stop]
            k = stop - start
            data_g = np.broadcast_to(sp.base_data_g, (k, pattern.nnz)).copy()
            data_c = np.broadcast_to(sp.base_data_c, (k, pattern.nnz)).copy()
            for mat, data, var in (
                (_MAT_G, data_g, sp.var_g),
                (_MAT_C, data_c, sp.var_c),
            ):
                scatter = self._scatter[mat]
                if var is None or var[0].size == 0 or scatter is None:
                    continue
                slots, proj_cols = var
                data[:, slots] += sub @ scatter[1][:, proj_cols]
            rhs0 = np.broadcast_to(sp.rhs0_base, (k, m)).copy()
            rhs1 = np.broadcast_to(sp.rhs1_base, (k, m)).copy()
            for mat, rhs, entry in (
                (_MAT_G, rhs0, sp.rhs_g),
                (_MAT_C, rhs1, sp.rhs_c),
            ):
                scatter = self._scatter[mat]
                if entry is None or entry[0].size == 0 or scatter is None:
                    continue
                proj_cols, rows_red, kv_idx = entry
                contrib = (sub @ scatter[1][:, proj_cols]) * kv[kv_idx]
                np.add.at(
                    rhs,
                    (np.arange(k)[:, None], rows_red[None, :]),
                    -contrib,
                )
            try:
                _sparse_mna.solve_patterned(
                    pattern, data_g, data_c, rhs0, rhs1, omega, want,
                    solution[:, start:stop],
                )
            except SingularMatrixError as exc:
                raise SimulationError(
                    "singular MNA system in batch; check for floating nodes"
                ) from exc

    @staticmethod
    def _solve_stacked(systems: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(k, n_freq, m, m) x = rhs`` — closed form for tiny m."""
        m = systems.shape[-1]
        if m <= 3:
            x = _cramer_solve(systems, rhs)
            if x is not None:
                return x
        try:
            return solve_batched(systems, rhs)
        except SingularMatrixError as exc:
            raise SimulationError(
                "singular MNA system in batch; check for floating nodes"
            ) from exc


# ---------------------------------------------------------------------------
# polynomial (transfer-function) solve for reduced cores of size <= 3
# ---------------------------------------------------------------------------
# A polynomial in s is a list of real (n,)-coefficient arrays, lowest
# degree first; every MNA entry of the reduced system is G + s*C, i.e.
# degree 1, so determinants and Cramer numerators have degree <= m.
_Poly = List[np.ndarray]


def _poly_mul(p: _Poly, q: _Poly) -> _Poly:
    out: List[Optional[np.ndarray]] = [None] * (len(p) + len(q) - 1)
    for i, a in enumerate(p):
        for j, b in enumerate(q):
            term = a * b
            out[i + j] = term if out[i + j] is None else out[i + j] + term
    return out  # type: ignore[return-value]


def _poly_add(p: _Poly, q: _Poly, sign: float = 1.0) -> _Poly:
    out = list(p) + [np.zeros_like(p[0])] * max(0, len(q) - len(p))
    for k, b in enumerate(q):
        out[k] = out[k] + sign * b
    return out


def _poly_det(mat: List[List[_Poly]]) -> _Poly:
    """Determinant polynomial of an ``m x m`` matrix of degree-1 entries."""
    m = len(mat)
    if m == 1:
        return mat[0][0]
    if m == 2:
        return _poly_add(
            _poly_mul(mat[0][0], mat[1][1]), _poly_mul(mat[0][1], mat[1][0]), -1.0
        )
    minor0 = _poly_add(
        _poly_mul(mat[1][1], mat[2][2]), _poly_mul(mat[1][2], mat[2][1]), -1.0
    )
    minor1 = _poly_add(
        _poly_mul(mat[1][0], mat[2][2]), _poly_mul(mat[1][2], mat[2][0]), -1.0
    )
    minor2 = _poly_add(
        _poly_mul(mat[1][0], mat[2][1]), _poly_mul(mat[1][1], mat[2][0]), -1.0
    )
    det = _poly_add(
        _poly_mul(mat[0][0], minor0), _poly_mul(mat[0][1], minor1), -1.0
    )
    return _poly_add(det, _poly_mul(mat[0][2], minor2))


def _poly_eval_jomega(
    p: _Poly, omega_powers: List[np.ndarray], n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate ``sum_k p_k (j*omega)^k`` as real/imag ``(n, n_freq)`` parts.

    ``j^k`` cycles through ``1, j, -1, -j`` so even coefficients land in
    the real part and odd ones in the imaginary part, with alternating
    signs.  All-zero coefficients (common: real excitations kill the odd
    RHS terms) are skipped.
    """
    re: Optional[np.ndarray] = None
    im: Optional[np.ndarray] = None
    for k, coef in enumerate(p):
        if not np.any(coef):
            continue
        term = np.multiply.outer(coef, omega_powers[k])
        quadrant = k % 4
        if quadrant >= 2:
            np.negative(term, out=term)
        if quadrant % 2 == 0:
            re = term if re is None else np.add(re, term, out=re)
        else:
            im = term if im is None else np.add(im, term, out=im)
    shape = (n, omega_powers[0].size)
    if re is None:
        re = np.zeros(shape)
    if im is None:
        im = np.zeros(shape)
    return re, im


def _polynomial_solve(
    g: np.ndarray,
    c: np.ndarray,
    r0: np.ndarray,
    r1: np.ndarray,
    omega: np.ndarray,
    out: np.ndarray,
    want: Sequence[int],
) -> bool:
    """Cramer solve via per-sample polynomial coefficients in ``s = j*omega``.

    Writes the requested columns into ``out`` (``(n_columns, n, n_freq)``)
    and returns True; returns False (caller falls back to the pivoted
    LAPACK path) when the determinant vanishes anywhere on the grid.
    """
    n, m = g.shape[0], g.shape[-1]
    powers: List[np.ndarray] = [np.ones_like(omega)]
    for _ in range(m):
        powers.append(powers[-1] * omega)
    entries = [[[g[:, i, j], c[:, i, j]] for j in range(m)] for i in range(m)]
    det_re, det_im = _poly_eval_jomega(_poly_det(entries), powers, n)
    denom = det_re * det_re
    denom += det_im * det_im
    if not np.all(denom > 0.0):
        return False
    np.reciprocal(denom, out=denom)
    for slot, k in enumerate(want):
        numerator = [
            [[r0[:, i], r1[:, i]] if j == k else entries[i][j] for j in range(m)]
            for i in range(m)
        ]
        num_re, num_im = _poly_eval_jomega(_poly_det(numerator), powers, n)
        column = out[slot]
        real = num_re * det_re
        real += num_im * det_im
        real *= denom
        imag = num_im * det_re
        num_re *= det_im
        imag -= num_re
        imag *= denom
        column.real = real
        column.imag = imag
    return True


def _cramer_solve(a: np.ndarray, rhs: np.ndarray) -> Optional[np.ndarray]:
    """Vectorised Cramer solve for stacked 1x1/2x2/3x3 systems.

    Returns ``None`` when any determinant vanishes (caller falls back to
    the pivoted LAPACK path, which reports singularity properly).  For the
    well-conditioned macromodel cores this is an order of magnitude faster
    than per-matrix LAPACK calls because every operation is elementwise
    over the full (sample, frequency) batch.
    """
    m = a.shape[-1]
    if m == 1:
        det = a[..., 0, 0]
        if np.any(det == 0.0):
            return None
        return rhs / det
    if m == 2:
        a00, a01 = a[..., 0, 0], a[..., 0, 1]
        a10, a11 = a[..., 1, 0], a[..., 1, 1]
        det = a00 * a11 - a01 * a10
        if np.any(det == 0.0):
            return None
        x = np.empty_like(rhs)
        b0, b1 = rhs[..., 0], rhs[..., 1]
        x[..., 0] = (b0 * a11 - a01 * b1) / det
        x[..., 1] = (a00 * b1 - b0 * a10) / det
        return x
    if m == 3:
        a00, a01, a02 = a[..., 0, 0], a[..., 0, 1], a[..., 0, 2]
        a10, a11, a12 = a[..., 1, 0], a[..., 1, 1], a[..., 1, 2]
        a20, a21, a22 = a[..., 2, 0], a[..., 2, 1], a[..., 2, 2]
        c00 = a11 * a22 - a12 * a21
        c01 = a12 * a20 - a10 * a22
        c02 = a10 * a21 - a11 * a20
        det = a00 * c00 + a01 * c01 + a02 * c02
        if np.any(det == 0.0):
            return None
        b0, b1, b2 = rhs[..., 0], rhs[..., 1], rhs[..., 2]
        x = np.empty_like(rhs)
        x[..., 0] = (b0 * c00 + a01 * (a12 * b2 - b1 * a22) + a02 * (b1 * a21 - a11 * b2)) / det
        x[..., 1] = (a00 * (b1 * a22 - a12 * b2) + b0 * c01 + a02 * (a10 * b2 - b1 * a20)) / det
        x[..., 2] = (a00 * (a11 * b2 - b1 * a21) + a01 * (b1 * a20 - a10 * b2) + b0 * c02) / det
        return x
    return None
