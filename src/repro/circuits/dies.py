"""Shared per-die standard-normal draw bank for die-seed circuits.

The die-seed simulator seam (flash ADC, R-2R DAC, SAR ADC) identifies a
Monte-Carlo die by an integer seed: each stage spins up
``np.random.default_rng(SeedSequence(seed))`` and consumes a fixed number
of standard normals in a documented order, so the schematic and
post-layout simulators of the *same die* replay the same raw draws and
their metrics stay physically correlated.

Replaying that per-die RNG loop dominates the vectorized engines, and the
draws are *stage-independent* (stage scaling happens downstream), so one
bank serves both stages of a paired dataset and every repeat of the same
seed bank.  :func:`die_draw_bank` is the generic cache: one read-only
``(n_dies, stride)`` row per die, filled with a single
``standard_normal(out=row)`` call — the identical value sequence a scalar
path obtains from the same generator — keyed by a content hash of the
seeds plus the stride, LRU-bounded so sweeps over many banks cannot grow
without limit.

(:mod:`repro.circuits.adc` predates this module and keeps its private
bank with the same semantics; new die-seed circuits should use this one.)
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["die_draw_bank"]

_BANK_CACHE: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
_BANK_CACHE_MAX_ROWS = 4096
_BANK_LOCK = threading.Lock()


def die_draw_bank(seeds: np.ndarray, stride: int) -> np.ndarray:
    """Standard-normal draws for every die: read-only ``(n_dies, stride)``.

    Row ``i`` holds the first ``stride`` values of
    ``default_rng(SeedSequence(int(seeds[i])))`` — callers slice the row
    into their documented per-die draw layout.  Rows are cached across
    calls (and across simulator stages) under a content hash of the seed
    array plus the stride.
    """
    seeds = np.ascontiguousarray(seeds, dtype=np.int64)
    if seeds.ndim != 1 or seeds.size == 0:
        raise SimulationError("die_draw_bank requires a non-empty 1-D seed array")
    if stride < 1:
        raise SimulationError(f"stride must be >= 1, got {stride}")
    key = (hashlib.sha256(seeds.tobytes()).hexdigest(), int(stride))
    with _BANK_LOCK:
        cached = _BANK_CACHE.get(key)
        if cached is not None:
            _BANK_CACHE.move_to_end(key)
            return cached
    bank = np.empty((seeds.size, stride))
    for i, seed in enumerate(seeds):
        die_rng = np.random.default_rng(np.random.SeedSequence(int(seed)))
        die_rng.standard_normal(out=bank[i])
    bank.flags.writeable = False
    with _BANK_LOCK:
        _BANK_CACHE[key] = bank
        total = sum(b.shape[0] for b in _BANK_CACHE.values())
        while total > _BANK_CACHE_MAX_ROWS and len(_BANK_CACHE) > 1:
            _, evicted = _BANK_CACHE.popitem(last=False)
            total -= evicted.shape[0]
    return bank
