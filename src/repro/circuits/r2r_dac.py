"""Behavioural R-2R ladder DAC (scenario-library circuit block).

A ``b``-bit voltage-mode R-2R ladder: ``b`` branch resistors of ``2R``
(each switched between ground and ``vref`` through a real switch
resistance), ``b - 1`` rung resistors of ``R`` and a ``2R`` terminator.
The output node (MSB side) drives a high-impedance buffer.  Nothing is
idealised away:

* every resistor and switch carries per-die mismatch drawn from the
  shared die-seed stream (:mod:`repro.circuits.dies`), so schematic and
  post-layout runs of the same die are physically correlated;
* the transfer curve comes from an exact nodal solve of the mismatched
  ladder — a batched Thomas (tridiagonal) factorisation per die with all
  ``2^b`` input codes as stacked right-hand sides — so DNL/INL and
  non-monotonicity *emerge* from the resistor network;
* the post-layout variant adds a systematic resistor gradient along the
  ladder (metal/poly sheet-resistance drift), higher switch resistance
  (contact/via stacks), a mismatch inflation, an output-wiring offset and
  a power overhead.

Five correlated metrics per die, in :data:`R2R_DAC_METRIC_NAMES` order:
worst |DNL| and |INL| (LSB, end-point fit on the code-ordered levels —
see :func:`repro.circuits.linearity.inl_dnl_from_dac_levels`), gain
error (relative), output offset (V) and power (W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.circuits.dies import die_draw_bank
from repro.circuits.linearity import LinearityResult, inl_dnl_from_dac_levels
from repro.exceptions import SimulationError

__all__ = ["R2RDACDesign", "R2RDACMetrics", "R2RLadderDAC", "R2R_DAC_METRIC_NAMES"]

#: Metric ordering used by every returned array.
R2R_DAC_METRIC_NAMES: Tuple[str, ...] = (
    "dnl_max",      # LSB
    "inl_max",      # LSB
    "gain_error",   # relative full-scale error
    "offset",       # V
    "power",        # W
)


@dataclass(frozen=True)
class R2RDACDesign:
    """Architecture and nominal electrical parameters of the ladder."""

    n_bits: int = 8
    vref: float = 1.8
    r_unit: float = 10e3         # ladder "R" (ohms)
    sigma_r_rel: float = 1.2e-3  # per-resistor relative mismatch std
    r_switch: float = 120.0      # switch on-resistance (ohms)
    sigma_switch_rel: float = 0.08  # per-switch relative mismatch std
    sigma_offset: float = 0.8e-3    # output buffer input offset std (V)
    buffer_current: float = 150e-6  # output buffer bias (A)
    sigma_bias_rel: float = 0.05    # buffer bias mismatch

    def __post_init__(self) -> None:
        if not 4 <= self.n_bits <= 12:
            raise SimulationError(f"n_bits must lie in [4, 12], got {self.n_bits}")
        if self.r_unit <= 0.0 or self.r_switch < 0.0:
            raise SimulationError("ladder resistances must be positive")

    @property
    def n_codes(self) -> int:
        """``2^b`` input codes."""
        return 1 << self.n_bits

    @property
    def lsb(self) -> float:
        """Ideal output step in volts."""
        return self.vref / self.n_codes


@dataclass(frozen=True)
class _R2RLayoutEffects:
    """Post-layout deviations (all neutral at schematic level)."""

    mismatch_inflation: float = 1.0  # multiplies resistor/offset mismatch
    gradient_rel: float = 0.0        # full-ladder linear resistor drift
    switch_derate: float = 0.0       # relative switch-resistance increase
    offset_v: float = 0.0            # output wiring/buffer systematic offset
    power_overhead_rel: float = 0.0


@dataclass(frozen=True)
class R2RDACMetrics:
    """The five measured performances of one simulated die."""

    dnl_max: float
    inl_max: float
    gain_error: float
    offset: float
    power: float

    def as_array(self) -> np.ndarray:
        """Metrics in :data:`R2R_DAC_METRIC_NAMES` order."""
        return np.array(
            [self.dnl_max, self.inl_max, self.gain_error, self.offset, self.power]
        )


class R2RLadderDAC:
    """Simulator for one design stage of the R-2R converter.

    Build stage pairs with :meth:`schematic` / :meth:`post_layout` and feed
    both the *same die seeds* so early/late samples are correlated.
    """

    def __init__(
        self, design: R2RDACDesign, layout: Optional[_R2RLayoutEffects] = None
    ) -> None:
        self.design = design
        self.layout = layout if layout is not None else _R2RLayoutEffects()

    # ------------------------------------------------------------------
    @classmethod
    def schematic(cls, design: Optional[R2RDACDesign] = None) -> "R2RLadderDAC":
        """Early-stage simulator: ideal layout."""
        return cls(design if design is not None else R2RDACDesign())

    @classmethod
    def post_layout(cls, design: Optional[R2RDACDesign] = None) -> "R2RLadderDAC":
        """Late-stage simulator with extracted layout effects."""
        return cls(
            design if design is not None else R2RDACDesign(),
            _R2RLayoutEffects(
                mismatch_inflation=1.03,
                gradient_rel=1.5e-3,
                switch_derate=0.18,
                offset_v=0.6e-3,
                power_overhead_rel=0.08,
            ),
        )

    # ------------------------------------------------------------------
    # per-die draw layout (single standard_normal stream, fixed order):
    #   branch z   [0, b)          2R branch resistor mismatch
    #   rung z     [b, 2b-1)       R rung resistor mismatch
    #   term z     [2b-1]          2R terminator mismatch
    #   switch z   [2b, 3b)        switch on-resistance mismatch
    #   bias z     [3b]            buffer bias mismatch
    #   offset z   [3b+1]          buffer input offset
    @property
    def _stride(self) -> int:
        return 3 * self.design.n_bits + 2

    def _conductances(
        self, z: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ladder conductances of each die from its draw rows ``(n, stride)``.

        Returns ``(g_branch, g_rung, g_term)`` with shapes ``(n, b)``,
        ``(n, b-1)`` and ``(n,)``.  Branch conductance includes the switch
        in series.  The layout gradient tilts every resistor linearly with
        its position along the ladder (terminator at -1/2, MSB at +1/2).
        """
        design = self.design
        layout = self.layout
        b = design.n_bits
        infl = layout.mismatch_inflation
        sig_r = design.sigma_r_rel * infl

        # Positions along the physical ladder: terminator, then rung i
        # between nodes i and i+1, with branch i adjacent to node i.
        pos_branch = (np.arange(b) / max(b - 1, 1)) - 0.5
        pos_rung = ((np.arange(b - 1) + 0.5) / max(b - 1, 1)) - 0.5

        grad_b = 1.0 + layout.gradient_rel * pos_branch
        grad_r = 1.0 + layout.gradient_rel * pos_rung
        grad_t = 1.0 - 0.5 * layout.gradient_rel

        r2 = 2.0 * design.r_unit
        branch_r = r2 * (1.0 + sig_r * z[:, :b]) * grad_b
        rung_r = design.r_unit * (1.0 + sig_r * z[:, b : 2 * b - 1]) * grad_r
        term_r = r2 * (1.0 + sig_r * z[:, 2 * b - 1]) * grad_t

        r_sw = design.r_switch * (1.0 + layout.switch_derate)
        switch_r = r_sw * (1.0 + design.sigma_switch_rel * z[:, 2 * b : 3 * b])

        branch_total = np.maximum(branch_r + switch_r, 0.05 * r2)
        rung_r = np.maximum(rung_r, 0.05 * design.r_unit)
        term_r = np.maximum(term_r, 0.05 * r2)
        return 1.0 / branch_total, 1.0 / rung_r, 1.0 / term_r

    def _code_bits(self) -> np.ndarray:
        """``(n_codes, b)`` bit matrix, LSB first (bit i drives node i)."""
        design = self.design
        codes = np.arange(design.n_codes)
        bits = (codes[:, None] >> np.arange(design.n_bits)[None, :]) & 1
        return bits.astype(float)

    def _ladder_levels(
        self,
        g_branch: np.ndarray,
        g_rung: np.ndarray,
        g_term: np.ndarray,
        bits: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Solve the ladder for every (die, code) pair.

        One Thomas factorisation per die (the conductance matrix does not
        depend on the code), then all codes as stacked right-hand sides.
        Returns ``(levels, i_ref)``: output voltages ``(n, n_codes)`` and
        the mean reference-rail current per die ``(n,)``.
        """
        design = self.design
        b = design.n_bits
        n = g_branch.shape[0]
        n_codes = bits.shape[0]

        # Tridiagonal coefficients per die: diag d_i, off-diagonal -g_rung.
        diag = g_branch.copy()
        diag[:, 0] += g_term
        if b > 1:
            diag[:, :-1] += g_rung
            diag[:, 1:] += g_rung

        # Thomas factorisation (die-wise, b is tiny).
        denom = np.empty((n, b))
        w = np.zeros((n, b))
        denom[:, 0] = diag[:, 0]
        for i in range(1, b):
            w[:, i] = -g_rung[:, i - 1] / denom[:, i - 1]
            denom[:, i] = diag[:, i] + w[:, i] * g_rung[:, i - 1]

        # Right-hand sides for all codes: rhs[d, c, i] = bit_ci * gb_di * vref.
        rhs = bits[None, :, :] * g_branch[:, None, :] * design.vref

        # Forward elimination / back substitution, vectorized over (die, code).
        y = np.empty((n, n_codes, b))
        y[:, :, 0] = rhs[:, :, 0]
        for i in range(1, b):
            y[:, :, i] = rhs[:, :, i] - w[:, i, None] * y[:, :, i - 1]
        v = np.empty((n, n_codes, b))
        v[:, :, b - 1] = y[:, :, b - 1] / denom[:, b - 1, None]
        for i in range(b - 2, -1, -1):
            v[:, :, i] = (y[:, :, i] + g_rung[:, i, None] * v[:, :, i + 1]) / denom[
                :, i, None
            ]

        levels = v[:, :, b - 1]
        # Current drawn from the reference rail: through every branch whose
        # bit is high, (vref - v_node) * g_branch; averaged over codes.
        i_codes = np.sum(
            bits[None, :, :] * g_branch[:, None, :] * (design.vref - v), axis=2
        )
        return levels, np.mean(i_codes, axis=1)

    # ------------------------------------------------------------------
    def _metrics_from_rows(self, z: np.ndarray) -> np.ndarray:
        """Metrics matrix for a bank of draw rows ``(n, stride)``."""
        design = self.design
        layout = self.layout
        b = design.n_bits

        g_branch, g_rung, g_term = self._conductances(z)
        bits = self._code_bits()
        levels, i_ref = self._ladder_levels(g_branch, g_rung, g_term, bits)

        offset = (
            design.sigma_offset * layout.mismatch_inflation * z[:, 3 * b + 1]
            + layout.offset_v
        )
        levels = levels + offset[:, None]

        # End-point linearity on the code-ordered curve (vectorized mirror
        # of inl_dnl_from_dac_levels; no sorting — see that function).
        span = levels[:, -1] - levels[:, 0]
        if np.any(span <= 0.0):
            raise SimulationError("degenerate ladder: non-positive full scale")
        lsb = span / (design.n_codes - 1)
        ideal = levels[:, :1] + lsb[:, None] * np.arange(design.n_codes)
        inl = (levels - ideal) / lsb[:, None]
        dnl = np.diff(levels, axis=1) / lsb[:, None] - 1.0
        dnl_max = np.max(np.abs(dnl), axis=1)
        inl_max = np.max(np.abs(inl), axis=1)

        ideal_span = design.vref * (design.n_codes - 1) / design.n_codes
        gain_error = span / ideal_span - 1.0
        out_offset = levels[:, 0]

        bias = design.buffer_current * (1.0 + design.sigma_bias_rel * z[:, 3 * b])
        bias = np.maximum(bias, 0.0)
        nominal_core = design.buffer_current + design.vref / (2.0 * design.r_unit)
        power = design.vref * (
            i_ref + bias + layout.power_overhead_rel * nominal_core
        )
        return np.column_stack([dnl_max, inl_max, gain_error, out_offset, power])

    # ------------------------------------------------------------------
    def simulate(self, die_seed: int) -> R2RDACMetrics:
        """Measure the five metrics of die ``die_seed``.

        The seed identifies the *die*: calling the schematic and
        post-layout simulators with the same seed replays the same
        mismatch draws through both stages.
        """
        die_rng = np.random.default_rng(np.random.SeedSequence(int(die_seed)))
        z = die_rng.standard_normal(self._stride)
        row = self._metrics_from_rows(z[None, :])[0]
        return R2RDACMetrics(*[float(x) for x in row])

    def simulate_nominal(self) -> R2RDACMetrics:
        """Variation-free run (``P_NOM`` for the Sec. 4.1 shift).

        Zeroed mismatch, but the deterministic layout effects (gradient,
        switch derate, wiring offset, overhead) stay — mirroring a nominal
        post-layout SPICE run.
        """
        row = self._metrics_from_rows(np.zeros((1, self._stride)))[0]
        return R2RDACMetrics(*[float(x) for x in row])

    def transfer_levels(self, die_seed: int) -> np.ndarray:
        """Output voltage per input code for one die (``(2^b,)``)."""
        die_rng = np.random.default_rng(np.random.SeedSequence(int(die_seed)))
        z = die_rng.standard_normal(self._stride)[None, :]
        g_branch, g_rung, g_term = self._conductances(z)
        levels, _ = self._ladder_levels(g_branch, g_rung, g_term, self._code_bits())
        offset = (
            self.design.sigma_offset
            * self.layout.mismatch_inflation
            * z[0, 3 * self.design.n_bits + 1]
            + self.layout.offset_v
        )
        return levels[0] + offset

    def measure_linearity(self, die_seed: int) -> LinearityResult:
        """Static INL/DNL of one die's code-ordered transfer curve."""
        return inl_dnl_from_dac_levels(self.transfer_levels(die_seed))

    # ------------------------------------------------------------------
    #: Dies per vectorized sweep; the (dies, codes, bits) solve planes for
    #: a 12-bit ladder stay well under typical cache budgets at this size.
    _PIPELINE_CHUNK = 64

    def simulate_batch(
        self,
        die_seeds,
        engine: str = "vectorized",
        memory_budget_mb: float = 512.0,
        n_jobs: Optional[int] = None,
    ) -> np.ndarray:
        """Metrics matrix ``(len(die_seeds), 5)`` in metric-name order.

        Same seam as the flash ADC: ``engine="vectorized"`` (default)
        factorises and solves whole die chunks at once, ``engine="loop"``
        is the per-die reference path; ``n_jobs`` shards the bank across
        forked workers with order-preserving reassembly.
        """
        seeds = np.atleast_1d(np.asarray(die_seeds, dtype=np.int64))
        if seeds.size == 0:
            raise SimulationError("simulate_batch requires at least one die seed")
        if engine == "loop":
            return np.array([self.simulate(int(s)).as_array() for s in seeds])
        if engine != "vectorized":
            raise SimulationError(
                f"unknown simulate_batch engine {engine!r} (use 'vectorized' or 'loop')"
            )
        from repro.experiments.parallel import (
            fork_available,
            replicate,
            resolve_n_jobs,
        )

        jobs = min(resolve_n_jobs(n_jobs), seeds.size)
        if jobs > 1 and fork_available():
            shards = [s for s in np.array_split(seeds, jobs) if s.size]
            parts = replicate(
                lambda shard: self._simulate_chunked(shard, memory_budget_mb),
                shards,
                n_jobs=jobs,
            )
            return np.vstack(parts)
        return self._simulate_chunked(seeds, memory_budget_mb)

    def _simulate_chunked(
        self, seeds: np.ndarray, memory_budget_mb: float
    ) -> np.ndarray:
        """Run the vectorized engine in memory-bounded die chunks."""
        if memory_budget_mb <= 0.0:
            raise SimulationError(
                f"memory_budget_mb must be positive, got {memory_budget_mb}"
            )
        design = self.design
        # Per-die working set: the (codes, bits) rhs/forward/back planes
        # plus levels/INL/DNL rows, in float64.
        per_die = design.n_codes * (3 * design.n_bits + 6) * 8
        budget_rows = int(memory_budget_mb * 2**20 // per_die)
        chunk = max(1, min(self._PIPELINE_CHUNK, budget_rows))
        bank = die_draw_bank(seeds, self._stride)
        if seeds.size <= chunk:
            return self._metrics_from_rows(bank)
        return np.vstack(
            [
                self._metrics_from_rows(bank[start : start + chunk])
                for start in range(0, seeds.size, chunk)
            ]
        )
