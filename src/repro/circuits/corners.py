"""Process-corner populations for multi-population experiments.

Reference [7] (which the paper extends) motivates BMF with "simulation and
measurement data under different circuit configurations and corners [that]
are strongly correlated".  This module manufactures that setting on the
op-amp substrate: each named corner is a deterministic global process
offset (slow/fast NMOS and PMOS) superimposed on the usual random
variations, giving several *correlated populations* of the same circuit.

The standard five-corner set is provided; magnitudes are expressed in
multiples of the global sigma so they track the process model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.montecarlo import PairedDataset
from repro.circuits.opamp import OPAMP_METRIC_NAMES, OpAmpDesign, TwoStageOpAmp
from repro.circuits.process import GlobalVariation, ProcessSample
from repro.exceptions import SimulationError

__all__ = ["CornerSpec", "STANDARD_CORNERS", "generate_corner_datasets"]


@dataclass(frozen=True)
class CornerSpec:
    """A named process corner: deterministic global offsets in sigma units."""

    name: str
    nmos_sigma: float  # positive = slow NMOS (higher Vth, lower mobility)
    pmos_sigma: float

    def apply(self, sample: ProcessSample, sigma_vth: float, sigma_kp: float) -> ProcessSample:
        """Shift a random process sample to this corner."""
        g = sample.global_variation
        return ProcessSample(
            global_variation=GlobalVariation(
                dvth_n=g.dvth_n + self.nmos_sigma * sigma_vth,
                dvth_p=g.dvth_p + self.pmos_sigma * sigma_vth,
                dkp_rel_n=g.dkp_rel_n - self.nmos_sigma * sigma_kp,
                dkp_rel_p=g.dkp_rel_p - self.pmos_sigma * sigma_kp,
                temp_delta=g.temp_delta,
            ),
            local=sample.local,
        )


#: The classical five-corner set.
STANDARD_CORNERS: Tuple[CornerSpec, ...] = (
    CornerSpec("TT", 0.0, 0.0),
    CornerSpec("SS", 1.5, 1.5),
    CornerSpec("FF", -1.5, -1.5),
    CornerSpec("SF", 1.5, -1.5),
    CornerSpec("FS", -1.5, 1.5),
)


def generate_corner_datasets(
    corners: Tuple[CornerSpec, ...] = STANDARD_CORNERS,
    n_samples: int = 500,
    seed: int = 2015,
    design: Optional[OpAmpDesign] = None,
) -> Dict[str, PairedDataset]:
    """Paired early/late op-amp banks, one per corner, sharing random draws.

    The *same* random process samples are re-centred at each corner, so
    cross-corner correlation comes from the shared randomness — the
    structure multi-population fusion exploits.
    """
    if n_samples < 2:
        raise SimulationError(f"n_samples must be >= 2, got {n_samples}")
    if not corners:
        raise SimulationError("at least one corner required")
    names = [c.name for c in corners]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate corner names: {names}")

    early_sim = TwoStageOpAmp.schematic(design)
    late_sim = TwoStageOpAmp.post_layout(design)
    model = early_sim.process_model()
    rng = np.random.default_rng(seed)
    base_samples = model.sample(early_sim.devices, n_samples, rng)

    out: Dict[str, PairedDataset] = {}
    for corner in corners:
        shifted = [
            corner.apply(s, model.sigma_vth_global, model.sigma_kp_rel_global)
            for s in base_samples
        ]
        nominal = corner.apply(
            model.nominal_sample(early_sim.devices),
            model.sigma_vth_global,
            model.sigma_kp_rel_global,
        )
        out[corner.name] = PairedDataset(
            early=early_sim.simulate_batch(shifted),
            late=late_sim.simulate_batch(shifted),
            early_nominal=early_sim.simulate(nominal).as_array(),
            late_nominal=late_sim.simulate(nominal).as_array(),
            metric_names=OPAMP_METRIC_NAMES,
        )
    return out
