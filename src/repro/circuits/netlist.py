"""Netlist container: components plus node bookkeeping.

A :class:`Netlist` owns a set of components, assigns integer indices to
non-ground nodes and auxiliary branch currents, and validates connectivity
before the MNA solver touches it.  The index maps are what let
:mod:`repro.circuits.mna` assemble dense matrices directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.circuits.components import (
    GROUND,
    Capacitor,
    Component,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VoltageSource,
)
from repro.exceptions import NetlistError

__all__ = ["Netlist"]


class Netlist:
    """An ordered collection of components with node/branch indexing.

    Components may be supplied at construction or added with :meth:`add`.
    Node indices are assigned in first-appearance order, which makes
    matrix layouts reproducible for tests.
    """

    def __init__(self, components: Optional[Iterable[Component]] = None, title: str = "") -> None:
        self.title = title
        self._components: List[Component] = []
        self._names: Dict[str, Component] = {}
        self._node_index: Dict[Hashable, int] = {}
        self._branch_index: Dict[str, int] = {}
        for comp in components or ():
            self.add(comp)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> "Netlist":
        """Add a component; names must be unique within the netlist."""
        if not isinstance(component, Component):
            raise NetlistError(f"expected a Component, got {type(component).__name__}")
        if component.name in self._names:
            raise NetlistError(f"duplicate component name {component.name!r}")
        self._names[component.name] = component
        self._components.append(component)
        for node in component.nodes():
            if node != GROUND and node not in self._node_index:
                self._node_index[node] = len(self._node_index)
        if component.needs_branch_current:
            self._branch_index[component.name] = len(self._branch_index)
        return self

    # convenience builders -------------------------------------------------
    def resistor(self, name: str, pos, neg, resistance: float) -> "Netlist":
        """Add a :class:`Resistor` and return self for chaining."""
        return self.add(Resistor(name, pos, neg, resistance))

    def capacitor(self, name: str, pos, neg, capacitance: float) -> "Netlist":
        """Add a :class:`Capacitor` and return self for chaining."""
        return self.add(Capacitor(name, pos, neg, capacitance))

    def inductor(self, name: str, pos, neg, inductance: float) -> "Netlist":
        """Add an :class:`Inductor` and return self for chaining."""
        return self.add(Inductor(name, pos, neg, inductance))

    def vccs(self, name: str, pos, neg, ctrl_pos, ctrl_neg, gm: float) -> "Netlist":
        """Add a :class:`VCCS` and return self for chaining."""
        return self.add(VCCS(name, pos, neg, ctrl_pos, ctrl_neg, gm))

    def current_source(self, name: str, pos, neg, amplitude: complex = 1.0) -> "Netlist":
        """Add a :class:`CurrentSource` and return self for chaining."""
        return self.add(CurrentSource(name, pos, neg, amplitude))

    def voltage_source(self, name: str, pos, neg, amplitude: complex = 1.0) -> "Netlist":
        """Add a :class:`VoltageSource` and return self for chaining."""
        return self.add(VoltageSource(name, pos, neg, amplitude))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> List[Component]:
        """Components in insertion order (read-only copy)."""
        return list(self._components)

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_index)

    @property
    def n_branches(self) -> int:
        """Number of auxiliary branch-current unknowns."""
        return len(self._branch_index)

    @property
    def size(self) -> int:
        """Total MNA system dimension."""
        return self.n_nodes + self.n_branches

    def node_index(self, node: Hashable) -> int:
        """Matrix row/column of a node; ``-1`` denotes ground."""
        if node == GROUND:
            return -1
        try:
            return self._node_index[node]
        except KeyError as exc:
            raise NetlistError(f"unknown node {node!r}") from exc

    def branch_index(self, name: str) -> int:
        """Matrix row/column of a component's auxiliary branch current."""
        try:
            return self.n_nodes + self._branch_index[name]
        except KeyError as exc:
            raise NetlistError(f"component {name!r} has no branch current") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __getitem__(self, name: str) -> Component:
        try:
            return self._names[name]
        except KeyError as exc:
            raise NetlistError(f"no component named {name!r}") from exc

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist(title={self.title!r}, components={len(self)}, "
            f"nodes={self.n_nodes}, branches={self.n_branches})"
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity before simulation.

        * at least one component references ground (otherwise the system
          matrix is singular by construction);
        * every node connects to at least two component terminals, except
          VCCS control terminals which sense without loading.
        """
        if not self._components:
            raise NetlistError("netlist is empty")
        touches_ground = False
        load_count: Dict[Hashable, int] = {node: 0 for node in self._node_index}
        for comp in self._components:
            conducting_nodes = comp.nodes()
            if isinstance(comp, VCCS):
                conducting_nodes = (comp.pos, comp.neg)
            for node in conducting_nodes:
                if node == GROUND:
                    touches_ground = True
                else:
                    load_count[node] += 1
        if not touches_ground:
            raise NetlistError("no component references the ground node")
        dangling = [node for node, count in load_count.items() if count == 0]
        if dangling:
            raise NetlistError(f"nodes with no conducting connection: {dangling!r}")
