"""Behavioural folded-cascode OTA — a third workload beyond the paper.

The paper evaluates on a two-stage op-amp and a flash ADC; a downstream
user's first question is "does this work on *my* circuit?".  The
folded-cascode operational transconductance amplifier is the other
canonical analog block, with a different metric profile:

* single high-impedance node → gain set by cascoded output resistance,
* no Miller compensation → the load capacitor is the compensation,
* five metrics: **gain, unity-gain bandwidth (GBW), power, offset,
  slew rate** — note GBW and slew rate replace the two-stage amp's
  -3 dB/PM pair.

Implementation mirrors :mod:`repro.circuits.opamp`: square-law devices,
exact mirror bias physics, an MNA solve of the single-pole macromodel with
a parasitic pole at the cascode node, and a post-layout variant carrying
parasitics plus the same two nominal-vs-population bias mechanisms
(proximity quadratic, extraction derate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.devices import Mosfet, MosfetGeometry, MosfetProcess
from repro.circuits.mna import ACAnalysis
from repro.circuits.netlist import Netlist
from repro.circuits.process import ProcessSample, ProcessVariationModel
from repro.exceptions import SimulationError

__all__ = ["FoldedCascodeDesign", "OTAMetrics", "FoldedCascodeOTA", "OTA_METRIC_NAMES"]

#: Metric ordering used by every returned array.
OTA_METRIC_NAMES: Tuple[str, ...] = (
    "gain",       # linear V/V
    "gbw",        # Hz (unity-gain bandwidth)
    "power",      # W
    "offset",     # V
    "slew_rate",  # V/s
)


@dataclass(frozen=True)
class FoldedCascodeDesign:
    """Sizing and bias plan of the folded-cascode OTA."""

    vdd: float = 1.2
    i_bias: float = 20e-6     # reference through the diode device
    c_load: float = 2.0e-12

    nmos: MosfetProcess = field(
        default_factory=lambda: MosfetProcess(vth=0.45, kp=4.0e-4, lambda_=0.12)
    )
    pmos: MosfetProcess = field(
        default_factory=lambda: MosfetProcess(vth=0.45, kp=2.0e-4, lambda_=0.16)
    )

    def devices(self) -> List[Tuple[Mosfet, str]]:
        """Transistor inventory: input pair, folding cascodes, mirrors.

        Sizing realises (via the square-law mirror physics) a ~120 uA tail
        and ~60 uA per cascode branch at the nominal corner.
        """
        um = 1e-6
        geo = MosfetGeometry
        return [
            # PMOS input differential pair (folded topology).
            (Mosfet("M1", geo(16 * um, 0.12 * um), self.pmos), "p"),
            (Mosfet("M2", geo(16 * um, 0.12 * um), self.pmos), "p"),
            # NMOS cascode devices at the folding node.
            (Mosfet("M3", geo(6 * um, 0.12 * um), self.nmos), "n"),
            (Mosfet("M4", geo(6 * um, 0.12 * um), self.nmos), "n"),
            # PMOS cascode current sources (output top).
            (Mosfet("M5", geo(10 * um, 0.24 * um), self.pmos), "p"),
            (Mosfet("M6", geo(10 * um, 0.24 * um), self.pmos), "p"),
            # NMOS mirror bottom devices.
            (Mosfet("M7", geo(4 * um, 0.24 * um), self.nmos), "n"),
            (Mosfet("M8", geo(4 * um, 0.24 * um), self.nmos), "n"),
            # Tail current source (PMOS) and the bias diode.
            (Mosfet("M9", geo(7.2 * um, 0.24 * um), self.pmos), "p"),
            (Mosfet("M10", geo(1.2 * um, 0.24 * um), self.pmos), "p"),
        ]


@dataclass(frozen=True)
class OTAMetrics:
    """The five measured performances of one simulated die."""

    gain: float
    gbw: float
    power: float
    offset: float
    slew_rate: float

    def as_array(self) -> np.ndarray:
        """Metrics in :data:`OTA_METRIC_NAMES` order."""
        return np.array(
            [self.gain, self.gbw, self.power, self.offset, self.slew_rate]
        )


@dataclass(frozen=True)
class _OTAParasitics:
    """Post-layout deviations (all zero at schematic level)."""

    c_out: float = 0.0            # routing capacitance at the output
    c_fold: float = 0.0           # parasitic at the folding node
    offset_systematic: float = 0.0
    power_overhead_rel: float = 0.0   # additive, referenced to nominal
    proximity_quad: float = 0.0
    extraction_derate: float = 0.0


class FoldedCascodeOTA:
    """Simulator for one design stage of the folded-cascode OTA."""

    _FREQ_GRID = np.logspace(1, 11, 321)

    def __init__(
        self,
        design: FoldedCascodeDesign,
        parasitics: Optional[_OTAParasitics] = None,
    ) -> None:
        self.design = design
        self.parasitics = parasitics if parasitics is not None else _OTAParasitics()
        self._devices = design.devices()

    # ------------------------------------------------------------------
    @classmethod
    def schematic(cls, design: Optional[FoldedCascodeDesign] = None) -> "FoldedCascodeOTA":
        """Early-stage simulator."""
        return cls(design if design is not None else FoldedCascodeDesign())

    @classmethod
    def post_layout(cls, design: Optional[FoldedCascodeDesign] = None) -> "FoldedCascodeOTA":
        """Late-stage simulator with extracted layout effects."""
        return cls(
            design if design is not None else FoldedCascodeDesign(),
            _OTAParasitics(
                c_out=0.15e-12,
                c_fold=20e-15,
                offset_systematic=0.6e-3,
                power_overhead_rel=0.05,
                proximity_quad=0.04,
                extraction_derate=0.20,
            ),
        )

    # ------------------------------------------------------------------
    @property
    def devices(self) -> List[Mosfet]:
        """Nominal device instances (for process-model sampling)."""
        return [dev for dev, _pol in self._devices]

    def process_model(self) -> ProcessVariationModel:
        """Default variation model (same technology class as the op-amp)."""
        return ProcessVariationModel(
            sigma_vth_global=0.012,
            sigma_kp_rel_global=0.045,
            polarity_correlation=0.6,
        )

    # ------------------------------------------------------------------
    def _varied_devices(self, sample: ProcessSample) -> Dict[str, Mosfet]:
        out: Dict[str, Mosfet] = {}
        par = self.parasitics
        for dev, pol in self._devices:
            varied = sample.apply(dev, pol)
            dvth, dkp = varied.dvth, varied.dkp_rel
            if par.proximity_quad != 0.0:
                dvth = dvth + par.proximity_quad * dvth * dvth / 0.012
            out[dev.name] = dev.with_variation(dvth, dkp)
        return out

    def _bias_currents(self, devs: Dict[str, Mosfet]) -> Tuple[float, float]:
        """Tail and branch currents from square-law mirror physics.

        The PMOS diode M10 carries ``i_bias``; tail device M9 mirrors it
        (6x by sizing), and the branch current sources M5/M6 each carry
        half the tail by construction of the folded branch bias.
        """
        design = self.design
        m10 = devs["M10"]
        vov10 = math.sqrt(2.0 * design.i_bias / m10.beta)
        vgs = m10.vth_effective + vov10

        m9 = devs["M9"]
        vov9 = vgs - m9.vth_effective
        if vov9 <= 0.0:
            raise SimulationError("M9: tail device cut off")
        i_tail = 0.5 * m9.beta * vov9 * vov9
        i_branch = i_tail / 2.0
        return i_tail, i_branch

    # ------------------------------------------------------------------
    def _macromodel(
        self,
        devs: Dict[str, Mosfet],
        i_tail: float,
        i_branch: float,
        cap_scale: float = 1.0,
    ) -> Netlist:
        """Single-pole cascode macromodel with a folding-node pole.

        The cascode output resistance is ``(gm_casc / gds_casc) * ro`` on
        both stacks; the folding node adds a parasitic pole through the
        cascode device's 1/gm impedance.
        """
        par = self.parasitics
        i_half = i_tail / 2.0

        ss1 = devs["M1"].small_signal(i_half)
        ss3 = devs["M3"].small_signal(i_branch)
        ss5 = devs["M5"].small_signal(i_branch)
        ss7 = devs["M7"].small_signal(i_branch)

        gm1 = ss1.gm
        # Cascoded output resistances (looking up and down from output).
        r_down = (ss3.gm / ss3.gds) * (1.0 / ss7.gds)
        r_up = (ss5.gm / ss5.gds) * (1.0 / devs["M6"].small_signal(i_branch).gds)
        r_out = 1.0 / (1.0 / r_down + 1.0 / r_up)
        c_out = (self.design.c_load + ss3.cgg * 0.3 + par.c_out) * cap_scale
        # Folding node: impedance ~ 1/gm3, capacitance from M1/M3/M7.
        r_fold = 1.0 / ss3.gm
        c_fold = (ss1.cgg * 0.4 + ss3.cgg + ss7.cgg * 0.5 + par.c_fold) * cap_scale

        net = Netlist(title="folded-cascode OTA macromodel")
        net.voltage_source("Vin", "in", "0", 1.0)
        # Input pair injects current into the folding node.
        net.vccs("Ggm1", "fold", "0", "in", "0", gm1)
        net.resistor("Rfold", "fold", "0", r_fold)
        net.capacitor("Cfold", "fold", "0", c_fold)
        # Cascode transfer: current through M3 onto the output node.
        # The cascode passes the folding-node current with unity gain:
        # i_out = gm3 * v_fold * r_fold ~ v_fold / r_fold.
        net.vccs("Gcasc", "out", "0", "fold", "0", ss3.gm)
        net.resistor("Rout", "out", "0", r_out)
        net.capacitor("Cout", "out", "0", c_out)
        return net

    def _offset(self, devs: Dict[str, Mosfet], i_tail: float) -> float:
        i_half = i_tail / 2.0
        ss1 = devs["M1"].small_signal(i_half)
        ss7 = devs["M7"].small_signal(i_half)
        dvth_pair = devs["M1"].dvth - devs["M2"].dvth
        dvth_mirror = devs["M7"].dvth - devs["M8"].dvth
        dbeta_pair = devs["M1"].dkp_rel - devs["M2"].dkp_rel
        return (
            dvth_pair
            + (ss7.gm / ss1.gm) * dvth_mirror
            + (ss1.vov / 2.0) * dbeta_pair
            + self.parasitics.offset_systematic
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _cap_variation(sample: ProcessSample) -> float:
        """Die-level capacitor variation tied to the oxide/mobility state.

        Gate-oxide thickness drives both the mobility factor and the MOS
        capacitances, so the die's capacitors track the average global
        ``kp`` deviation with a partial (0.35) sensitivity.  This is what
        keeps slew rate (``I / C``) from being perfectly collinear with
        power (``~ I``), as it would be with ideal capacitors.
        """
        g = sample.global_variation
        return 1.0 + 0.35 * 0.5 * (g.dkp_rel_n + g.dkp_rel_p)

    def simulate(self, sample: ProcessSample) -> OTAMetrics:
        """Measure the five metrics for one process draw."""
        devs = self._varied_devices(sample)
        i_tail, i_branch = self._bias_currents(devs)
        cap_scale = self._cap_variation(sample)
        net = self._macromodel(devs, i_tail, i_branch, cap_scale)
        solution = ACAnalysis(net).solve(self._FREQ_GRID)
        h = solution.transfer("out", "in")

        mag = np.abs(h)
        gain = float(mag[0])
        if gain <= 1.0:
            raise SimulationError("OTA gain collapsed below unity")
        below = np.nonzero(mag < 1.0)[0]
        if below.size == 0:
            raise SimulationError("unity-gain frequency beyond grid")
        j = int(below[0])
        gbw = self._log_crossing(
            self._FREQ_GRID[j - 1], self._FREQ_GRID[j], mag[j - 1], mag[j]
        )

        design = self.design
        c_total = (design.c_load + self.parasitics.c_out) * cap_scale
        slew = i_tail / c_total
        nominal_budget = 8.0 * design.i_bias  # tail 6x + diode + margin
        power = design.vdd * (
            i_tail
            + 2.0 * i_branch
            + design.i_bias
            + self.parasitics.power_overhead_rel * nominal_budget
        )
        return OTAMetrics(
            gain=gain,
            gbw=gbw,
            power=power,
            offset=self._offset(devs, i_tail),
            slew_rate=slew,
        )

    def simulate_nominal(self) -> OTAMetrics:
        """Nominal run with the extraction-derated parasitics (Sec. 4.1)."""
        sim = self
        derate = self.parasitics.extraction_derate
        if derate != 0.0:
            keep = 1.0 - derate
            par = replace(
                self.parasitics,
                c_out=self.parasitics.c_out * keep,
                c_fold=self.parasitics.c_fold * keep,
                offset_systematic=self.parasitics.offset_systematic * keep,
                power_overhead_rel=self.parasitics.power_overhead_rel * keep,
                extraction_derate=0.0,
            )
            sim = FoldedCascodeOTA(self.design, par)
        model = ProcessVariationModel(0.0, 0.0, 0.0, 0.0, 0.0)
        return sim.simulate(model.nominal_sample(sim.devices))

    def measure_step_response(
        self, sample: ProcessSample, tolerance: float = 0.01
    ):
        """Small-signal step response of one die: (settling time, overshoot).

        Runs the macromodel through the trapezoidal transient engine —
        the time-domain complement of the AC-derived GBW metric.  The
        settling time is to ``tolerance`` (relative) of the final value.
        """
        from repro.circuits.transient import TransientAnalysis, step

        devs = self._varied_devices(sample)
        i_tail, i_branch = self._bias_currents(devs)
        cap_scale = self._cap_variation(sample)
        net = self._macromodel(devs, i_tail, i_branch, cap_scale)
        # Time scale from the dominant pole: gain / GBW.
        metrics = self.simulate(sample)
        tau = metrics.gain / (2.0 * np.pi * metrics.gbw)
        sim = TransientAnalysis(net)
        result = sim.run(t_stop=12.0 * tau, dt=tau / 400.0, waveform=step())
        return (
            result.settling_time("out", tolerance=tolerance),
            result.overshoot("out"),
        )

    def simulate_batch(self, samples: List[ProcessSample]) -> np.ndarray:
        """Metrics matrix ``(len(samples), 5)`` in metric-name order."""
        sample_list = list(samples)
        if not sample_list:
            raise SimulationError(
                "simulate_batch requires at least one process sample"
            )
        return np.array([self.simulate(s).as_array() for s in sample_list])

    @staticmethod
    def _log_crossing(f_lo: float, f_hi: float, m_lo: float, m_hi: float) -> float:
        l_lo, l_hi = math.log10(f_lo), math.log10(f_hi)
        g_lo, g_hi = math.log10(m_lo), math.log10(m_hi)
        if g_hi == g_lo:
            return f_lo
        frac = (0.0 - g_lo) / (g_hi - g_lo)
        return 10.0 ** (l_lo + frac * (l_hi - l_lo))


def generate_ota_dataset(
    n_samples: int = 2000,
    seed: int = 2015,
    design: Optional[FoldedCascodeDesign] = None,
):
    """Paired early/late OTA banks (same contract as the op-amp generator)."""
    from repro.circuits.montecarlo import PairedDataset

    early_sim = FoldedCascodeOTA.schematic(design)
    late_sim = FoldedCascodeOTA.post_layout(design)
    rng = np.random.default_rng(seed)
    samples = early_sim.process_model().sample(early_sim.devices, n_samples, rng)
    return PairedDataset(
        early=early_sim.simulate_batch(samples),
        late=late_sim.simulate_batch(samples),
        early_nominal=early_sim.simulate_nominal().as_array(),
        late_nominal=late_sim.simulate_nominal().as_array(),
        metric_names=OTA_METRIC_NAMES,
    )
