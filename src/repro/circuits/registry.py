"""Circuit registry: one dispatch point for paired-dataset generation.

Every circuit block exposes the same seam — ``schematic()`` /
``post_layout()`` stage pairs, a ``simulate_batch`` over shared draws and
nominal runs — but each historically grew its own ``generate_*_dataset``
entry point.  This module registers them all under one
:func:`generate_dataset` so callers (CLI, scenario compiler, examples)
select circuits by *name* and new blocks join by adding one
:class:`CircuitEntry`.

The registry is also where :class:`repro.circuits.variants.CircuitVariant`
knobs are realised, because *how* differs by simulator seam:

* **process-sample circuits** (op-amp, OTA, gm-C filter): corners
  re-centre the shared random draws via
  :meth:`repro.circuits.corners.CornerSpec.apply` (mirroring
  :func:`repro.circuits.corners.generate_corner_datasets`), mismatch
  scales the :class:`ProcessVariationModel` sigmas, divergence scales the
  post-layout parasitics dataclass;
* **die-seed circuits** (flash ADC, R-2R DAC, SAR ADC): corners shift the
  design nominals deterministically (bias currents, sheet resistance,
  noise — slow silicon burns less bias current and is noisier), mismatch
  scales the design's ``sigma_*`` fields, divergence scales the layout
  effects (inflation factors pivot around their neutral ``1.0``).

Corner shifts are expressed in multiples of the *base* (unscaled) process
sigmas, so the corner and mismatch knobs stay orthogonal: re-centring the
population does not shrink when mismatch is turned down.

Cache discipline: :func:`generate_dataset` keys the disk cache on the
*original* design plus the variant's config mapping — never on the
variant-mutated design — and omits the variant entirely when it is the
identity, so every pre-registry cache path is preserved byte-for-byte
(regression-tested).  ``mna_backend`` stays out of the key (see
:func:`repro.circuits.montecarlo.generate_opamp_dataset`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.circuits.adc import ADC_METRIC_NAMES, FlashADC, FlashADCDesign
from repro.circuits.corners import CornerSpec
from repro.circuits.montecarlo import PairedDataset, _cached_dataset
from repro.circuits.opamp import OPAMP_METRIC_NAMES, OpAmpDesign, TwoStageOpAmp
from repro.circuits.ota import OTA_METRIC_NAMES, FoldedCascodeDesign, FoldedCascodeOTA
from repro.circuits.r2r_dac import R2R_DAC_METRIC_NAMES, R2RDACDesign, R2RLadderDAC
from repro.circuits.sar_adc import SAR_ADC_METRIC_NAMES, SarADC, SarADCDesign
from repro.circuits.svf import SVF_METRIC_NAMES, GmCFilterDesign, GmCStateVariableFilter
from repro.circuits.variants import (
    CircuitVariant,
    scale_divergence,
    scaled_process_model,
)
from repro.exceptions import ConfigError

__all__ = [
    "CircuitEntry",
    "circuit_names",
    "get_circuit",
    "generate_dataset",
]

#: Builder signature: (n_samples, seed, design, variant, mna_backend).
_Builder = Callable[[int, int, object, CircuitVariant, Optional[str]], PairedDataset]

_IDENTITY = CircuitVariant()


@dataclass(frozen=True)
class CircuitEntry:
    """One registered circuit block.

    Attributes
    ----------
    name:
        Registry key (CLI ``generate`` choice, scenario ``circuit:``).
    summary:
        One-line human description (CLI listings, docs generation).
    design_cls:
        The design dataclass; its zero-argument construction is the
        default design.
    metric_names:
        Column labels of the produced datasets.
    default_samples:
        Monte-Carlo bank size when the caller does not specify one.
    builder:
        Stage-pair dataset builder honouring the circuit variant.
    supports_mna_backend:
        Whether the simulator threads an ``mna_backend`` through its
        batched solves (StampPlan-based circuits only).
    """

    name: str
    summary: str
    design_cls: type
    metric_names: Tuple[str, ...]
    default_samples: int
    builder: _Builder
    supports_mna_backend: bool = False


# ---------------------------------------------------------------------------
# process-sample circuits
# ---------------------------------------------------------------------------
def _corner_samples(spec: CornerSpec, samples, base_model):
    """Re-centre a sample bank at a corner (base-model sigma units)."""
    return [
        spec.apply(s, base_model.sigma_vth_global, base_model.sigma_kp_rel_global)
        for s in samples
    ]


def _process_builder(sim_cls: type, metric_names: Tuple[str, ...]) -> _Builder:
    """Builder for ProcessSample-seam circuits (op-amp-style)."""

    def build(
        n_samples: int,
        seed: int,
        design,
        variant: CircuitVariant,
        mna_backend: Optional[str],
    ) -> PairedDataset:
        early = sim_cls.schematic(design)
        late = sim_cls.post_layout(design)
        if variant.divergence_scale != _IDENTITY.divergence_scale:
            late = sim_cls(
                design, scale_divergence(late.parasitics, variant.divergence_scale)
            )
        base_model = early.process_model()
        model = scaled_process_model(base_model, variant.mismatch_scale)
        rng = np.random.default_rng(seed)
        samples = model.sample(early.devices, n_samples, rng)
        kwargs = {} if mna_backend is None else {"mna_backend": mna_backend}
        if variant.corner != _IDENTITY.corner:
            spec = variant.spec
            samples = _corner_samples(spec, samples, base_model)
            nominal = spec.apply(
                model.nominal_sample(early.devices),
                base_model.sigma_vth_global,
                base_model.sigma_kp_rel_global,
            )
            early_nominal = early.simulate(nominal).as_array()
            late_nominal = late.simulate(nominal).as_array()
        else:
            early_nominal = early.simulate_nominal().as_array()
            late_nominal = late.simulate_nominal().as_array()
        return PairedDataset(
            early=early.simulate_batch(samples, **kwargs),
            late=late.simulate_batch(samples, **kwargs),
            early_nominal=early_nominal,
            late_nominal=late_nominal,
            metric_names=metric_names,
        )

    return build


# ---------------------------------------------------------------------------
# die-seed circuits
# ---------------------------------------------------------------------------
def _die_builder(
    sim_cls: type,
    metric_names: Tuple[str, ...],
    corner_shift: Callable[[object, CornerSpec], object],
    sigma_fields: Tuple[str, ...],
    pivot_one: Tuple[str, ...],
) -> _Builder:
    """Builder for die-seed-seam circuits (flash-ADC-style)."""

    def build(
        n_samples: int,
        seed: int,
        design,
        variant: CircuitVariant,
        mna_backend: Optional[str],
    ) -> PairedDataset:
        resolved = design
        if variant.corner != _IDENTITY.corner:
            resolved = corner_shift(resolved, variant.spec)
        if variant.mismatch_scale != _IDENTITY.mismatch_scale:
            resolved = dataclasses.replace(
                resolved,
                **{
                    f: getattr(resolved, f) * variant.mismatch_scale
                    for f in sigma_fields
                },
            )
        early = sim_cls.schematic(resolved)
        late = sim_cls.post_layout(resolved)
        if variant.divergence_scale != _IDENTITY.divergence_scale:
            late = sim_cls(
                resolved,
                scale_divergence(
                    late.layout, variant.divergence_scale, pivot_one=pivot_one
                ),
            )
        die_seeds = np.arange(n_samples, dtype=np.int64) + np.int64(seed) * 1_000_003
        return PairedDataset(
            early=early.simulate_batch(die_seeds),
            late=late.simulate_batch(die_seeds),
            early_nominal=early.simulate_nominal().as_array(),
            late_nominal=late.simulate_nominal().as_array(),
            metric_names=metric_names,
        )

    return build


def _shift_adc(design: FlashADCDesign, spec: CornerSpec) -> FlashADCDesign:
    """Corner shift for the flash ADC: slow silicon burns less bias and
    is noisier; the resistor ladder current tracks sheet resistance."""
    s_avg = 0.5 * (spec.nmos_sigma + spec.pmos_sigma)
    return dataclasses.replace(
        design,
        comparator_bias=design.comparator_bias * (1.0 - 0.05 * s_avg),
        ladder_current=design.ladder_current * (1.0 - 0.03 * s_avg),
        noise_rms=design.noise_rms * (1.0 + 0.04 * s_avg),
    )


def _shift_r2r(design: R2RDACDesign, spec: CornerSpec) -> R2RDACDesign:
    """Corner shift for the R-2R DAC: sheet resistance and switch
    on-resistance rise at the slow corner, buffer bias falls."""
    s_avg = 0.5 * (spec.nmos_sigma + spec.pmos_sigma)
    return dataclasses.replace(
        design,
        r_unit=design.r_unit * (1.0 + 0.05 * s_avg),
        r_switch=design.r_switch * (1.0 + 0.10 * spec.nmos_sigma),
        buffer_current=design.buffer_current * (1.0 - 0.05 * s_avg),
    )


def _shift_sar(design: SarADCDesign, spec: CornerSpec) -> SarADCDesign:
    """Corner shift for the SAR ADC: comparator and CDAC switching
    currents fall at the slow corner, thermal noise rises."""
    s_avg = 0.5 * (spec.nmos_sigma + spec.pmos_sigma)
    return dataclasses.replace(
        design,
        comparator_current=design.comparator_current * (1.0 - 0.05 * s_avg),
        dac_switch_current=design.dac_switch_current * (1.0 - 0.05 * s_avg),
        noise_rms=design.noise_rms * (1.0 + 0.04 * s_avg),
    )


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, CircuitEntry] = {}


def _register(entry: CircuitEntry) -> None:
    if entry.name in _REGISTRY:
        raise ConfigError(f"duplicate circuit registration: {entry.name!r}")
    _REGISTRY[entry.name] = entry


_register(
    CircuitEntry(
        name="opamp",
        summary="two-stage Miller op-amp (gain/bw/power/offset/phase margin)",
        design_cls=OpAmpDesign,
        metric_names=OPAMP_METRIC_NAMES,
        default_samples=5000,
        builder=_process_builder(TwoStageOpAmp, OPAMP_METRIC_NAMES),
        supports_mna_backend=True,
    )
)
_register(
    CircuitEntry(
        name="adc",
        summary="6-bit flash ADC (snr/sinad/sfdr/thd/power)",
        design_cls=FlashADCDesign,
        metric_names=ADC_METRIC_NAMES,
        default_samples=1000,
        builder=_die_builder(
            FlashADC,
            ADC_METRIC_NAMES,
            _shift_adc,
            ("sigma_offset", "sigma_ladder_rel", "sigma_bias_rel"),
            ("offset_inflation",),
        ),
    )
)
_register(
    CircuitEntry(
        name="ota",
        summary="folded-cascode OTA (gain/gbw/power/offset/slew rate)",
        design_cls=FoldedCascodeDesign,
        metric_names=OTA_METRIC_NAMES,
        default_samples=2000,
        builder=_process_builder(FoldedCascodeOTA, OTA_METRIC_NAMES),
    )
)
_register(
    CircuitEntry(
        name="r2r_dac",
        summary="R-2R ladder DAC (dnl/inl/gain error/offset/power)",
        design_cls=R2RDACDesign,
        metric_names=R2R_DAC_METRIC_NAMES,
        default_samples=1000,
        builder=_die_builder(
            R2RLadderDAC,
            R2R_DAC_METRIC_NAMES,
            _shift_r2r,
            (
                "sigma_r_rel",
                "sigma_switch_rel",
                "sigma_offset",
                "sigma_bias_rel",
            ),
            ("mismatch_inflation",),
        ),
    )
)
_register(
    CircuitEntry(
        name="svf",
        summary="gm-C state-variable filter (f0/Q/peak gain/LP gain/power)",
        design_cls=GmCFilterDesign,
        metric_names=SVF_METRIC_NAMES,
        default_samples=2000,
        builder=_process_builder(GmCStateVariableFilter, SVF_METRIC_NAMES),
        supports_mna_backend=True,
    )
)
_register(
    CircuitEntry(
        name="sar_adc",
        summary="10-bit SAR ADC (snr/sinad/sfdr/thd/power)",
        design_cls=SarADCDesign,
        metric_names=SAR_ADC_METRIC_NAMES,
        default_samples=1000,
        builder=_die_builder(
            SarADC,
            SAR_ADC_METRIC_NAMES,
            _shift_sar,
            ("sigma_cap_unit_rel", "sigma_comp_offset", "sigma_bias_rel"),
            ("cap_mismatch_inflation",),
        ),
    )
)


def circuit_names() -> Tuple[str, ...]:
    """All registered circuit names, in registration order."""
    return tuple(_REGISTRY)


def get_circuit(name: str) -> CircuitEntry:
    """Look up a registry entry; unknown names raise with the valid set."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown circuit {name!r}; registered circuits: "
            f"{', '.join(circuit_names())}"
        ) from None


def generate_dataset(
    circuit: str,
    n_samples: Optional[int] = None,
    seed: int = 2015,
    design=None,
    variant: Optional[CircuitVariant] = None,
    cache_dir=None,
    use_cache: bool = True,
    mna_backend: Optional[str] = None,
) -> PairedDataset:
    """Generate (or cache-serve) one circuit's paired early/late bank.

    Parameters
    ----------
    circuit:
        Registry name (see :func:`circuit_names`).
    n_samples:
        Monte-Carlo bank size; ``None`` uses the circuit's default.
    seed:
        Master seed; die pairing across stages is seed-stable.
    design:
        Circuit design dataclass; ``None`` uses the registered default.
    variant:
        Optional :class:`CircuitVariant` (corner / mismatch / divergence).
        The identity variant is exactly the historical behaviour and does
        not perturb cache paths.
    cache_dir, use_cache:
        Disk-cache controls (see
        :func:`repro.circuits.montecarlo.dataset_cache_path`).
    mna_backend:
        MNA solve strategy for StampPlan circuits; rejected for circuits
        that do not thread one (their solves are not MNA-shaped).  Not
        part of the cache key (backend equivalence is gated by tests).
    """
    entry = get_circuit(circuit)
    resolved = design if design is not None else entry.design_cls()
    if not isinstance(resolved, entry.design_cls):
        raise ConfigError(
            f"{circuit}: design must be a {entry.design_cls.__name__}, "
            f"got {type(resolved).__name__}"
        )
    n = entry.default_samples if n_samples is None else int(n_samples)
    v = variant if variant is not None else _IDENTITY
    if mna_backend is not None and not entry.supports_mna_backend:
        raise ConfigError(
            f"{circuit} does not support mna_backend (no batched MNA solve)"
        )
    extra = None if v.is_default else v.as_config()

    def build() -> PairedDataset:
        return entry.builder(n, seed, resolved, v, mna_backend)

    return _cached_dataset(
        circuit, n, seed, resolved, build, cache_dir, use_cache, extra=extra
    )
