"""Behavioural charge-redistribution SAR ADC (scenario-library block).

A ``b``-bit successive-approximation converter with a binary-weighted
capacitor DAC: unit-cap mismatch (Pelgrom ``1/sqrt(C)`` scaling), a
termination cap, comparator input offset and thermal noise, converting a
coherent near-full-scale sine.  The SAR bit trials run against the *real*
mismatched capacitor weights, so DNL discontinuities at major carries,
missing codes and their SNDR/SFDR signatures all emerge from the search —
nothing is injected at the metric level.

The post-layout stage adds top-plate parasitic capacitance (attenuating
the DAC reference steps), inflated cap mismatch, a comparator offset
shift, incomplete-settling compression of the input (odd-order
distortion) and extra noise/power — the early/late divergence structure
the BMF fusion exploits.

Five correlated metrics per die, in :data:`SAR_ADC_METRIC_NAMES` order:
SNR, SINAD, SFDR, THD (dB/dBc via the IEEE 1241 coherent-FFT procedure in
:mod:`repro.circuits.testbench`) and power (W).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.circuits.dies import die_draw_bank
from repro.circuits.testbench import SpectralAnalyzer, sine_record
from repro.exceptions import SimulationError

__all__ = ["SarADCDesign", "SarADCMetrics", "SarADC", "SAR_ADC_METRIC_NAMES"]

#: Metric ordering used by every returned array.
SAR_ADC_METRIC_NAMES: Tuple[str, ...] = (
    "snr",    # dB
    "sinad",  # dB
    "sfdr",   # dBc
    "thd",    # dBc
    "power",  # W
)


@dataclass(frozen=True)
class SarADCDesign:
    """Architecture and nominal electrical parameters of the converter."""

    n_bits: int = 10
    vref: float = 1.2
    sigma_cap_unit_rel: float = 2e-3   # unit-cap relative mismatch std
    sigma_comp_offset: float = 0.8e-3  # comparator input offset std (V)
    noise_rms: float = 0.25e-3         # input-referred noise (V rms)
    comparator_current: float = 35e-6  # comparator + SAR logic bias (A)
    dac_switch_current: float = 18e-6  # average CDAC switching current (A)
    sigma_bias_rel: float = 0.06       # bias-branch mismatch
    n_samples: int = 2048              # conversions per record
    n_cycles: int = 67                 # coherent cycles (odd, co-prime)

    def __post_init__(self) -> None:
        if not 4 <= self.n_bits <= 14:
            raise SimulationError(f"n_bits must lie in [4, 14], got {self.n_bits}")
        if math.gcd(self.n_samples, self.n_cycles) != 1:
            raise SimulationError("n_cycles must be co-prime with n_samples")

    @property
    def n_codes(self) -> int:
        """``2^b`` output codes."""
        return 1 << self.n_bits


@dataclass(frozen=True)
class _SarLayoutEffects:
    """Post-layout deviations (all neutral at schematic level)."""

    cap_mismatch_inflation: float = 1.0  # multiplies unit-cap mismatch
    parasitic_cap_rel: float = 0.0       # top-plate parasitic / total ideal
    offset_shift: float = 0.0            # systematic comparator offset (V)
    settle_compression: float = 0.0      # odd-order settling distortion
    power_overhead_rel: float = 0.0
    extra_noise_rms: float = 0.0


@dataclass(frozen=True)
class SarADCMetrics:
    """The five measured performances of one simulated die."""

    snr: float
    sinad: float
    sfdr: float
    thd: float
    power: float

    def as_array(self) -> np.ndarray:
        """Metrics in :data:`SAR_ADC_METRIC_NAMES` order."""
        return np.array([self.snr, self.sinad, self.sfdr, self.thd, self.power])


class SarADC:
    """Simulator for one design stage of the SAR converter.

    Same die-seed seam as the flash ADC and R-2R DAC: build stage pairs
    with :meth:`schematic` / :meth:`post_layout` and feed both the same
    die seeds.
    """

    def __init__(
        self, design: SarADCDesign, layout: Optional[_SarLayoutEffects] = None
    ) -> None:
        self.design = design
        self.layout = layout if layout is not None else _SarLayoutEffects()
        self._analyzer = SpectralAnalyzer()

    # ------------------------------------------------------------------
    @classmethod
    def schematic(cls, design: Optional[SarADCDesign] = None) -> "SarADC":
        """Early-stage simulator: ideal layout."""
        return cls(design if design is not None else SarADCDesign())

    @classmethod
    def post_layout(cls, design: Optional[SarADCDesign] = None) -> "SarADC":
        """Late-stage simulator with extracted layout effects."""
        return cls(
            design if design is not None else SarADCDesign(),
            _SarLayoutEffects(
                cap_mismatch_inflation=1.015,
                parasitic_cap_rel=0.02,
                offset_shift=0.5e-3,
                settle_compression=0.01,
                power_overhead_rel=0.10,
                extra_noise_rms=0.05e-3,
            ),
        )

    # ------------------------------------------------------------------
    # per-die draw layout (single standard_normal stream, fixed order):
    #   cap z     [0, b+1)                 binary caps (LSB first) + termination
    #   offset z  [b+1]                    comparator input offset
    #   bias z    [b+2], [b+3]             comparator / CDAC switching bias
    #   noise z   [b+4, b+4+n_samples)     per-conversion input noise
    @property
    def _stride(self) -> int:
        return self.design.n_bits + 4 + self.design.n_samples

    def _dac_weights(self, cap_z: np.ndarray) -> np.ndarray:
        """Per-die CDAC bit weights ``(n, b)`` from cap draws ``(n, b+1)``.

        Bit ``i``'s capacitor is ``2^i`` units; its *relative* mismatch
        shrinks as ``1/sqrt(2^i)`` (Pelgrom: larger caps average more unit
        devices).  The weight of bit ``i`` is its capacitance over the
        total array capacitance including the termination cap and any
        top-plate parasitic.
        """
        design = self.design
        b = design.n_bits
        exps = np.exp2(np.arange(b))
        sig = design.sigma_cap_unit_rel * self.layout.cap_mismatch_inflation
        caps = exps * (1.0 + sig / np.sqrt(exps) * cap_z[:, :b])
        term = 1.0 + sig * cap_z[:, b]
        total = (
            np.sum(caps, axis=1)
            + term
            + self.layout.parasitic_cap_rel * design.n_codes
        )
        return caps / total[:, None]

    def _input_record(self) -> np.ndarray:
        """Deterministic input drive: near-full-scale coherent sine."""
        design = self.design
        layout = self.layout
        amplitude = 0.49 * design.vref
        mid = 0.5 * design.vref
        vin = sine_record(design.n_samples, design.n_cycles, amplitude, offset=mid)
        if layout.settle_compression != 0.0:
            # Incomplete CDAC/track settling compresses large swings
            # (odd-order term generating 3rd-harmonic distortion).
            ac = vin - mid
            vin = vin - layout.settle_compression * (ac / amplitude) ** 3 * ac
        return vin

    def _convert(self, weights: np.ndarray, vcmp: np.ndarray) -> np.ndarray:
        """SAR binary search of every (die, conversion) pair.

        ``weights`` is ``(n, b)``; ``vcmp`` is ``(n, n_samples)`` — the
        noisy, offset-shifted comparator input.  Returns float codes.
        The trial loop keeps bit ``i`` when the accumulated DAC level
        would still sit below the input, which with ideal weights reduces
        to ``floor(vin * 2^b / vref)`` exactly.
        """
        design = self.design
        b = design.n_bits
        acc = np.zeros_like(vcmp)
        code = np.zeros_like(vcmp)
        for i in range(b - 1, -1, -1):
            trial = acc + weights[:, i][:, None]
            bit = vcmp >= trial * design.vref
            acc = np.where(bit, trial, acc)
            code = code + bit * float(1 << i)
        return code

    def _metrics_from_rows(self, z: np.ndarray) -> np.ndarray:
        """Metrics matrix for a bank of draw rows ``(n, stride)``."""
        design = self.design
        layout = self.layout
        b = design.n_bits

        weights = self._dac_weights(z[:, : b + 1])
        offset = design.sigma_comp_offset * z[:, b + 1] + layout.offset_shift

        vin = self._input_record()
        noise_rms = math.hypot(design.noise_rms, layout.extra_noise_rms)
        vcmp = vin[None, :] + noise_rms * z[:, b + 4 :] + offset[:, None]
        codes = self._convert(weights, vcmp)
        spectral = self._analyzer.analyze_batch(codes, design.n_cycles)

        comp = design.comparator_current * (1.0 + design.sigma_bias_rel * z[:, b + 2])
        dac = design.dac_switch_current * (1.0 + design.sigma_bias_rel * z[:, b + 3])
        comp = np.maximum(comp, 0.0)
        dac = np.maximum(dac, 0.0)
        nominal_core = design.comparator_current + design.dac_switch_current
        power = design.vref * (
            comp + dac + layout.power_overhead_rel * nominal_core
        )
        return np.column_stack(
            [spectral.snr, spectral.sinad, spectral.sfdr, spectral.thd, power]
        )

    # ------------------------------------------------------------------
    def simulate(self, die_seed: int) -> SarADCMetrics:
        """Convert a coherent sine on die ``die_seed`` and measure metrics."""
        die_rng = np.random.default_rng(np.random.SeedSequence(int(die_seed)))
        z = die_rng.standard_normal(self._stride)
        row = self._metrics_from_rows(z[None, :])[0]
        return SarADCMetrics(*[float(x) for x in row])

    def simulate_nominal(self) -> SarADCMetrics:
        """Variation- and noise-free conversion (``P_NOM`` for Sec. 4.1).

        Zeroed mismatch and noise; the deterministic layout effects
        (parasitic attenuation, offset shift, settling compression,
        overhead) stay, mirroring a nominal post-layout SPICE run.
        """
        row = self._metrics_from_rows(np.zeros((1, self._stride)))[0]
        return SarADCMetrics(*[float(x) for x in row])

    def convert_record(self, die_seed: int, vin) -> np.ndarray:
        """Noise-free conversion of an arbitrary input record on one die.

        Exposes the die's real mismatched transfer function (comparator
        offset included) for code-transition and linearity tests.
        """
        die_rng = np.random.default_rng(np.random.SeedSequence(int(die_seed)))
        z = die_rng.standard_normal(self._stride)[None, :]
        b = self.design.n_bits
        weights = self._dac_weights(z[:, : b + 1])
        offset = (
            self.design.sigma_comp_offset * z[0, b + 1] + self.layout.offset_shift
        )
        vcmp = np.asarray(vin, dtype=float).ravel()[None, :] + offset
        return self._convert(weights, vcmp)[0].astype(int)

    # ------------------------------------------------------------------
    #: Dies per vectorized sweep; the (dies, conversions) SAR planes stay
    #: cache-friendly at this size.
    _PIPELINE_CHUNK = 64

    def simulate_batch(
        self,
        die_seeds,
        engine: str = "vectorized",
        memory_budget_mb: float = 512.0,
        n_jobs: Optional[int] = None,
    ) -> np.ndarray:
        """Metrics matrix ``(len(die_seeds), 5)`` in metric-name order.

        Same seam as the flash ADC: ``engine="vectorized"`` (default)
        runs whole die chunks through the SAR search at once,
        ``engine="loop"`` is the per-die reference path; ``n_jobs``
        shards the bank across forked workers order-preservingly.
        """
        seeds = np.atleast_1d(np.asarray(die_seeds, dtype=np.int64))
        if seeds.size == 0:
            raise SimulationError("simulate_batch requires at least one die seed")
        if engine == "loop":
            return np.array([self.simulate(int(s)).as_array() for s in seeds])
        if engine != "vectorized":
            raise SimulationError(
                f"unknown simulate_batch engine {engine!r} (use 'vectorized' or 'loop')"
            )
        from repro.experiments.parallel import (
            fork_available,
            replicate,
            resolve_n_jobs,
        )

        jobs = min(resolve_n_jobs(n_jobs), seeds.size)
        if jobs > 1 and fork_available():
            shards = [s for s in np.array_split(seeds, jobs) if s.size]
            parts = replicate(
                lambda shard: self._simulate_chunked(shard, memory_budget_mb),
                shards,
                n_jobs=jobs,
            )
            return np.vstack(parts)
        return self._simulate_chunked(seeds, memory_budget_mb)

    def _simulate_chunked(
        self, seeds: np.ndarray, memory_budget_mb: float
    ) -> np.ndarray:
        """Run the vectorized engine in memory-bounded die chunks."""
        if memory_budget_mb <= 0.0:
            raise SimulationError(
                f"memory_budget_mb must be positive, got {memory_budget_mb}"
            )
        design = self.design
        # Per-die working set: the (n_samples,) SAR planes (vcmp, acc,
        # trial, bit, code) plus the FFT of the record, in float64.
        per_die = design.n_samples * 8 * 8
        budget_rows = int(memory_budget_mb * 2**20 // per_die)
        chunk = max(1, min(self._PIPELINE_CHUNK, budget_rows))
        bank = die_draw_bank(seeds, self._stride)
        if seeds.size <= chunk:
            return self._metrics_from_rows(bank)
        return np.vstack(
            [
                self._metrics_from_rows(bank[start : start + chunk])
                for start in range(0, seeds.size, chunk)
            ]
        )
