"""Behavioural two-stage Miller op-amp (the paper's first test circuit).

Sec. 5.1 uses a two-stage operational amplifier in a 45 nm CMOS process and
measures five correlated metrics — **gain, -3 dB bandwidth, power, offset
and phase margin** — at schematic level (early stage) and post-layout (late
stage).  This module rebuilds that experiment on our substrate:

* seven transistors (differential pair M1/M2, mirror load M3/M4, tail M5,
  second-stage common source M6, its current-source load M7) plus the bias
  diode M8;
* a :class:`ProcessSample` perturbs every device (global + Pelgrom local),
  shifting bias currents, transconductances and output conductances;
* the small-signal response is obtained from a genuine MNA AC solve of the
  two-pole Miller macromodel — not from closed-form pole formulas — so
  parasitic insertion changes the response the same way a SPICE re-run
  would;
* the *post-layout* variant adds interconnect parasitics (node capacitance,
  Miller routing capacitance, output loading), a layout-systematic offset,
  higher bias currents (wiring drops re-tuned bias) and a stress-induced
  mobility term that slightly re-shapes the variation response.  The last
  item is what leaves a residual early/late **mean** discrepancy after the
  Sec. 4.1 nominal shift, reproducing the paper's observation that the
  op-amp's early-stage mean knowledge is less trustworthy than its
  covariance knowledge (small optimal ``kappa_0``, large ``v_0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.devices import Mosfet, MosfetGeometry, MosfetProcess
from repro.circuits.mna import ACAnalysis, StampPlan
from repro.circuits.netlist import Netlist
from repro.circuits.process import ProcessSample, ProcessVariationModel
from repro.exceptions import SimulationError

__all__ = ["OpAmpDesign", "OpAmpMetrics", "TwoStageOpAmp", "OPAMP_METRIC_NAMES"]

#: Metric ordering used by every returned array.
OPAMP_METRIC_NAMES: Tuple[str, ...] = (
    "gain",        # linear V/V
    "bw_3db",      # Hz
    "power",       # W
    "offset",      # V
    "phase_margin",  # degrees
)


@dataclass(frozen=True)
class OpAmpDesign:
    """Sizing and bias plan of the two-stage amplifier.

    Defaults give a ~66 dB, ~1 MHz-bandwidth design in a 45 nm-flavoured
    behavioural process — representative, not a tape-out.
    """

    vdd: float = 1.1
    i_tail: float = 40e-6
    i_stage2: float = 200e-6
    i_bias: float = 10e-6
    c_comp: float = 0.5e-12
    c_load: float = 1.0e-12

    nmos: MosfetProcess = field(
        default_factory=lambda: MosfetProcess(vth=0.45, kp=4.0e-4, lambda_=0.15)
    )
    pmos: MosfetProcess = field(
        default_factory=lambda: MosfetProcess(vth=0.45, kp=2.0e-4, lambda_=0.20)
    )

    def devices(self) -> List[Tuple[Mosfet, str]]:
        """All transistors with their polarity, nominal (unvaried) instances."""
        um = 1e-6
        geo = MosfetGeometry
        return [
            (Mosfet("M1", geo(8 * um, 0.12 * um), self.nmos), "n"),
            (Mosfet("M2", geo(8 * um, 0.12 * um), self.nmos), "n"),
            (Mosfet("M3", geo(4 * um, 0.24 * um), self.pmos), "p"),
            (Mosfet("M4", geo(4 * um, 0.24 * um), self.pmos), "p"),
            (Mosfet("M5", geo(1.2 * um, 0.24 * um), self.nmos), "n"),
            (Mosfet("M6", geo(24 * um, 0.12 * um), self.pmos), "p"),
            (Mosfet("M7", geo(6 * um, 0.24 * um), self.nmos), "n"),
            (Mosfet("M8", geo(0.3 * um, 0.24 * um), self.nmos), "n"),
        ]


@dataclass(frozen=True)
class OpAmpMetrics:
    """The five measured performances of one simulated die."""

    gain: float
    bw_3db: float
    power: float
    offset: float
    phase_margin: float

    def as_array(self) -> np.ndarray:
        """Metrics in :data:`OPAMP_METRIC_NAMES` order."""
        return np.array(
            [self.gain, self.bw_3db, self.power, self.offset, self.phase_margin]
        )


def _unwrapped_phase_pair(
    phase: np.ndarray, idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unwrapped phase at columns ``idx`` and ``idx + 1`` of each row.

    Equivalent to ``np.unwrap(phase, axis=1)`` followed by two gathers,
    but phase wraps are rare (at most a couple per die), so instead of
    cumulative-summing corrections over the whole grid the wraps are
    located sparsely and only their contributions up to the two requested
    columns are accumulated.  The correction values match ``np.unwrap``'s
    exactly, zeros included, so the result is bit-identical.
    """
    rows = np.arange(phase.shape[0])
    p_lo = phase[rows, idx]
    p_hi = phase[rows, idx + 1]
    dd = np.diff(phase, axis=1)
    wrap_rows, wrap_cols = np.nonzero(np.abs(dd) >= np.pi)
    if wrap_rows.size:
        ddm = dd[wrap_rows, wrap_cols]
        corr = np.mod(ddm + np.pi, 2.0 * np.pi) - np.pi
        corr[(corr == -np.pi) & (ddm > 0.0)] = np.pi
        corr -= ddm
        # A wrap between columns c and c+1 shifts every column >= c+1.
        lo_mask = wrap_cols + 1 <= idx[wrap_rows]
        hi_mask = wrap_cols + 1 <= idx[wrap_rows] + 1
        adj_lo = np.zeros(phase.shape[0])
        adj_hi = np.zeros(phase.shape[0])
        np.add.at(adj_lo, wrap_rows[lo_mask], corr[lo_mask])
        np.add.at(adj_hi, wrap_rows[hi_mask], corr[hi_mask])
        p_lo = p_lo + adj_lo
        p_hi = p_hi + adj_hi
    return p_lo, p_hi


@dataclass(frozen=True)
class _Parasitics:
    """Post-layout parasitic set (all zero at schematic level)."""

    c_node1: float = 0.0       # extra capacitance at the first-stage output
    c_out: float = 0.0         # extra load capacitance from routing
    c_comp_extra: float = 0.0  # routing capacitance in parallel with Cc
    r_out_wire: float = 0.0    # output routing resistance (ohms, 0 = none)
    offset_systematic: float = 0.0  # layout-asymmetry offset (V)
    power_overhead_rel: float = 0.0  # guard rings / well taps leakage
    bias_current_rel: float = 0.0    # IR-drop-induced bias re-tune
    stress_kp_gain: float = 0.0      # STI-stress re-shaping of kp variation
    proximity_quad: float = 0.0      # quadratic litho-proximity Vth term
    extraction_derate: float = 0.0   # signoff-extraction parasitic shortfall


class TwoStageOpAmp:
    """Simulator for one design stage (schematic or post-layout).

    Use the class methods :meth:`schematic` and :meth:`post_layout` to get
    the early- and late-stage simulators of the *same* design, then call
    :meth:`simulate` with a shared :class:`ProcessSample` to obtain the
    paired metrics the BMF flow fuses.
    """

    #: Log-spaced analysis grid; wide enough to bracket the unity-gain
    #: frequency across all process corners.
    _FREQ_GRID = np.logspace(1, 11, 321)

    #: Component names whose stamp values vary per process draw; everything
    #: else in the macromodel is topology shared by the whole bank.
    _VARIABLE = ("Ggm1", "R1", "C1", "Cc", "Ggm6", "R2", "C2")

    def __init__(self, design: OpAmpDesign, parasitics: Optional[_Parasitics] = None) -> None:
        self.design = design
        self.parasitics = parasitics if parasitics is not None else _Parasitics()
        self._devices = design.devices()
        self._plan: Optional[StampPlan] = None

    # ------------------------------------------------------------------
    @classmethod
    def schematic(cls, design: Optional[OpAmpDesign] = None) -> "TwoStageOpAmp":
        """Early-stage (pre-layout) simulator: no parasitics."""
        return cls(design if design is not None else OpAmpDesign())

    @classmethod
    def post_layout(cls, design: Optional[OpAmpDesign] = None) -> "TwoStageOpAmp":
        """Late-stage simulator: extracted-parasitic equivalents included."""
        return cls(
            design if design is not None else OpAmpDesign(),
            _Parasitics(
                c_node1=6e-15,
                c_out=0.03e-12,
                c_comp_extra=4e-15,
                r_out_wire=30.0,
                offset_systematic=0.8e-3,
                power_overhead_rel=0.06,
                bias_current_rel=0.01,
                stress_kp_gain=0.005,
                proximity_quad=0.04,
                extraction_derate=0.22,
            ),
        )

    # ------------------------------------------------------------------
    @property
    def devices(self) -> List[Mosfet]:
        """Nominal device instances (for process-model sampling)."""
        return [dev for dev, _pol in self._devices]

    def process_model(self) -> ProcessVariationModel:
        """The default variation model used in the paper reproduction."""
        return ProcessVariationModel(
            sigma_vth_global=0.012,
            sigma_kp_rel_global=0.045,
            polarity_correlation=0.6,
        )

    # ------------------------------------------------------------------
    def _varied_devices(self, sample: ProcessSample) -> Dict[str, Mosfet]:
        out: Dict[str, Mosfet] = {}
        par = self.parasitics
        for dev, pol in self._devices:
            varied = sample.apply(dev, pol)
            dvth, dkp = varied.dvth, varied.dkp_rel
            if par.stress_kp_gain != 0.0:
                # STI-stress interaction: layout proximity effects amplify
                # the *variation component* of kp post-layout, re-shaping
                # (not just shifting) the late-stage response.
                dkp = dkp * (1.0 + par.stress_kp_gain)
            if par.proximity_quad != 0.0:
                # Litho-proximity (LOD/WPE) effects are nonlinear in the
                # process state: quadratic in the threshold deviation.
                # Crucially this term vanishes at the nominal corner, so
                # the Sec. 4.1 nominal shift cannot remove the mean bias
                # it induces in the late-stage *distribution* — this is
                # what makes the op-amp's early-stage mean knowledge less
                # trustworthy than its covariance knowledge (Sec. 5.1).
                dvth = dvth + par.proximity_quad * dvth * dvth / 0.012
            out[dev.name] = dev.with_variation(dvth, dkp)
        return out

    def _bias_currents(self, devs: Dict[str, Mosfet]) -> Tuple[float, float, float]:
        """Actual tail/stage-2/bias currents from square-law mirror physics.

        The reference current ``i_bias`` flows through diode device M8,
        fixing the shared gate voltage ``Vgs = Vth8 + Vov8``.  Each mirror
        output device then conducts ``0.5 * beta * (Vgs - Vth)^2`` — the
        exact square-law relation, so threshold and mobility mismatch
        propagate to the bias currents with all their nonlinearity (no
        small-signal linearisation that could drive currents negative).
        """
        design = self.design
        m8 = devs["M8"]
        vov8 = math.sqrt(2.0 * design.i_bias / m8.beta)
        vgs = m8.vth_effective + vov8

        def mirror_current(out_dev: Mosfet) -> float:
            vov = vgs - out_dev.vth_effective
            if vov <= 0.0:
                raise SimulationError(
                    f"{out_dev.name}: mirror output device cut off (Vov={vov:.3f})"
                )
            return (
                0.5
                * out_dev.beta
                * vov
                * vov
                * (1.0 + self.parasitics.bias_current_rel)
            )

        return mirror_current(devs["M5"]), mirror_current(devs["M7"]), design.i_bias

    # ------------------------------------------------------------------
    def _macromodel(
        self, devs: Dict[str, Mosfet], i_tail: float, i_stage2: float
    ) -> Netlist:
        """Small-signal macromodel netlist for the current process draw."""
        par = self.parasitics
        i_half = i_tail / 2.0

        ss1 = devs["M1"].small_signal(i_half)
        ss2 = devs["M2"].small_signal(i_half)
        ss4 = devs["M4"].small_signal(i_half)
        ss6 = devs["M6"].small_signal(i_stage2)
        ss7 = devs["M7"].small_signal(i_stage2)

        gm1 = 0.5 * (ss1.gm + ss2.gm)  # effective diff-pair transconductance
        r1 = 1.0 / (ss2.gds + ss4.gds)
        c1 = ss6.cgg + 0.5 * (ss2.cgg + ss4.cgg) * 0.3 + par.c_node1
        gm6 = ss6.gm
        r2 = 1.0 / (ss6.gds + ss7.gds)
        c2 = self.design.c_load + ss6.cgg * 0.2 + par.c_out
        cc = self.design.c_comp + par.c_comp_extra

        net = Netlist(title="two-stage op-amp macromodel")
        net.voltage_source("Vin", "in", "0", 1.0)
        # Stage 1: inverting transconductance into node x.
        net.vccs("Ggm1", "x", "0", "in", "0", gm1)
        net.resistor("R1", "x", "0", r1)
        net.capacitor("C1", "x", "0", c1)
        # Miller compensation across stage 2.
        net.capacitor("Cc", "x", "out_int", cc)
        # Stage 2: inverting common source; the two inversions give a
        # positive DC transfer, so phase starts at 0 degrees.
        net.vccs("Ggm6", "out_int", "0", "x", "0", gm6)
        net.resistor("R2", "out_int", "0", r2)
        if par.r_out_wire > 0.0:
            net.resistor("Rwire", "out_int", "out", par.r_out_wire)
            net.capacitor("C2", "out", "0", c2)
        else:
            net.capacitor("C2", "out_int", "0", c2)
        return net

    @staticmethod
    def _output_node(netlist: Netlist) -> str:
        return "out" if "Rwire" in netlist else "out_int"

    # ------------------------------------------------------------------
    def _offset(self, devs: Dict[str, Mosfet], i_tail: float) -> float:
        """Input-referred offset from pair and mirror mismatch.

        Standard first-order model: the load-mirror threshold mismatch is
        referred to the input through ``gm3 / gm1``; current-factor
        mismatches contribute ``(Vov / 2) * dBeta/Beta`` terms.
        """
        i_half = i_tail / 2.0
        ss1 = devs["M1"].small_signal(i_half)
        ss3 = devs["M3"].small_signal(i_half)
        dvth_pair = devs["M1"].dvth - devs["M2"].dvth
        dvth_load = devs["M3"].dvth - devs["M4"].dvth
        dbeta_pair = devs["M1"].dkp_rel - devs["M2"].dkp_rel
        dbeta_load = devs["M3"].dkp_rel - devs["M4"].dkp_rel
        return (
            dvth_pair
            + (ss3.gm / ss1.gm) * dvth_load
            + (ss1.vov / 2.0) * dbeta_pair
            + (ss3.gm / ss1.gm) * (ss3.vov / 2.0) * dbeta_load
            + self.parasitics.offset_systematic
        )

    # ------------------------------------------------------------------
    def simulate(self, sample: ProcessSample) -> OpAmpMetrics:
        """Measure the five metrics for one process draw.

        Runs a full MNA AC sweep and extracts gain / bandwidth / phase
        margin from the solved transfer function; offset and power come
        from the operating-point model.
        """
        devs = self._varied_devices(sample)
        i_tail, i_stage2, i_bias = self._bias_currents(devs)
        net = self._macromodel(devs, i_tail, i_stage2)
        solution = ACAnalysis(net).solve(self._FREQ_GRID)
        h = solution.transfer(self._output_node(net), "in")

        gain, bw = self._gain_and_bandwidth(h)
        pm = self._phase_margin(h)
        design = self.design
        # Post-layout overhead (guard rings, well taps, substrate ties) is
        # a fixed adder referenced to the nominal budget — it shifts the
        # power mean without re-scaling its variation.
        nominal_budget = design.i_tail + design.i_stage2 + design.i_bias
        power = design.vdd * (
            i_tail
            + i_stage2
            + i_bias
            + self.parasitics.power_overhead_rel * nominal_budget
        )
        offset = self._offset(devs, i_tail)
        return OpAmpMetrics(
            gain=gain, bw_3db=bw, power=power, offset=offset, phase_margin=pm
        )

    def simulate_nominal(self) -> OpAmpMetrics:
        """Nominal (variation-free) run; supplies ``P_NOM`` for Sec. 4.1.

        When ``extraction_derate`` is set, the nominal run sees only a
        fraction of the layout parasitics — modelling a signoff extraction
        deck that under-captures coupling, a well-documented source of
        silicon-vs-signoff mean bias.  The Monte-Carlo population always
        carries the full parasitics, so the Sec. 4.1 nominal shift cannot
        fully align the early- and late-stage means: exactly the situation
        in which the paper's op-amp cross validation selects a small
        ``kappa_0`` (early mean knowledge downweighted).
        """
        sim = self
        derate = self.parasitics.extraction_derate
        if derate != 0.0:
            import dataclasses

            keep = 1.0 - derate
            par = dataclasses.replace(
                self.parasitics,
                c_node1=self.parasitics.c_node1 * keep,
                c_out=self.parasitics.c_out * keep,
                c_comp_extra=self.parasitics.c_comp_extra * keep,
                r_out_wire=self.parasitics.r_out_wire * keep,
                offset_systematic=self.parasitics.offset_systematic * keep,
                power_overhead_rel=self.parasitics.power_overhead_rel * keep,
                bias_current_rel=self.parasitics.bias_current_rel * keep,
                extraction_derate=0.0,
            )
            sim = TwoStageOpAmp(self.design, par)
        model = ProcessVariationModel(0.0, 0.0, 0.0, 0.0, 0.0)
        nominal = model.nominal_sample(sim.devices)
        return sim.simulate(nominal)

    def simulate_batch(
        self,
        samples: List[ProcessSample],
        engine: str = "vectorized",
        memory_budget_mb: float = 512.0,
        n_jobs: Optional[int] = None,
        mna_backend: Optional[str] = None,
    ) -> np.ndarray:
        """Metrics matrix ``(len(samples), 5)`` in metric-name order.

        Parameters
        ----------
        samples:
            Process draws; must be non-empty.
        engine:
            ``"vectorized"`` (default) runs the batched stamp-plan engine —
            one symbolic MNA assembly, stacked chunked solves, vectorized
            metric extraction.  ``"loop"`` is the per-die reference path;
            the two agree to better than 1e-10 relative error.
        memory_budget_mb:
            Peak-memory bound for the stacked complex systems; the solve
            is chunked so ``n_samples * n_freq * m^2`` never exceeds it.
        n_jobs:
            Optional process-based sharding of the vectorized engine
            (``-1`` = all CPUs).  Results are bit-identical to the
            single-process engine for every worker count.
        mna_backend:
            System-solve strategy forwarded to
            :meth:`repro.circuits.mna.StampPlan.solve_batched`:
            ``"dense"``, ``"sparse"``, or ``None``/``"auto"`` (size
            heuristic — the macromodel's tiny reduced core always
            resolves dense).
        """
        sample_list = list(samples)
        if not sample_list:
            raise SimulationError("simulate_batch requires at least one process sample")
        if engine == "loop":
            return np.array([self.simulate(s).as_array() for s in sample_list])
        if engine != "vectorized":
            raise SimulationError(
                f"unknown engine {engine!r}; expected 'vectorized' or 'loop'"
            )
        from repro.experiments.parallel import fork_available, replicate, resolve_n_jobs

        jobs = min(resolve_n_jobs(n_jobs), len(sample_list))
        if jobs > 1 and fork_available():
            self._stamp_plan()  # build once; workers inherit it through fork
            shards = [
                s for s in np.array_split(np.arange(len(sample_list)), jobs) if s.size
            ]
            parts = replicate(
                lambda idx: self._simulate_chunked(
                    [sample_list[i] for i in idx], memory_budget_mb, mna_backend
                ),
                shards,
                n_jobs=jobs,
            )
            return np.vstack(parts)
        return self._simulate_chunked(sample_list, memory_budget_mb, mna_backend)

    # ------------------------------------------------------------------
    # vectorized engine
    # ------------------------------------------------------------------
    #: Samples per pipeline pass.  Small enough that the ~25 working
    #: (chunk, n_freq) planes stay cache-resident — measured ~4x faster
    #: than streaming the whole bank through memory — while large enough
    #: to amortise per-call numpy overhead.
    _PIPELINE_CHUNK = 512

    def _simulate_chunked(
        self,
        samples: List[ProcessSample],
        memory_budget_mb: float,
        mna_backend: Optional[str] = None,
    ) -> np.ndarray:
        """Run the vectorized engine in cache-sized sample chunks.

        Every metric is computed row-independently, so chunk boundaries
        cannot change results: the output is bit-identical for any chunk
        size.  The memory budget can only shrink the chunk further.
        """
        budget_rows = int(
            memory_budget_mb * 2**20 // (self._FREQ_GRID.size * 8 * 32)
        )
        chunk = max(1, min(self._PIPELINE_CHUNK, budget_rows))
        if len(samples) <= chunk:
            return self._simulate_batch_vectorized(samples, memory_budget_mb, mna_backend)
        return np.vstack(
            [
                self._simulate_batch_vectorized(
                    samples[i : i + chunk], memory_budget_mb, mna_backend
                )
                for i in range(0, len(samples), chunk)
            ]
        )

    def _stamp_plan(self) -> StampPlan:
        """The macromodel's symbolic scatter plan (topology-only, cached)."""
        if self._plan is None:
            model = ProcessVariationModel(0.0, 0.0, 0.0, 0.0, 0.0)
            devs = self._varied_devices(model.nominal_sample(self.devices))
            i_tail, i_stage2, _ = self._bias_currents(devs)
            template = self._macromodel(devs, i_tail, i_stage2)
            self._plan = StampPlan(template, variable=self._VARIABLE)
        return self._plan

    def _batched_device_arrays(
        self, samples: List[ProcessSample]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        """Per-device variation arrays, mirroring :meth:`_varied_devices`."""
        par = self.parasitics
        n = len(samples)
        dvth_g = {
            "n": np.array([s.global_variation.dvth_n for s in samples]),
            "p": np.array([s.global_variation.dvth_p for s in samples]),
        }
        dkp_g = {
            "n": np.array([s.global_variation.dkp_rel_n for s in samples]),
            "p": np.array([s.global_variation.dkp_rel_p for s in samples]),
        }
        out: Dict[str, Dict[str, np.ndarray]] = {}
        for dev, pol in self._devices:
            local = np.array(
                [s.local.get(dev.name, (0.0, 0.0)) for s in samples]
            ).reshape(n, 2)
            dvth = dvth_g[pol] + local[:, 0]
            dkp = dkp_g[pol] + local[:, 1]
            if par.stress_kp_gain != 0.0:
                dkp = dkp * (1.0 + par.stress_kp_gain)
            if par.proximity_quad != 0.0:
                dvth = dvth + par.proximity_quad * dvth * dvth / 0.012
            kp_eff = dev.process.kp * (1.0 + dkp)
            if np.any(kp_eff <= 0.0):
                raise SimulationError(
                    f"{dev.name}: kp variation drives kp non-positive in batch"
                )
            out[dev.name] = {
                "dvth": dvth,
                "dkp": dkp,
                "vth": dev.process.vth + dvth,
                "beta": kp_eff * dev.geometry.ratio,
                "lambda_": dev.process.lambda_,
                "cgg": (2.0 / 3.0) * dev.geometry.area * dev.process.cox
                + dev.geometry.width * dev.process.cov,
            }
        return out

    def _batched_bias_currents(
        self, devs: Dict[str, Dict[str, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Vectorized mirror of :meth:`_bias_currents` (square-law mirrors)."""
        design = self.design
        m8 = devs["M8"]
        vov8 = np.sqrt(2.0 * design.i_bias / m8["beta"])
        vgs = m8["vth"] + vov8

        def mirror_current(dev: Dict[str, np.ndarray], name: str) -> np.ndarray:
            vov = vgs - dev["vth"]
            if np.any(vov <= 0.0):
                bad = int(np.argmax(vov <= 0.0))
                raise SimulationError(
                    f"{name}: mirror output device cut off "
                    f"(Vov={float(vov[bad]):.3f} at sample {bad})"
                )
            return (
                0.5
                * dev["beta"]
                * vov
                * vov
                * (1.0 + self.parasitics.bias_current_rel)
            )

        return (
            mirror_current(devs["M5"], "M5"),
            mirror_current(devs["M7"], "M7"),
            design.i_bias,
        )

    @staticmethod
    def _batched_gm(dev: Dict[str, np.ndarray], current: np.ndarray) -> np.ndarray:
        return np.sqrt(2.0 * dev["beta"] * current)

    @staticmethod
    def _batched_vov(dev: Dict[str, np.ndarray], current: np.ndarray) -> np.ndarray:
        return np.sqrt(2.0 * current / dev["beta"])

    def _simulate_batch_vectorized(
        self,
        samples: List[ProcessSample],
        memory_budget_mb: float,
        mna_backend: Optional[str] = None,
    ) -> np.ndarray:
        n = len(samples)
        design = self.design
        par = self.parasitics
        devs = self._batched_device_arrays(samples)
        i_tail, i_stage2, i_bias = self._batched_bias_currents(devs)
        i_half = i_tail / 2.0

        gm_m1 = self._batched_gm(devs["M1"], i_half)
        gm_m2 = self._batched_gm(devs["M2"], i_half)
        gds = lambda name, current: devs[name]["lambda_"] * current
        ones = np.ones(n)
        values = {
            "Ggm1": 0.5 * (gm_m1 + gm_m2),
            "R1": 1.0 / (gds("M2", i_half) + gds("M4", i_half)),
            "C1": (
                devs["M6"]["cgg"]
                + 0.5 * (devs["M2"]["cgg"] + devs["M4"]["cgg"]) * 0.3
                + par.c_node1
            )
            * ones,
            "Cc": (design.c_comp + par.c_comp_extra) * ones,
            "Ggm6": self._batched_gm(devs["M6"], i_stage2),
            "R2": 1.0 / (gds("M6", i_stage2) + gds("M7", i_stage2)),
            "C2": (design.c_load + devs["M6"]["cgg"] * 0.2 + par.c_out) * ones,
        }
        plan = self._stamp_plan()
        out_node = "out" if par.r_out_wire > 0.0 else "out_int"
        solution = plan.solve_batched(
            values,
            self._FREQ_GRID,
            memory_budget_mb=memory_budget_mb,
            outputs=[out_node],
            backend=mna_backend,
        )
        h = solution.transfer(out_node, "in")

        mag = np.abs(h)
        gain, bw = self._gain_and_bandwidth_batch(mag)
        pm = self._phase_margin_batch(h, mag)
        nominal_budget = design.i_tail + design.i_stage2 + design.i_bias
        power = design.vdd * (
            i_tail
            + i_stage2
            + i_bias
            + self.parasitics.power_overhead_rel * nominal_budget
        )
        offset = self._offset_batch(devs, i_half)
        return np.column_stack([gain, bw, power, offset, pm])

    def _offset_batch(
        self, devs: Dict[str, Dict[str, np.ndarray]], i_half: np.ndarray
    ) -> np.ndarray:
        """Vectorized mirror of :meth:`_offset`."""
        gm1 = self._batched_gm(devs["M1"], i_half)
        gm3 = self._batched_gm(devs["M3"], i_half)
        vov1 = self._batched_vov(devs["M1"], i_half)
        vov3 = self._batched_vov(devs["M3"], i_half)
        dvth_pair = devs["M1"]["dvth"] - devs["M2"]["dvth"]
        dvth_load = devs["M3"]["dvth"] - devs["M4"]["dvth"]
        dbeta_pair = devs["M1"]["dkp"] - devs["M2"]["dkp"]
        dbeta_load = devs["M3"]["dkp"] - devs["M4"]["dkp"]
        return (
            dvth_pair
            + (gm3 / gm1) * dvth_load
            + (vov1 / 2.0) * dbeta_pair
            + (gm3 / gm1) * (vov3 / 2.0) * dbeta_load
            + self.parasitics.offset_systematic
        )

    def _gain_and_bandwidth_batch(
        self, mag: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized mirror of :meth:`_gain_and_bandwidth`."""
        gain = mag[:, 0]
        if np.any(gain <= 0.0):
            raise SimulationError("non-positive DC gain in batch")
        flatness = np.abs(mag[:, 1] / gain - 1.0)
        if np.any(flatness > 0.05):
            raise SimulationError(
                "response not flat at the low end of the analysis grid; "
                "DC gain not captured (batch)"
            )
        target = gain / math.sqrt(2.0)
        below = mag < target[:, None]
        if not np.all(below.any(axis=1)):
            raise SimulationError("-3 dB point beyond analysis grid in batch")
        j = below.argmax(axis=1)
        if np.any(j == 0):
            raise SimulationError("-3 dB point below analysis grid in batch")
        rows = np.arange(mag.shape[0])
        bw = self._log_crossing_batch(
            self._FREQ_GRID[j - 1],
            self._FREQ_GRID[j],
            mag[rows, j - 1],
            mag[rows, j],
            target,
        )
        return gain, bw

    def _phase_margin_batch(self, h: np.ndarray, mag: np.ndarray) -> np.ndarray:
        """Vectorized mirror of :meth:`_phase_margin`."""
        below_unity = mag < 1.0
        if not np.all(below_unity.any(axis=1)):
            raise SimulationError("unity-gain frequency beyond analysis grid in batch")
        j = below_unity.argmax(axis=1)
        if np.any(j == 0):
            raise SimulationError("gain below unity at the lowest frequency in batch")
        rows = np.arange(mag.shape[0])
        f_u = self._log_crossing_batch(
            self._FREQ_GRID[j - 1],
            self._FREQ_GRID[j],
            mag[rows, j - 1],
            mag[rows, j],
            np.ones(mag.shape[0]),
        )
        log_f = np.log10(self._FREQ_GRID)
        x = np.log10(f_u)
        idx = np.clip(np.searchsorted(log_f, x, side="right") - 1, 0, log_f.size - 2)
        phase = np.angle(h)
        p_lo, p_hi = _unwrapped_phase_pair(phase, idx)
        slope = (p_hi - p_lo) / (log_f[idx + 1] - log_f[idx])
        phase_u = p_lo + slope * (x - log_f[idx])
        return 180.0 + np.degrees(phase_u)

    @staticmethod
    def _log_crossing_batch(
        f_lo: np.ndarray,
        f_hi: np.ndarray,
        m_lo: np.ndarray,
        m_hi: np.ndarray,
        target: np.ndarray,
    ) -> np.ndarray:
        """Vectorized mirror of :meth:`_log_crossing`."""
        l_lo, l_hi = np.log10(f_lo), np.log10(f_hi)
        g_lo, g_hi = np.log10(m_lo), np.log10(m_hi)
        span = g_hi - g_lo
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = (np.log10(target) - g_lo) / span
        return np.where(span == 0.0, f_lo, 10.0 ** (l_lo + frac * (l_hi - l_lo)))

    # ------------------------------------------------------------------
    def _gain_and_bandwidth(self, h: np.ndarray) -> Tuple[float, float]:
        mag = np.abs(h)
        gain = float(mag[0])
        if gain <= 0.0:
            raise SimulationError("non-positive DC gain")
        # The first grid point must sit on the flat low-frequency plateau,
        # otherwise "gain" is not the DC gain and every derived metric is
        # silently wrong (dominant pole below the analysis grid).
        if abs(float(mag[1]) / gain - 1.0) > 0.05:
            raise SimulationError(
                "response not flat at the low end of the analysis grid; "
                "DC gain not captured"
            )
        target = gain / math.sqrt(2.0)
        below = np.nonzero(mag < target)[0]
        if below.size == 0:
            raise SimulationError("-3 dB point beyond analysis grid")
        j = int(below[0])
        if j == 0:
            raise SimulationError("-3 dB point below analysis grid")
        bw = self._log_crossing(
            self._FREQ_GRID[j - 1], self._FREQ_GRID[j], mag[j - 1], mag[j], target
        )
        return gain, bw

    def _phase_margin(self, h: np.ndarray) -> float:
        mag = np.abs(h)
        below_unity = np.nonzero(mag < 1.0)[0]
        if below_unity.size == 0:
            raise SimulationError("unity-gain frequency beyond analysis grid")
        j = int(below_unity[0])
        if j == 0:
            raise SimulationError("gain below unity at the lowest frequency")
        f_u = self._log_crossing(
            self._FREQ_GRID[j - 1], self._FREQ_GRID[j], mag[j - 1], mag[j], 1.0
        )
        phase = np.unwrap(np.angle(h))
        log_f = np.log10(self._FREQ_GRID)
        phase_u = float(np.interp(math.log10(f_u), log_f, phase))
        # DC phase is 0 (two inverting stages); margin against -180 deg.
        return 180.0 + math.degrees(phase_u)

    @staticmethod
    def _log_crossing(f_lo: float, f_hi: float, m_lo: float, m_hi: float, target: float) -> float:
        """Log-log interpolation of the frequency where ``|H|`` hits target."""
        l_lo, l_hi = math.log10(f_lo), math.log10(f_hi)
        g_lo, g_hi = math.log10(m_lo), math.log10(m_hi)
        if g_hi == g_lo:
            return f_lo
        frac = (math.log10(target) - g_lo) / (g_hi - g_lo)
        return 10.0 ** (l_lo + frac * (l_hi - l_lo))
