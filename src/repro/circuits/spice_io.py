"""SPICE-flavoured netlist text format: parser and writer.

Analog engineers think in netlists, not Python constructors.  This module
reads and writes a SPICE-like card format covering every element of the
MNA substrate, so a small-signal macromodel can live in a text file next
to the design data:

    * two-stage op-amp macromodel
    VIN in 0 AC 1
    GM1 x 0 in 0 1.85m
    R1  x 0 95k
    C1  x 0 45f
    CC  x out 0.5p
    GM2 out 0 x 0 9.2m
    R2  out 0 21k
    CL  out 0 1p
    .END

Supported cards (first letter selects the element, SPICE-style):

* ``R<name> n+ n- value``           resistor
* ``C<name> n+ n- value``           capacitor
* ``L<name> n+ n- value``           inductor
* ``G<name> n+ n- nc+ nc- gm``      VCCS
* ``I<name> n+ n- [AC] value``      current source
* ``V<name> n+ n- [AC] value``      voltage source

Values accept SPICE suffixes (``f p n u m k meg g t``), case-insensitive.
Comments start with ``*`` or ``;``; ``.END`` is optional; continuation
lines (leading ``+``) are joined.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

from repro.circuits.components import (
    Capacitor,
    Component,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VoltageSource,
)
from repro.circuits.netlist import Netlist
from repro.exceptions import NetlistError

__all__ = ["parse_value", "format_value", "parse_netlist", "write_netlist"]

#: SPICE magnitude suffixes.  ``meg`` must be matched before ``m``.
_SUFFIXES = (
    ("meg", 1e6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
)

_VALUE_RE = re.compile(
    r"^([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)([a-zA-Z]*)$"
)


def parse_value(token: str) -> float:
    """Parse a SPICE value token: ``4.7k`` -> 4700.0, ``0.5p`` -> 5e-13."""
    match = _VALUE_RE.match(token.strip())
    if not match:
        raise NetlistError(f"cannot parse value {token!r}")
    number, suffix = match.groups()
    value = float(number)
    suffix = suffix.lower()
    if not suffix:
        return value
    for name, scale in _SUFFIXES:
        if suffix == name or suffix.startswith(name):
            # SPICE ignores trailing unit letters ("1kohm", "10pF").
            return value * scale
    # Unknown leading letter: SPICE would silently ignore it, but silent
    # unit errors are how tape-outs die — be strict instead.
    raise NetlistError(f"unknown value suffix {suffix!r} in {token!r}")


def format_value(value: float) -> str:
    """Render a float with the largest suffix that keeps 1 <= |v| < 1000."""
    if value == 0.0:
        return "0"
    for name, scale in (("t", 1e12), ("meg", 1e6), ("k", 1e3)):
        if abs(value) >= scale:
            return f"{value / scale:.6g}{name}"
    if abs(value) >= 1.0:
        return f"{value:.6g}"
    for name, scale in (("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15)):
        if abs(value) >= scale:
            return f"{value / scale:.6g}{name}"
    return f"{value:.6g}"


def _logical_lines(text: str) -> List[str]:
    """Strip comments, join continuations, drop blanks and .END."""
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not lines:
                raise NetlistError("continuation line with nothing to continue")
            lines[-1] += " " + stripped[1:].strip()
            continue
        if stripped.lower() in (".end", ".ends"):
            break
        lines.append(stripped)
    return lines


def _parse_card(line: str) -> Component:
    tokens = line.split()
    name = tokens[0]
    kind = name[0].upper()
    if kind == "R":
        if len(tokens) != 4:
            raise NetlistError(f"{name}: resistor needs 'R n+ n- value', got {line!r}")
        return Resistor(name, tokens[1], tokens[2], parse_value(tokens[3]))
    if kind == "C":
        if len(tokens) != 4:
            raise NetlistError(f"{name}: capacitor needs 'C n+ n- value', got {line!r}")
        return Capacitor(name, tokens[1], tokens[2], parse_value(tokens[3]))
    if kind == "L":
        if len(tokens) != 4:
            raise NetlistError(f"{name}: inductor needs 'L n+ n- value', got {line!r}")
        return Inductor(name, tokens[1], tokens[2], parse_value(tokens[3]))
    if kind == "G":
        if len(tokens) != 6:
            raise NetlistError(
                f"{name}: VCCS needs 'G n+ n- nc+ nc- gm', got {line!r}"
            )
        return VCCS(
            name, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5])
        )
    if kind in ("V", "I"):
        rest = tokens[3:]
        if rest and rest[0].upper() == "AC":
            rest = rest[1:]
        if len(tokens) < 4 or len(rest) != 1:
            raise NetlistError(
                f"{name}: source needs '{kind} n+ n- [AC] value', got {line!r}"
            )
        amplitude = parse_value(rest[0])
        if kind == "V":
            return VoltageSource(name, tokens[1], tokens[2], amplitude)
        return CurrentSource(name, tokens[1], tokens[2], amplitude)
    raise NetlistError(f"unsupported element type {kind!r} in {line!r}")


def parse_netlist(source: Union[str, Path], title: str = "") -> Netlist:
    """Parse a netlist from text or a file path.

    A :class:`Path` (or a string naming an existing file) is read from
    disk; any other string is treated as the netlist text itself.
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif isinstance(source, str) and "\n" not in source and Path(source).is_file():
        text = Path(source).read_text()
    else:
        text = str(source)
    lines = _logical_lines(text)
    if not lines:
        raise NetlistError("netlist contains no element cards")
    net = Netlist(title=title)
    for line in lines:
        net.add(_parse_card(line))
    return net


def write_netlist(netlist: Netlist, path: Union[str, Path, None] = None) -> str:
    """Render a netlist back to card text (and optionally write a file)."""
    lines: List[str] = []
    if netlist.title:
        lines.append(f"* {netlist.title}")
    for comp in netlist.components:
        if isinstance(comp, (Resistor, Capacitor, Inductor)):
            lines.append(
                f"{comp.name} {comp.pos} {comp.neg} {format_value(comp.value)}"
            )
        elif isinstance(comp, VCCS):
            lines.append(
                f"{comp.name} {comp.pos} {comp.neg} {comp.ctrl_pos} "
                f"{comp.ctrl_neg} {format_value(comp.gm)}"
            )
        elif isinstance(comp, VoltageSource):
            lines.append(
                f"{comp.name} {comp.pos} {comp.neg} AC {format_value(comp.amplitude.real)}"
            )
        elif isinstance(comp, CurrentSource):
            lines.append(
                f"{comp.name} {comp.pos} {comp.neg} AC {format_value(comp.amplitude.real)}"
            )
        else:  # pragma: no cover - future component types
            raise NetlistError(f"cannot serialise {type(comp).__name__}")
    lines.append(".END")
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text
