"""Process variation model: global (inter-die) plus local (mismatch) components.

Each Monte-Carlo sample draws one *global* variation vector shared by every
transistor on the die (lot/wafer-level threshold and mobility shifts) and
independent *local* deviations per transistor whose standard deviations
follow the Pelgrom area law supplied by each device.  The same
:class:`ProcessSample` is replayed through both the schematic-level and the
post-layout simulator so early/late metric pairs are *correlated through
the physics*, which is the property BMF exploits (Sec. 1: data from the two
stages "are derived from the same circuit" and "are expected to be highly
correlated").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.devices import Mosfet
from repro.exceptions import SimulationError

__all__ = ["GlobalVariation", "ProcessSample", "ProcessVariationModel"]


@dataclass(frozen=True)
class GlobalVariation:
    """Die-level variation shared by all devices of one polarity.

    Attributes
    ----------
    dvth_n, dvth_p:
        Global threshold shifts for NMOS and PMOS devices (V).  Drawn with
        a positive correlation because many underlying causes (oxide
        thickness, gate-length bias) move both polarities together.
    dkp_rel_n, dkp_rel_p:
        Global relative mobility (``kp``) deviations.
    temp_delta:
        Die temperature deviation from nominal (K); scales mobility via
        the usual ``T^-1.5`` law inside the simulators that opt in.
    """

    dvth_n: float
    dvth_p: float
    dkp_rel_n: float
    dkp_rel_p: float
    temp_delta: float = 0.0


@dataclass(frozen=True)
class ProcessSample:
    """One die's complete variation draw.

    ``local`` maps transistor instance names to their
    ``(dvth, dkp_rel)`` local deviations (on top of the global shift).
    """

    global_variation: GlobalVariation
    local: Dict[str, Tuple[float, float]]

    def apply(self, device: Mosfet, polarity: str) -> Mosfet:
        """Return ``device`` re-instantiated with this sample's variations."""
        if polarity not in ("n", "p"):
            raise SimulationError(f"polarity must be 'n' or 'p', got {polarity!r}")
        g = self.global_variation
        g_dvth = g.dvth_n if polarity == "n" else g.dvth_p
        g_dkp = g.dkp_rel_n if polarity == "n" else g.dkp_rel_p
        l_dvth, l_dkp = self.local.get(device.name, (0.0, 0.0))
        return device.with_variation(g_dvth + l_dvth, g_dkp + l_dkp)


class ProcessVariationModel:
    """Sampler for :class:`ProcessSample` draws.

    Parameters
    ----------
    sigma_vth_global:
        Std of the global threshold shift (V), same for both polarities.
    sigma_kp_rel_global:
        Std of the global relative ``kp`` deviation.
    polarity_correlation:
        Correlation between the NMOS and PMOS global shifts (0..1).
    sigma_temp:
        Std of the die temperature deviation (K).
    local_scale:
        Multiplier on every device's Pelgrom sigmas; ``1.0`` is nominal,
        larger values emulate a noisier process corner.
    """

    def __init__(
        self,
        sigma_vth_global: float = 0.015,
        sigma_kp_rel_global: float = 0.05,
        polarity_correlation: float = 0.6,
        sigma_temp: float = 0.0,
        local_scale: float = 1.0,
    ) -> None:
        if sigma_vth_global < 0.0 or sigma_kp_rel_global < 0.0:
            raise SimulationError("variation sigmas must be non-negative")
        if not -1.0 < polarity_correlation < 1.0:
            raise SimulationError(
                f"polarity correlation must lie in (-1, 1), got {polarity_correlation}"
            )
        if local_scale < 0.0:
            raise SimulationError(f"local_scale must be >= 0, got {local_scale}")
        self.sigma_vth_global = float(sigma_vth_global)
        self.sigma_kp_rel_global = float(sigma_kp_rel_global)
        self.polarity_correlation = float(polarity_correlation)
        self.sigma_temp = float(sigma_temp)
        self.local_scale = float(local_scale)

    # ------------------------------------------------------------------
    def _correlated_pair(
        self, rng: np.random.Generator, sigma: float, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two length-``n`` vectors with correlation ``polarity_correlation``."""
        rho = self.polarity_correlation
        z1 = rng.standard_normal(n)
        z2 = rho * z1 + np.sqrt(1.0 - rho * rho) * rng.standard_normal(n)
        return sigma * z1, sigma * z2

    def sample(
        self,
        devices: Sequence[Mosfet],
        n: int,
        rng: Optional[np.random.Generator] = None,
    ) -> List[ProcessSample]:
        """Draw ``n`` die samples for the given device list.

        Local deviations are independent across devices and dies, scaled
        per device by its Pelgrom sigmas (so small transistors are noisier,
        as in real silicon).
        """
        if n < 1:
            raise SimulationError(f"n must be >= 1, got {n}")
        gen = rng if rng is not None else np.random.default_rng()
        dvth_n, dvth_p = self._correlated_pair(gen, self.sigma_vth_global, n)
        dkp_n, dkp_p = self._correlated_pair(gen, self.sigma_kp_rel_global, n)
        temps = (
            gen.standard_normal(n) * self.sigma_temp
            if self.sigma_temp > 0.0
            else np.zeros(n)
        )

        sigmas = {dev.name: dev.mismatch_sigma() for dev in devices}
        samples: List[ProcessSample] = []
        for i in range(n):
            local: Dict[str, Tuple[float, float]] = {}
            for dev in devices:
                s_vth, s_kp = sigmas[dev.name]
                local[dev.name] = (
                    float(gen.standard_normal() * s_vth * self.local_scale),
                    float(gen.standard_normal() * s_kp * self.local_scale),
                )
            samples.append(
                ProcessSample(
                    global_variation=GlobalVariation(
                        dvth_n=float(dvth_n[i]),
                        dvth_p=float(dvth_p[i]),
                        dkp_rel_n=float(dkp_n[i]),
                        dkp_rel_p=float(dkp_p[i]),
                        temp_delta=float(temps[i]),
                    ),
                    local=local,
                )
            )
        return samples

    def nominal_sample(self, devices: Sequence[Mosfet]) -> ProcessSample:
        """The variation-free sample used for nominal simulations (Sec. 4.1)."""
        return ProcessSample(
            global_variation=GlobalVariation(0.0, 0.0, 0.0, 0.0, 0.0),
            local={dev.name: (0.0, 0.0) for dev in devices},
        )
