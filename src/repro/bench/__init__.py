"""Benchmark infrastructure shared by the ``scripts/``/``benchmarks/`` harnesses.

Layer-0 utility package: it depends only on :mod:`repro.exceptions` so any
benchmark script — whatever layer it exercises — can record its numbers
without creating an import cycle.
"""

from repro.bench.trajectory import (
    TRAJECTORY_SCHEMA,
    append_entry,
    environment_info,
    load_trajectory,
    utc_timestamp,
)

__all__ = [
    "TRAJECTORY_SCHEMA",
    "append_entry",
    "environment_info",
    "load_trajectory",
    "utc_timestamp",
]
