"""Append-only benchmark trajectory files (``BENCH_*.json``).

Benchmark scripts used to overwrite their ``BENCH_*.json`` with a single
snapshot, so a regression was only visible if the reviewer happened to
diff the file against git history.  A *trajectory* keeps every run::

    {
      "schema": "repro-bench-trajectory/v1",
      "benchmark": "mc",
      "history": [
        {"timestamp": ..., "config": {...}, "environment": {...},
         "results": {...}},
        ...
      ]
    }

``history`` is append-only and chronologically ordered (oldest first), so
``history[-1]`` is always the latest run and the file itself shows the
performance trajectory across commits.  Pre-trajectory snapshot files are
upgraded in place on the first append: the old document becomes a
one-element history whose entry is flagged ``"legacy": true``.

Writes are atomic (temp file + ``os.replace``) so a crashed benchmark run
can never leave a torn file behind.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.exceptions import ConfigError, SchemaVersionError
from repro.schemas import TRAJECTORY_SCHEMA, write_json_atomic

__all__ = [
    "TRAJECTORY_SCHEMA",
    "utc_timestamp",
    "environment_info",
    "load_trajectory",
    "append_entry",
]

#: Schema identifier stamped into every trajectory document.
# TRAJECTORY_SCHEMA (re-exported in __all__) is defined in repro.schemas,
# the single source of truth for artefact version markers.


def utc_timestamp() -> str:
    """Current UTC time as an ISO-8601 string (second resolution).

    Benchmark trajectories are measurement logs, not seeded replication
    artefacts: the timestamp annotates *when* a wall-clock measurement was
    taken and is never consumed by library code, so the determinism rule
    does not apply here.
    """
    now = datetime.datetime.now(datetime.timezone.utc)  # reprolint: disable=RPL006 -- benchmark log timestamp, never in a seeded path
    return now.strftime("%Y-%m-%dT%H:%M:%SZ")


def environment_info() -> Dict[str, Any]:
    """The environment fingerprint recorded with every trajectory entry.

    Optional accelerator packages (scipy, numba) are recorded as their
    version string when importable and ``None`` when absent, so a speedup
    regression can be traced to a dependency change rather than a code
    change.
    """
    import numpy

    info: Dict[str, Any] = {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
    }
    for optional in ("scipy", "numba"):
        try:
            module = __import__(optional)
            info[optional] = str(module.__version__)
        except ImportError:
            info[optional] = None
    return info


def _upgrade_legacy(document: Dict[str, Any], benchmark: str) -> Dict[str, Any]:
    """Wrap a pre-trajectory snapshot as a one-element history.

    The old writers stored ``config`` / ``environment`` top-level keys with
    the measurements alongside; those two keys map onto the entry fields
    and everything else becomes the ``results`` payload.
    """
    legacy = dict(document)
    entry: Dict[str, Any] = {
        "timestamp": None,
        "config": legacy.pop("config", {}),
        "environment": legacy.pop("environment", {}),
        "results": legacy,
        "legacy": True,
    }
    return {
        "schema": TRAJECTORY_SCHEMA,
        "benchmark": benchmark,
        "history": [entry],
    }


def load_trajectory(
    path: Union[str, Path], benchmark: str
) -> Dict[str, Any]:
    """Load (and if necessary upgrade) the trajectory document at ``path``.

    A missing file yields an empty trajectory; a pre-trajectory snapshot
    (no ``"schema"`` key) is upgraded to a one-element legacy history; a
    document declaring an unknown schema raises
    :class:`~repro.exceptions.SchemaVersionError` rather than guessing.
    """
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "benchmark": benchmark, "history": []}
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable benchmark file {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ConfigError(f"benchmark file {path} is not a JSON object")
    schema = document.get("schema")
    if schema is None:
        return _upgrade_legacy(document, benchmark)
    if schema != TRAJECTORY_SCHEMA:
        raise SchemaVersionError(
            f"benchmark file {path} declares schema {schema!r}; this reader "
            f"understands {TRAJECTORY_SCHEMA!r}"
        )
    history = document.get("history")
    if not isinstance(history, list):
        raise ConfigError(f"benchmark file {path} has no history array")
    return document


def append_entry(
    path: Union[str, Path],
    benchmark: str,
    config: Dict[str, Any],
    results: Dict[str, Any],
    environment: Optional[Dict[str, Any]] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, Any]:
    """Append one run to the trajectory at ``path`` and write it atomically.

    Returns the full document after the append (``history[-1]`` is the
    entry just written).  ``environment`` defaults to
    :func:`environment_info`; ``timestamp`` defaults to
    :func:`utc_timestamp`.
    """
    path = Path(path)
    document = load_trajectory(path, benchmark)
    entry = {
        "timestamp": timestamp if timestamp is not None else utc_timestamp(),
        "config": config,
        "environment": (
            environment if environment is not None else environment_info()
        ),
        "results": results,
    }
    document["benchmark"] = benchmark
    document["history"].append(entry)
    write_json_atomic(document, path, canonical=False)
    return document
