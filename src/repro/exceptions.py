"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses are deliberately fine-grained: numerical
problems (non-SPD covariances, singular systems) are distinguished from
user errors (bad shapes, insufficient samples) because the recommended
remedies differ — the former usually call for regularisation, the latter
for fixing the call site.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class DimensionError(ReproError, ValueError):
    """Raised when array arguments have incompatible or invalid shapes."""


class InsufficientDataError(ReproError, ValueError):
    """Raised when an estimator receives fewer samples than it requires."""


class NotSPDError(ReproError, ValueError):
    """Raised when a matrix expected to be symmetric positive definite is not."""


class SingularMatrixError(ReproError, ValueError):
    """Raised when a linear system or inversion encounters a singular matrix."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative routine fails to converge."""


class SimulationError(ReproError, RuntimeError):
    """Raised when a circuit simulation cannot be completed."""


class BackendUnavailableError(ReproError, RuntimeError):
    """Raised when a requested solver backend's dependency is missing.

    The optional backends (``sparse`` needs scipy, ``numba`` needs numba)
    are never hard dependencies; asking for one explicitly when its import
    fails raises this instead of an opaque :class:`ImportError`, and the
    ``auto`` resolvers fall back silently rather than raise.
    """


class NetlistError(ReproError, ValueError):
    """Raised when a circuit netlist is malformed (dangling node, bad value...)."""


class SpecificationError(ReproError, ValueError):
    """Raised when a performance specification is malformed."""


class HyperParameterError(ReproError, ValueError):
    """Raised when BMF hyper-parameters violate their constraints.

    The normal-Wishart prior requires ``kappa_0 > 0`` and ``v_0 > d`` (the
    paper uses ``v_0 >= d``; strict inequality keeps the prior mode of the
    precision matrix well defined, see Eq. (16) of the paper).
    """


class NotFittedError(ReproError, RuntimeError):
    """Raised when a transform/estimator is used before being fitted."""


class UnknownEstimatorError(ReproError, KeyError):
    """Raised when a registry lookup names an estimator that is not registered.

    The message always lists the available names so a typo in a config file
    or on the command line is self-diagnosing.
    """


class ConfigError(ReproError, ValueError):
    """Raised when a serialized :class:`~repro.core.registry.FusionConfig`
    or :class:`~repro.core.registry.EstimatorSpec` payload is malformed."""


class SchemaVersionError(ConfigError):
    """Raised when a serialized artefact declares an unsupported schema version.

    Distinguished from a generally malformed payload (:class:`ConfigError`)
    because the remedy differs: the file is *valid*, just written by a
    newer (or unknown) revision — upgrade the reader instead of fixing the
    file.  Loaders must raise this rather than guessing at forward
    compatibility.
    """


class SessionNotFoundError(ReproError, KeyError):
    """Raised when a serving query names a session key that does not exist
    (never created, or already evicted by TTL / capacity pressure)."""


class WalCorruptionError(ReproError, RuntimeError):
    """Raised when a write-ahead log fails hash-chain verification.

    A *torn tail* (the last record truncated by a crash mid-write) is not
    corruption — recovery drops it silently and the log stays usable.
    This error means something stronger: a record in the *middle* of the
    chain fails its sha256 link, or valid-looking records follow a broken
    one — the file was edited, reordered, or damaged at rest, and replaying
    it would reconstruct a state that never existed.
    """


class ServiceOverloadedError(ReproError, RuntimeError):
    """Raised when the serving request queue is full (backpressure).

    The micro-batching queue bounds its pending-request memory; once the
    bound is hit, new submissions fail fast with this error instead of
    growing the queue without limit.  Callers should retry with backoff or
    shed load.
    """
