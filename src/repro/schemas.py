"""Canonical schema/version registry + the encodings those schemas pin.

Every durable or wire-crossing artefact in this code base carries a
version marker of the shape ``repro.<artefact>.v<N>`` (or, for the
benchmark trajectories, ``repro-bench-trajectory/v<N>``).  Those markers
are *contracts*: readers reject unknown versions instead of misdecoding,
and sha256 chains/digests are computed over encodings that embed them.
This module is their single source of truth — reprolint rule RPL009
flags any matching string literal defined anywhere else, so a version
bump (or a new artefact) is always one edit here plus the code that
understands it, never a drift of scattered copies.

Alongside the markers live the two primitives every versioned artefact
is built on, placed here (the bottom architectural layer) so every layer
— ``stats`` wire encodings and ``bench`` trajectories included — can
reach them without a layering back-edge:

* :func:`canonical_json` — the one canonical JSON encoding used for
  every hashed payload;
* :func:`fsync_dir` — the directory-fsync half of the crash-safe
  ``flush -> fsync -> os.replace -> fsync_dir`` write pattern that
  reprolint rule RPL008 enforces;
* :func:`write_json_atomic` — the full pattern packaged, so it has
  exactly one implementation (RPL008 flags hand-rolled copies).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union

__all__ = [
    "SUFFSTATS_WIRE_SCHEMA",
    "RESULT_SCHEMA",
    "CHECKPOINT_SCHEMA",
    "WAL_SCHEMA_V1",
    "WAL_SCHEMA_V2",
    "WAL2_MAGIC",
    "MANIFEST_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "SCENARIO_SCHEMA",
    "ALL_SCHEMAS",
    "canonical_json",
    "fsync_dir",
    "write_json_atomic",
]

PathLike = Union[str, Path]

#: Wire envelope of a serialized :class:`repro.stats.suffstats.SufficientStats`.
SUFFSTATS_WIRE_SCHEMA = "repro.suffstats.v1"

#: Serialized pipeline results (:mod:`repro.io`).
RESULT_SCHEMA = "repro.pipeline-result.v1"

#: Serving checkpoints (:mod:`repro.serving.checkpoint`).
CHECKPOINT_SCHEMA = "repro.serving-checkpoint.v1"

#: Write-ahead log, v1 JSON-lines format (:mod:`repro.serving.wal`).
WAL_SCHEMA_V1 = "repro.serving-wal.v1"

#: Write-ahead log, v2 binary-frame format (:mod:`repro.serving.wal`).
WAL_SCHEMA_V2 = "repro.serving-wal.v2"

#: First bytes of every v2 log file, derived from the schema marker so the
#: two can never disagree (human-readable even in binary dumps).
WAL2_MAGIC = b"#" + WAL_SCHEMA_V2.encode("ascii") + b"\n"

#: Sharded-checkpoint manifest (:mod:`repro.serving.router`).
MANIFEST_SCHEMA = "repro.serving-shards.v1"

#: Append-only benchmark trajectory documents (:mod:`repro.bench.trajectory`).
TRAJECTORY_SCHEMA = "repro-bench-trajectory/v1"

#: Declarative scenario documents (:mod:`repro.scenarios.spec`).
SCENARIO_SCHEMA = "repro.scenario.v1"

#: Every known artefact marker, for tooling and exhaustiveness tests.
ALL_SCHEMAS = (
    SUFFSTATS_WIRE_SCHEMA,
    RESULT_SCHEMA,
    CHECKPOINT_SCHEMA,
    WAL_SCHEMA_V1,
    WAL_SCHEMA_V2,
    MANIFEST_SCHEMA,
    TRAJECTORY_SCHEMA,
    SCENARIO_SCHEMA,
)


def canonical_json(payload: Any) -> str:
    """The one canonical JSON encoding used for every hashed artefact.

    Sorted keys, no whitespace — so a sha256 over the encoding is a
    well-defined function of the *value*, not of dict insertion order or
    formatting.  Floats go through ``float.__repr__`` (shortest round
    trip), which preserves IEEE-754 doubles bit-for-bit.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fsync_dir(path: PathLike) -> None:
    """Fsync a directory so a rename inside it survives power loss.

    ``os.replace`` makes a rename atomic against crashes of *this*
    process, but the rename itself lives in the directory entry — until
    the directory is fsync'd, a power cut can roll it back.  Platforms
    that cannot open or fsync directories (e.g. Windows) make this a
    no-op, which matches their rename-durability semantics anyway.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_json_atomic(payload: Any, path: PathLike, canonical: bool = True) -> str:
    """Write a JSON document crash-safely; returns the encoded text.

    The bytes go to a temporary file in the target directory, are fsync'd,
    then atomically renamed over the destination (``os.replace``) and the
    parent directory is fsync'd so the rename is durable — a crash
    mid-write leaves the previous file intact.  With ``canonical`` the
    encoding is :func:`canonical_json` (hash-stable); otherwise an
    indented human-readable form.
    """
    target = Path(path)
    encoded = canonical_json(payload) if canonical else json.dumps(payload, indent=2)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(encoded)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    fsync_dir(target.parent)
    return encoded
