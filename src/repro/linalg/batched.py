"""Batched dense linear algebra for stacks of small SPD matrices.

The hyper-parameter searches (Sec. 4.2 cross validation, the evidence
selector, the multi-population tau search) all score *many* small Gaussians
at once: one candidate covariance per grid point per fold.  Doing that with
one :class:`~repro.stats.multivariate_gaussian.MultivariateGaussian` per
candidate costs a Python-level Cholesky factorisation each — thousands of
interpreter round-trips per search.  The primitives here operate on a
``(B, d, d)`` stack in a handful of NumPy gufunc calls instead.

Numerical policy
----------------
The scalar helpers in :mod:`repro.linalg.validation` define the repair
policy (plain Cholesky, one diagonal-jitter retry, eigenvalue-clip
fallback).  The batched versions reproduce it *matrix for matrix*: the same
LAPACK routines run on the same inputs, so a candidate takes the same
repair branch whether it is scored through the scalar loop or the batched
kernel.  This is what lets the cross-validation equivalence suite demand
``1e-10`` agreement between the two paths.

Failures are reported through boolean masks rather than exceptions: a
stack is allowed to contain irreparable (indefinite or non-finite)
members, which callers score as ``-inf``.

Backend dispatch
----------------
The three hot primitives (:func:`cholesky_batched`,
:func:`solve_triangular_batched`, :func:`mahalanobis_sq_batched`)
dispatch to the active *kernel backend*
(:mod:`repro.linalg.backends`): ``"numpy"`` (the default — the exact
code that always lived here, bit-identical) or ``"numba"`` (optional
fused compiled loops, 1e-12 documented agreement).  Validation, shape
promotion and the repair ladder stay in this module so every backend
sees identical pre-conditions; this file is the seam reprolint RPL002
enforces, which is why swapping backends requires no call-site changes
anywhere in ``core``/``serving``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import DimensionError, SingularMatrixError
from repro.linalg.backends import kernels as _kernels
from repro.linalg.validation import EIG_FLOOR

__all__ = [
    "as_spd_stack",
    "cholesky_batched",
    "cholesky_batched_safe",
    "inv_spd_batched",
    "solve_batched",
    "solve_triangular_batched",
    "logdet_batched",
    "mahalanobis_sq_batched",
    "clip_eigenvalues_batched",
    "jitter_spd_batched",
    "symmetrize_batched",
]


def as_spd_stack(a: ArrayLike, name: str = "stack") -> np.ndarray:
    """Convert ``a`` to a float ``(B, d, d)`` stack of square matrices.

    A single ``(d, d)`` matrix is promoted to a one-element stack.  Unlike
    :func:`repro.linalg.validation.as_matrix` this does *not* reject
    non-finite entries — batched callers handle bad members via masks.
    """
    arr = np.asarray(a, dtype=float)
    if arr.ndim == 2:
        arr = arr[None]
    if arr.ndim != 3:
        raise DimensionError(f"{name} must be (B, d, d), got ndim={arr.ndim}")
    if arr.shape[1] != arr.shape[2]:
        raise DimensionError(f"{name} members must be square, got shape {arr.shape}")
    return arr


def symmetrize_batched(stack: ArrayLike) -> np.ndarray:
    """Symmetric part ``(A + A^T) / 2`` of every member of the stack."""
    arr = as_spd_stack(stack)
    return (arr + np.swapaxes(arr, -1, -2)) / 2.0


def cholesky_batched(stack: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Lower Cholesky factors of a ``(B, d, d)`` stack with a failure mask.

    Returns ``(L, ok)`` where ``L[i]`` satisfies
    ``stack[i] = L[i] @ L[i].T`` wherever ``ok[i]`` is True.  Members that
    are indefinite or contain non-finite entries get ``ok[i] = False`` and
    an all-zero factor; no exception is raised for them.  The
    factorisation runs on the active kernel backend
    (:func:`repro.linalg.backends.active_kernel_backend`).
    """
    arr = as_spd_stack(stack)
    return _kernels().cholesky(arr)


def jitter_spd_batched(stack: ArrayLike, rel: float = 1e-10) -> np.ndarray:
    """Batched :func:`repro.linalg.validation.jitter_spd` (same arithmetic)."""
    arr = symmetrize_batched(stack)
    d = arr.shape[-1]
    scale = np.trace(arr, axis1=-2, axis2=-1) / max(d, 1)
    scale = np.where(scale <= 0.0, 1.0, scale)
    return arr + np.eye(d) * (scale * rel)[:, None, None]


def clip_eigenvalues_batched(stack: ArrayLike, floor_rel: float = EIG_FLOOR) -> np.ndarray:
    """Batched :func:`repro.linalg.validation.clip_eigenvalues`.

    Every member's spectrum is clipped to ``floor_rel * max(eig_max, 1)``;
    the eigendecomposition and reconstruction use the same LAPACK/BLAS
    kernels as the scalar helper, keeping the two numerically identical.
    Non-finite members are returned unchanged (they stay irreparable).
    """
    arr = symmetrize_batched(stack)
    out = arr.copy()
    finite = np.isfinite(arr).all(axis=(1, 2))
    sel = np.flatnonzero(finite)
    if sel.size == 0:
        return out
    vals, vecs = np.linalg.eigh(arr[sel])
    floor = floor_rel * np.maximum(vals[:, -1], 1.0)
    vals = np.maximum(vals, floor[:, None])
    rebuilt = (vecs * vals[:, None, :]) @ np.swapaxes(vecs, -1, -2)
    out[sel] = (rebuilt + np.swapaxes(rebuilt, -1, -2)) / 2.0
    return out


def cholesky_batched_safe(
    stack: ArrayLike,
    jitter_rel: float = 1e-10,
    clip_floor_rel: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched Cholesky with the scalar code's full repair ladder.

    Mirrors what the scoring loops do per candidate:

    1. plain Cholesky (:func:`cholesky_batched`);
    2. failed members: one diagonal-jitter retry
       (:func:`repro.linalg.validation.jitter_spd` semantics);
    3. still failing and ``clip_floor_rel`` is given: eigenvalue-clip the
       *original* matrix and run steps 1–2 on the repaired version —
       exactly the ``clip_eigenvalues`` fallback of
       :class:`~repro.core.crossval.TwoDimensionalCV`;
    4. anything still failing is reported via ``ok = False``.

    The input is symmetrised first, as every scalar entry point does.
    Returns ``(L, ok)``.
    """
    arr = symmetrize_batched(stack)
    chol, ok = cholesky_batched(arr)
    if not ok.all():
        bad = np.flatnonzero(~ok)
        finite = np.isfinite(arr[bad]).all(axis=(1, 2))
        bad = bad[finite]
        if bad.size:
            retry, retry_ok = cholesky_batched(jitter_spd_batched(arr[bad], jitter_rel))
            chol[bad[retry_ok]] = retry[retry_ok]
            ok[bad[retry_ok]] = True
    if clip_floor_rel is not None and not ok.all():
        bad = np.flatnonzero(~ok)
        finite = np.isfinite(arr[bad]).all(axis=(1, 2))
        bad = bad[finite]
        if bad.size:
            clipped = clip_eigenvalues_batched(arr[bad], clip_floor_rel)
            retry, retry_ok = cholesky_batched_safe(clipped, jitter_rel, None)
            chol[bad[retry_ok]] = retry[retry_ok]
            ok[bad[retry_ok]] = True
    return chol, ok


def inv_spd_batched(stack: ArrayLike, name: str = "stack") -> np.ndarray:
    """Symmetrised inverses of a ``(B, d, d)`` stack of SPD matrices.

    One batched LAPACK call (``np.linalg.inv`` gufunc) followed by a
    re-symmetrisation — the stack analogue of
    :func:`repro.linalg.validation.inv_spd`.  Raises
    :class:`~repro.exceptions.SingularMatrixError` when any member is
    singular.
    """
    arr = as_spd_stack(stack, name)
    try:
        inv = np.linalg.inv(arr)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(f"{name} contains a singular member") from exc
    return (inv + np.swapaxes(inv, -1, -2)) / 2.0


def solve_batched(systems: np.ndarray, rhs: np.ndarray, name: str = "systems") -> np.ndarray:
    """Solve a stack of square systems ``systems[...] @ x = rhs[...]``.

    ``systems`` is ``(..., m, m)`` and ``rhs`` is ``(..., m)`` (the vector
    RHS convention of the MNA engine); the result has ``rhs``'s shape.
    Unlike the SPD helpers this accepts *general* (including complex,
    non-symmetric) matrices — it exists so callers get the library's
    :class:`~repro.exceptions.SingularMatrixError` taxonomy and a single
    audited entry point instead of scattering raw ``np.linalg.solve``
    calls.  The arithmetic is a verbatim pass-through: bit-identical to
    the raw call.
    """
    try:
        return np.linalg.solve(systems, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(f"{name}: singular stacked system") from exc


def solve_triangular_batched(chol: ArrayLike, rhs: ArrayLike, lower: bool = True) -> np.ndarray:
    """Solve ``L[i] x[i] = rhs[i]`` for a stack of triangular systems.

    ``chol`` is ``(B, d, d)``; ``rhs`` is ``(B, d)`` or ``(B, d, k)``.
    Forward (``lower=True``) or backward substitution on the active
    kernel backend — the reference implementation vectorises over the
    batch with a Python loop over the ``d`` rows only, so the cost is
    ``O(d)`` interpreter steps regardless of ``B`` and ``k``.
    """
    factors = as_spd_stack(chol, "chol")
    b = np.asarray(rhs, dtype=float)
    squeeze = b.ndim == 2
    if squeeze:
        b = b[:, :, None]
    if b.ndim != 3 or b.shape[0] != factors.shape[0] or b.shape[1] != factors.shape[1]:
        raise DimensionError(
            f"rhs shape {np.asarray(rhs).shape} incompatible with chol {factors.shape}"
        )
    x = _kernels().solve_triangular(factors, b, lower)
    return x[:, :, 0] if squeeze else x


def logdet_batched(chol: ArrayLike) -> np.ndarray:
    """``log |Sigma_i|`` from the stacked Cholesky factors, shape ``(B,)``."""
    factors = as_spd_stack(chol, "chol")
    diag = np.diagonal(factors, axis1=-2, axis2=-1)
    return 2.0 * np.sum(np.log(diag), axis=-1)


def mahalanobis_sq_batched(chol: ArrayLike, means: ArrayLike, x: ArrayLike) -> np.ndarray:
    """Squared Mahalanobis distances of ``x`` rows under ``B`` Gaussians.

    ``chol`` is the ``(B, d, d)`` stack of covariance Cholesky factors,
    ``means`` is ``(B, d)`` and ``x`` is a shared ``(n, d)`` sample matrix.
    Returns ``(B, n)``.
    """
    factors = as_spd_stack(chol, "chol")
    mu = np.asarray(means, dtype=float)
    pts = np.asarray(x, dtype=float)
    if pts.ndim == 1:
        pts = pts[:, None]
    if mu.ndim != 2 or mu.shape != factors.shape[:2]:
        raise DimensionError(
            f"means shape {mu.shape} does not match chol stack {factors.shape}"
        )
    if pts.ndim != 2 or pts.shape[1] != factors.shape[1]:
        raise DimensionError(
            f"x has {pts.shape[-1] if pts.ndim else 0} columns, expected {factors.shape[1]}"
        )
    diff = np.swapaxes(pts[None, :, :] - mu[:, None, :], -1, -2)  # (B, d, n)
    return _kernels().mahalanobis_sq(factors, diff)
