"""Matrix and vector norms plus conditioning diagnostics.

The paper's accuracy criteria (Eq. 37 and 38) are the vector 2-norm for the
mean and the Frobenius norm for the covariance, both evaluated in the
shifted-and-scaled metric space.  These thin wrappers exist so the rest of
the code base names the paper's equations instead of calling
``np.linalg.norm`` with easy-to-mix-up ``ord`` arguments.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import DimensionError
from repro.linalg.validation import as_matrix

__all__ = [
    "vector_2norm",
    "frobenius_norm",
    "spectral_norm",
    "condition_number",
    "log_det_spd",
    "relative_difference",
]


def vector_2norm(v: ArrayLike) -> float:
    """Euclidean norm of a 1-D vector (Eq. 37's ``|| . ||_2``)."""
    arr = np.asarray(v, dtype=float)
    if arr.ndim != 1:
        raise DimensionError(f"expected 1-D vector, got ndim={arr.ndim}")
    return float(np.linalg.norm(arr, ord=2))


def frobenius_norm(a: ArrayLike) -> float:
    """Frobenius norm of a matrix (Eq. 38's ``|| . ||_F``)."""
    return float(np.linalg.norm(as_matrix(a), ord="fro"))


def spectral_norm(a: ArrayLike) -> float:
    """Largest singular value of a matrix."""
    return float(np.linalg.norm(as_matrix(a), ord=2))


def condition_number(a: ArrayLike) -> float:
    """2-norm condition number; ``inf`` for singular matrices."""
    arr = as_matrix(a)
    s = np.linalg.svd(arr, compute_uv=False)
    smin = float(s[-1])
    if smin == 0.0:
        return float("inf")
    return float(s[0]) / smin


def log_det_spd(a: ArrayLike) -> float:
    """Log-determinant of an SPD matrix via Cholesky (stable for tiny dets)."""
    from repro.linalg.validation import cholesky_safe

    chol = cholesky_safe(a)
    return 2.0 * float(np.sum(np.log(np.diag(chol))))


def relative_difference(a: ArrayLike, b: ArrayLike) -> float:
    """Frobenius distance between two matrices, relative to ``||b||_F``.

    Useful for convergence/agreement checks; returns the absolute distance
    when ``b`` is the zero matrix.
    """
    a_arr = as_matrix(a)
    b_arr = as_matrix(b)
    if a_arr.shape != b_arr.shape:
        raise DimensionError(f"shape mismatch: {a_arr.shape} vs {b_arr.shape}")
    denom = float(np.linalg.norm(b_arr, ord="fro"))
    num = float(np.linalg.norm(a_arr - b_arr, ord="fro"))
    if denom == 0.0:
        return num
    return num / denom
