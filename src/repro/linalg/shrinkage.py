"""Classical small-sample covariance shrinkage estimators.

These are *non-Bayesian* baselines used by the ablation benchmarks to put
the paper's BMF gains in context: Ledoit–Wolf and OAS shrink the sample
covariance towards a scaled identity using only late-stage data, while BMF
shrinks towards the early-stage covariance.  Comparing the two isolates how
much of BMF's win comes from the *prior's content* versus mere
regularisation.

All estimators accept an ``(n, d)`` sample matrix and return a ``(d, d)``
SPD covariance estimate.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import InsufficientDataError
from repro.linalg.validation import as_samples, clip_eigenvalues, symmetrize

__all__ = [
    "sample_covariance",
    "diagonal_shrinkage",
    "ledoit_wolf",
    "oas",
    "shrink_towards",
]


def sample_covariance(x: ArrayLike, ddof: int = 0) -> np.ndarray:
    """Sample covariance with ``ddof`` degrees-of-freedom correction.

    ``ddof=0`` matches the paper's MLE definition (Eq. 11); ``ddof=1`` gives
    the unbiased estimator.
    """
    samples = as_samples(x)
    n = samples.shape[0]
    if n <= ddof:
        raise InsufficientDataError(f"need more than {ddof} samples, got {n}")
    centered = samples - samples.mean(axis=0)
    return symmetrize(centered.T @ centered / (n - ddof))


def diagonal_shrinkage(x: ArrayLike, alpha: float = 0.1) -> np.ndarray:
    """Convex combination of the sample covariance and its own diagonal.

    ``alpha`` is the weight on the diagonal target; ``alpha=0`` returns the
    MLE and ``alpha=1`` a fully diagonal estimate.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must lie in [0, 1], got {alpha}")
    cov = sample_covariance(x)
    target = np.diag(np.diag(cov))
    return symmetrize((1.0 - alpha) * cov + alpha * target)


def shrink_towards(x: ArrayLike, target: ArrayLike, alpha: float) -> np.ndarray:
    """Convex combination of the sample covariance and an arbitrary target.

    This mirrors the *structure* of the BMF covariance update (Eq. 32) with
    a fixed mixing weight instead of the Bayesian ``(v0 - d)/(v0 + n - d)``
    weight — used by the fixed-hyper-parameter ablation.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must lie in [0, 1], got {alpha}")
    cov = sample_covariance(x)
    target_arr = symmetrize(np.asarray(target, dtype=float))
    if target_arr.shape != cov.shape:
        raise ValueError(f"target shape {target_arr.shape} != cov shape {cov.shape}")
    return symmetrize((1.0 - alpha) * cov + alpha * target_arr)


def ledoit_wolf(x: ArrayLike) -> np.ndarray:
    """Ledoit–Wolf shrinkage towards a scaled identity.

    Implements the analytical optimal shrinkage intensity of Ledoit & Wolf
    (2004), "A well-conditioned estimator for large-dimensional covariance
    matrices".  Always returns an SPD matrix.
    """
    samples = as_samples(x)
    n, d = samples.shape
    if n < 2:
        raise InsufficientDataError("Ledoit-Wolf requires at least 2 samples")
    centered = samples - samples.mean(axis=0)
    cov = symmetrize(centered.T @ centered / n)
    mu = float(np.trace(cov)) / d
    target = mu * np.eye(d)
    # delta^2 = ||S - mu I||_F^2 / d
    delta2 = float(np.sum((cov - target) ** 2)) / d
    # beta^2 estimates E||x x^T - Sigma||^2 / (n d)
    beta2_sum = 0.0
    for row in centered:
        outer = np.outer(row, row)
        beta2_sum += float(np.sum((outer - cov) ** 2))
    beta2 = beta2_sum / (n * n * d)
    beta2 = min(beta2, delta2)
    shrinkage = 0.0 if delta2 == 0.0 else beta2 / delta2
    shrunk = symmetrize(shrinkage * target + (1.0 - shrinkage) * cov)
    return clip_eigenvalues(shrunk)


def oas(x: ArrayLike) -> np.ndarray:
    """Oracle Approximating Shrinkage (Chen et al., 2010) towards scaled identity.

    Typically outperforms Ledoit–Wolf for Gaussian data at very small ``n``,
    which is exactly the paper's operating regime — making it the toughest
    prior-free baseline in the ablation benches.
    """
    samples = as_samples(x)
    n, d = samples.shape
    if n < 2:
        raise InsufficientDataError("OAS requires at least 2 samples")
    centered = samples - samples.mean(axis=0)
    cov = symmetrize(centered.T @ centered / n)
    mu = float(np.trace(cov)) / d
    tr_s2 = float(np.sum(cov * cov))
    tr_s_sq = (float(np.trace(cov))) ** 2
    numerator = (1.0 - 2.0 / d) * tr_s2 + tr_s_sq
    denominator = (n + 1.0 - 2.0 / d) * (tr_s2 - tr_s_sq / d)
    rho = 1.0 if denominator == 0.0 else min(numerator / denominator, 1.0)
    shrunk = symmetrize((1.0 - rho) * cov + rho * mu * np.eye(d))
    return clip_eigenvalues(shrunk)
