"""Solver backend registry and uniform selection API.

Two backend kinds plug into the numerical substrate:

* **kernel backends** (``"numpy"``, ``"numba"``) implement the batched
  SPD primitives behind :mod:`repro.linalg.batched` — every consumer of
  ``cholesky_batched`` / ``solve_triangular_batched`` /
  ``mahalanobis_sq_batched`` (the CV scorer, the serving micro-batcher)
  switches backend through this one seam, with zero changes at call
  sites;
* **MNA backends** (``"dense"``, ``"sparse"``) pick the system-solve
  strategy of :meth:`repro.circuits.mna.StampPlan.solve_batched`.  The
  numeric cores live down here (:mod:`repro.linalg.backends.sparse_mna`);
  the stamp-plan layering glue lives up in ``circuits``.

Selection
---------
``"auto"`` resolves per kind: kernels prefer numba when importable, MNA
solves prefer dense up to :data:`DENSE_AUTO_MAX_REDUCED_SIZE` unknowns
(batched LAPACK/Cramer wins while the stacked systems fit in cache and
memory) and sparse beyond that when scipy is importable.  The *active*
kernel backend is ambient state — a :class:`contextvars.ContextVar`, so
`` use_kernel_backend`` scopes correctly across threads and the serving
queue — initialised from the ``REPRO_LINALG_BACKEND`` environment
variable and defaulting to ``"numpy"``: the default pipeline stays
bit-identical to the pre-backend code unless a caller opts in.

Adding a backend means registering a :class:`BackendSpec` with an
availability probe and a loader returning a
:class:`~repro.linalg.backends.base.KernelBackend`; see
``docs/PERFORMANCE.md`` for the walkthrough.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import BackendUnavailableError, ConfigError
from repro.linalg.backends import numba_kernels, numpy_kernels, sparse_mna
from repro.linalg.backends.base import (
    KIND_KERNELS,
    KIND_MNA,
    BackendSpec,
    KernelBackend,
)

__all__ = [
    "BackendSpec",
    "KernelBackend",
    "KIND_KERNELS",
    "KIND_MNA",
    "DENSE_AUTO_MAX_REDUCED_SIZE",
    "register_backend",
    "get_backend_spec",
    "available_backends",
    "registered_backends",
    "resolve_kernel_backend",
    "resolve_mna_backend",
    "active_kernel_backend",
    "kernels",
    "set_default_kernel_backend",
    "use_kernel_backend",
]

#: Environment variable consulted for the initial kernel-backend default.
ENV_KERNEL_BACKEND = "REPRO_LINALG_BACKEND"

#: ``auto`` MNA resolution: largest reduced system kept on the dense
#: path.  Below this the stacked dense solves (and the closed-form
#: Cramer path for m <= 3) beat per-system sparse LU by a wide margin;
#: above it the dense ``O(m^2)`` per-(sample, frequency) memory starts
#: to dominate and factorized sparse LU scales instead.
DENSE_AUTO_MAX_REDUCED_SIZE = 64

_REGISTRY: Dict[Tuple[str, str], BackendSpec] = {}

#: Loaded kernel-backend cache (loading may trigger JIT machinery).
_LOADED: Dict[str, KernelBackend] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Add a backend to the registry; re-registering a name is an error."""
    key = (spec.kind, spec.name)
    if key in _REGISTRY:
        raise ConfigError(f"backend {spec.name!r} already registered for kind {spec.kind!r}")
    if spec.kind not in (KIND_KERNELS, KIND_MNA):
        raise ConfigError(f"unknown backend kind {spec.kind!r}")
    _REGISTRY[key] = spec
    return spec


def get_backend_spec(kind: str, name: str) -> BackendSpec:
    """Look up one registered backend; unknown names raise ConfigError."""
    try:
        return _REGISTRY[(kind, name)]
    except KeyError:
        known = ", ".join(sorted(n for k, n in _REGISTRY if k == kind)) or "<none>"
        raise ConfigError(
            f"unknown {kind} backend {name!r}; registered: {known} (or 'auto')"
        ) from None


def registered_backends(kind: str) -> List[str]:
    """Every registered backend name for ``kind``, sorted."""
    return sorted(name for k, name in _REGISTRY if k == kind)


def available_backends(kind: str) -> List[str]:
    """Registered backends whose dependency probe passes, sorted."""
    return [name for name in registered_backends(kind) if _REGISTRY[(kind, name)].is_available()]


# ---------------------------------------------------------------------------
# built-in registrations
# ---------------------------------------------------------------------------
register_backend(
    BackendSpec(
        name="numpy",
        kind=KIND_KERNELS,
        description="reference NumPy/LAPACK batched kernels (bit-identical default)",
        is_available=numpy_kernels.is_available,
        loader=numpy_kernels.load,
    )
)
register_backend(
    BackendSpec(
        name="numba",
        kind=KIND_KERNELS,
        description="fused numba-compiled batched kernels (optional; 1e-12 agreement)",
        is_available=numba_kernels.is_available,
        loader=numba_kernels.load,
        meta={"tolerance": 1e-12},
    )
)
register_backend(
    BackendSpec(
        name="dense",
        kind=KIND_MNA,
        description="stacked dense solves with closed-form m<=3 fast path",
        is_available=lambda: True,
    )
)
register_backend(
    BackendSpec(
        name="sparse",
        kind=KIND_MNA,
        description="CSC scatter plan + scipy splu, symbolic analysis done once",
        is_available=sparse_mna.is_available,
        meta={"tolerance": 1e-9},
    )
)


# ---------------------------------------------------------------------------
# kernel-backend selection (ambient, context-scoped)
# ---------------------------------------------------------------------------
def _initial_default() -> str:
    env = os.environ.get(ENV_KERNEL_BACKEND, "").strip()
    return env if env else "numpy"


#: Per-context override; ``None`` means "use the process default".
_ACTIVE: ContextVar[Optional[str]] = ContextVar("repro_kernel_backend", default=None)

_DEFAULT: str = _initial_default()


def resolve_kernel_backend(name: Optional[str] = None) -> str:
    """Resolve a requested name (or the ambient selection) to a concrete one.

    ``None`` reads the ambient selection (context override, else process
    default); ``"auto"`` prefers numba when importable and falls back to
    numpy.  Explicitly naming an unavailable backend raises
    :class:`~repro.exceptions.BackendUnavailableError`.
    """
    if name is None:
        override = _ACTIVE.get()
        name = override if override is not None else _DEFAULT
    if name == "auto":
        return "numba" if get_backend_spec(KIND_KERNELS, "numba").is_available() else "numpy"
    spec = get_backend_spec(KIND_KERNELS, name)
    if not spec.is_available():
        raise BackendUnavailableError(
            f"kernel backend {name!r} is registered but its dependency is missing"
        )
    return name


def active_kernel_backend() -> str:
    """Concrete name of the kernel backend dispatch will use right now."""
    return resolve_kernel_backend(None)


def kernels(name: Optional[str] = None) -> KernelBackend:
    """The loaded :class:`KernelBackend` for ``name`` (ambient when None)."""
    concrete = resolve_kernel_backend(name)
    backend = _LOADED.get(concrete)
    if backend is None:
        backend = get_backend_spec(KIND_KERNELS, concrete).loader()
        _LOADED[concrete] = backend
    return backend


def set_default_kernel_backend(name: str) -> str:
    """Set the process-wide default (validated); returns the concrete name.

    ``"auto"`` is stored as-is so availability is re-resolved per call —
    the CLI uses this so ``--linalg-backend auto`` means "best available
    at solve time", not "best available at startup".
    """
    global _DEFAULT
    if name != "auto":
        resolve_kernel_backend(name)  # validate eagerly
    _DEFAULT = name
    return resolve_kernel_backend(None) if name == "auto" else name


@contextmanager
def use_kernel_backend(name: Optional[str]) -> Iterator[str]:
    """Scope the active kernel backend; ``None`` keeps the ambient choice."""
    if name is None:
        yield active_kernel_backend()
        return
    resolved = resolve_kernel_backend(name if name != "auto" else "auto")
    token = _ACTIVE.set(name if name != "auto" else resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


# ---------------------------------------------------------------------------
# MNA-backend selection (resolved per solve; no ambient state)
# ---------------------------------------------------------------------------
def resolve_mna_backend(name: Optional[str], reduced_size: int) -> str:
    """Resolve an MNA backend request against the reduced system size.

    ``None``/``"auto"`` keeps small cores dense (closed-form/stacked
    LAPACK territory) and switches to sparse above
    :data:`DENSE_AUTO_MAX_REDUCED_SIZE` when scipy is importable —
    falling back to dense, never raising, when it is not.  Explicit
    names are validated and availability-checked.
    """
    if name is None or name == "auto":
        if (
            reduced_size > DENSE_AUTO_MAX_REDUCED_SIZE
            and get_backend_spec(KIND_MNA, "sparse").is_available()
        ):
            return "sparse"
        return "dense"
    spec = get_backend_spec(KIND_MNA, name)
    if not spec.is_available():
        raise BackendUnavailableError(
            f"MNA backend {name!r} is registered but its dependency is missing"
        )
    return name
