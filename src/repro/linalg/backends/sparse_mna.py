"""Sparse factorized-LU solve core for the batched MNA engine.

The dense MNA engine materialises ``(chunk, n_freq, m, m)`` complex
stacks — ``O(m^2)`` memory per (sample, frequency) — which caps the node
count long before solve time matters.  This module holds the sparse
alternative, structured the way SPICE-class simulators do it:

* **symbolic analysis once** — the union sparsity pattern of ``G`` and
  ``C`` (process variation changes stamp *values*, never the topology)
  is built a single time by :func:`build_pattern` and shared by every
  Monte-Carlo sample and frequency point;
* **numeric factorisation per system** — each ``(sample, frequency)``
  system ``G_i + j*omega_k*C_i`` reuses the pattern: its values are
  scattered into one preallocated CSC ``data`` array and factorised with
  ``scipy.sparse.linalg.splu``, so per-system cost is ``O(nnz)`` fill
  plus the sparse LU, with no dense ``m x m`` object ever built.

The module is deliberately array-in/array-out: it knows nothing about
netlists or stamp plans (those live in :mod:`repro.circuits.mna`, a
higher layer), which is what lets reprolint's layer map pin the backend
below the circuit models.

scipy is an optional import here even though the package nominally
depends on it: the probe/guard keeps the error taxonomy clean
(:class:`~repro.exceptions.BackendUnavailableError` instead of a deep
``ImportError``) and lets stripped-down environments fall back to dense.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib.util import find_spec
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import BackendUnavailableError, SingularMatrixError

__all__ = [
    "is_available",
    "build_pattern",
    "solve_patterned",
    "SparsePattern",
]


def is_available() -> bool:
    """True when scipy's sparse machinery is importable (probe only)."""
    return find_spec("scipy") is not None


def _require_scipy() -> None:
    if not is_available():
        raise BackendUnavailableError(
            "MNA backend 'sparse' requested but scipy is not installed; "
            "install scipy or use backend='dense'"
        )


@dataclass(frozen=True)
class SparsePattern:
    """Shared CSC sparsity structure of ``G + sC`` for one topology.

    ``indices``/``indptr`` follow the CSC convention; ``nnz`` positions
    are the union of every G and C entry (base and variable), so one
    ``data`` vector of length ``nnz`` describes any sample's system.
    """

    m: int
    indices: np.ndarray
    indptr: np.ndarray

    @property
    def nnz(self) -> int:
        """Stored entries per system."""
        return int(self.indices.size)


def build_pattern(
    rows: np.ndarray, cols: np.ndarray, m: int
) -> Tuple[SparsePattern, np.ndarray]:
    """Symbolic analysis: CSC pattern of the entry list, done once.

    ``rows``/``cols`` may contain duplicates (multiple stamps landing on
    one matrix position); duplicated positions share a data slot, which
    is exactly the scatter-add semantics of dense assembly.  Returns the
    pattern plus ``slot`` mapping every input entry to its index in the
    CSC ``data`` array.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError(f"rows/cols must be matching 1-D arrays, got {rows.shape}/{cols.shape}")
    if rows.size == 0:
        raise ValueError("cannot build a sparse pattern from zero entries")
    if rows.min() < 0 or rows.max() >= m or cols.min() < 0 or cols.max() >= m:
        raise ValueError(f"entry indices out of range for a {m}x{m} system")
    # CSC order: column-major flat position; unique -> one slot per cell.
    flat = cols * np.int64(m) + rows
    uniq = np.unique(flat)
    slot = np.searchsorted(uniq, flat)
    indices = (uniq % m).astype(np.int32)
    counts = np.bincount((uniq // m).astype(np.int64), minlength=m)
    indptr = np.zeros(m + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    return SparsePattern(m=m, indices=indices, indptr=indptr), slot


def solve_patterned(
    pattern: SparsePattern,
    data_g: np.ndarray,
    data_c: np.ndarray,
    rhs0: np.ndarray,
    rhs1: np.ndarray,
    omega: np.ndarray,
    want: Sequence[int],
    out: np.ndarray,
) -> None:
    """Solve every ``(sample, frequency)`` system through factorized LU.

    ``data_g``/``data_c`` are ``(n, nnz)`` real CSC data vectors in the
    shared ``pattern``; the system for sample ``i`` at angular frequency
    ``omega[k]`` is ``data_g[i] + 1j*omega[k]*data_c[i]`` with RHS
    ``rhs0[i] + 1j*omega[k]*rhs1[i]``.  The columns listed in ``want``
    are written into ``out`` (shape ``(len(want), n, n_freq)``) in place.
    """
    _require_scipy()
    from scipy.sparse import csc_matrix  # type: ignore[import-untyped]
    from scipy.sparse.linalg import splu  # type: ignore[import-untyped]

    n = data_g.shape[0]
    want_idx = np.asarray(list(want), dtype=np.int64)
    # One CSC shell reused for every system: only `data` changes, so the
    # index arrays are validated once and never copied again.
    shell = csc_matrix(
        (np.zeros(pattern.nnz, dtype=complex), pattern.indices, pattern.indptr),
        shape=(pattern.m, pattern.m),
    )
    for i in range(n):
        dg = data_g[i]
        dc = data_c[i]
        r0 = rhs0[i]
        r1 = rhs1[i]
        for k in range(omega.size):
            s = 1j * omega[k]
            shell.data[:] = dg
            if omega[k] != 0.0:
                shell.data += s * dc
            try:
                lu = splu(shell)
            except RuntimeError as exc:  # SuperLU signals exact singularity
                raise SingularMatrixError(
                    f"singular sparse MNA system (sample {i}, omega={omega[k]:g})"
                ) from exc
            x = lu.solve(r0 + s * r1)
            out[:, i, k] = x[want_idx]
