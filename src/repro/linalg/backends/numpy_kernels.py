"""Reference NumPy kernel backend (the default, always available).

These are the exact numerical routines :mod:`repro.linalg.batched` has
always used — moved behind the :class:`~repro.linalg.backends.base.KernelBackend`
contract so alternative backends (numba) plug in at the same seam.  The
dispatching wrappers are bit-identical to the pre-backend code when this
backend is active, which is the repo's default.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.linalg.backends.base import KernelBackend

__all__ = ["load", "is_available"]


def is_available() -> bool:
    """NumPy is a hard dependency; the reference backend always exists."""
    return True


def _cholesky_into(
    arr: np.ndarray, idx: np.ndarray, out: np.ndarray, ok: np.ndarray
) -> None:
    """Factor ``arr[idx]`` into ``out``, isolating failures by bisection.

    ``np.linalg.cholesky`` raises for the whole batch when any member is
    indefinite, without saying which; recursively splitting the failing
    range finds the stragglers in ``O(log B)`` gufunc calls when failures
    are rare (the common case) while every *successful* member is still
    factored by the exact same LAPACK routine a scalar call would use.
    """
    if idx.size == 0:
        return
    try:
        out[idx] = np.linalg.cholesky(arr[idx])
        ok[idx] = True
        return
    except np.linalg.LinAlgError:
        if idx.size == 1:
            return
    mid = idx.size // 2
    _cholesky_into(arr, idx[:mid], out, ok)
    _cholesky_into(arr, idx[mid:], out, ok)


def cholesky(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Masked stacked Cholesky via LAPACK with bisection failure isolation."""
    b = arr.shape[0]
    out = np.zeros_like(arr)
    ok = np.zeros(b, dtype=bool)
    finite = np.isfinite(arr).all(axis=(1, 2))
    _cholesky_into(arr, np.flatnonzero(finite), out, ok)
    return out, ok


def solve_triangular(factors: np.ndarray, b: np.ndarray, lower: bool) -> np.ndarray:
    """Row-recurrence substitution vectorised over the batch.

    The Python loop runs over the ``d`` rows only, so the cost is
    ``O(d)`` interpreter steps regardless of batch size and RHS width.
    """
    d = factors.shape[1]
    x = np.empty_like(b)
    rows = range(d) if lower else range(d - 1, -1, -1)
    for i in rows:
        if lower:
            acc = np.einsum("bj,bjk->bk", factors[:, i, :i], x[:, :i, :]) if i else 0.0
        else:
            acc = (
                np.einsum("bj,bjk->bk", factors[:, i, i + 1 :], x[:, i + 1 :, :])
                if i < d - 1
                else 0.0
            )
        x[:, i, :] = (b[:, i, :] - acc) / factors[:, i, i, None]
    return x


def mahalanobis_sq(factors: np.ndarray, diff: np.ndarray) -> np.ndarray:
    """``sum(z*z)`` with ``L z = diff``, composed from the primitives above."""
    z = solve_triangular(factors, diff, True)
    return np.sum(z * z, axis=1)


def load() -> KernelBackend:
    """The reference backend object (stateless; cheap to rebuild)."""
    return KernelBackend(
        name="numpy",
        cholesky=cholesky,
        solve_triangular=solve_triangular,
        mahalanobis_sq=mahalanobis_sq,
    )
