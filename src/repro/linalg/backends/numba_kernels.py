"""Optional Numba-compiled kernel backend (never a hard dependency).

At the small matrix sizes the moment-estimation grid uses (``d <= 10``)
the NumPy reference kernels are dispatch-bound: each of the ``O(d)``
row-recurrence steps costs a gufunc call.  The kernels here run the same
arithmetic as single fused machine-code loops, so the per-call overhead
disappears and the batch axis streams through cache linearly.

Import policy
-------------
``numba`` is imported under a guard at module import; when it is absent
the kernel functions below remain plain Python.  That keeps this module
importable (and its *algorithms* testable) everywhere, while
:func:`is_available` gates registration of the backend itself — the
un-jitted loops would be orders of magnitude too slow to serve as a real
backend.  ``fastmath`` stays off: the documented cross-backend agreement
is 1e-12, which relies on IEEE-ordered accumulation.

Numerical contract vs the reference backend
-------------------------------------------
The classic (unblocked) Cholesky recurrence here and LAPACK's blocked
``dpotrf`` produce factors that differ only in floating-point summation
order, so factors/solves agree to ~1e-14 relative on well-conditioned
SPD members — documented, and enforced by the equivalence suite, at
1e-12.  Failure semantics match: a member fails when a pivot is not
strictly positive (LAPACK's criterion), non-finite members are masked
out, and failed members return all-zero factors.
"""

from __future__ import annotations

from importlib.util import find_spec
from typing import Any, Callable, Tuple

import numpy as np

from repro.exceptions import BackendUnavailableError
from repro.linalg.backends.base import KernelBackend

__all__ = ["load", "is_available"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore[import-not-found, import-untyped]
except ImportError:  # pragma: no cover - the container default
    numba = None


def is_available() -> bool:
    """True when numba is importable (probe only; no import side effects)."""
    return find_spec("numba") is not None


def _jit(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Compile with numba when present; leave as plain Python otherwise.

    The plain-Python form is what the algorithm tests exercise in
    environments without numba, so the compiled and interpreted paths
    are the same source code.
    """
    if numba is None:
        return fn
    return numba.njit(cache=False, fastmath=False)(fn)  # pragma: no cover


@_jit
def _cholesky_kernel(arr: np.ndarray, out: np.ndarray, ok: np.ndarray) -> None:
    n_mat, d = arr.shape[0], arr.shape[1]
    for b in range(n_mat):
        finite = True
        for i in range(d):
            for j in range(d):
                if not np.isfinite(arr[b, i, j]):
                    finite = False
        if not finite:
            continue
        failed = False
        for j in range(d):
            s = arr[b, j, j]
            for k in range(j):
                s -= out[b, j, k] * out[b, j, k]
            if not s > 0.0:  # also catches NaN pivots
                failed = True
                break
            pivot = np.sqrt(s)
            out[b, j, j] = pivot
            for i in range(j + 1, d):
                t = arr[b, i, j]
                for k in range(j):
                    t -= out[b, i, k] * out[b, j, k]
                out[b, i, j] = t / pivot
        if failed:
            for i in range(d):
                for j in range(d):
                    out[b, i, j] = 0.0
        else:
            ok[b] = True


@_jit
def _solve_triangular_kernel(
    factors: np.ndarray, rhs: np.ndarray, x: np.ndarray, lower: bool
) -> None:
    n_mat, d, n_rhs = rhs.shape
    for b in range(n_mat):
        for c in range(n_rhs):
            if lower:
                for i in range(d):
                    acc = rhs[b, i, c]
                    for j in range(i):
                        acc -= factors[b, i, j] * x[b, j, c]
                    x[b, i, c] = acc / factors[b, i, i]
            else:
                for i in range(d - 1, -1, -1):
                    acc = rhs[b, i, c]
                    for j in range(i + 1, d):
                        acc -= factors[b, i, j] * x[b, j, c]
                    x[b, i, c] = acc / factors[b, i, i]


@_jit
def _mahalanobis_sq_kernel(
    factors: np.ndarray, diff: np.ndarray, out: np.ndarray
) -> None:
    n_mat, d, n_pts = diff.shape
    for b in range(n_mat):
        z = np.empty(d)
        for c in range(n_pts):
            total = 0.0
            for i in range(d):
                acc = diff[b, i, c]
                for j in range(i):
                    acc -= factors[b, i, j] * z[j]
                zi = acc / factors[b, i, i]
                z[i] = zi
                total += zi * zi
            out[b, c] = total


def _cholesky(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    out = np.zeros_like(arr)
    ok = np.zeros(arr.shape[0], dtype=np.bool_)
    _cholesky_kernel(np.ascontiguousarray(arr), out, ok)
    return out, ok


def _solve_triangular(factors: np.ndarray, b: np.ndarray, lower: bool) -> np.ndarray:
    x = np.empty_like(b)
    _solve_triangular_kernel(
        np.ascontiguousarray(factors), np.ascontiguousarray(b), x, bool(lower)
    )
    return x


def _mahalanobis_sq(factors: np.ndarray, diff: np.ndarray) -> np.ndarray:
    out = np.empty((diff.shape[0], diff.shape[2]))
    _mahalanobis_sq_kernel(
        np.ascontiguousarray(factors), np.ascontiguousarray(diff), out
    )
    return out


def load() -> KernelBackend:
    """Build the compiled backend; raises when numba is missing.

    Compilation itself is lazy (numba JITs on first call per signature),
    so loading is cheap and the one-time compile cost lands on the first
    batched call — benchmark warmups absorb it.
    """
    if numba is None:
        raise BackendUnavailableError(
            "kernel backend 'numba' requested but numba is not installed; "
            "install numba or use backend='numpy'"
        )
    return KernelBackend(
        name="numba",
        cholesky=_cholesky,
        solve_triangular=_solve_triangular,
        mahalanobis_sq=_mahalanobis_sq,
    )
