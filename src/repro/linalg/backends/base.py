"""Backend descriptor types shared by the solver-backend registry.

A *kernel backend* supplies the three hot batched-SPD primitives behind
the :mod:`repro.linalg.batched` wrapper seam (the seam reprolint RPL002
already enforces): stacked Cholesky factorisation, stacked triangular
solve and stacked squared-Mahalanobis evaluation.  The wrappers keep all
argument validation, shape promotion and the repair-ladder policy; a
backend only implements the raw numerical contract below, which is what
makes backends interchangeable without touching any caller.

Kernel contract (inputs are pre-validated by the wrappers):

``cholesky(arr)``
    ``arr`` is a C-contiguous ``(B, d, d)`` float64 stack.  Returns
    ``(L, ok)`` where ``L`` is all-zero except for the lower factors of
    the members with ``ok[i] = True``; indefinite or non-finite members
    get ``ok[i] = False`` and no exception.
``solve_triangular(factors, rhs, lower)``
    ``factors`` is ``(B, d, d)``, ``rhs`` is ``(B, d, k)``; returns the
    ``(B, d, k)`` solution of the triangular systems.
``mahalanobis_sq(factors, diff)``
    ``factors`` is ``(B, d, d)`` lower Cholesky factors and ``diff`` is
    the ``(B, d, n)`` stack of centred points; returns the ``(B, n)``
    squared Mahalanobis distances ``sum(z*z)`` with ``L z = diff``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

import numpy as np

__all__ = ["KernelBackend", "BackendSpec", "KIND_KERNELS", "KIND_MNA"]

#: Registry kinds: batched-SPD kernel backends and MNA system backends.
KIND_KERNELS = "kernels"
KIND_MNA = "mna"


@dataclass(frozen=True)
class KernelBackend:
    """The three batched-SPD primitives one backend implements."""

    name: str
    cholesky: Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]
    solve_triangular: Callable[[np.ndarray, np.ndarray, bool], np.ndarray]
    mahalanobis_sq: Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class BackendSpec:
    """Registry entry: identity, availability probe and lazy loader.

    ``is_available`` must be cheap and import-free (probe with
    ``importlib.util.find_spec``); ``loader`` may import and compile —
    it runs only when the backend is first used.  ``loader`` returns a
    :class:`KernelBackend` for kernel backends and is unused (``None``)
    for MNA backends, whose solve loop lives in :mod:`repro.circuits.mna`.
    """

    name: str
    kind: str
    description: str
    is_available: Callable[[], bool]
    loader: Any = None
    #: Free-form metadata (e.g. documented equivalence tolerance).
    meta: Dict[str, Any] = field(default_factory=dict)
