"""Linear-algebra substrate: SPD validation/repair, norms, shrinkage baselines."""

from repro.linalg.norms import (
    condition_number,
    frobenius_norm,
    log_det_spd,
    relative_difference,
    spectral_norm,
    vector_2norm,
)
from repro.linalg.shrinkage import (
    diagonal_shrinkage,
    ledoit_wolf,
    oas,
    sample_covariance,
    shrink_towards,
)
from repro.linalg.validation import (
    as_matrix,
    as_samples,
    assert_spd,
    cholesky_safe,
    clip_eigenvalues,
    is_spd,
    is_symmetric,
    jitter_spd,
    nearest_spd,
    symmetrize,
)

__all__ = [
    "as_matrix",
    "as_samples",
    "assert_spd",
    "cholesky_safe",
    "clip_eigenvalues",
    "condition_number",
    "diagonal_shrinkage",
    "frobenius_norm",
    "is_spd",
    "is_symmetric",
    "jitter_spd",
    "ledoit_wolf",
    "log_det_spd",
    "nearest_spd",
    "oas",
    "relative_difference",
    "sample_covariance",
    "shrink_towards",
    "spectral_norm",
    "symmetrize",
    "vector_2norm",
]
