"""Linear-algebra substrate: SPD validation/repair, norms, shrinkage, batching.

Kernel-backend selection (numpy vs optional numba) is re-exported from
:mod:`repro.linalg.backends`; the batched primitives dispatch through it.
"""

from repro.linalg.backends import (
    active_kernel_backend,
    available_backends,
    resolve_kernel_backend,
    resolve_mna_backend,
    set_default_kernel_backend,
    use_kernel_backend,
)
from repro.linalg.batched import (
    as_spd_stack,
    cholesky_batched,
    cholesky_batched_safe,
    clip_eigenvalues_batched,
    inv_spd_batched,
    jitter_spd_batched,
    logdet_batched,
    mahalanobis_sq_batched,
    solve_batched,
    solve_triangular_batched,
    symmetrize_batched,
)
from repro.linalg.norms import (
    condition_number,
    frobenius_norm,
    log_det_spd,
    relative_difference,
    spectral_norm,
    vector_2norm,
)
from repro.linalg.shrinkage import (
    diagonal_shrinkage,
    ledoit_wolf,
    oas,
    sample_covariance,
    shrink_towards,
)
from repro.linalg.validation import (
    as_matrix,
    as_samples,
    assert_spd,
    cholesky_safe,
    clip_eigenvalues,
    inv_spd,
    is_spd,
    is_symmetric,
    jitter_spd,
    nearest_spd,
    solve_spd,
    symmetrize,
)

__all__ = [
    "active_kernel_backend",
    "available_backends",
    "resolve_kernel_backend",
    "resolve_mna_backend",
    "set_default_kernel_backend",
    "use_kernel_backend",
    "as_matrix",
    "as_samples",
    "as_spd_stack",
    "assert_spd",
    "cholesky_batched",
    "cholesky_batched_safe",
    "cholesky_safe",
    "clip_eigenvalues",
    "clip_eigenvalues_batched",
    "condition_number",
    "diagonal_shrinkage",
    "frobenius_norm",
    "inv_spd",
    "inv_spd_batched",
    "is_spd",
    "is_symmetric",
    "jitter_spd",
    "jitter_spd_batched",
    "ledoit_wolf",
    "log_det_spd",
    "logdet_batched",
    "mahalanobis_sq_batched",
    "nearest_spd",
    "oas",
    "relative_difference",
    "sample_covariance",
    "shrink_towards",
    "solve_batched",
    "solve_spd",
    "solve_triangular_batched",
    "spectral_norm",
    "symmetrize",
    "symmetrize_batched",
    "vector_2norm",
]
