"""Validation helpers for symmetric positive (semi-)definite matrices.

Every estimator in :mod:`repro.core` must hand back a covariance matrix a
downstream yield estimator can Cholesky-factorise.  These helpers centralise
the checks and the standard repairs (symmetrisation, eigenvalue clipping,
Higham-style nearest-SPD projection) so the numerical policy lives in one
place.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import DimensionError, NotSPDError, SingularMatrixError

__all__ = [
    "as_matrix",
    "as_samples",
    "symmetrize",
    "is_symmetric",
    "is_spd",
    "assert_spd",
    "cholesky_safe",
    "inv_spd",
    "solve_spd",
    "nearest_spd",
    "clip_eigenvalues",
    "jitter_spd",
]

#: Default relative symmetry tolerance.
SYM_TOL = 1e-8

#: Default eigenvalue floor used by repairs, relative to the largest eigenvalue.
EIG_FLOOR = 1e-12


def as_matrix(a: ArrayLike, name: str = "matrix") -> np.ndarray:
    """Convert ``a`` to a float 2-D square ndarray, validating its shape."""
    arr = np.asarray(a, dtype=float)
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] != arr.shape[1]:
        raise DimensionError(f"{name} must be square, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise NotSPDError(f"{name} contains non-finite entries")
    return arr


def as_samples(x: ArrayLike, name: str = "samples") -> np.ndarray:
    """Convert ``x`` to a float ``(n, d)`` sample matrix.

    A 1-D array is promoted to a single-feature column ``(n, 1)``, matching
    the convention that rows are observations.
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise DimensionError(f"{name} must contain at least one row")
    if not np.all(np.isfinite(arr)):
        raise DimensionError(f"{name} contains non-finite entries")
    return arr


def symmetrize(a: ArrayLike) -> np.ndarray:
    """Return the symmetric part ``(A + A^T) / 2`` of a square matrix."""
    arr = as_matrix(a)
    return (arr + arr.T) / 2.0


def is_symmetric(a: ArrayLike, tol: float = SYM_TOL) -> bool:
    """Check symmetry of ``a`` to relative tolerance ``tol``."""
    arr = as_matrix(a)
    scale = max(1.0, float(np.max(np.abs(arr))))
    return bool(np.max(np.abs(arr - arr.T)) <= tol * scale)


def is_spd(a: ArrayLike, tol: float = SYM_TOL) -> bool:
    """Check whether ``a`` is symmetric positive definite via Cholesky."""
    arr = as_matrix(a)
    if not is_symmetric(arr, tol):
        return False
    try:
        np.linalg.cholesky(symmetrize(arr))
    except np.linalg.LinAlgError:
        return False
    return True


def assert_spd(a: ArrayLike, name: str = "matrix", tol: float = SYM_TOL) -> np.ndarray:
    """Return the symmetrised matrix, raising :class:`NotSPDError` if not SPD."""
    arr = as_matrix(a, name)
    if not is_symmetric(arr, tol):
        raise NotSPDError(f"{name} is not symmetric")
    sym = symmetrize(arr)
    try:
        np.linalg.cholesky(sym)
    except np.linalg.LinAlgError as exc:
        raise NotSPDError(f"{name} is not positive definite") from exc
    return sym


def cholesky_safe(a: ArrayLike, name: str = "matrix") -> np.ndarray:
    """Cholesky factor of ``a`` with one jitter retry before failing.

    Returns the lower-triangular factor ``L`` with ``a = L @ L.T``.  If the
    plain factorisation fails, a small diagonal jitter proportional to the
    mean diagonal is added once; if that also fails, :class:`NotSPDError`
    is raised.
    """
    arr = symmetrize(as_matrix(a, name))
    try:
        return np.linalg.cholesky(arr)
    except np.linalg.LinAlgError:
        pass
    jittered = jitter_spd(arr)
    try:
        return np.linalg.cholesky(jittered)
    except np.linalg.LinAlgError as exc:
        raise NotSPDError(f"{name} is not positive definite even after jitter") from exc


def inv_spd(a: ArrayLike, name: str = "matrix") -> np.ndarray:
    """Symmetrised inverse of a (nominally SPD) matrix.

    ``np.linalg.inv`` of a symmetric matrix is only symmetric up to
    rounding; the asymmetry then leaks into posterior updates and
    eventually fails an :func:`assert_spd` downstream.  This wrapper
    re-symmetrises the inverse and converts LAPACK's bare ``LinAlgError``
    into the library's :class:`~repro.exceptions.SingularMatrixError`.
    """
    arr = as_matrix(a, name)
    try:
        inv = np.linalg.inv(arr)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(f"{name} is singular and cannot be inverted") from exc
    return (inv + inv.T) / 2.0


def solve_spd(a: ArrayLike, b: ArrayLike, name: str = "matrix") -> np.ndarray:
    """Solve ``a @ x = b`` for a (nominally SPD) coefficient matrix.

    Thin deterministic wrapper over ``np.linalg.solve`` — identical bits to
    a raw call — that raises :class:`~repro.exceptions.SingularMatrixError`
    instead of a bare ``LinAlgError``.  Prefer this over forming
    :func:`inv_spd` explicitly when only the product is needed.
    """
    arr = as_matrix(a, name)
    rhs = np.asarray(b, dtype=float)
    try:
        return np.linalg.solve(arr, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(f"{name} is singular; cannot solve") from exc


def jitter_spd(a: ArrayLike, rel: float = 1e-10) -> np.ndarray:
    """Add a relative diagonal jitter to nudge a matrix towards SPD."""
    arr = symmetrize(as_matrix(a))
    d = arr.shape[0]
    scale = float(np.trace(arr)) / max(d, 1)
    if scale <= 0.0:
        scale = 1.0
    return arr + np.eye(d) * scale * rel


def clip_eigenvalues(a: ArrayLike, floor_rel: float = EIG_FLOOR) -> np.ndarray:
    """Clip the eigenvalues of a symmetric matrix to a relative floor.

    The floor is ``floor_rel * max(eigenvalue, 1)`` so a zero matrix still
    receives a strictly positive spectrum.
    """
    arr = symmetrize(as_matrix(a))
    vals, vecs = np.linalg.eigh(arr)
    floor = floor_rel * max(float(vals[-1]), 1.0)
    vals = np.maximum(vals, floor)
    return symmetrize(vecs @ np.diag(vals) @ vecs.T)


def nearest_spd(a: ArrayLike, floor_rel: float = EIG_FLOOR) -> np.ndarray:
    """Project a square matrix to the nearest SPD matrix (Higham, 1988).

    Takes the symmetric part, replaces it by its positive polar factor
    average, and clips residual non-positive eigenvalues.  The result is
    guaranteed to pass :func:`is_spd`.
    """
    arr = as_matrix(a)
    sym = symmetrize(arr)
    # Polar decomposition of the symmetric part via SVD.
    _, s, vt = np.linalg.svd(sym)
    h = symmetrize(vt.T @ np.diag(s) @ vt)
    candidate = symmetrize((sym + h) / 2.0)
    candidate = clip_eigenvalues(candidate, floor_rel)
    # One extra clip pass covers pathological rounding.
    if not is_spd(candidate):
        candidate = clip_eigenvalues(candidate, floor_rel * 10)
    return candidate
