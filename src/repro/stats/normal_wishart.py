"""Normal-Wishart distribution — the conjugate prior at the heart of the paper.

Implements Eq. (12)–(30):

* density and log-normaliser ``Z_0`` (Eq. 12–13),
* joint mode ``(mu_M, Lambda_M) = (mu_0, (v0 - d) * T0)`` (Eq. 15–16),
* the conjugate posterior update given ``n`` Gaussian samples (Eq. 24–28),
* posterior-mode (MAP) extraction (Eq. 29–30).

The update is exact conjugacy: the posterior of a normal-Wishart prior under
a multivariate Gaussian likelihood is again normal-Wishart, which is what
makes the paper's closed-form Eq. (31)–(32) possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DimensionError, HyperParameterError
from repro.linalg.validation import as_samples, assert_spd, inv_spd, symmetrize
from repro.stats.multigamma import multigammaln
from repro.stats.multivariate_gaussian import MultivariateGaussian
from repro.stats.wishart import Wishart

__all__ = ["NormalWishart", "MapEstimate"]


@dataclass(frozen=True)
class MapEstimate:
    """Posterior-mode estimate of the Gaussian parameters (Eq. 29–32)."""

    mean: np.ndarray
    covariance: np.ndarray
    precision: np.ndarray

    @property
    def dim(self) -> int:
        """Number of metrics ``d``."""
        return self.mean.shape[0]


class NormalWishart:
    """Normal-Wishart ``NW(mu, Lambda | mu0, kappa0, v0, T0)`` (Eq. 12).

    Parameters follow the paper's notation:

    mu0:
        Location of the Gaussian component (length ``d``).
    kappa0:
        Scale of the Gaussian component; ``> 0``.
    v0:
        Degrees of freedom of the Wishart component; must satisfy
        ``v0 > d`` so the Wishart scale constraint ``T0 = Lambda_E/(v0-d)``
        (Eq. 20) and the mode (Eq. 16) are well defined.
    T0:
        ``(d, d)`` SPD Wishart scale matrix.
    """

    def __init__(self, mu0, kappa0: float, v0: float, T0) -> None:
        self.mu0 = np.atleast_1d(np.asarray(mu0, dtype=float))
        if self.mu0.ndim != 1:
            raise DimensionError(f"mu0 must be 1-D, got ndim={self.mu0.ndim}")
        self.T0 = assert_spd(T0, "T0")
        self.dim = self.mu0.shape[0]
        if self.T0.shape != (self.dim, self.dim):
            raise DimensionError(
                f"T0 shape {self.T0.shape} does not match mu0 dim {self.dim}"
            )
        self.kappa0 = float(kappa0)
        self.v0 = float(v0)
        if self.kappa0 <= 0.0:
            raise HyperParameterError(f"kappa0 must be > 0, got {kappa0}")
        if self.v0 <= self.dim:
            raise HyperParameterError(
                f"v0 must exceed d = {self.dim} for a well-defined mode, got {v0}"
            )

    # ------------------------------------------------------------------
    # construction from early-stage knowledge (Eq. 17-21)
    # ------------------------------------------------------------------
    @classmethod
    def from_early_stage(
        cls, mu_e, sigma_e, kappa0: float, v0: float
    ) -> "NormalWishart":
        """Build the prior whose mode equals the early-stage moments.

        Applies the constraints of Eq. (19)–(20): ``mu0 = mu_E`` and
        ``T0 = Lambda_E / (v0 - d)`` where ``Lambda_E = Sigma_E^{-1}``,
        so the prior peaks exactly at ``(mu_E, Lambda_E)``.
        """
        mu_e_arr = np.atleast_1d(np.asarray(mu_e, dtype=float))
        sigma_e_arr = assert_spd(sigma_e, "sigma_e")
        d = mu_e_arr.shape[0]
        if v0 <= d:
            raise HyperParameterError(f"v0 must exceed d = {d}, got {v0}")
        lambda_e = inv_spd(sigma_e_arr, "sigma_e")
        t0 = lambda_e / (v0 - d)
        return cls(mu_e_arr, kappa0, v0, t0)

    # ------------------------------------------------------------------
    # mode (Eq. 15-16) and component views
    # ------------------------------------------------------------------
    def mode(self) -> Tuple[np.ndarray, np.ndarray]:
        """Joint mode ``(mu_M, Lambda_M) = (mu0, (v0 - d) T0)`` (Eq. 15–16)."""
        return self.mu0.copy(), symmetrize((self.v0 - self.dim) * self.T0)

    def map_estimate(self) -> MapEstimate:
        """Mode expressed in covariance space (used by Eq. 31–32)."""
        mu_m, lambda_m = self.mode()
        sigma_m = inv_spd(lambda_m, "lambda_m")
        return MapEstimate(mean=mu_m, covariance=sigma_m, precision=lambda_m)

    def wishart_component(self) -> Wishart:
        """Marginal Wishart ``Wi_{v0}(Lambda | T0)`` over the precision."""
        return Wishart(self.T0, self.v0)

    def expected_covariance(self) -> Optional[np.ndarray]:
        """``E[Sigma] = T0^{-1} / (v0 - d - 1)`` when it exists (v0 > d + 1)."""
        if self.v0 <= self.dim + 1:
            return None
        return inv_spd(self.T0, "T0") / (self.v0 - self.dim - 1)

    # ------------------------------------------------------------------
    # density (Eq. 12-13)
    # ------------------------------------------------------------------
    def log_normalizer(self) -> float:
        """``log Z_0`` of Eq. (13)."""
        from repro.linalg.norms import log_det_spd

        d = self.dim
        return (
            d / 2.0 * math.log(2.0 * math.pi / self.kappa0)
            + self.v0 / 2.0 * log_det_spd(self.T0)
            + self.v0 * d / 2.0 * math.log(2.0)
            + multigammaln(self.v0 / 2.0, d)
        )

    def logpdf(self, mu, lam) -> float:
        """Joint log density at ``(mu, Lambda)`` (log of Eq. 12)."""
        from repro.linalg.norms import log_det_spd

        mu_arr = np.atleast_1d(np.asarray(mu, dtype=float))
        if mu_arr.shape != self.mu0.shape:
            raise DimensionError("mu shape does not match mu0 shape")
        lam_arr = assert_spd(lam, "lambda")
        if lam_arr.shape != self.T0.shape:
            raise DimensionError("lambda shape does not match T0 shape")
        diff = mu_arr - self.mu0
        log_det_lam = log_det_spd(lam_arr)
        t0_inv = inv_spd(self.T0, "T0")
        quad = float(diff @ lam_arr @ diff)
        trace_term = float(np.trace(t0_inv @ lam_arr))
        return (
            0.5 * log_det_lam
            - 0.5 * self.kappa0 * quad
            + (self.v0 - self.dim - 1) / 2.0 * log_det_lam
            - 0.5 * trace_term
            - self.log_normalizer()
        )

    def pdf(self, mu, lam) -> float:
        """Joint density (Eq. 12)."""
        return math.exp(self.logpdf(mu, lam))

    # ------------------------------------------------------------------
    # conjugate posterior update (Eq. 24-28)
    # ------------------------------------------------------------------
    def posterior(self, data) -> "NormalWishart":
        """Posterior normal-Wishart after observing Gaussian samples ``data``.

        Implements the exact updates of Eq. (24)–(28):

        * ``kappa_n = kappa0 + n``, ``v_n = v0 + n``
        * ``mu_n = (kappa0 mu0 + n Xbar) / (kappa0 + n)``
        * ``T_n^{-1} = T0^{-1} + S + kappa0 n/(kappa0+n) (mu0-Xbar)(mu0-Xbar)^T``
        """
        samples = as_samples(data)
        if samples.shape[1] != self.dim:
            raise DimensionError(
                f"data has {samples.shape[1]} columns, expected {self.dim}"
            )
        n = samples.shape[0]
        xbar = samples.mean(axis=0)
        centered = samples - xbar
        scatter = symmetrize(centered.T @ centered)

        kappa_n = self.kappa0 + n
        v_n = self.v0 + n
        mu_n = (self.kappa0 * self.mu0 + n * xbar) / kappa_n
        diff = self.mu0 - xbar
        t_n_inv = (
            inv_spd(self.T0, "T0")
            + scatter
            + (self.kappa0 * n / kappa_n) * np.outer(diff, diff)
        )
        t_n = inv_spd(symmetrize(t_n_inv), "T_n")
        return NormalWishart(mu_n, kappa_n, v_n, t_n)

    # ------------------------------------------------------------------
    # sampling & marginals
    # ------------------------------------------------------------------
    def sample(
        self, n: int = 1, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` joint samples ``(mu, Lambda)``.

        Returns arrays of shape ``(n, d)`` and ``(n, d, d)``.  Generation
        follows the factorisation in Eq. (12): ``Lambda ~ Wi_{v0}(T0)``
        then ``mu | Lambda ~ N(mu0, (kappa0 Lambda)^{-1})``.
        """
        gen = rng if rng is not None else np.random.default_rng()
        lams = self.wishart_component().sample(n, gen)
        mus = np.empty((n, self.dim))
        for k in range(n):
            cov = inv_spd(self.kappa0 * lams[k], "kappa0 * Lambda")
            mus[k] = MultivariateGaussian(self.mu0, cov).sample(1, gen)[0]
        return mus, lams

    def posterior_predictive_moments(self) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Mean and covariance of the (Student-t) posterior predictive.

        The predictive of a normal-Wishart is a multivariate Student-t with
        ``v0 - d + 1`` degrees of freedom; its covariance exists only when
        ``v0 - d + 1 > 2``.  Exposed for the yield-estimation module, which
        can integrate specs under the predictive instead of the plug-in MAP
        Gaussian.
        """
        dof = self.v0 - self.dim + 1.0
        scale = inv_spd(self.T0, "T0") * (self.kappa0 + 1.0) / (self.kappa0 * dof)
        if dof <= 2.0:
            return self.mu0.copy(), None
        return self.mu0.copy(), symmetrize(scale * dof / (dof - 2.0))
