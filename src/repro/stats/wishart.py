"""Wishart and inverse-Wishart distributions.

The Wishart is the precision-matrix component of the paper's
normal-Wishart prior (Eq. 12): ``Wi_{v0}(Lambda | T0)`` with density

    p(Lambda) = |Lambda|^{(v0-d-1)/2} exp(-tr(T0^{-1} Lambda)/2) / B(T0, v0)

Note the paper's convention: the exponent contains ``T0^{-1}``, i.e. ``T0``
is the *scale* matrix (mean ``v0 * T0``, mode ``(v0 - d - 1) * T0``).
Sampling uses the Bartlett decomposition so property tests can cheaply
verify the analytical mean against Monte-Carlo averages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import solve_triangular
from scipy.special import digamma

from repro.exceptions import DimensionError, HyperParameterError
from repro.linalg.validation import assert_spd, cholesky_safe, inv_spd, symmetrize
from repro.stats.multigamma import log_wishart_normalizer

__all__ = ["Wishart", "InverseWishart"]


class Wishart:
    """Wishart distribution ``Wi_dof(Lambda | scale)`` in the paper's convention.

    Parameters
    ----------
    scale:
        ``(d, d)`` SPD scale matrix ``T0``.
    dof:
        Degrees of freedom ``v0``; must exceed ``d - 1`` for a proper
        density (the paper constrains ``v0 >= d``).
    """

    def __init__(self, scale, dof: float) -> None:
        self.scale = assert_spd(scale, "scale")
        self.dim = self.scale.shape[0]
        self.dof = float(dof)
        if self.dof <= self.dim - 1:
            raise HyperParameterError(
                f"Wishart dof must exceed d - 1 = {self.dim - 1}, got {dof}"
            )
        self._chol_scale = cholesky_safe(self.scale, "scale")
        self._log_norm = log_wishart_normalizer(self.scale, self.dof)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> np.ndarray:
        """``E[Lambda] = dof * scale``."""
        return self.dof * self.scale

    @property
    def mode(self) -> Optional[np.ndarray]:
        """Mode ``(dof - d - 1) * scale`` when it exists (dof > d + 1)."""
        if self.dof <= self.dim + 1:
            return None
        return (self.dof - self.dim - 1) * self.scale

    def variance_diagonal(self) -> np.ndarray:
        """``Var[Lambda_ij] = dof * (scale_ij^2 + scale_ii scale_jj)`` diagonal."""
        s = self.scale
        return self.dof * (s**2 + np.outer(np.diag(s), np.diag(s)))

    # ------------------------------------------------------------------
    def logpdf(self, lam) -> float:
        """Log density at an SPD matrix ``lam``."""
        from repro.linalg.norms import log_det_spd

        lam_arr = assert_spd(lam, "lambda")
        if lam_arr.shape != self.scale.shape:
            raise DimensionError("lambda shape does not match scale shape")
        # tr(T0^{-1} Lambda) via triangular solves against chol(T0).
        y = solve_triangular(self._chol_scale, lam_arr, lower=True)
        z = solve_triangular(self._chol_scale, y.T, lower=True)
        trace_term = float(np.trace(z))
        return (
            (self.dof - self.dim - 1) / 2.0 * log_det_spd(lam_arr)
            - 0.5 * trace_term
            - self._log_norm
        )

    def entropy_expected_logdet(self) -> float:
        """``E[log |Lambda|]`` — used in variational diagnostics."""
        from repro.linalg.norms import log_det_spd

        j = np.arange(1, self.dim + 1)
        return float(
            np.sum(digamma((self.dof + 1.0 - j) / 2.0))
            + self.dim * np.log(2.0)
            + log_det_spd(self.scale)
        )

    # ------------------------------------------------------------------
    def sample(self, n: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` Wishart matrices via Bartlett decomposition, shape ``(n, d, d)``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        gen = rng if rng is not None else np.random.default_rng()
        d = self.dim
        out = np.empty((n, d, d))
        for k in range(n):
            a = np.zeros((d, d))
            for i in range(d):
                a[i, i] = np.sqrt(gen.chisquare(self.dof - i))
            lower_idx = np.tril_indices(d, k=-1)
            a[lower_idx] = gen.standard_normal(len(lower_idx[0]))
            la = self._chol_scale @ a
            out[k] = symmetrize(la @ la.T)
        return out


class InverseWishart:
    """Inverse-Wishart ``IW_dof(Sigma | psi)``; the covariance-space view.

    If ``Lambda ~ Wi_dof(T0)`` then ``Sigma = Lambda^{-1} ~ IW_dof(T0^{-1})``.
    Provided so users who think in covariance space (Eq. 32) can reason
    about the implied prior over ``Sigma`` directly.
    """

    def __init__(self, psi, dof: float) -> None:
        self.psi = assert_spd(psi, "psi")
        self.dim = self.psi.shape[0]
        self.dof = float(dof)
        if self.dof <= self.dim - 1:
            raise HyperParameterError(
                f"inverse-Wishart dof must exceed d - 1 = {self.dim - 1}, got {dof}"
            )

    @property
    def mean(self) -> Optional[np.ndarray]:
        """``E[Sigma] = psi / (dof - d - 1)`` when dof > d + 1."""
        if self.dof <= self.dim + 1:
            return None
        return self.psi / (self.dof - self.dim - 1)

    @property
    def mode(self) -> np.ndarray:
        """Mode ``psi / (dof + d + 1)`` (always exists)."""
        return self.psi / (self.dof + self.dim + 1)

    def to_wishart(self) -> Wishart:
        """The precision-space Wishart equivalent of this distribution."""
        return Wishart(inv_spd(self.psi, "psi"), self.dof)

    def sample(self, n: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` covariance matrices, shape ``(n, d, d)``."""
        wishart = self.to_wishart()
        draws = wishart.sample(n, rng)
        return np.stack([inv_spd(m, "draw") for m in draws])

    def logpdf(self, sigma) -> float:
        """Log density at an SPD covariance matrix ``sigma``."""
        sigma_arr = assert_spd(sigma, "sigma")
        lam = inv_spd(sigma_arr, "sigma")
        wishart = self.to_wishart()
        # Change of variables Sigma -> Lambda has Jacobian |Lambda|^{d+1}.
        from repro.linalg.norms import log_det_spd

        return wishart.logpdf(lam) + (self.dim + 1) * log_det_spd(lam)
