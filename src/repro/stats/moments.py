"""Sample-moment computations shared by every estimator.

These implement the building blocks of the paper's equations:

* Eq. (10): sample mean ``Xbar``.
* Eq. (11): MLE covariance ``S / n``.
* Eq. (26): scatter matrix ``S = sum (X_i - Xbar)(X_i - Xbar)^T``.

plus standardized higher-order moments used by the non-Gaussian extension
(:mod:`repro.extensions.higher_moments`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DimensionError, InsufficientDataError
from repro.linalg.validation import as_samples, assert_spd, symmetrize

__all__ = [
    "sample_mean",
    "scatter_matrix",
    "mle_covariance",
    "unbiased_covariance",
    "correlation_from_covariance",
    "standardize_samples",
    "MomentSummary",
    "summarize",
]


def sample_mean(x) -> np.ndarray:
    """Sample mean vector ``Xbar`` (Eq. 10)."""
    return as_samples(x).mean(axis=0)


def scatter_matrix(x) -> np.ndarray:
    """Centred scatter matrix ``S`` (Eq. 26). Symmetric PSD by construction."""
    samples = as_samples(x)
    centered = samples - samples.mean(axis=0)
    return symmetrize(centered.T @ centered)


def mle_covariance(x) -> np.ndarray:
    """Maximum-likelihood covariance ``S / n`` (Eq. 11)."""
    samples = as_samples(x)
    return scatter_matrix(samples) / samples.shape[0]


def unbiased_covariance(x) -> np.ndarray:
    """Bessel-corrected covariance ``S / (n - 1)``."""
    samples = as_samples(x)
    n = samples.shape[0]
    if n < 2:
        raise InsufficientDataError("unbiased covariance requires at least 2 samples")
    return scatter_matrix(samples) / (n - 1)


def correlation_from_covariance(cov) -> np.ndarray:
    """Convert a covariance matrix to a correlation matrix.

    Raises if any variance on the diagonal is non-positive, because a
    correlation matrix is undefined for degenerate dimensions.
    """
    cov_arr = symmetrize(np.asarray(cov, dtype=float))
    variances = np.diag(cov_arr)
    if np.any(variances <= 0.0):
        raise DimensionError("covariance has non-positive diagonal entries")
    inv_std = 1.0 / np.sqrt(variances)
    corr = symmetrize(cov_arr * np.outer(inv_std, inv_std))
    np.fill_diagonal(corr, 1.0)
    return corr


def standardize_samples(x) -> np.ndarray:
    """Whiten samples to zero mean and unit per-dimension variance."""
    samples = as_samples(x)
    std = samples.std(axis=0, ddof=0)
    if np.any(std == 0.0):
        raise InsufficientDataError("cannot standardize a constant dimension")
    return (samples - samples.mean(axis=0)) / std


@dataclass(frozen=True)
class MomentSummary:
    """First two moments plus per-dimension marginal skewness/kurtosis.

    The marginal shape statistics are diagnostic only — the paper's model
    uses mean and covariance; skewness/excess-kurtosis quantify how far the
    workload departs from joint Gaussianity (Sec. 1 caveat).
    """

    mean: np.ndarray
    covariance: np.ndarray
    n_samples: int
    skewness: np.ndarray = field(repr=False)
    excess_kurtosis: np.ndarray = field(repr=False)

    @property
    def dim(self) -> int:
        """Number of performance metrics ``d``."""
        return self.mean.shape[0]

    @property
    def correlation(self) -> np.ndarray:
        """Correlation matrix implied by :attr:`covariance`."""
        return correlation_from_covariance(self.covariance)

    def validate(self) -> "MomentSummary":
        """Assert internal consistency (SPD covariance, matching shapes)."""
        if self.covariance.shape != (self.dim, self.dim):
            raise DimensionError(
                f"covariance shape {self.covariance.shape} does not match mean dim {self.dim}"
            )
        assert_spd(self.covariance, "covariance")
        return self


def summarize(x) -> MomentSummary:
    """Compute a :class:`MomentSummary` from an ``(n, d)`` sample matrix."""
    samples = as_samples(x)
    n = samples.shape[0]
    if n < 2:
        raise InsufficientDataError("moment summary requires at least 2 samples")
    mean = samples.mean(axis=0)
    centered = samples - mean
    std = centered.std(axis=0, ddof=0)
    std_safe = np.where(std == 0.0, 1.0, std)
    z = centered / std_safe
    skewness = (z**3).mean(axis=0)
    kurtosis = (z**4).mean(axis=0) - 3.0
    return MomentSummary(
        mean=mean,
        covariance=mle_covariance(samples),
        n_samples=n,
        skewness=skewness,
        excess_kurtosis=kurtosis,
    )
