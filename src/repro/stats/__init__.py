"""Probability substrate: Gaussian, Wishart, normal-Wishart, moments, GOF tests."""

from repro.stats.distances import (
    bhattacharyya_gaussian,
    hellinger_gaussian,
    kl_gaussian,
    symmetric_kl,
    wasserstein2_gaussian,
)
from repro.stats.gof import (
    GofResult,
    henze_zirkler,
    mardia_kurtosis,
    mardia_skewness,
    marginal_moment_check,
)
from repro.stats.moments import (
    MomentSummary,
    correlation_from_covariance,
    mle_covariance,
    sample_mean,
    scatter_matrix,
    standardize_samples,
    summarize,
    unbiased_covariance,
)
from repro.stats.multigamma import log_wishart_normalizer, multigamma, multigammaln
from repro.stats.multivariate_gaussian import (
    MultivariateGaussian,
    gaussian_loglik,
    gaussian_loglik_batch,
)
from repro.stats.normal_wishart import MapEstimate, NormalWishart
from repro.stats.student_t import MultivariateT
from repro.stats.suffstats import SufficientStats, merge_all
from repro.stats.wishart import InverseWishart, Wishart

__all__ = [
    "GofResult",
    "InverseWishart",
    "MapEstimate",
    "MomentSummary",
    "MultivariateGaussian",
    "MultivariateT",
    "NormalWishart",
    "SufficientStats",
    "Wishart",
    "bhattacharyya_gaussian",
    "correlation_from_covariance",
    "gaussian_loglik",
    "gaussian_loglik_batch",
    "hellinger_gaussian",
    "kl_gaussian",
    "henze_zirkler",
    "log_wishart_normalizer",
    "mardia_kurtosis",
    "mardia_skewness",
    "marginal_moment_check",
    "merge_all",
    "mle_covariance",
    "multigamma",
    "multigammaln",
    "sample_mean",
    "scatter_matrix",
    "standardize_samples",
    "summarize",
    "symmetric_kl",
    "unbiased_covariance",
    "wasserstein2_gaussian",
]
