"""Multivariate Gaussian distribution (Eq. 5–9 of the paper).

The class stores the Cholesky factor of the covariance so repeated density
evaluations — the inner loop of the cross-validation scoring in Sec. 4.2 —
cost one triangular solve per sample instead of a fresh factorisation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np
from scipy.linalg import solve_triangular

from repro.exceptions import DimensionError
from repro.linalg.batched import (
    cholesky_batched_safe,
    logdet_batched,
    mahalanobis_sq_batched,
)
from repro.linalg.validation import as_samples, cholesky_safe, solve_spd, symmetrize

__all__ = ["MultivariateGaussian", "gaussian_loglik", "gaussian_loglik_batch"]

_LOG_2PI = math.log(2.0 * math.pi)


class MultivariateGaussian:
    """A d-dimensional Gaussian ``N_d(mu, Sigma)`` with cached Cholesky.

    Parameters
    ----------
    mean:
        Length-``d`` mean vector.
    covariance:
        ``(d, d)`` SPD covariance matrix.  It is symmetrised and
        Cholesky-factorised at construction; a non-SPD matrix raises
        :class:`repro.exceptions.NotSPDError`.
    """

    def __init__(self, mean, covariance) -> None:
        self.mean = np.atleast_1d(np.asarray(mean, dtype=float))
        if self.mean.ndim != 1:
            raise DimensionError(f"mean must be 1-D, got ndim={self.mean.ndim}")
        self.covariance = symmetrize(np.asarray(covariance, dtype=float))
        if self.covariance.shape != (self.dim, self.dim):
            raise DimensionError(
                f"covariance shape {self.covariance.shape} does not match mean dim {self.dim}"
            )
        self._chol = cholesky_safe(self.covariance, "covariance")
        self._log_det = 2.0 * float(np.sum(np.log(np.diag(self._chol))))
        self._precision: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return self.mean.shape[0]

    @property
    def precision(self) -> np.ndarray:
        """Precision matrix ``Lambda = Sigma^{-1}`` (Sec. 3.2).

        Computed once from the stored Cholesky factor and cached; the
        returned array is marked read-only because it is shared between
        calls.
        """
        if self._precision is None:
            identity = np.eye(self.dim)
            y = solve_triangular(self._chol, identity, lower=True)
            prec = symmetrize(y.T @ y)
            prec.setflags(write=False)
            self._precision = prec
        return self._precision

    @property
    def log_det_covariance(self) -> float:
        """``log |Sigma|``."""
        return self._log_det

    @property
    def cholesky(self) -> np.ndarray:
        """Lower Cholesky factor ``L`` with ``Sigma = L L^T``."""
        return self._chol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultivariateGaussian(dim={self.dim})"

    # ------------------------------------------------------------------
    # densities
    # ------------------------------------------------------------------
    def mahalanobis_sq(self, x) -> np.ndarray:
        """Squared Mahalanobis distance of each row of ``x`` from the mean."""
        samples = self._check_samples(x)
        diff = samples - self.mean
        z = solve_triangular(self._chol, diff.T, lower=True)
        return np.sum(z * z, axis=0)

    def logpdf(self, x) -> np.ndarray:
        """Log density of Eq. (8) evaluated row-wise on ``x``."""
        maha = self.mahalanobis_sq(x)
        return -0.5 * (self.dim * _LOG_2PI + self._log_det + maha)

    def pdf(self, x) -> np.ndarray:
        """Density of Eq. (8) evaluated row-wise on ``x``."""
        return np.exp(self.logpdf(x))

    def loglik(self, x) -> float:
        """Joint log-likelihood of a dataset (log of Eq. 9)."""
        return float(np.sum(self.logpdf(x)))

    # ------------------------------------------------------------------
    # sampling and derived distributions
    # ------------------------------------------------------------------
    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` iid samples, shape ``(n, d)``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        gen = rng if rng is not None else np.random.default_rng()
        z = gen.standard_normal((n, self.dim))
        return self.mean + z @ self._chol.T

    def marginal(self, indices: Sequence[int]) -> "MultivariateGaussian":
        """Marginal distribution over a subset of dimensions."""
        idx = np.asarray(indices, dtype=int)
        if idx.ndim != 1 or idx.size == 0:
            raise DimensionError("indices must be a non-empty 1-D sequence")
        if np.any(idx < 0) or np.any(idx >= self.dim):
            raise DimensionError(f"indices out of range for dim {self.dim}")
        return MultivariateGaussian(self.mean[idx], self.covariance[np.ix_(idx, idx)])

    def conditional(self, indices: Sequence[int], values) -> "MultivariateGaussian":
        """Distribution of the remaining dims given ``x[indices] = values``.

        Standard Gaussian conditioning; used by the yield module to study
        one metric given observed values of others.
        """
        idx_b = np.asarray(indices, dtype=int)
        vals = np.atleast_1d(np.asarray(values, dtype=float))
        if idx_b.shape != vals.shape:
            raise DimensionError("indices and values must have matching length")
        mask = np.ones(self.dim, dtype=bool)
        mask[idx_b] = False
        idx_a = np.nonzero(mask)[0]
        if idx_a.size == 0:
            raise DimensionError("cannot condition on every dimension")
        sigma_aa = self.covariance[np.ix_(idx_a, idx_a)]
        sigma_ab = self.covariance[np.ix_(idx_a, idx_b)]
        sigma_bb = self.covariance[np.ix_(idx_b, idx_b)]
        solve = solve_spd(sigma_bb, (vals - self.mean[idx_b]), "sigma_bb")
        cond_mean = self.mean[idx_a] + sigma_ab @ solve
        cond_cov = sigma_aa - sigma_ab @ solve_spd(sigma_bb, sigma_ab.T, "sigma_bb")
        return MultivariateGaussian(cond_mean, symmetrize(cond_cov))

    def kl_divergence(self, other: "MultivariateGaussian") -> float:
        """KL divergence ``KL(self || other)`` between two Gaussians."""
        if other.dim != self.dim:
            raise DimensionError("dimension mismatch in KL divergence")
        diff = other.mean - self.mean
        other_prec = other.precision
        trace_term = float(np.trace(other_prec @ self.covariance))
        maha = float(diff @ other_prec @ diff)
        return 0.5 * (trace_term + maha - self.dim + other.log_det_covariance - self._log_det)

    # ------------------------------------------------------------------
    def _check_samples(self, x) -> np.ndarray:
        samples = as_samples(x)
        if samples.shape[1] != self.dim:
            raise DimensionError(
                f"samples have {samples.shape[1]} columns, expected {self.dim}"
            )
        return samples


def gaussian_loglik(mean, covariance, x) -> float:
    """One-shot joint Gaussian log-likelihood (log of Eq. 9).

    Convenience wrapper used by the cross-validation scorer so it does not
    need to keep :class:`MultivariateGaussian` instances alive.
    """
    return MultivariateGaussian(mean, covariance).loglik(x)


def gaussian_loglik_batch(
    means, covariances, x, repair: bool = True
) -> np.ndarray:
    """Joint log-likelihood of one dataset under ``B`` Gaussians at once.

    Parameters
    ----------
    means:
        ``(B, d)`` stack of mean vectors.
    covariances:
        ``(B, d, d)`` stack of covariance matrices.  Each is factorised by
        one batched Cholesky call with the same repair ladder the scalar
        path applies (jitter retry, then — when ``repair`` is True — an
        eigenvalue clip at relative floor ``1e-10``).
    x:
        Shared ``(n, d)`` sample matrix scored under every Gaussian.
    repair:
        Enable the eigenvalue-clip fallback for indefinite members.

    Returns
    -------
    ``(B,)`` array of joint log-likelihoods (log of Eq. 9); members whose
    covariance is irreparable score ``-inf`` instead of raising.
    """
    mu = np.atleast_2d(np.asarray(means, dtype=float))
    cov = np.asarray(covariances, dtype=float)
    if cov.ndim == 2:
        cov = cov[None]
    samples = as_samples(x)
    if mu.shape[0] != cov.shape[0]:
        raise DimensionError(
            f"means stack {mu.shape} does not match covariance stack {cov.shape}"
        )
    d = mu.shape[1]
    if samples.shape[1] != d:
        raise DimensionError(
            f"samples have {samples.shape[1]} columns, expected {d}"
        )
    chol, ok = cholesky_batched_safe(
        cov, jitter_rel=1e-10, clip_floor_rel=1e-10 if repair else None
    )
    out = np.full(mu.shape[0], -np.inf)
    sel = np.flatnonzero(ok)
    if sel.size == 0:
        return out
    maha = mahalanobis_sq_batched(chol[sel], mu[sel], samples)
    log_det = logdet_batched(chol[sel])
    # Per-sample log-density first, then the row sum, to keep the floating
    # point accumulation order identical to MultivariateGaussian.loglik.
    logpdf = -0.5 * (d * _LOG_2PI + log_det[:, None] + maha)
    out[sel] = logpdf.sum(axis=1)
    return out
