"""Distances between Gaussian distributions.

Used to *quantify* the BMF premise — "the early-stage and late-stage
performance distributions are quite similar" (Sec. 4.1) — instead of
assuming it.  All distances operate on Gaussian parameter pairs:

* :func:`kl_gaussian` — asymmetric KL divergence;
* :func:`symmetric_kl` — Jeffreys divergence;
* :func:`bhattacharyya_gaussian` — bounds the Bayes error between stages;
* :func:`wasserstein2_gaussian` — the Bures/W2 metric, well-behaved even
  for near-singular covariances;
* :func:`hellinger_gaussian` — bounded in [0, 1], convenient to report.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import sqrtm

from repro.exceptions import DimensionError
from repro.linalg.norms import log_det_spd
from repro.linalg.validation import assert_spd, inv_spd, solve_spd, symmetrize

__all__ = [
    "kl_gaussian",
    "symmetric_kl",
    "bhattacharyya_gaussian",
    "hellinger_gaussian",
    "wasserstein2_gaussian",
]


def _check_pair(mu0, sigma0, mu1, sigma1):
    m0 = np.atleast_1d(np.asarray(mu0, dtype=float))
    m1 = np.atleast_1d(np.asarray(mu1, dtype=float))
    s0 = assert_spd(sigma0, "sigma0")
    s1 = assert_spd(sigma1, "sigma1")
    if m0.shape != m1.shape:
        raise DimensionError(f"mean shapes differ: {m0.shape} vs {m1.shape}")
    d = m0.shape[0]
    if s0.shape != (d, d) or s1.shape != (d, d):
        raise DimensionError("covariance shapes do not match the means")
    return m0, s0, m1, s1


def kl_gaussian(mu0, sigma0, mu1, sigma1) -> float:
    """``KL( N(mu0, sigma0) || N(mu1, sigma1) )`` in nats."""
    m0, s0, m1, s1 = _check_pair(mu0, sigma0, mu1, sigma1)
    d = m0.shape[0]
    s1_inv = inv_spd(s1, "sigma1")
    diff = m1 - m0
    return 0.5 * (
        float(np.trace(s1_inv @ s0))
        + float(diff @ s1_inv @ diff)
        - d
        + log_det_spd(s1)
        - log_det_spd(s0)
    )


def symmetric_kl(mu0, sigma0, mu1, sigma1) -> float:
    """Jeffreys divergence ``KL(p||q) + KL(q||p)``."""
    return kl_gaussian(mu0, sigma0, mu1, sigma1) + kl_gaussian(
        mu1, sigma1, mu0, sigma0
    )


def bhattacharyya_gaussian(mu0, sigma0, mu1, sigma1) -> float:
    """Bhattacharyya distance between two Gaussians."""
    m0, s0, m1, s1 = _check_pair(mu0, sigma0, mu1, sigma1)
    s_mid = symmetrize((s0 + s1) / 2.0)
    diff = m1 - m0
    term_mean = 0.125 * float(diff @ solve_spd(s_mid, diff, "sigma_mid"))
    term_cov = 0.5 * (
        log_det_spd(s_mid) - 0.5 * (log_det_spd(s0) + log_det_spd(s1))
    )
    return term_mean + term_cov


def hellinger_gaussian(mu0, sigma0, mu1, sigma1) -> float:
    """Hellinger distance in [0, 1]: ``sqrt(1 - exp(-BC))``."""
    bc = bhattacharyya_gaussian(mu0, sigma0, mu1, sigma1)
    return math.sqrt(max(0.0, 1.0 - math.exp(-bc)))


def wasserstein2_gaussian(mu0, sigma0, mu1, sigma1) -> float:
    """2-Wasserstein distance between two Gaussians (Bures metric).

    ``W2^2 = ||mu0 - mu1||^2 + tr(s0 + s1 - 2 (s1^1/2 s0 s1^1/2)^1/2)``.
    """
    m0, s0, m1, s1 = _check_pair(mu0, sigma0, mu1, sigma1)
    root1 = np.real(sqrtm(s1))
    cross = np.real(sqrtm(symmetrize(root1 @ s0 @ root1)))
    w2_sq = float(np.sum((m0 - m1) ** 2)) + float(
        np.trace(s0 + s1 - 2.0 * cross)
    )
    return math.sqrt(max(w2_sq, 0.0))
