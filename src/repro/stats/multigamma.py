"""Multivariate gamma function utilities.

The normal-Wishart normalisation constant ``Z_0`` (Eq. 13 of the paper)
contains the d-dimensional multivariate gamma function
``Gamma_d(a) = pi^{d(d-1)/4} * prod_{j=1}^{d} Gamma(a + (1 - j)/2)``.
We work in log space throughout because ``Gamma_d`` overflows float64 for
the degree-of-freedom ranges (up to 1000) the paper's cross validation
explores.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gammaln

__all__ = ["multigammaln", "multigamma", "log_wishart_normalizer"]


def multigammaln(a: float, d: int) -> float:
    """Log of the d-dimensional multivariate gamma function at ``a``.

    Requires ``a > (d - 1) / 2`` for the function to be finite.
    """
    if d < 1:
        raise ValueError(f"dimension d must be >= 1, got {d}")
    if a <= (d - 1) / 2.0:
        raise ValueError(f"multivariate gamma requires a > (d-1)/2 = {(d - 1) / 2}, got {a}")
    j = np.arange(1, d + 1)
    return float(d * (d - 1) / 4.0 * math.log(math.pi) + np.sum(gammaln(a + (1.0 - j) / 2.0)))


def multigamma(a: float, d: int) -> float:
    """d-dimensional multivariate gamma function (overflow-prone; prefer log)."""
    return math.exp(multigammaln(a, d))


def log_wishart_normalizer(scale: np.ndarray, dof: float) -> float:
    """Log normalisation constant of a Wishart ``Wi_dof(Lambda | scale)``.

    With density ``|Lambda|^{(dof-d-1)/2} exp(-tr(scale^{-1} Lambda)/2) / B``
    the constant is ``log B = (dof d / 2) log 2 + (dof / 2) log|scale|
    + log Gamma_d(dof / 2)``.
    """
    from repro.linalg.norms import log_det_spd

    scale = np.asarray(scale, dtype=float)
    d = scale.shape[0]
    if dof <= d - 1:
        raise ValueError(f"Wishart dof must exceed d - 1 = {d - 1}, got {dof}")
    return (
        dof * d / 2.0 * math.log(2.0)
        + dof / 2.0 * log_det_spd(scale)
        + multigammaln(dof / 2.0, d)
    )
