"""Multivariate normality diagnostics.

The paper assumes the joint metric distribution is Gaussian (Sec. 1, 3.1)
while conceding real AMS metrics "may not be accurately modeled as a jointly
Gaussian distribution".  These tests let a user *measure* that assumption on
their own data before trusting the fused moments:

* Mardia's multivariate skewness and kurtosis tests (1970),
* the Henze–Zirkler test (1990),
* univariate marginal Shapiro-style moment checks.

Each returns a :class:`GofResult` with the statistic, an asymptotic p-value
and the decision at a chosen significance level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.exceptions import InsufficientDataError
from repro.linalg.validation import as_samples, cholesky_safe
from repro.stats.moments import mle_covariance

__all__ = [
    "GofResult",
    "mardia_skewness",
    "mardia_kurtosis",
    "henze_zirkler",
    "marginal_moment_check",
]


@dataclass(frozen=True)
class GofResult:
    """Outcome of a goodness-of-fit test."""

    name: str
    statistic: float
    p_value: float
    alpha: float = 0.05

    @property
    def reject_normality(self) -> bool:
        """True when the test rejects joint normality at level ``alpha``."""
        return self.p_value < self.alpha


def _mahalanobis_products(x) -> np.ndarray:
    """Matrix of pairwise products ``(x_i - xbar)^T S^{-1} (x_j - xbar)``."""
    samples = as_samples(x)
    n = samples.shape[0]
    if n < samples.shape[1] + 2:
        raise InsufficientDataError(
            "normality tests need n > d + 1 samples for an invertible covariance"
        )
    centered = samples - samples.mean(axis=0)
    from scipy.linalg import solve_triangular

    chol = cholesky_safe(mle_covariance(samples))
    w = solve_triangular(chol, centered.T, lower=True).T  # whitened rows
    return w @ w.T


def mardia_skewness(x, alpha: float = 0.05) -> GofResult:
    """Mardia's multivariate skewness test.

    ``b_{1,d} = mean_{ij} g_ij^3``; under normality ``n b/6`` is chi-square
    with ``d(d+1)(d+2)/6`` degrees of freedom.
    """
    samples = as_samples(x)
    n, d = samples.shape
    g = _mahalanobis_products(samples)
    b1 = float(np.mean(g**3))
    statistic = n * b1 / 6.0
    dof = d * (d + 1) * (d + 2) / 6.0
    p = float(sps.chi2.sf(statistic, dof))
    return GofResult("mardia_skewness", statistic, p, alpha)


def mardia_kurtosis(x, alpha: float = 0.05) -> GofResult:
    """Mardia's multivariate kurtosis test.

    ``b_{2,d} = mean_i g_ii^2``; under normality it is asymptotically normal
    with mean ``d(d+2)`` and variance ``8 d (d+2) / n``.
    """
    samples = as_samples(x)
    n, d = samples.shape
    g = _mahalanobis_products(samples)
    b2 = float(np.mean(np.diag(g) ** 2))
    expected = d * (d + 2)
    std = math.sqrt(8.0 * d * (d + 2) / n)
    statistic = (b2 - expected) / std
    p = float(2.0 * sps.norm.sf(abs(statistic)))
    return GofResult("mardia_kurtosis", statistic, p, alpha)


def henze_zirkler(x, alpha: float = 0.05) -> GofResult:
    """Henze–Zirkler multivariate normality test.

    Uses the standard smoothing parameter
    ``beta = ((n (2d + 1)) / 4)^{1/(d+4)} / sqrt(2)`` and the lognormal
    approximation to the null distribution of the HZ statistic.
    """
    samples = as_samples(x)
    n, d = samples.shape
    g = _mahalanobis_products(samples)
    dii = np.diag(g)
    # Pairwise squared Mahalanobis distances D_ij = g_ii + g_jj - 2 g_ij.
    dij = dii[:, None] + dii[None, :] - 2.0 * g
    beta = (n * (2.0 * d + 1.0) / 4.0) ** (1.0 / (d + 4.0)) / math.sqrt(2.0)
    b2 = beta * beta
    term1 = float(np.sum(np.exp(-b2 / 2.0 * dij))) / n
    term2 = (
        2.0
        * (1.0 + b2) ** (-d / 2.0)
        * float(np.sum(np.exp(-b2 / (2.0 * (1.0 + b2)) * dii)))
    )
    hz = term1 - term2 + n * (1.0 + 2.0 * b2) ** (-d / 2.0)

    # Lognormal approximation of the null (Henze & Zirkler 1990).
    wb = (1.0 + b2) * (1.0 + 3.0 * b2)
    a = 1.0 + 2.0 * b2
    mu = 1.0 - a ** (-d / 2.0) * (
        1.0 + d * b2 / a + d * (d + 2.0) * b2**2 / (2.0 * a**2)
    )
    si2 = (
        2.0 * (1.0 + 4.0 * b2) ** (-d / 2.0)
        + 2.0
        * a ** (-d)
        * (1.0 + 2.0 * d * b2**2 / a**2 + 3.0 * d * (d + 2.0) * b2**4 / (4.0 * a**4))
        - 4.0
        * wb ** (-d / 2.0)
        * (1.0 + 3.0 * d * b2**2 / (2.0 * wb) + d * (d + 2.0) * b2**4 / (2.0 * wb**2))
    )
    si2 = max(si2, 1e-12)
    pmu = math.log(math.sqrt(mu**4 / (si2 + mu**2)))
    psi = math.sqrt(max(math.log((si2 + mu**2) / mu**2), 1e-12))
    p = float(sps.lognorm.sf(hz, psi, scale=math.exp(pmu)))
    return GofResult("henze_zirkler", float(hz), p, alpha)


def marginal_moment_check(x, alpha: float = 0.05) -> list:
    """Jarque–Bera-style marginal normality check per dimension.

    Returns one :class:`GofResult` per column, letting users spot *which*
    performance metric drives a joint-normality rejection.
    """
    samples = as_samples(x)
    n, d = samples.shape
    if n < 8:
        raise InsufficientDataError("marginal moment check needs at least 8 samples")
    results = []
    for j in range(d):
        col = samples[:, j]
        std = col.std(ddof=0)
        if std == 0.0:
            results.append(GofResult(f"marginal_dim{j}", float("inf"), 0.0, alpha))
            continue
        z = (col - col.mean()) / std
        skew = float(np.mean(z**3))
        kurt = float(np.mean(z**4) - 3.0)
        jb = n / 6.0 * (skew**2 + kurt**2 / 4.0)
        p = float(sps.chi2.sf(jb, 2))
        results.append(GofResult(f"marginal_dim{j}", jb, p, alpha))
    return results
