"""Multivariate Student-t distribution.

The posterior predictive of the paper's normal-Wishart model is a
multivariate Student-t: after observing the late samples, a *future* die's
metric vector follows

    X | D  ~  t_{v_n - d + 1}( mu_n,  T_n^{-1} (kappa_n + 1) / (kappa_n (v_n - d + 1)) )

Integrating specs under this predictive (instead of the plug-in MAP
Gaussian) propagates the remaining parameter uncertainty into the yield —
important exactly in the paper's small-n regime.  This module provides the
density, sampling, and moments; :mod:`repro.yieldest.predictive` builds the
yield integration on top.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.linalg import solve_triangular
from scipy.special import gammaln

from repro.exceptions import DimensionError, HyperParameterError
from repro.linalg.validation import as_samples, cholesky_safe, inv_spd, symmetrize

__all__ = ["MultivariateT"]


class MultivariateT:
    """Multivariate Student-t ``t_dof(loc, shape)``.

    Parameters
    ----------
    loc:
        Length-``d`` location vector.
    shape:
        ``(d, d)`` SPD shape (scale) matrix — NOT the covariance; the
        covariance is ``shape * dof / (dof - 2)`` for ``dof > 2``.
    dof:
        Degrees of freedom; must be positive.  ``dof -> inf`` recovers the
        Gaussian with covariance ``shape``.
    """

    def __init__(self, loc, shape, dof: float) -> None:
        self.loc = np.atleast_1d(np.asarray(loc, dtype=float))
        if self.loc.ndim != 1:
            raise DimensionError(f"loc must be 1-D, got ndim={self.loc.ndim}")
        self.shape = symmetrize(np.asarray(shape, dtype=float))
        if self.shape.shape != (self.dim, self.dim):
            raise DimensionError(
                f"shape matrix {self.shape.shape} does not match loc dim {self.dim}"
            )
        self.dof = float(dof)
        if self.dof <= 0.0:
            raise HyperParameterError(f"dof must be > 0, got {dof}")
        self._chol = cholesky_safe(self.shape, "shape")
        self._log_det = 2.0 * float(np.sum(np.log(np.diag(self._chol))))

    # ------------------------------------------------------------------
    @classmethod
    def from_normal_wishart_predictive(cls, nw) -> "MultivariateT":
        """Posterior predictive of a :class:`~repro.stats.normal_wishart.NormalWishart`.

        With parameters ``(mu_n, kappa_n, v_n, T_n)`` the predictive is
        ``t_{v_n - d + 1}(mu_n, T_n^{-1} (kappa_n + 1)/(kappa_n (v_n - d + 1)))``.
        """
        d = nw.dim
        dof = nw.v0 - d + 1.0
        if dof <= 0.0:
            raise HyperParameterError(
                f"predictive dof v0 - d + 1 = {dof} must be positive"
            )
        scale = inv_spd(nw.T0, "T0") * (nw.kappa0 + 1.0) / (nw.kappa0 * dof)
        return cls(nw.mu0, scale, dof)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return self.loc.shape[0]

    @property
    def mean(self) -> Optional[np.ndarray]:
        """Mean (= loc) when ``dof > 1``; undefined otherwise."""
        if self.dof <= 1.0:
            return None
        return self.loc.copy()

    @property
    def covariance(self) -> Optional[np.ndarray]:
        """``shape * dof / (dof - 2)`` when ``dof > 2``; undefined otherwise."""
        if self.dof <= 2.0:
            return None
        return self.shape * self.dof / (self.dof - 2.0)

    # ------------------------------------------------------------------
    def logpdf(self, x) -> np.ndarray:
        """Row-wise log density."""
        samples = self._check(x)
        diff = samples - self.loc
        z = solve_triangular(self._chol, diff.T, lower=True)
        maha = np.sum(z * z, axis=0)
        d, dof = self.dim, self.dof
        log_norm = (
            float(gammaln((dof + d) / 2.0) - gammaln(dof / 2.0))
            - d / 2.0 * math.log(dof * math.pi)
            - 0.5 * self._log_det
        )
        return log_norm - (dof + d) / 2.0 * np.log1p(maha / dof)

    def pdf(self, x) -> np.ndarray:
        """Row-wise density."""
        return np.exp(self.logpdf(x))

    def mahalanobis_sq(self, x) -> np.ndarray:
        """Squared Mahalanobis distance under the shape matrix."""
        samples = self._check(x)
        diff = samples - self.loc
        z = solve_triangular(self._chol, diff.T, lower=True)
        return np.sum(z * z, axis=0)

    # ------------------------------------------------------------------
    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` samples via the Gaussian scale-mixture construction.

        ``X = loc + Z * sqrt(dof / W)`` with ``Z ~ N(0, shape)`` and
        ``W ~ chi2(dof)``.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        gen = rng if rng is not None else np.random.default_rng()
        z = gen.standard_normal((n, self.dim)) @ self._chol.T
        w = gen.chisquare(self.dof, size=n)
        return self.loc + z * np.sqrt(self.dof / w)[:, None]

    # ------------------------------------------------------------------
    def _check(self, x) -> np.ndarray:
        samples = as_samples(x)
        if samples.shape[1] != self.dim:
            raise DimensionError(
                f"samples have {samples.shape[1]} columns, expected {self.dim}"
            )
        return samples
