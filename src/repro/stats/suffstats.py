"""Exact, mergeable Gaussian sufficient statistics.

The normal-Wishart update (Eq. 24–28) touches the data only through the
triple ``(n, Xbar, S)`` — count, sample mean, and centered scatter matrix.
That triple is *additive*: two shards' statistics combine exactly into the
statistics of the concatenated sample, so late-stage measurements can be
ingested one die at a time (or shard by shard, in any split/merge order)
with ``O(d^2)`` work per update and no raw-sample retention.

:class:`SufficientStats` stores the triple in *centered* form — ``(n,
mean, scatter)`` rather than ``(n, sum x, sum x x^T)`` — updated with the
Welford/Chan recurrences.  Centering matters numerically: the raw
outer-product sum loses half the mantissa when the mean is large relative
to the spread (``E[x]^2 >> Var[x]``, routine for circuit metrics like a
60 dB gain), while the centered recurrence keeps the scatter accurate.

:meth:`SufficientStats.from_samples` uses the same batch formulas as
:func:`repro.stats.moments.sample_mean` / ``scatter_matrix``, so a
one-shot build is bit-identical to what the batch estimators always
computed; the incremental paths agree with it to floating-point rounding
(the serving equivalence suite pins 1e-10).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import DimensionError
from repro.linalg.validation import as_samples, symmetrize
from repro.schemas import SUFFSTATS_WIRE_SCHEMA, canonical_json
from repro.stats.moments import sample_mean, scatter_matrix

__all__ = ["SufficientStats", "merge_all", "WIRE_SCHEMA"]

#: Format marker of the stable wire encoding (:meth:`SufficientStats.to_wire`);
#: defined in :mod:`repro.schemas`, the version-string source of truth.
WIRE_SCHEMA = SUFFSTATS_WIRE_SCHEMA


class SufficientStats:
    """Running ``(n, mean, scatter)`` of a stream of ``d``-vectors.

    Attributes
    ----------
    n:
        Number of samples folded in so far.
    mean:
        Sample mean ``Xbar`` (the zero vector while ``n == 0``).
    scatter:
        Centered scatter matrix ``S = sum_i (x_i - Xbar)(x_i - Xbar)^T``
        (Eq. 26); symmetric PSD by construction, zero while ``n < 2``.

    Instances are mutable accumulators; use :meth:`copy` before forking a
    stream.  All update paths cost ``O(d^2)`` per sample and never store
    the raw samples.
    """

    __slots__ = ("n", "mean", "scatter")

    def __init__(self, dim: int) -> None:
        if int(dim) < 1:
            raise DimensionError(f"dim must be >= 1, got {dim}")
        self.n: int = 0
        self.mean: np.ndarray = np.zeros(int(dim))
        self.scatter: np.ndarray = np.zeros((int(dim), int(dim)))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, dim: int) -> "SufficientStats":
        """A fresh accumulator for ``d = dim`` metrics."""
        return cls(dim)

    @classmethod
    def from_samples(cls, samples: ArrayLike) -> "SufficientStats":
        """One-shot statistics of an ``(n, d)`` sample matrix.

        Uses the exact batch formulas of :mod:`repro.stats.moments`, so the
        result is bit-identical to what :func:`sample_mean` /
        :func:`scatter_matrix` return on the same array — this is the
        reference the incremental paths are tested against.
        """
        data = as_samples(samples)
        stats = cls(data.shape[1])
        stats.n = data.shape[0]
        stats.mean = sample_mean(data)
        stats.scatter = scatter_matrix(data)
        return stats

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of metrics ``d``."""
        return int(self.mean.shape[0])

    def copy(self) -> "SufficientStats":
        """Independent deep copy of the accumulator state."""
        out = SufficientStats(self.dim)
        out.n = self.n
        out.mean = self.mean.copy()
        out.scatter = self.scatter.copy()
        return out

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def push(self, x: ArrayLike) -> "SufficientStats":
        """Fold in one sample vector (Welford's centered update).

        ``mean_{n} = mean_{n-1} + delta / n`` and
        ``S_n = S_{n-1} + delta (x - mean_n)^T`` — the rank-one form whose
        error stays bounded even when ``|mean| >> spread``.  Returns
        ``self`` for chaining.
        """
        row = np.atleast_1d(np.asarray(x, dtype=float))
        if row.ndim != 1 or row.shape[0] != self.dim:
            raise DimensionError(
                f"observation must be a length-{self.dim} vector, "
                f"got shape {row.shape}"
            )
        if not np.all(np.isfinite(row)):
            raise DimensionError("observation contains non-finite values")
        self.n += 1
        delta = row - self.mean
        self.mean = self.mean + delta / self.n
        self.scatter = symmetrize(self.scatter + np.outer(delta, row - self.mean))
        return self

    def push_batch(self, samples: ArrayLike) -> "SufficientStats":
        """Fold in an ``(n, d)`` block via one Chan merge.

        Computes the block's statistics with the batch formulas and merges
        them in; ingesting a single block into an *empty* accumulator is
        therefore bit-identical to :meth:`from_samples`.
        """
        return self.merge(SufficientStats.from_samples(samples))

    def merge(self, other: "SufficientStats") -> "SufficientStats":
        """Combine another accumulator into this one (Chan's formula).

        Exact in exact arithmetic and associative/commutative up to
        floating-point rounding, so shard-local statistics can be merged
        in any split order.  Returns ``self``.
        """
        if not isinstance(other, SufficientStats):
            raise DimensionError(
                f"can only merge SufficientStats, got {type(other).__name__}"
            )
        if other.dim != self.dim:
            raise DimensionError(
                f"cannot merge dim-{other.dim} stats into dim-{self.dim} stats"
            )
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean.copy()
            self.scatter = other.scatter.copy()
            return self
        n_total = self.n + other.n
        delta = other.mean - self.mean
        self.mean = self.mean + delta * (other.n / n_total)
        cross = np.outer(delta, delta) * (self.n * other.n / n_total)
        self.scatter = symmetrize(self.scatter + other.scatter + cross)
        self.n = n_total
        return self

    # ------------------------------------------------------------------
    # serialization (exact: float64 round-trips losslessly through JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload; ``float.__repr__`` round-trips bit-exactly."""
        return {
            "n": int(self.n),
            "mean": self.mean.tolist(),
            "scatter": self.scatter.tolist(),
        }

    def to_payload(self) -> Dict[str, Any]:
        """Array-valued payload for binary sinks (write-ahead-log v2).

        Same keys as :meth:`to_dict` but ``mean``/``scatter`` stay
        ``float64`` ndarrays, so a binary log can write their raw buffers
        instead of formatting every float.  :meth:`from_dict` accepts the
        result unchanged (``np.asarray`` on an ndarray is a no-copy pass),
        so both payload shapes replay through one code path.
        """
        return {"n": int(self.n), "mean": self.mean, "scatter": self.scatter}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SufficientStats":
        """Inverse of :meth:`to_dict` (bit-exact restore)."""
        try:
            mean = np.asarray(payload["mean"], dtype=float)
            scatter = np.asarray(payload["scatter"], dtype=float)
            n = int(payload["n"])
        except (KeyError, TypeError) as exc:
            raise DimensionError(f"malformed suffstats payload: {exc}") from exc
        if mean.ndim != 1:
            raise DimensionError("suffstats mean must be 1-D")
        d = mean.shape[0]
        if scatter.shape != (d, d):
            raise DimensionError(
                f"suffstats scatter shape {scatter.shape} does not match dim {d}"
            )
        if n < 0:
            raise DimensionError(f"suffstats count must be >= 0, got {n}")
        stats = cls(d)
        stats.n = n
        stats.mean = mean
        stats.scatter = scatter
        return stats

    def to_wire(self) -> bytes:
        """Stable wire encoding: canonical JSON (sorted keys, compact,
        ``repr``-round-tripped floats) inside a versioned envelope.

        This is the *contract* encoding for accumulators that cross a
        process or machine boundary — shard workers answering a router,
        tester-side accumulators posted over the JSON-lines protocol, and
        write-ahead-log records.  Unlike pickle it is schema-checked,
        inspectable, and identical bytes for identical values regardless
        of dict insertion order, so it can be sha256-chained.
        """
        envelope = {"schema": WIRE_SCHEMA, **self.to_dict()}
        return canonical_json(envelope).encode("utf-8")

    @classmethod
    def from_wire(cls, data: bytes) -> "SufficientStats":
        """Decode :meth:`to_wire` bytes (bit-exact inverse); schema-checked."""
        try:
            envelope = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DimensionError(f"malformed suffstats wire payload: {exc}") from exc
        if not isinstance(envelope, dict) or envelope.get("schema") != WIRE_SCHEMA:
            declared = envelope.get("schema") if isinstance(envelope, dict) else None
            raise DimensionError(
                f"suffstats wire payload declares schema {declared!r} "
                f"(expected {WIRE_SCHEMA!r})"
            )
        return cls.from_dict(envelope)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SufficientStats):
            return NotImplemented
        return (
            self.n == other.n
            and bool(np.array_equal(self.mean, other.mean))
            and bool(np.array_equal(self.scatter, other.scatter))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SufficientStats(n={self.n}, dim={self.dim})"


def merge_all(stats: Sequence[SufficientStats]) -> SufficientStats:
    """Merge a sequence of shard-local accumulators into one (left fold).

    The sequence must be non-empty and dimension-consistent; inputs are
    not mutated.
    """
    items: List[SufficientStats] = list(stats)
    if not items:
        raise DimensionError("merge_all requires at least one accumulator")
    out = items[0].copy()
    for item in items[1:]:
        out.merge(item)
    return out
