"""Command-line interface: ``python -m repro <command>``.

Gives non-Python users (and CI jobs) direct access to the reproduction
harness:

* ``generate`` — simulate a paired Monte-Carlo bank for any registry
  circuit (or one ``--scenario DOC#NAME`` instance) and save it as .npz;
* ``fuse`` — run the fusion pipeline on a saved bank with n late samples
  using any registered estimator (``--estimator``) and/or a declarative
  JSON config (``--config``), print the fused physical-space moments, and
  optionally save the full result (moments + provenance + transform);
* ``list-estimators`` — show every registry estimator name the ``fuse``
  command accepts, with capability metadata;
* ``figure4`` / ``figure5`` — regenerate a paper figure's series;
* ``cost`` — the cost-reduction headline for a circuit;
* ``gof`` — multivariate-normality diagnostics of a saved bank;
* ``serve`` — run the streaming estimation service as a JSON-lines
  stdin/stdout loop (see :mod:`repro.serving.protocol`);
* ``ingest`` — fold late-stage samples from a saved bank into a serving
  checkpoint (creating the session from the bank's early stage);
* ``query`` — ask a serving checkpoint for an estimate, a log-likelihood,
  a parametric yield, its counters, or its session list;
* ``scenarios`` — ``list``/``expand``/``compile`` declarative scenario
  documents (see :mod:`repro.scenarios`).

The CLI constructs no concrete estimator class itself — everything goes
through :mod:`repro.core.registry`, so a newly registered estimator is
immediately usable from here.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multivariate Bayesian model fusion for AMS moment estimation "
            "(DAC 2015 reproduction)"
        ),
    )
    parser.add_argument(
        "--linalg-backend",
        choices=["auto", "numpy", "numba"],
        default=None,
        help=(
            "kernel backend for batched SPD math (numba needs the optional "
            "numba package; auto picks the best available); default: ambient"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # The circuit list and its help text come from the registry, so a
    # newly registered circuit is immediately generatable from here.
    from repro.circuits.registry import circuit_names, get_circuit

    names = circuit_names()
    gen = sub.add_parser("generate", help="simulate a paired Monte-Carlo bank")
    # Both positionals are declared optional and reconciled in the
    # handler: with --scenario only the output path is given, and argparse
    # cannot express "first positional optional, second required" when
    # flags interleave.  Circuit names are validated by the registry.
    gen.add_argument(
        "circuit",
        nargs="?",
        default=None,
        metavar="circuit",
        help="registry circuit: "
        + "; ".join(f"{n} ({get_circuit(n).summary})" for n in names),
    )
    gen.add_argument(
        "output", nargs="?", default=None, help="output .npz path"
    )
    gen.add_argument("--samples", type=int, default=None, help="bank size")
    gen.add_argument("--seed", type=int, default=2015)
    gen.add_argument(
        "--scenario",
        default=None,
        metavar="DOC#NAME",
        help="generate one expanded instance of a scenario document "
        "instead of a bare circuit: a .yaml/.json path or builtin:<name>, "
        "'#', then the scenario or instance name",
    )
    gen.add_argument(
        "--mna-backend",
        choices=["auto", "dense", "sparse"],
        default=None,
        help=(
            "MNA solve strategy for circuit simulation (sparse needs scipy; "
            "auto switches on system size); default: auto"
        ),
    )

    fuse = sub.add_parser("fuse", help="fuse early knowledge with n late samples")
    fuse.add_argument("dataset", help=".npz bank from 'generate'")
    fuse.add_argument("--late-samples", type=int, default=16)
    fuse.add_argument("--seed", type=int, default=0)
    fuse.add_argument(
        "--save",
        default=None,
        help="write the full result JSON (physical moments + provenance + transform)",
    )
    fuse.add_argument(
        "--estimator",
        default=None,
        metavar="NAME",
        help="registry estimator to run (see 'list-estimators'); default: bmf",
    )
    fuse.add_argument(
        "--config",
        default=None,
        metavar="CFG.json",
        help="FusionConfig JSON file; CLI flags override its fields",
    )
    fuse.add_argument(
        "--selector",
        default=None,
        choices=["cv", "evidence", "fixed", "none"],
        help="hyper-parameter selection policy (default: cv)",
    )
    fuse.add_argument(
        "--kappa0", type=float, default=None, help="pin kappa0 (skip CV)"
    )
    fuse.add_argument("--v0", type=float, default=None, help="pin v0 (skip CV)")

    sub.add_parser(
        "list-estimators",
        help="list registry estimator names usable with 'fuse --estimator'",
    )

    for fig, circuit in (("figure4", "op-amp"), ("figure5", "flash ADC")):
        f = sub.add_parser(fig, help=f"regenerate paper {fig} ({circuit})")
        f.add_argument("--bank", type=int, default=None)
        f.add_argument("--repeats", type=int, default=30)
        f.add_argument("--csv", default=None, help="dump raw sweep errors to CSV")

    cost = sub.add_parser("cost", help="cost-reduction headline")
    cost.add_argument("circuit", choices=["opamp", "adc"])
    cost.add_argument("--bank", type=int, default=None)
    cost.add_argument("--repeats", type=int, default=30)

    gof = sub.add_parser("gof", help="normality diagnostics of a saved bank")
    gof.add_argument("dataset", help=".npz bank from 'generate'")
    gof.add_argument("--stage", choices=["early", "late"], default="late")

    serve = sub.add_parser(
        "serve", help="run the estimation service as a JSON-lines stdin/stdout loop"
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        help="restore state from this checkpoint if it exists",
    )
    serve.add_argument(
        "--save-on-exit",
        action="store_true",
        help="write the checkpoint back when the loop ends (requires --checkpoint)",
    )
    serve.add_argument("--max-sessions", type=int, default=1024)
    serve.add_argument(
        "--ttl-ops",
        type=int,
        default=None,
        help="evict sessions idle for this many store operations",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard-worker count (1 without other shard flags is the "
        "bit-identical single-process compatibility mode)",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        help="append per-shard write-ahead logs (shard-NNN.wal) into this "
        "directory; existing logs are recovered and replayed",
    )
    serve.add_argument(
        "--flush-rows",
        type=int,
        default=None,
        help="ingest-coalescing threshold in rows "
        "(default: 1 for one shard, 64 otherwise)",
    )
    serve.add_argument(
        "--wal-format",
        choices=["v1", "v2"],
        default="v2",
        help="on-disk format for NEW write-ahead logs: v2 binary frames "
        "(raw float64 buffers, the ingest fast path) or v1 JSON lines; "
        "existing logs auto-detect (default: v2)",
    )
    serve.add_argument(
        "--wal-flush-records",
        type=int,
        default=None,
        help="group-commit record bound: flush the WAL buffer after this "
        "many appends (default: 1 for v1, 64 for v2)",
    )
    serve.add_argument(
        "--wal-flush-bytes",
        type=int,
        default=None,
        help="group-commit byte bound for the WAL buffer (default: 256 KiB)",
    )
    serve.add_argument(
        "--wal-delta-rows",
        type=int,
        default=None,
        help="log 2-D ingest blocks with at least this many rows as "
        "O(d^2) sufficient statistics instead of raw samples "
        "(default: off — always log raw samples)",
    )
    serve.add_argument(
        "--placement",
        choices=["hash", "spread"],
        default="hash",
        help="session placement: each key on its consistent-hash home "
        "shard, or spread over all shards with merge-on-read queries",
    )

    replay = sub.add_parser(
        "replay", help="verify a write-ahead log and rebuild shard state from it"
    )
    replay.add_argument("wal", help="per-shard WAL file (shard-NNN.wal)")
    replay.add_argument(
        "--checkpoint",
        default=None,
        help="base shard checkpoint; only the WAL tail past its covered "
        "offset is replayed",
    )
    replay.add_argument(
        "--out", default=None, help="write the recovered shard checkpoint here"
    )
    replay.add_argument("--max-sessions", type=int, default=1024)
    replay.add_argument(
        "--ttl-ops",
        type=int,
        default=None,
        help="store TTL the original service ran with (ignored with --checkpoint)",
    )

    compact = sub.add_parser(
        "compact",
        help="checkpoint a sharded service and truncate replayed WAL segments",
    )
    compact.add_argument(
        "checkpoint", help="sharded checkpoint directory (holds manifest.json)"
    )
    compact.add_argument(
        "--wal-dir", required=True, help="directory holding the shard WALs"
    )
    compact.add_argument(
        "--out",
        default=None,
        help="write the compacted checkpoint elsewhere (default: in place)",
    )

    ingest = sub.add_parser(
        "ingest", help="fold late-stage bank samples into a serving checkpoint"
    )
    ingest.add_argument("checkpoint", help="serving checkpoint path (updated in place)")
    ingest.add_argument("--session", required=True, help="target session key")
    ingest.add_argument("--dataset", required=True, help=".npz bank from 'generate'")
    ingest.add_argument(
        "--samples", type=int, default=16, help="late samples to draw from the bank"
    )
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--create",
        action="store_true",
        help=(
            "create the checkpoint and/or session when missing; the prior "
            "comes from the bank's early stage"
        ),
    )
    ingest.add_argument("--kappa0", type=float, default=None, help="pin kappa0")
    ingest.add_argument("--v0", type=float, default=None, help="pin v0")
    ingest.add_argument(
        "--emit-wire",
        default=None,
        metavar="PATH",
        help="instead of updating the checkpoint, write the equivalent "
        "JSON-lines protocol requests (create + ingest) to PATH "
        "('-' for stdout) for piping into 'repro serve'",
    )
    ingest.add_argument(
        "--wire-encoding",
        choices=["list", "b64f64"],
        default="b64f64",
        help="array encoding for --emit-wire requests: nested JSON lists "
        "or zero-copy base64 raw float64 (default: b64f64)",
    )

    query = sub.add_parser("query", help="query a serving checkpoint")
    query.add_argument("checkpoint", help="serving checkpoint path (read-only)")
    query.add_argument(
        "kind", choices=["estimate", "loglik", "yield", "stats", "sessions"]
    )
    query.add_argument("--session", default=None, help="session key (per-session kinds)")
    query.add_argument(
        "--dataset", default=None, help=".npz bank supplying rows for 'loglik'"
    )
    query.add_argument(
        "--rows", type=int, default=16, help="rows drawn from the bank for 'loglik'"
    )
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--lower", default=None, help="comma-separated lower spec bounds")
    query.add_argument("--upper", default=None, help="comma-separated upper spec bounds")
    query.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    scen = sub.add_parser(
        "scenarios",
        help="inspect and compile declarative scenario documents",
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)

    s_list = scen_sub.add_parser(
        "list",
        help="list bundled documents and registry circuits (or one document's scenarios)",
    )
    s_list.add_argument(
        "document",
        nargs="?",
        default=None,
        help="scenario document (.yaml/.json path or builtin:<name>); "
        "omit to list builtins and circuits",
    )

    s_expand = scen_sub.add_parser(
        "expand", help="expand a document's sweeps into its ordered instance list"
    )
    s_expand.add_argument(
        "document", help="scenario document (.yaml/.json path or builtin:<name>)"
    )
    s_expand.add_argument(
        "--json", action="store_true", help="one canonical-JSON object per instance"
    )

    s_compile = scen_sub.add_parser(
        "compile", help="compile every expanded instance to a paired MC dataset"
    )
    s_compile.add_argument(
        "document", help="scenario document (.yaml/.json path or builtin:<name>)"
    )
    s_compile.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: serial; -1 = one per core)",
    )
    s_compile.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache directory (default: REPRO_DATASET_CACHE_DIR or "
        "the repo-local cache)",
    )
    s_compile.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the dataset disk cache (always re-simulate)",
    )
    s_compile.add_argument(
        "--mna-backend",
        choices=["auto", "dense", "sparse"],
        default=None,
        help="MNA solve strategy for circuits that thread one",
    )
    s_compile.add_argument(
        "--json", action="store_true", help="one canonical-JSON report per instance"
    )

    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------
def _resolve_scenario_doc_path(ref: str):
    """Turn a document reference (path or ``builtin:<name>``) into a path."""
    from pathlib import Path

    from repro.scenarios import builtin_document_path

    if ref.startswith("builtin:"):
        return builtin_document_path(ref)
    return Path(ref)


def _select_scenario_instance(spec: str):
    """Resolve a ``DOC#NAME`` reference to one expanded instance."""
    from repro.exceptions import ConfigError
    from repro.scenarios import expand, load_scenario_doc

    ref, sep, wanted = spec.partition("#")
    if not sep or not wanted:
        raise ConfigError(
            f"--scenario needs the form DOC#NAME (document, '#', scenario "
            f"or instance name), got {spec!r}"
        )
    doc = load_scenario_doc(_resolve_scenario_doc_path(ref))
    instances = expand(doc)
    exact = [inst for inst in instances if inst.name == wanted]
    if len(exact) == 1:
        return exact[0]
    of_scenario = [
        inst
        for inst in instances
        if inst.name == wanted or inst.name.startswith(f"{wanted}@")
    ]
    if len(of_scenario) == 1:
        return of_scenario[0]
    if of_scenario:
        names = ", ".join(inst.name for inst in of_scenario[:8])
        more = "..." if len(of_scenario) > 8 else ""
        raise ConfigError(
            f"scenario {wanted!r} expands to {len(of_scenario)} instances; "
            f"name one of: {names}{more} (or use 'repro scenarios compile')"
        )
    raise ConfigError(
        f"no scenario or instance named {wanted!r} in {doc.source}; "
        f"scenarios: {', '.join(s.name for s in doc.scenarios)}"
    )


def _cmd_generate(args) -> int:
    from repro.circuits.registry import generate_dataset
    from repro.io import save_dataset

    if args.scenario is not None:
        # With --scenario the single positional is the output path; when
        # flags precede it argparse lands it in the circuit slot.
        if args.output is None:
            args.circuit, args.output = None, args.circuit
        if args.circuit is not None:
            print(
                "generate takes either a circuit or --scenario, not both",
                file=sys.stderr,
            )
            return 2
        if args.output is None:
            print("generate needs an output .npz path", file=sys.stderr)
            return 2
        from repro.scenarios import compile_instance

        inst = _select_scenario_instance(args.scenario)
        if args.samples is not None:
            import dataclasses

            inst = dataclasses.replace(inst, n_samples=args.samples)
        dataset, _ = compile_instance(inst, mna_backend=args.mna_backend)
        label = f"{inst.circuit} ({inst.name})"
    elif args.circuit is None or args.output is None:
        print(
            "generate needs a circuit name and an output .npz path "
            "(or --scenario DOC#NAME and an output path)",
            file=sys.stderr,
        )
        return 2
    else:
        dataset = generate_dataset(
            args.circuit,
            n_samples=args.samples,
            seed=args.seed,
            mna_backend=args.mna_backend,
        )
        label = args.circuit
    save_dataset(dataset, args.output)
    print(
        f"wrote {dataset.n_samples} paired {label} dies "
        f"({dataset.dim} metrics) to {args.output}"
    )
    return 0


def _resolve_fuse_config(args):
    """Merge the optional ``--config`` file with the overriding CLI flags."""
    from repro.core.registry import EstimatorSpec, FusionConfig
    from repro.io import load_config

    config = load_config(args.config) if args.config else FusionConfig()
    if args.estimator:
        config = config.replace(estimator=EstimatorSpec(args.estimator))
    if args.kappa0 is not None or args.v0 is not None:
        config = config.replace(
            selector="fixed", kappa0=args.kappa0, v0=args.v0
        )
    elif args.selector:
        config = config.replace(selector=args.selector)
    return config


def _cmd_fuse(args) -> int:
    from repro.core.pipeline import FusionPipeline
    from repro.io import load_dataset, save_result

    config = _resolve_fuse_config(args)
    dataset = load_dataset(args.dataset)
    rng = np.random.default_rng(args.seed)
    pipeline = FusionPipeline.fit(
        dataset.early,
        dataset.early_nominal,
        dataset.late_nominal,
        config=config,
    )
    subset = dataset.late_subset(args.late_samples, rng)
    result = pipeline.estimate(subset, rng=rng)
    prov = result.provenance
    parts = [f"estimator={prov.estimator}"]
    if prov.selector is not None:
        parts.append(f"selector={prov.selector}")
    if prov.kappa0 is not None:
        parts.append(f"kappa0={prov.kappa0:.4g}")
    if prov.v0 is not None:
        parts.append(f"v0={prov.v0:.4g}")
    parts.append(f"config={prov.config_hash}")
    print(f"fused {args.late_samples} late samples; " + ", ".join(parts))
    print(f"{'metric':<16} {'fused mean':>14} {'fused std':>14}")
    stds = np.sqrt(np.diag(result.covariance))
    for name, mean, std in zip(dataset.metric_names, result.mean, stds):
        print(f"{name:<16} {mean:>14.6g} {std:>14.6g}")
    if args.save:
        save_result(result, args.save)
        print(
            f"saved physical-space moments (plus isotropic estimate, provenance, "
            f"and shift/scale transform) to {args.save}"
        )
    return 0


def _cmd_list_estimators(args) -> int:
    from repro.core.registry import available_selectors, default_registry

    print(f"{'name':<20} {'prior':<6} {'hyper':<6} {'data':<13} summary")
    for entry in default_registry().entries():
        print(
            f"{entry.name:<20} "
            f"{'yes' if entry.requires_prior else 'no':<6} "
            f"{'yes' if entry.accepts_hyperparams else 'no':<6} "
            f"{entry.data_kind:<13} "
            f"{entry.summary}"
        )
    print(
        "\nselectors: "
        + ", ".join(available_selectors())
        + " (plus 'fixed' and 'none')"
    )
    return 0


def _run_figure(args, which: str) -> int:
    from repro.experiments.cost import cost_reduction
    from repro.experiments.figures import figure4_opamp, figure5_adc
    from repro.experiments.reporting import (
        format_cost_reduction,
        format_error_series,
        format_hyperparams,
    )

    if which == "figure4":
        bank = args.bank if args.bank is not None else 2000
        fig = figure4_opamp(n_bank=bank, n_repeats=args.repeats)
        title = "op-amp (paper Figure 4)"
    else:
        bank = args.bank if args.bank is not None else 800
        fig = figure5_adc(n_bank=bank, n_repeats=args.repeats)
        title = "flash ADC (paper Figure 5)"
    print(format_error_series(fig.sweep, "mean", f"{title} — mean error"))
    print()
    print(format_error_series(fig.sweep, "covariance", f"{title} — covariance error"))
    print()
    print(format_hyperparams(fig.sweep, f"{title} — selected hyper-parameters"))
    print()
    print(
        format_cost_reduction(
            cost_reduction(fig.sweep, "covariance"), f"{title} — covariance cost"
        )
    )
    if getattr(args, "csv", None):
        from repro.io import sweep_to_csv

        sweep_to_csv(fig.sweep, args.csv)
        print(f"\nraw sweep errors written to {args.csv}")
    return 0


def _cmd_cost(args) -> int:
    from repro.experiments.cost import cost_reduction
    from repro.experiments.figures import figure4_opamp, figure5_adc
    from repro.experiments.reporting import format_cost_reduction

    if args.circuit == "opamp":
        bank = args.bank if args.bank is not None else 2000
        fig = figure4_opamp(n_bank=bank, n_repeats=args.repeats)
    else:
        bank = args.bank if args.bank is not None else 800
        fig = figure5_adc(n_bank=bank, n_repeats=args.repeats)
    for metric in ("covariance", "mean"):
        print(
            format_cost_reduction(
                cost_reduction(fig.sweep, metric),
                f"{args.circuit} {metric} cost reduction",
            )
        )
        print()
    return 0


def _cmd_gof(args) -> int:
    from repro.io import load_dataset
    from repro.stats.gof import henze_zirkler, mardia_kurtosis, mardia_skewness

    dataset = load_dataset(args.dataset)
    samples = dataset.early if args.stage == "early" else dataset.late
    print(f"normality diagnostics on the {args.stage} stage ({samples.shape[0]} rows):")
    for test in (mardia_skewness, mardia_kurtosis, henze_zirkler):
        result = test(samples)
        verdict = "REJECT" if result.reject_normality else "accept"
        print(
            f"  {result.name:<18} stat {result.statistic:>10.3f}  "
            f"p {result.p_value:>8.4f}  -> {verdict} normality at {result.alpha}"
        )
    return 0


def _cmd_serve(args) -> int:
    import os
    from pathlib import Path

    from repro.serving import MomentService, ShardedMomentService, serve_loop

    # Any shard-mode flag routes through the sharded stack; the bare
    # single-shard invocation keeps the original MomentService path so its
    # behaviour and checkpoint bytes stay identical to the pre-shard CLI.
    sharded = (
        args.shards != 1
        or args.wal_dir is not None
        or args.flush_rows is not None
        or args.placement != "hash"
    )
    if args.save_on_exit and not args.checkpoint:
        print("--save-on-exit requires --checkpoint", file=sys.stderr)
        return 2
    service: Any
    if sharded:
        manifest = (
            os.path.join(args.checkpoint, "manifest.json") if args.checkpoint else None
        )
        if manifest is not None and os.path.exists(manifest):
            service = ShardedMomentService.restore(
                args.checkpoint,
                wal_dir=args.wal_dir,
                flush_rows=args.flush_rows,
                wal_flush_records=args.wal_flush_records,
                wal_flush_bytes=args.wal_flush_bytes,
                wal_delta_rows=args.wal_delta_rows,
            )
            print(
                f"restored {service.n_shards}-shard service from {args.checkpoint}",
                file=sys.stderr,
            )
        elif args.wal_dir is not None and sorted(
            Path(args.wal_dir).glob("shard-*.wal")
        ):
            service = ShardedMomentService.recover(
                args.wal_dir,
                max_sessions_per_shard=args.max_sessions,
                ttl_ops=args.ttl_ops,
                placement=args.placement,
                flush_rows=args.flush_rows,
                wal_flush_records=args.wal_flush_records,
                wal_flush_bytes=args.wal_flush_bytes,
                wal_delta_rows=args.wal_delta_rows,
            )
            print(
                f"recovered {service.n_shards} shard(s) by replaying "
                f"write-ahead logs in {args.wal_dir}",
                file=sys.stderr,
            )
            if args.shards != service.n_shards:
                print(
                    f"warning: --shards {args.shards} ignored — the shard "
                    f"count is fixed by the {service.n_shards} recovered "
                    "WAL file(s); re-shard offline if you need a "
                    "different count",
                    file=sys.stderr,
                )
        else:
            service = ShardedMomentService(
                n_shards=args.shards,
                max_sessions_per_shard=args.max_sessions,
                ttl_ops=args.ttl_ops,
                placement=args.placement,
                flush_rows=args.flush_rows,
                wal_dir=args.wal_dir,
                wal_format=args.wal_format,
                wal_flush_records=args.wal_flush_records,
                wal_flush_bytes=args.wal_flush_bytes,
                wal_delta_rows=args.wal_delta_rows,
            )
    elif args.checkpoint and os.path.exists(args.checkpoint):
        service = MomentService.restore(args.checkpoint, start_queue=False)
        print(f"restored service state from {args.checkpoint}", file=sys.stderr)
    else:
        service = MomentService(
            max_sessions=args.max_sessions,
            ttl_ops=args.ttl_ops,
            start_queue=False,
        )
    print(
        "repro serving loop: one JSON request per line on stdin "
        "(op: ping/create/ingest/estimate/loglik/yield/sessions/drop/"
        "stats/checkpoint/shutdown)",
        file=sys.stderr,
    )
    handled = serve_loop(service)
    if args.save_on_exit:
        sha = service.checkpoint(args.checkpoint)
        print(
            f"saved state to {args.checkpoint} (sha256 {sha[:12]}...)",
            file=sys.stderr,
        )
    service.close()
    print(f"served {handled} requests", file=sys.stderr)
    return 0


def _cmd_replay(args) -> int:
    from repro.serving import ShardWorker, WriteAheadLog

    wal = WriteAheadLog.open(args.wal)
    n_records = wal.verify()
    print(
        f"verified {args.wal}: shard {wal.shard_id}, "
        f"{n_records} record(s) covering seq ({wal.base_seq}, {wal.last_seq}]"
    )
    if args.checkpoint:
        worker = ShardWorker.restore(args.checkpoint, shard_id=wal.shard_id, wal=wal)
        print(
            f"restored base checkpoint {args.checkpoint} and replayed the "
            "tail past its covered offset"
        )
    else:
        worker = ShardWorker(
            shard_id=wal.shard_id,
            max_sessions=args.max_sessions,
            ttl_ops=args.ttl_ops,
            wal=wal,
        )
        worker.replay(wal)
    print(
        f"recovered shard state: {len(worker.store)} live session(s), "
        f"clock {worker.store.clock}, "
        f"{worker.counters.ingested_samples} sample(s) ingested"
    )
    if args.out:
        sha = worker.checkpoint(args.out)
        print(f"wrote recovered checkpoint {args.out} (sha256 {sha[:12]}...)")
    wal.close()
    return 0


def _cmd_compact(args) -> int:
    from repro.serving import ShardedMomentService

    service = ShardedMomentService.restore(args.checkpoint, wal_dir=args.wal_dir)
    replayed = sum(
        worker.wal.last_seq - worker.wal.base_seq
        for worker in service.workers
        if worker.wal is not None
    )
    sha = service.compact(args.out or args.checkpoint)
    service.close()
    print(
        f"compacted {service.n_shards} shard(s): truncated {replayed} "
        f"replayed WAL record(s); manifest sha256 {sha[:12]}..."
    )
    return 0


def _emit_wire_requests(args) -> int:
    """Write the protocol requests an ingest would issue, instead of issuing
    them — the zero-copy feeder for a piped ``repro serve`` process."""
    from repro.core.prior import PriorKnowledge
    from repro.io import load_dataset
    from repro.schemas import canonical_json
    from repro.serving import encode_array

    dataset = load_dataset(args.dataset)
    rng = np.random.default_rng(args.seed)
    subset = dataset.late_subset(args.samples, rng)

    def enc(values):
        return encode_array(values) if args.wire_encoding == "b64f64" else (
            np.asarray(values, dtype=float).tolist()
        )

    lines = []
    if args.create:
        prior = PriorKnowledge.from_samples(dataset.early)
        create = {
            "op": "create",
            "key": args.session,
            "prior_mean": enc(prior.mean),
            "prior_covariance": enc(prior.covariance),
            "prior_n_samples": int(prior.n_samples),
            "exist_ok": True,
        }
        if args.kappa0 is not None:
            create["kappa0"] = args.kappa0
        if args.v0 is not None:
            create["v0"] = args.v0
        lines.append(canonical_json(create))
    lines.append(
        canonical_json({"op": "ingest", "key": args.session, "samples": enc(subset)})
    )
    text = "\n".join(lines) + "\n"
    if args.emit_wire == "-":
        sys.stdout.write(text)
    else:
        with open(args.emit_wire, "w", encoding="utf-8") as handle:
            handle.write(text)
    print(
        f"emitted {len(lines)} {args.wire_encoding}-encoded request line(s) "
        f"({subset.shape[0]} rows for session {args.session!r}) to "
        f"{'stdout' if args.emit_wire == '-' else args.emit_wire}",
        file=sys.stderr,
    )
    return 0


def _cmd_ingest(args) -> int:
    import os

    from repro.core.prior import PriorKnowledge
    from repro.io import load_dataset
    from repro.serving import MomentService

    if args.emit_wire is not None:
        return _emit_wire_requests(args)
    dataset = load_dataset(args.dataset)
    if os.path.exists(args.checkpoint):
        service = MomentService.restore(args.checkpoint, start_queue=False)
    elif args.create:
        service = MomentService(start_queue=False)
    else:
        print(
            f"checkpoint {args.checkpoint} does not exist (pass --create to start one)",
            file=sys.stderr,
        )
        return 2
    if args.session not in service.store:
        if not args.create:
            print(
                f"session {args.session!r} not in checkpoint "
                "(pass --create to register it from the bank's early stage)",
                file=sys.stderr,
            )
            return 2
        prior = PriorKnowledge.from_samples(dataset.early)
        service.create_session(
            args.session, prior, kappa0=args.kappa0, v0=args.v0
        )
        print(
            f"created session {args.session!r} from the bank's early stage "
            f"({dataset.early.shape[0]} rows, {dataset.dim} metrics)"
        )
    rng = np.random.default_rng(args.seed)
    subset = dataset.late_subset(args.samples, rng)
    total = service.ingest(args.session, subset)
    sha = service.checkpoint(args.checkpoint)
    print(
        f"ingested {subset.shape[0]} late samples into {args.session!r} "
        f"(session n={total}); wrote {args.checkpoint} (sha256 {sha[:12]}...)"
    )
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.io import load_dataset
    from repro.serving import MomentService

    service = MomentService.restore(args.checkpoint, start_queue=False)

    if args.kind == "stats":
        print(json.dumps(service.stats(), indent=2, sort_keys=True))  # reprolint: disable=RPL009 -- human-readable console display, never persisted or hashed
        return 0
    if args.kind == "sessions":
        for key in service.store.keys():
            print(key)
        return 0

    if not args.session:
        print(f"query kind {args.kind!r} requires --session", file=sys.stderr)
        return 2

    if args.kind == "estimate":
        estimate = service.query_many([("estimate", args.session, None)])[0]
        if args.json:
            print(
                json.dumps(  # reprolint: disable=RPL009 -- human-readable console display, never persisted or hashed
                    {
                        "key": args.session,
                        "mean": estimate.mean.tolist(),
                        "covariance": estimate.covariance.tolist(),
                        "n": estimate.n_samples,
                        "info": dict(estimate.info),
                    }
                )
            )
        else:
            print(
                f"session {args.session!r}: MAP estimate from "
                f"{estimate.n_samples} ingested samples"
            )
            print(f"{'metric':<10} {'mean':>14} {'std':>14}")
            stds = np.sqrt(np.diag(estimate.covariance))
            for i, (mean, std) in enumerate(zip(estimate.mean, stds)):
                print(f"m{i:<9} {mean:>14.6g} {std:>14.6g}")
        return 0

    if args.kind == "loglik":
        if not args.dataset:
            print("query loglik requires --dataset", file=sys.stderr)
            return 2
        dataset = load_dataset(args.dataset)
        rng = np.random.default_rng(args.seed)
        rows = dataset.late_subset(args.rows, rng)
        value = service.query_many([("loglik", args.session, rows)])[0]
        print(
            f"log-likelihood of {rows.shape[0]} bank rows under "
            f"session {args.session!r}: {value:.6g}"
        )
        return 0

    # kind == "yield"
    if args.lower is None or args.upper is None:
        print("query yield requires --lower and --upper", file=sys.stderr)
        return 2
    lower = np.asarray([float(t) for t in args.lower.split(",")])
    upper = np.asarray([float(t) for t in args.upper.split(",")])
    value = service.query_many([("yield", args.session, (lower, upper))])[0]
    print(f"parametric yield of session {args.session!r}: {value:.6f}")
    return 0


def _cmd_scenarios_list(args) -> int:
    from repro.circuits.registry import circuit_names, get_circuit
    from repro.scenarios import (
        builtin_documents,
        expand,
        load_scenario_doc,
        topology_knobs,
    )

    if args.document is not None:
        doc = load_scenario_doc(_resolve_scenario_doc_path(args.document))
        instances = expand(doc)
        print(f"{doc.source}: schema {doc.schema}, library {doc.library}")
        for spec in doc.scenarios:
            n = sum(
                1
                for inst in instances
                if inst.name == spec.name or inst.name.startswith(f"{spec.name}@")
            )
            axes = (
                " x ".join(
                    f"{axis}[{len(spec.sweep[axis])}]" for axis in sorted(spec.sweep)
                )
                or "<point>"
            )
            print(f"  {spec.name:<24} {spec.circuit:<10} {axes:<28} {n} instance(s)")
        print(f"total: {len(instances)} instance(s)")
        return 0

    builtins = builtin_documents()
    print("bundled documents:")
    for name in builtins or ["  <none>"]:
        print(f"  {name}")
    print("registry circuits:")
    for name in circuit_names():
        entry = get_circuit(name)
        knobs = ", ".join(topology_knobs(name)) or "<reserved knobs only>"
        print(f"  {name:<10} {entry.summary}")
        print(f"  {'':<10} knobs: {knobs}")
    return 0


def _cmd_scenarios_expand(args) -> int:
    from repro.scenarios import expand, load_scenario_doc
    from repro.schemas import canonical_json

    doc = load_scenario_doc(_resolve_scenario_doc_path(args.document))
    instances = expand(doc)
    if args.json:
        for inst in instances:
            print(
                canonical_json(
                    {
                        "name": inst.name,
                        "circuit": inst.circuit,
                        "config_hash": inst.config_hash,
                        "n_samples": inst.n_samples,
                        "seed": inst.seed,
                        "knobs": {k: inst.knobs[k] for k in sorted(inst.knobs)},
                    }
                )
            )
    else:
        for inst in instances:
            print(
                f"{inst.config_hash[:12]} {inst.circuit:<10} "
                f"n={inst.n_samples:<6} {inst.name}"
            )
        print(f"{len(instances)} instance(s)", file=sys.stderr)
    return 0


def _cmd_scenarios_compile(args) -> int:
    from repro.scenarios import compile_all, expand, load_scenario_doc
    from repro.schemas import canonical_json

    doc = load_scenario_doc(_resolve_scenario_doc_path(args.document))
    instances = expand(doc)
    reports = compile_all(
        instances,
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        mna_backend=args.mna_backend,
    )
    hits = sum(1 for r in reports if r["cache_hit"])
    if args.json:
        for report in reports:
            print(canonical_json(report))
    else:
        for report in reports:
            mark = "cached" if report["cache_hit"] else "built"
            print(
                f"{report['config_hash'][:12]} {mark:<6} "
                f"{report['circuit']:<10} {report['name']}"
            )
    print(
        f"compiled {len(reports)} instance(s) from {doc.source}: "
        f"{hits} cache-served, {len(reports) - hits} built",
        file=sys.stderr,
    )
    return 0


def _cmd_scenarios(args) -> int:
    handlers = {
        "list": _cmd_scenarios_list,
        "expand": _cmd_scenarios_expand,
        "compile": _cmd_scenarios_compile,
    }
    return handlers[args.scenario_command](args)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.linalg_backend is not None:
        from repro.linalg import set_default_kernel_backend

        set_default_kernel_backend(args.linalg_backend)
    handlers = {
        "generate": _cmd_generate,
        "fuse": _cmd_fuse,
        "list-estimators": _cmd_list_estimators,
        "figure4": lambda a: _run_figure(a, "figure4"),
        "figure5": lambda a: _run_figure(a, "figure5"),
        "cost": _cmd_cost,
        "gof": _cmd_gof,
        "serve": _cmd_serve,
        "replay": _cmd_replay,
        "compact": _cmd_compact,
        "ingest": _cmd_ingest,
        "query": _cmd_query,
        "scenarios": _cmd_scenarios,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
