"""Command-line interface: ``python -m repro <command>``.

Gives non-Python users (and CI jobs) direct access to the reproduction
harness:

* ``generate`` — simulate a paired Monte-Carlo bank and save it as .npz;
* ``fuse`` — run the fusion pipeline on a saved bank with n late samples
  using any registered estimator (``--estimator``) and/or a declarative
  JSON config (``--config``), print the fused physical-space moments, and
  optionally save the full result (moments + provenance + transform);
* ``list-estimators`` — show every registry estimator name the ``fuse``
  command accepts, with capability metadata;
* ``figure4`` / ``figure5`` — regenerate a paper figure's series;
* ``cost`` — the cost-reduction headline for a circuit;
* ``gof`` — multivariate-normality diagnostics of a saved bank.

The CLI constructs no concrete estimator class itself — everything goes
through :mod:`repro.core.registry`, so a newly registered estimator is
immediately usable from here.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multivariate Bayesian model fusion for AMS moment estimation "
            "(DAC 2015 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="simulate a paired Monte-Carlo bank")
    gen.add_argument("circuit", choices=["opamp", "adc", "ota"])
    gen.add_argument("output", help="output .npz path")
    gen.add_argument("--samples", type=int, default=None, help="bank size")
    gen.add_argument("--seed", type=int, default=2015)

    fuse = sub.add_parser("fuse", help="fuse early knowledge with n late samples")
    fuse.add_argument("dataset", help=".npz bank from 'generate'")
    fuse.add_argument("--late-samples", type=int, default=16)
    fuse.add_argument("--seed", type=int, default=0)
    fuse.add_argument(
        "--save",
        default=None,
        help="write the full result JSON (physical moments + provenance + transform)",
    )
    fuse.add_argument(
        "--estimator",
        default=None,
        metavar="NAME",
        help="registry estimator to run (see 'list-estimators'); default: bmf",
    )
    fuse.add_argument(
        "--config",
        default=None,
        metavar="CFG.json",
        help="FusionConfig JSON file; CLI flags override its fields",
    )
    fuse.add_argument(
        "--selector",
        default=None,
        choices=["cv", "evidence", "fixed", "none"],
        help="hyper-parameter selection policy (default: cv)",
    )
    fuse.add_argument(
        "--kappa0", type=float, default=None, help="pin kappa0 (skip CV)"
    )
    fuse.add_argument("--v0", type=float, default=None, help="pin v0 (skip CV)")

    sub.add_parser(
        "list-estimators",
        help="list registry estimator names usable with 'fuse --estimator'",
    )

    for fig, circuit in (("figure4", "op-amp"), ("figure5", "flash ADC")):
        f = sub.add_parser(fig, help=f"regenerate paper {fig} ({circuit})")
        f.add_argument("--bank", type=int, default=None)
        f.add_argument("--repeats", type=int, default=30)
        f.add_argument("--csv", default=None, help="dump raw sweep errors to CSV")

    cost = sub.add_parser("cost", help="cost-reduction headline")
    cost.add_argument("circuit", choices=["opamp", "adc"])
    cost.add_argument("--bank", type=int, default=None)
    cost.add_argument("--repeats", type=int, default=30)

    gof = sub.add_parser("gof", help="normality diagnostics of a saved bank")
    gof.add_argument("dataset", help=".npz bank from 'generate'")
    gof.add_argument("--stage", choices=["early", "late"], default="late")

    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------
def _cmd_generate(args) -> int:
    from repro.circuits.montecarlo import generate_adc_dataset, generate_opamp_dataset
    from repro.io import save_dataset

    if args.circuit == "opamp":
        n = args.samples if args.samples is not None else 5000
        dataset = generate_opamp_dataset(n_samples=n, seed=args.seed)
    elif args.circuit == "ota":
        from repro.circuits.ota import generate_ota_dataset

        n = args.samples if args.samples is not None else 2000
        dataset = generate_ota_dataset(n_samples=n, seed=args.seed)
    else:
        n = args.samples if args.samples is not None else 1000
        dataset = generate_adc_dataset(n_samples=n, seed=args.seed)
    save_dataset(dataset, args.output)
    print(
        f"wrote {dataset.n_samples} paired {args.circuit} dies "
        f"({dataset.dim} metrics) to {args.output}"
    )
    return 0


def _resolve_fuse_config(args):
    """Merge the optional ``--config`` file with the overriding CLI flags."""
    from repro.core.registry import EstimatorSpec, FusionConfig
    from repro.io import load_config

    config = load_config(args.config) if args.config else FusionConfig()
    if args.estimator:
        config = config.replace(estimator=EstimatorSpec(args.estimator))
    if args.kappa0 is not None or args.v0 is not None:
        config = config.replace(
            selector="fixed", kappa0=args.kappa0, v0=args.v0
        )
    elif args.selector:
        config = config.replace(selector=args.selector)
    return config


def _cmd_fuse(args) -> int:
    from repro.core.pipeline import FusionPipeline
    from repro.io import load_dataset, save_result

    config = _resolve_fuse_config(args)
    dataset = load_dataset(args.dataset)
    rng = np.random.default_rng(args.seed)
    pipeline = FusionPipeline.fit(
        dataset.early,
        dataset.early_nominal,
        dataset.late_nominal,
        config=config,
    )
    subset = dataset.late_subset(args.late_samples, rng)
    result = pipeline.estimate(subset, rng=rng)
    prov = result.provenance
    parts = [f"estimator={prov.estimator}"]
    if prov.selector is not None:
        parts.append(f"selector={prov.selector}")
    if prov.kappa0 is not None:
        parts.append(f"kappa0={prov.kappa0:.4g}")
    if prov.v0 is not None:
        parts.append(f"v0={prov.v0:.4g}")
    parts.append(f"config={prov.config_hash}")
    print(f"fused {args.late_samples} late samples; " + ", ".join(parts))
    print(f"{'metric':<16} {'fused mean':>14} {'fused std':>14}")
    stds = np.sqrt(np.diag(result.covariance))
    for name, mean, std in zip(dataset.metric_names, result.mean, stds):
        print(f"{name:<16} {mean:>14.6g} {std:>14.6g}")
    if args.save:
        save_result(result, args.save)
        print(
            f"saved physical-space moments (plus isotropic estimate, provenance, "
            f"and shift/scale transform) to {args.save}"
        )
    return 0


def _cmd_list_estimators(args) -> int:
    from repro.core.registry import available_selectors, default_registry

    print(f"{'name':<20} {'prior':<6} {'hyper':<6} {'data':<13} summary")
    for entry in default_registry().entries():
        print(
            f"{entry.name:<20} "
            f"{'yes' if entry.requires_prior else 'no':<6} "
            f"{'yes' if entry.accepts_hyperparams else 'no':<6} "
            f"{entry.data_kind:<13} "
            f"{entry.summary}"
        )
    print(
        "\nselectors: "
        + ", ".join(available_selectors())
        + " (plus 'fixed' and 'none')"
    )
    return 0


def _run_figure(args, which: str) -> int:
    from repro.experiments.cost import cost_reduction
    from repro.experiments.figures import figure4_opamp, figure5_adc
    from repro.experiments.reporting import (
        format_cost_reduction,
        format_error_series,
        format_hyperparams,
    )

    if which == "figure4":
        bank = args.bank if args.bank is not None else 2000
        fig = figure4_opamp(n_bank=bank, n_repeats=args.repeats)
        title = "op-amp (paper Figure 4)"
    else:
        bank = args.bank if args.bank is not None else 800
        fig = figure5_adc(n_bank=bank, n_repeats=args.repeats)
        title = "flash ADC (paper Figure 5)"
    print(format_error_series(fig.sweep, "mean", f"{title} — mean error"))
    print()
    print(format_error_series(fig.sweep, "covariance", f"{title} — covariance error"))
    print()
    print(format_hyperparams(fig.sweep, f"{title} — selected hyper-parameters"))
    print()
    print(
        format_cost_reduction(
            cost_reduction(fig.sweep, "covariance"), f"{title} — covariance cost"
        )
    )
    if getattr(args, "csv", None):
        from repro.io import sweep_to_csv

        sweep_to_csv(fig.sweep, args.csv)
        print(f"\nraw sweep errors written to {args.csv}")
    return 0


def _cmd_cost(args) -> int:
    from repro.experiments.cost import cost_reduction
    from repro.experiments.figures import figure4_opamp, figure5_adc
    from repro.experiments.reporting import format_cost_reduction

    if args.circuit == "opamp":
        bank = args.bank if args.bank is not None else 2000
        fig = figure4_opamp(n_bank=bank, n_repeats=args.repeats)
    else:
        bank = args.bank if args.bank is not None else 800
        fig = figure5_adc(n_bank=bank, n_repeats=args.repeats)
    for metric in ("covariance", "mean"):
        print(
            format_cost_reduction(
                cost_reduction(fig.sweep, metric),
                f"{args.circuit} {metric} cost reduction",
            )
        )
        print()
    return 0


def _cmd_gof(args) -> int:
    from repro.io import load_dataset
    from repro.stats.gof import henze_zirkler, mardia_kurtosis, mardia_skewness

    dataset = load_dataset(args.dataset)
    samples = dataset.early if args.stage == "early" else dataset.late
    print(f"normality diagnostics on the {args.stage} stage ({samples.shape[0]} rows):")
    for test in (mardia_skewness, mardia_kurtosis, henze_zirkler):
        result = test(samples)
        verdict = "REJECT" if result.reject_normality else "accept"
        print(
            f"  {result.name:<18} stat {result.statistic:>10.3f}  "
            f"p {result.p_value:>8.4f}  -> {verdict} normality at {result.alpha}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "fuse": _cmd_fuse,
        "list-estimators": _cmd_list_estimators,
        "figure4": lambda a: _run_figure(a, "figure4"),
        "figure5": lambda a: _run_figure(a, "figure5"),
        "cost": _cmd_cost,
        "gof": _cmd_gof,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
