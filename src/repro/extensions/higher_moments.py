"""Higher-order moment extension (the paper's stated future work).

Sec. 1/6: "How to extend the proposed BMF method to other non-Gaussian
distributions will be further studied in our future researches (e.g., by
estimating and matching the high-order moments)."  This module provides a
concrete, conservative version of that idea:

* :func:`standardized_third_moment` / :func:`standardized_fourth_moment` —
  multivariate co-skewness/co-kurtosis tensors in standardized coordinates;
* :class:`HigherMomentFusion` — shrinkage fusion of late-stage higher
  moments towards the early-stage ones with a credibility weight selected
  by the same held-out-likelihood idea as the paper's CV, using a
  Gram-Charlier-corrected density as the scoring model;
* :meth:`HigherMomentFusion.corrected_pdf` — the Gram-Charlier A-series
  density correction built from the fused moments, usable for non-Gaussian
  yield integration by Monte-Carlo re-weighting.

This stays deliberately first-order: tensors are fused with a scalar
convex weight (the conjugate theory for third/fourth moments has no
closed form), which is exactly the "estimate and match" recipe the paper
sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DimensionError, InsufficientDataError
from repro.linalg.validation import as_samples, cholesky_safe
from repro.stats.moments import mle_covariance, sample_mean

__all__ = [
    "standardized_third_moment",
    "standardized_fourth_moment",
    "HigherMomentFusion",
]


def _whiten(samples: np.ndarray) -> np.ndarray:
    """Standardize samples with their own mean and covariance Cholesky."""
    from scipy.linalg import solve_triangular

    data = as_samples(samples)
    n, d = data.shape
    if n < d + 2:
        raise InsufficientDataError(
            f"need at least d + 2 = {d + 2} samples to whiten, got {n}"
        )
    centered = data - sample_mean(data)
    chol = cholesky_safe(mle_covariance(data))
    return solve_triangular(chol, centered.T, lower=True).T


def standardized_third_moment(samples) -> np.ndarray:
    """Co-skewness tensor ``E[z_i z_j z_k]`` of whitened samples, shape (d, d, d)."""
    z = _whiten(samples)
    return np.einsum("ni,nj,nk->ijk", z, z, z) / z.shape[0]


def standardized_fourth_moment(samples) -> np.ndarray:
    """Co-kurtosis tensor ``E[z_i z_j z_k z_l]``, shape (d, d, d, d)."""
    z = _whiten(samples)
    return np.einsum("ni,nj,nk,nl->ijkl", z, z, z, z) / z.shape[0]


@dataclass(frozen=True)
class FusedHigherMoments:
    """Fused standardized third/fourth moment tensors plus the weight used."""

    third: np.ndarray
    fourth: np.ndarray
    weight_on_prior: float


class HigherMomentFusion:
    """Shrink late-stage higher moments towards early-stage ones.

    Parameters
    ----------
    early_samples:
        Abundant early-stage samples fixing the prior tensors.
    weights:
        Candidate prior weights searched by hold-out scoring; ``None``
        uses a default grid spanning "ignore prior" to "trust prior".
    """

    def __init__(self, early_samples, weights: Optional[Tuple[float, ...]] = None) -> None:
        self.prior_third = standardized_third_moment(early_samples)
        self.prior_fourth = standardized_fourth_moment(early_samples)
        self.weights = (
            tuple(weights) if weights is not None else (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)
        )
        if any(not 0.0 <= w <= 1.0 for w in self.weights):
            raise DimensionError("all candidate weights must lie in [0, 1]")

    # ------------------------------------------------------------------
    def fuse(
        self, late_samples, rng: Optional[np.random.Generator] = None
    ) -> FusedHigherMoments:
        """Select the prior weight by 2-fold hold-out and fuse the tensors.

        Scoring uses the Gram-Charlier corrected log density of the held
        out half under the fused tensors of the training half.
        """
        data = as_samples(late_samples)
        n = data.shape[0]
        if n < 6:
            raise InsufficientDataError("higher-moment fusion needs at least 6 samples")
        gen = rng if rng is not None else np.random.default_rng()
        perm = gen.permutation(n)
        half = n // 2
        folds = (
            (perm[:half], perm[half:]),
            (perm[half:], perm[:half]),
        )

        best_w, best_score = self.weights[0], -np.inf
        for w in self.weights:
            score = 0.0
            for train_idx, test_idx in folds:
                fused = self._fuse_with_weight(data[train_idx], w)
                score += self._gram_charlier_score(data[test_idx], fused)
            if score > best_score:
                best_w, best_score = w, score
        return self._fuse_with_weight(data, best_w)

    def _fuse_with_weight(self, data: np.ndarray, w: float) -> FusedHigherMoments:
        third = standardized_third_moment(data)
        fourth = standardized_fourth_moment(data)
        return FusedHigherMoments(
            third=w * self.prior_third + (1.0 - w) * third,
            fourth=w * self.prior_fourth + (1.0 - w) * fourth,
            weight_on_prior=w,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _gram_charlier_score(test: np.ndarray, fused: FusedHigherMoments) -> float:
        """Average corrected log density of held-out samples.

        Uses the diagonal Gram-Charlier A correction per dimension (the
        full tensor correction is unstable at these sample sizes); the
        correction factor is clipped below at 0.1 to keep the log finite.
        """
        z = _whiten(test)
        d = z.shape[1]
        base = -0.5 * np.sum(z * z, axis=1) - 0.5 * d * np.log(2.0 * np.pi)
        corr = np.ones(z.shape[0])
        for j in range(d):
            skew = fused.third[j, j, j]
            exkurt = fused.fourth[j, j, j, j] - 3.0
            h3 = z[:, j] ** 3 - 3.0 * z[:, j]
            h4 = z[:, j] ** 4 - 6.0 * z[:, j] ** 2 + 3.0
            corr *= 1.0 + skew / 6.0 * h3 + exkurt / 24.0 * h4
        corr = np.clip(corr, 0.1, None)
        return float(np.mean(base + np.log(corr)))

    # ------------------------------------------------------------------
    def corrected_pdf(self, fused: FusedHigherMoments, mean, covariance):
        """A callable Gram-Charlier-corrected density for the fused moments.

        Returns ``pdf(x)`` operating on ``(n, d)`` arrays: the Gaussian
        density from ``(mean, covariance)`` times the (clipped) diagonal
        A-series correction implied by ``fused``.
        """
        from repro.stats.multivariate_gaussian import MultivariateGaussian
        from scipy.linalg import solve_triangular

        gaussian = MultivariateGaussian(mean, covariance)
        chol = gaussian.cholesky

        def pdf(x):
            data = as_samples(x)
            z = solve_triangular(chol, (data - gaussian.mean).T, lower=True).T
            corr = np.ones(data.shape[0])
            for j in range(gaussian.dim):
                skew = fused.third[j, j, j]
                exkurt = fused.fourth[j, j, j, j] - 3.0
                h3 = z[:, j] ** 3 - 3.0 * z[:, j]
                h4 = z[:, j] ** 4 - 6.0 * z[:, j] ** 2 + 3.0
                corr *= 1.0 + skew / 6.0 * h3 + exkurt / 24.0 * h4
            return gaussian.pdf(data) * np.clip(corr, 0.0, None)

        return pdf
