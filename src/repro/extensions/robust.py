"""Robustified BMF: outlier-resistant fusion for contaminated late-stage data.

Silicon measurements occasionally contain gross outliers (probe-contact
faults, mis-binned dies).  The Gaussian likelihood of Eq. (9) is highly
sensitive to them, and with only ~10 late-stage samples a single bad die
can dominate the scatter matrix ``S`` of Eq. (26).

:class:`RobustBMFEstimator` screens the late-stage samples with a
Mahalanobis gate measured against the *early-stage* prior distribution —
the one distribution we can trust before seeing late data — then runs the
standard BMF flow on the surviving rows.  With no outliers it converges to
the plain estimator (the gate keeps everything), which the tests verify.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import stats as sps

from repro.core.bmf import BMFEstimator
from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.core.hypergrid import HyperParameterGrid
from repro.core.prior import PriorKnowledge
from repro.exceptions import InsufficientDataError
from repro.stats.multivariate_gaussian import MultivariateGaussian

__all__ = ["RobustBMFEstimator", "mahalanobis_gate"]


def mahalanobis_gate(
    prior: PriorKnowledge, samples, quantile: float = 0.999, inflate: float = 4.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Split samples into (kept, rejected) by prior Mahalanobis distance.

    The gate radius is the chi-square ``quantile`` of dimension ``d``
    applied to the prior covariance inflated by ``inflate`` — generous on
    purpose: the late-stage distribution is *similar* to the prior, not
    equal, and false rejections are costlier than false keeps when samples
    are scarce.
    """
    if not 0.5 < quantile < 1.0:
        raise ValueError(f"quantile must lie in (0.5, 1), got {quantile}")
    if inflate <= 0.0:
        raise ValueError(f"inflate must be > 0, got {inflate}")
    data = np.atleast_2d(np.asarray(samples, dtype=float))
    gaussian = MultivariateGaussian(prior.mean, prior.covariance * inflate)
    maha = gaussian.mahalanobis_sq(data)
    radius = float(sps.chi2.ppf(quantile, prior.dim))
    keep = maha <= radius
    return data[keep], data[~keep]


class RobustBMFEstimator(MomentEstimator):
    """BMF with a prior-based outlier gate in front (ablation/extension).

    Parameters mirror :class:`~repro.core.bmf.BMFEstimator` — including
    optional pinned ``(kappa0, v0)``, which the pipeline's selection stage
    uses — plus extra knobs controlling the gate.  ``min_kept`` guards
    against the gate eating so many samples that the fusion becomes
    prior-only — if fewer survive, the gate is bypassed entirely and a
    plain BMF estimate is returned.
    """

    name = "robust_bmf"

    def __init__(
        self,
        prior: PriorKnowledge,
        quantile: float = 0.999,
        inflate: float = 4.0,
        min_kept: int = 4,
        grid: Optional[HyperParameterGrid] = None,
        n_folds: int = 4,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> None:
        self.prior = prior
        self.quantile = float(quantile)
        self.inflate = float(inflate)
        if min_kept < 2:
            raise InsufficientDataError(f"min_kept must be >= 2, got {min_kept}")
        self.min_kept = int(min_kept)
        self.grid = grid
        self.n_folds = n_folds
        self.kappa0 = None if kappa0 is None else float(kappa0)
        self.v0 = None if v0 is None else float(v0)
        #: Number of rows rejected by the gate in the last estimate call.
        self.last_rejected: int = 0

    def estimate(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """Gate the samples, then run the standard BMF flow on survivors."""
        data = self._check(samples)
        kept, rejected = mahalanobis_gate(
            self.prior, data, self.quantile, self.inflate
        )
        if kept.shape[0] < self.min_kept:
            kept, rejected = data, data[:0]
        self.last_rejected = int(rejected.shape[0])
        inner = BMFEstimator(
            self.prior,
            kappa0=self.kappa0,
            v0=self.v0,
            grid=self.grid,
            n_folds=self.n_folds,
        )
        estimate = inner.estimate(kept, rng=rng)
        info = dict(estimate.info)
        info["rejected"] = self.last_rejected
        return MomentEstimate(
            mean=estimate.mean,
            covariance=estimate.covariance,
            n_samples=data.shape[0],
            method=self.name,
            info=info,
        )
