"""Extensions beyond the paper: non-Gaussian moments, streaming, robustness."""

from repro.extensions.higher_moments import (
    FusedHigherMoments,
    HigherMomentFusion,
    standardized_fourth_moment,
    standardized_third_moment,
)
from repro.extensions.robust import RobustBMFEstimator, mahalanobis_gate
from repro.extensions.sequential import (
    SequentialBMF,
    SequentialBMFEstimator,
    SequentialState,
)

__all__ = [
    "FusedHigherMoments",
    "HigherMomentFusion",
    "RobustBMFEstimator",
    "SequentialBMF",
    "SequentialBMFEstimator",
    "SequentialState",
    "mahalanobis_gate",
    "standardized_fourth_moment",
    "standardized_third_moment",
]
