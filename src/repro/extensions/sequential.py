"""Sequential (streaming) Bayesian moment fusion.

Post-silicon validation collects measurements die by die; waiting for the
full batch before fusing wastes information.  Because the normal-Wishart
posterior touches the data only through the additive sufficient
statistics ``(n, Xbar, S)``, updates can be applied incrementally with
O(d^2) state.

:class:`SequentialBMF` is a thin consumer of
:class:`repro.stats.suffstats.SufficientStats` — the same accumulator
the serving layer (:mod:`repro.serving`) builds sessions on — and
computes the running MAP estimate after every observed sample via
:func:`repro.core.bmf.map_moments_from_stats`.  Because the batch
estimator funnels through that exact arithmetic, streaming matches the
one-shot result to floating-point rounding, which the tests verify.  It
also offers a simple stopping rule: stop measuring once the estimate
movement falls below a tolerance for ``patience`` consecutive dies.

(The previous revision chained full normal-Wishart posterior objects,
inverting two ``(d, d)`` matrices per die; the accumulator path is both
cheaper — no inversions until an estimate is asked for — and shares one
code path with the batch estimator instead of a parallel recursion.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.bmf import map_moments_from_stats
from repro.core.estimators import MomentEstimate, MomentEstimator
from repro.core.prior import PriorKnowledge
from repro.exceptions import DimensionError, HyperParameterError
from repro.linalg.norms import frobenius_norm, vector_2norm
from repro.stats.suffstats import SufficientStats

__all__ = ["SequentialBMF", "SequentialBMFEstimator", "SequentialState"]


@dataclass(frozen=True)
class SequentialState:
    """Running MAP estimate after ``n_observed`` samples."""

    n_observed: int
    mean: np.ndarray
    covariance: np.ndarray
    mean_step: float
    cov_step: float


class SequentialBMF:
    """Incremental BMF with fixed hyper-parameters.

    Parameters
    ----------
    prior:
        Early-stage knowledge.
    kappa0, v0:
        Hyper-parameters; sequential mode keeps them fixed (re-running the
        CV after every die would defeat the streaming purpose — re-select
        periodically from the accumulated batch if needed).
    """

    def __init__(self, prior: PriorKnowledge, kappa0: float, v0: float) -> None:
        if kappa0 <= 0.0:
            raise HyperParameterError(f"kappa0 must be > 0, got {kappa0}")
        if v0 <= prior.dim:
            raise HyperParameterError(f"v0 must exceed d = {prior.dim}, got {v0}")
        self.prior = prior
        self.kappa0 = float(kappa0)
        self.v0 = float(v0)
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all observed samples and restart from the prior."""
        self._stats: SufficientStats = SufficientStats.empty(self.prior.dim)
        self._last_mean: Optional[np.ndarray] = None
        self._last_cov: Optional[np.ndarray] = None
        self.history: List[SequentialState] = []

    @property
    def n_observed(self) -> int:
        """Number of samples folded in so far."""
        return self._stats.n

    @property
    def stats(self) -> SufficientStats:
        """The live accumulator (shared representation with `repro.serving`)."""
        return self._stats

    # ------------------------------------------------------------------
    def _map_moments(self):
        return map_moments_from_stats(
            self.prior, self._stats, self.kappa0, self.v0
        )

    def observe(self, x) -> SequentialState:
        """Fold in one die's metric vector and return the updated state."""
        row = np.atleast_1d(np.asarray(x, dtype=float))
        if row.ndim != 1 or row.shape[0] != self.prior.dim:
            raise DimensionError(
                f"observation must be a length-{self.prior.dim} vector"
            )
        self._stats.push(row)
        mean, cov = self._map_moments()
        if self._last_mean is None:
            mean_step = float("inf")
            cov_step = float("inf")
        else:
            mean_step = vector_2norm(mean - self._last_mean)
            cov_step = frobenius_norm(cov - self._last_cov)
        self._last_mean = mean
        self._last_cov = cov
        state = SequentialState(
            n_observed=self._stats.n,
            mean=mean,
            covariance=cov,
            mean_step=mean_step,
            cov_step=cov_step,
        )
        self.history.append(state)
        return state

    def observe_batch(self, samples) -> SequentialState:
        """Fold in several rows one by one; returns the final state."""
        data = np.atleast_2d(np.asarray(samples, dtype=float))
        if data.shape[0] == 0:
            raise DimensionError("batch must contain at least one row")
        state = None
        for row in data:
            state = self.observe(row)
        return state

    # ------------------------------------------------------------------
    def current_estimate(self) -> SequentialState:
        """The latest state (prior mode if nothing observed yet)."""
        if self.history:
            return self.history[-1]
        mean, cov = self._map_moments()
        return SequentialState(
            n_observed=0,
            mean=mean,
            covariance=cov,
            mean_step=float("inf"),
            cov_step=float("inf"),
        )

    def as_estimate(self) -> MomentEstimate:
        """The current running MAP state as a :class:`MomentEstimate`."""
        state = self.current_estimate()
        return MomentEstimate(
            mean=state.mean,
            covariance=state.covariance,
            n_samples=state.n_observed,
            method="sequential_bmf",
            info={"kappa0": self.kappa0, "v0": self.v0},
        )

    def converged(
        self, mean_tol: float = 1e-3, cov_tol: float = 1e-3, patience: int = 3
    ) -> bool:
        """Stopping rule: last ``patience`` steps all moved less than tol.

        A pragmatic measurement-budget cutoff for the post-silicon lab:
        stop paying for bench time once extra dies stop moving the fused
        moments.
        """
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if len(self.history) < patience + 1:
            return False
        recent = self.history[-patience:]
        return all(
            s.mean_step <= mean_tol and s.cov_step <= cov_tol for s in recent
        )


class SequentialBMFEstimator(MomentEstimator):
    """Batch adapter: streaming fusion's final state as a `MomentEstimate`.

    Conforms :class:`SequentialBMF` to the common estimator protocol so the
    streaming path participates in the registry, pipeline, and sweeps.  By
    conjugacy the result equals the batch
    :func:`repro.core.bmf.map_moments` at the same ``(kappa0, v0)`` — the
    equivalence the sequential tests verify — so registering it mostly
    buys the sweeps a cross-check, and users an estimator whose state they
    can keep feeding afterwards (see :attr:`last_run`).

    ``kappa0``/``v0`` default to the weakly-informative corner
    ``(1, d + 1)`` when not supplied (streaming mode cannot re-run CV per
    die; the pipeline's selection stage pins better values when used
    through a config).
    """

    name = "sequential_bmf"

    def __init__(
        self,
        prior: PriorKnowledge,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
    ) -> None:
        self.prior = prior
        self.kappa0 = float(kappa0) if kappa0 is not None else 1.0
        self.v0 = float(v0) if v0 is not None else float(prior.dim) + 1.0
        #: The :class:`SequentialBMF` instance of the last estimate call.
        self.last_run: Optional[SequentialBMF] = None

    def estimate(
        self, samples, rng: Optional[np.random.Generator] = None
    ) -> MomentEstimate:
        """Stream all rows through the conjugate recursion; return the end state."""
        data = self._check(samples)
        seq = SequentialBMF(self.prior, self.kappa0, self.v0)
        seq.observe_batch(data)
        self.last_run = seq
        return seq.as_estimate()
