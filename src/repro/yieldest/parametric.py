"""Parametric yield from estimated multivariate moments.

Given the fused late-stage Gaussian ``N(mu, Sigma)`` and an axis-aligned
spec box, the parametric yield is the multivariate normal box probability

    Y = P( lower <= X <= upper ),  X ~ N(mu, Sigma).

Two evaluation paths are provided:

* :func:`gaussian_box_probability` — scipy's Genz quasi-Monte-Carlo
  ``mvn`` integrator (`scipy.stats.multivariate_normal.cdf` machinery),
  accurate to ~1e-4 for the d=5 problems here;
* :class:`YieldEstimator` — the user-facing object tying an estimate (from
  MLE or BMF) to a spec set, with Monte-Carlo confirmation and per-spec
  marginal yields for debugging which metric limits the total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import stats as sps

from repro.core.estimators import MomentEstimate
from repro.exceptions import DimensionError
from repro.stats.multivariate_gaussian import MultivariateGaussian
from repro.yieldest.specs import SpecificationSet

__all__ = [
    "gaussian_box_probability",
    "gaussian_box_probabilities",
    "YieldReport",
    "YieldEstimator",
]


def gaussian_box_probability(mean, covariance, lower, upper) -> float:
    """``P(lower <= X <= upper)`` for ``X ~ N(mean, covariance)``.

    Uses scipy's Genz quasi-Monte-Carlo integrator via the frozen
    ``multivariate_normal.cdf`` with ``lower_limit``; infinite bounds are
    supported.  The result is clipped to ``[0, 1]`` to absorb integrator
    jitter.
    """
    mean_arr = np.atleast_1d(np.asarray(mean, dtype=float))
    lower_arr = np.broadcast_to(np.asarray(lower, dtype=float), mean_arr.shape).copy()
    upper_arr = np.broadcast_to(np.asarray(upper, dtype=float), mean_arr.shape).copy()
    if np.any(lower_arr >= upper_arr):
        raise DimensionError("every lower bound must be below its upper bound")
    cov_arr = np.asarray(covariance, dtype=float)
    # Standardize per dimension: AMS metrics span many orders of magnitude
    # (gain ~1e4, power ~1e-4), making the raw covariance numerically
    # indefinite for scipy's PSD check.  Box probabilities are invariant
    # under diagonal scaling, so integrate in the standardized space.
    stds = np.sqrt(np.diag(cov_arr))
    if np.any(stds <= 0.0):
        raise DimensionError("covariance has non-positive diagonal entries")
    inv = 1.0 / stds
    cov_std = cov_arr * np.outer(inv, inv)
    lower_arr = (lower_arr - mean_arr) * inv
    upper_arr = (upper_arr - mean_arr) * inv
    mean_arr = np.zeros_like(mean_arr)
    dist = sps.multivariate_normal(mean=mean_arr, cov=cov_std, allow_singular=True)
    if _cdf_supports_lower_limit():
        prob = float(dist.cdf(upper_arr, lower_limit=lower_arr))
    else:  # pragma: no cover - legacy scipy path
        prob = float(_mvnun(lower_arr, upper_arr, mean_arr, cov_std))
    return min(max(prob, 0.0), 1.0)


def gaussian_box_probabilities(means, covariances, lower, upper) -> np.ndarray:
    """Box probabilities for a whole bank of Gaussians at once.

    ``means`` is ``(k, d)`` and ``covariances`` ``(k, d, d)``; the shared
    spec box is broadcast across the bank.  The per-dimension
    standardization of :func:`gaussian_box_probability` is vectorized over
    all ``k`` members; only the Genz integrator itself (which scipy exposes
    one distribution at a time) runs per member.  Each entry equals the
    scalar function evaluated on the corresponding ``(mean, covariance)``.
    """
    means_arr = np.atleast_2d(np.asarray(means, dtype=float))
    covs = np.asarray(covariances, dtype=float)
    n, d = means_arr.shape
    if covs.shape != (n, d, d):
        raise DimensionError(
            f"covariances shape {covs.shape} does not match means shape {means_arr.shape}"
        )
    lower_arr = np.broadcast_to(np.asarray(lower, dtype=float), (d,))
    upper_arr = np.broadcast_to(np.asarray(upper, dtype=float), (d,))
    if np.any(lower_arr >= upper_arr):
        raise DimensionError("every lower bound must be below its upper bound")
    variances = np.diagonal(covs, axis1=1, axis2=2)
    if np.any(variances <= 0.0):
        raise DimensionError("covariance has non-positive diagonal entries")
    inv = 1.0 / np.sqrt(variances)
    # Mirror the scalar expression order (cov * outer(inv, inv)) so each
    # member reproduces gaussian_box_probability bit-for-bit.
    cov_std = covs * (inv[:, :, None] * inv[:, None, :])
    lower_std = (lower_arr - means_arr) * inv
    upper_std = (upper_arr - means_arr) * inv
    zero_mean = np.zeros(d)
    has_lower_limit = _cdf_supports_lower_limit()
    probs = np.empty(n)
    for k in range(n):
        dist = sps.multivariate_normal(
            mean=zero_mean, cov=cov_std[k], allow_singular=True
        )
        if has_lower_limit:
            prob = float(dist.cdf(upper_std[k], lower_limit=lower_std[k]))
        else:  # pragma: no cover - legacy scipy path
            prob = float(_mvnun(lower_std[k], upper_std[k], zero_mean, cov_std[k]))
        probs[k] = min(max(prob, 0.0), 1.0)
    return probs


def _cdf_supports_lower_limit() -> bool:
    import inspect

    try:
        sig = inspect.signature(sps.multivariate_normal.cdf)
    except (TypeError, ValueError):  # pragma: no cover - old scipy
        return False
    return "lower_limit" in sig.parameters


def _mvnun(lower, upper, mean, cov):  # pragma: no cover - legacy scipy path
    from scipy.stats import mvn

    value, _info = mvn.mvnun(lower, upper, mean, cov)
    return value


@dataclass(frozen=True)
class YieldReport:
    """Parametric yield plus per-metric marginal yields."""

    total_yield: float
    marginal_yields: Dict[str, float]
    method: str

    def limiting_metric(self) -> str:
        """The metric with the lowest marginal yield."""
        return min(self.marginal_yields, key=self.marginal_yields.get)


class YieldEstimator:
    """Parametric yield evaluation for a fused moment estimate.

    Parameters
    ----------
    specs:
        The acceptance box; its column order must match the estimate's
        metric order.
    """

    def __init__(self, specs: SpecificationSet) -> None:
        self.specs = specs

    # ------------------------------------------------------------------
    def from_estimate(self, estimate: MomentEstimate) -> YieldReport:
        """Yield implied by a :class:`MomentEstimate` (plug-in Gaussian)."""
        return self.from_moments(estimate.mean, estimate.covariance, estimate.method)

    def from_moments(self, mean, covariance, method: str = "moments") -> YieldReport:
        """Yield from explicit mean/covariance."""
        mean_arr = np.atleast_1d(np.asarray(mean, dtype=float))
        if mean_arr.shape[0] != self.specs.dim:
            raise DimensionError(
                f"estimate has {mean_arr.shape[0]} metrics, specs expect {self.specs.dim}"
            )
        cov_arr = np.asarray(covariance, dtype=float)
        total = gaussian_box_probability(
            mean_arr, cov_arr, self.specs.lower_bounds, self.specs.upper_bounds
        )
        marginals: Dict[str, float] = {}
        for j, spec in enumerate(self.specs.specs):
            sigma_j = float(np.sqrt(cov_arr[j, j]))
            marg = sps.norm.cdf(spec.upper, mean_arr[j], sigma_j) - sps.norm.cdf(
                spec.lower, mean_arr[j], sigma_j
            )
            marginals[spec.name] = float(min(max(marg, 0.0), 1.0))
        return YieldReport(total_yield=total, marginal_yields=marginals, method=method)

    # ------------------------------------------------------------------
    def monte_carlo(
        self,
        mean,
        covariance,
        n_samples: int = 100_000,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Monte-Carlo confirmation of the box probability.

        Slower than the Genz integrator but assumption-free; used by the
        tests to validate :func:`gaussian_box_probability`.
        """
        gaussian = MultivariateGaussian(mean, covariance)
        samples = gaussian.sample(n_samples, rng)
        return self.specs.empirical_yield(samples)
