"""Predictive yield: integrating specs under the posterior predictive.

The plug-in approach (:mod:`repro.yieldest.parametric`) treats the MAP
moments as exact.  At the paper's operating point — a dozen late samples —
the posterior over ``(mu, Sigma)`` is still wide, and the honest answer to
"what fraction of future dies passes?" integrates over it:

    Y_pred = P( lower <= X <= upper ),   X ~ posterior predictive,

where the predictive of a normal-Wishart posterior is multivariate
Student-t (:class:`repro.stats.student_t.MultivariateT`).  Heavier-than-
Gaussian tails at small n give systematically more conservative yields —
the predictive "knows" the moments are uncertain.

Also provided: a posterior *distribution over the yield itself* by Monte
Carlo over posterior ``(mu, Sigma)`` draws, giving credible intervals on Y.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import HyperParameterError
from repro.linalg.batched import inv_spd_batched
from repro.stats.normal_wishart import NormalWishart
from repro.stats.student_t import MultivariateT
from repro.yieldest.parametric import (
    gaussian_box_probabilities,
    gaussian_box_probability,
)
from repro.yieldest.specs import SpecificationSet

__all__ = ["PredictiveYield", "predictive_yield", "yield_posterior"]


@dataclass(frozen=True)
class PredictiveYield:
    """Predictive yield plus a credible interval over the plug-in yield."""

    predictive: float
    plug_in: float
    interval: Tuple[float, float]
    level: float


def predictive_yield(
    posterior: NormalWishart,
    specs: SpecificationSet,
    n_samples: int = 50_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Spec-box probability under the Student-t posterior predictive.

    Monte-Carlo integration (the Student-t box probability has no Genz
    integrator in scipy); ``n_samples`` controls the ~1/sqrt(n) error.
    """
    predictive = MultivariateT.from_normal_wishart_predictive(posterior)
    if predictive.dim != specs.dim:
        raise HyperParameterError(
            f"posterior dim {predictive.dim} does not match specs dim {specs.dim}"
        )
    draws = predictive.sample(n_samples, rng)
    return specs.empirical_yield(draws)


def yield_posterior(
    posterior: NormalWishart,
    specs: SpecificationSet,
    n_parameter_draws: int = 200,
    level: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> PredictiveYield:
    """Posterior distribution over the parametric yield.

    Draws ``(mu, Lambda)`` pairs from the posterior, evaluates the Gaussian
    box probability for each, and summarises: the spread of these yields IS
    the parameter-uncertainty-induced yield uncertainty.
    """
    if not 0.0 < level < 1.0:
        raise HyperParameterError(f"level must lie in (0, 1), got {level}")
    gen = rng if rng is not None else np.random.default_rng()
    mus, lams = posterior.sample(n_parameter_draws, gen)
    lower, upper = specs.lower_bounds, specs.upper_bounds
    # All precision matrices invert in one batched LAPACK call and all box
    # standardizations vectorize; only the Genz integrator runs per draw.
    sigmas = inv_spd_batched(lams, "lams")
    yields = gaussian_box_probabilities(mus, sigmas, lower, upper)
    tail = (1.0 - level) / 2.0
    map_est = posterior.map_estimate()
    plug_in = gaussian_box_probability(
        map_est.mean, map_est.covariance, lower, upper
    )
    return PredictiveYield(
        predictive=predictive_yield(posterior, specs, rng=gen),
        plug_in=plug_in,
        interval=(
            float(np.quantile(yields, tail)),
            float(np.quantile(yields, 1.0 - tail)),
        ),
        level=level,
    )
