"""Parametric yield estimation from fused multivariate moments."""

from repro.yieldest.parametric import (
    YieldEstimator,
    YieldReport,
    gaussian_box_probability,
)
from repro.yieldest.predictive import (
    PredictiveYield,
    predictive_yield,
    yield_posterior,
)
from repro.yieldest.specs import Specification, SpecificationSet

__all__ = [
    "PredictiveYield",
    "Specification",
    "SpecificationSet",
    "YieldEstimator",
    "YieldReport",
    "gaussian_box_probability",
    "predictive_yield",
    "yield_posterior",
]
