"""Performance specifications: the pass/fail boxes that define parametric yield.

The paper motivates multivariate moment estimation with yield: "the
parametric yield value of an AMS circuit is often defined by multiple
correlated performance metrics" (Sec. 1).  A :class:`Specification` is one
metric's acceptance interval; a :class:`SpecificationSet` is the full
(axis-aligned) acceptance region whose probability under the fused Gaussian
is the parametric yield.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SpecificationError

__all__ = ["Specification", "SpecificationSet"]


@dataclass(frozen=True)
class Specification:
    """Acceptance interval for one performance metric.

    At least one bound must be finite.  ``lower <= x <= upper`` passes.
    """

    name: str
    lower: float = -math.inf
    upper: float = math.inf

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("specification name must be non-empty")
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise SpecificationError(f"{self.name}: bounds must not be NaN")
        if self.lower >= self.upper:
            raise SpecificationError(
                f"{self.name}: lower bound {self.lower} must be below upper {self.upper}"
            )
        if math.isinf(self.lower) and math.isinf(self.upper):
            raise SpecificationError(f"{self.name}: at least one bound must be finite")

    def passes(self, values) -> np.ndarray:
        """Element-wise pass/fail of metric values."""
        arr = np.asarray(values, dtype=float)
        return (arr >= self.lower) & (arr <= self.upper)

    @classmethod
    def minimum(cls, name: str, bound: float) -> "Specification":
        """Spec of the form ``x >= bound`` (e.g. gain, SNR)."""
        return cls(name=name, lower=bound)

    @classmethod
    def maximum(cls, name: str, bound: float) -> "Specification":
        """Spec of the form ``x <= bound`` (e.g. power, offset magnitude)."""
        return cls(name=name, upper=bound)

    @classmethod
    def window(cls, name: str, lower: float, upper: float) -> "Specification":
        """Two-sided spec ``lower <= x <= upper``."""
        return cls(name=name, lower=lower, upper=upper)


@dataclass(frozen=True)
class SpecificationSet:
    """An ordered set of specs matching a metric vector's columns."""

    specs: Tuple[Specification, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise SpecificationError("specification set must be non-empty")
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate spec names: {names}")
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def from_dict(
        cls, bounds: Dict[str, Tuple[float, float]], order: Optional[Sequence[str]] = None
    ) -> "SpecificationSet":
        """Build from ``{name: (lower, upper)}``; ``order`` fixes columns."""
        names = list(order) if order is not None else list(bounds)
        missing = [n for n in names if n not in bounds]
        if missing:
            raise SpecificationError(f"bounds missing for metrics: {missing}")
        return cls(
            tuple(Specification(n, bounds[n][0], bounds[n][1]) for n in names)
        )

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of constrained metrics."""
        return len(self.specs)

    @property
    def names(self) -> Tuple[str, ...]:
        """Metric names in column order."""
        return tuple(s.name for s in self.specs)

    @property
    def lower_bounds(self) -> np.ndarray:
        """Vector of lower bounds (−inf where one-sided)."""
        return np.array([s.lower for s in self.specs])

    @property
    def upper_bounds(self) -> np.ndarray:
        """Vector of upper bounds (+inf where one-sided)."""
        return np.array([s.upper for s in self.specs])

    def passes(self, samples) -> np.ndarray:
        """Row-wise joint pass/fail of an ``(n, d)`` metric matrix."""
        arr = np.asarray(samples, dtype=float)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.shape[1] != self.dim:
            raise SpecificationError(
                f"samples have {arr.shape[1]} metrics, specs expect {self.dim}"
            )
        ok = np.ones(arr.shape[0], dtype=bool)
        for j, spec in enumerate(self.specs):
            ok &= spec.passes(arr[:, j])
        return ok

    def empirical_yield(self, samples) -> float:
        """Fraction of rows passing every spec."""
        return float(np.mean(self.passes(samples)))
