"""Serving-facing fan-out: compiled scenarios as ingest streams.

The serving layer thinks in *sessions* — a key, a prior anchored on
early-stage moments, and batches of late-stage samples.  A compiled
scenario fleet is exactly that shape: every instance yields one session
whose prior comes from its early bank and whose ingest blocks come from
its late bank.  :func:`scenario_streams` performs that projection and
:func:`wire_requests` renders it as protocol request lines (one
canonical-JSON object per line) ready to pipe into ``repro serve``.

This module sits *below* :mod:`repro.serving` in the layer order, so it
never imports the serving package: callers inject the sample encoder
(e.g. ``repro.serving.encode_array``) and plain ``tolist`` encoding is
the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.prior import PriorKnowledge
from repro.exceptions import ConfigError
from repro.scenarios.compiler import ScenarioInstance, compile_instance
from repro.schemas import canonical_json

__all__ = ["ScenarioStream", "scenario_streams", "wire_requests"]

#: How many hex digits of the config hash go into a stream key — enough
#: to separate any realistic fleet while keeping keys log-friendly.
_KEY_HASH_DIGITS = 12


@dataclass(frozen=True)
class ScenarioStream:
    """One serving session derived from a compiled scenario instance.

    Attributes
    ----------
    key:
        Session key ``{instance-name}#{config-hash-prefix}`` — stable
        across runs, distinct across config changes.
    instance:
        The source :class:`ScenarioInstance`.
    metric_names:
        Metric labels of the stream's sample columns.
    prior:
        Early-bank moments for session creation.
    blocks:
        Late-bank ingest batches, in order.
    """

    key: str
    instance: ScenarioInstance
    metric_names: Tuple[str, ...]
    prior: PriorKnowledge
    blocks: Tuple[np.ndarray, ...]


def _split_blocks(late: np.ndarray, block_rows: int) -> Tuple[np.ndarray, ...]:
    if block_rows < 1:
        raise ConfigError(f"block_rows must be >= 1, got {block_rows}")
    return tuple(
        late[start : start + block_rows]
        for start in range(0, late.shape[0], block_rows)
    )


def scenario_streams(
    instances: Sequence[ScenarioInstance],
    block_rows: int = 50,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
) -> List[ScenarioStream]:
    """Compile instances and project them onto serving streams.

    Each instance compiles through the dataset cache (so a fleet that was
    already compiled is pure cache service), then becomes one stream: the
    early bank collapses into a :class:`PriorKnowledge`, the late bank is
    chunked into ``block_rows``-row ingest blocks.
    """
    streams: List[ScenarioStream] = []
    for inst in instances:
        dataset, _ = compile_instance(inst, cache_dir=cache_dir, use_cache=use_cache)
        streams.append(
            ScenarioStream(
                key=f"{inst.name}#{inst.config_hash[:_KEY_HASH_DIGITS]}",
                instance=inst,
                metric_names=tuple(dataset.metric_names),
                prior=PriorKnowledge.from_samples(dataset.early),
                blocks=_split_blocks(np.asarray(dataset.late, dtype=float), block_rows),
            )
        )
    return streams


def _default_encode(values: Any) -> Any:
    return np.asarray(values, dtype=float).tolist()


def wire_requests(
    streams: Iterable[ScenarioStream],
    encode: Optional[Callable[[Any], Any]] = None,
    kappa0: Optional[float] = None,
    v0: Optional[float] = None,
) -> List[str]:
    """Render streams as serving-protocol request lines.

    One ``create`` (prior moments, ``exist_ok``) followed by one
    ``ingest`` per block, per stream, all canonical-JSON encoded so the
    emitted text is byte-stable.  ``encode`` converts sample arrays to
    their wire form — pass ``repro.serving.encode_array`` for the
    zero-copy b64f64 encoding; the default is plain nested lists.
    """
    enc = encode if encode is not None else _default_encode
    lines: List[str] = []
    for stream in streams:
        create: Dict[str, Any] = {
            "op": "create",
            "key": stream.key,
            "prior_mean": enc(stream.prior.mean),
            "prior_covariance": enc(stream.prior.covariance),
            "prior_n_samples": int(stream.prior.n_samples),
            "exist_ok": True,
        }
        if kappa0 is not None:
            create["kappa0"] = kappa0
        if v0 is not None:
            create["v0"] = v0
        lines.append(canonical_json(create))
        for block in stream.blocks:
            lines.append(
                canonical_json(
                    {"op": "ingest", "key": stream.key, "samples": enc(block)}
                )
            )
    return lines
