"""Scenario compiler: declarative circuit/scenario library with fan-out.

A scenario document (YAML or JSON, schema ``repro.scenario.v1``) names
circuits from :mod:`repro.circuits.registry` and describes what to vary
through discrete knobs — topology, process corner, mismatch magnitude,
early/late divergence, sample budget.  The pipeline is::

    load_scenario_doc(path)          # parse + schema/library validation
      -> expand(doc)                 # sweep cross products, deterministic order
      -> compile_all(instances)      # paired MC datasets via the dataset cache
      -> scenario_streams(...)       # optional: serving-facing fan-out

Every expanded instance carries a content hash of its full generation
config, and compilation routes through the existing sha256-keyed dataset
disk cache — recompiling an unchanged document touches no engine.
"""

from pathlib import Path

from repro.exceptions import ConfigError
from repro.scenarios.compiler import (
    ScenarioInstance,
    compile_all,
    compile_instance,
    expand,
)
from repro.scenarios.fanout import ScenarioStream, scenario_streams, wire_requests
from repro.scenarios.library import (
    DIVERGENCE_LEVELS,
    LIBRARY_VERSION,
    MISMATCH_LEVELS,
    SAMPLE_TIERS,
    resolve_knobs,
    topology_knobs,
)
from repro.scenarios.spec import (
    DEFAULT_SEED,
    RESERVED_KNOBS,
    ScenarioDoc,
    ScenarioSpec,
    load_scenario_doc,
    parse_scenario_doc,
)

__all__ = [
    "DEFAULT_SEED",
    "DIVERGENCE_LEVELS",
    "LIBRARY_VERSION",
    "MISMATCH_LEVELS",
    "RESERVED_KNOBS",
    "SAMPLE_TIERS",
    "ScenarioDoc",
    "ScenarioInstance",
    "ScenarioSpec",
    "ScenarioStream",
    "builtin_documents",
    "builtin_document_path",
    "compile_all",
    "compile_instance",
    "expand",
    "load_scenario_doc",
    "parse_scenario_doc",
    "resolve_knobs",
    "scenario_streams",
    "topology_knobs",
    "wire_requests",
]

_BUILTIN_DIR = Path(__file__).resolve().parent / "builtin"
_BUILTIN_PREFIX = "builtin:"


def builtin_documents() -> "list[str]":
    """Names of the scenario documents bundled with the package."""
    if not _BUILTIN_DIR.is_dir():
        return []
    return sorted(
        f"{_BUILTIN_PREFIX}{p.stem}"
        for p in _BUILTIN_DIR.iterdir()
        if p.suffix in (".yaml", ".yml", ".json")
    )


def builtin_document_path(name: str) -> Path:
    """Resolve ``builtin:<name>`` (or a bare builtin name) to its file."""
    stem = name[len(_BUILTIN_PREFIX) :] if name.startswith(_BUILTIN_PREFIX) else name
    for suffix in (".yaml", ".yml", ".json"):
        candidate = _BUILTIN_DIR / f"{stem}{suffix}"
        if candidate.is_file():
            return candidate
    known = ", ".join(builtin_documents()) or "<none bundled>"
    raise ConfigError(f"unknown builtin scenario document {name!r}; available: {known}")
