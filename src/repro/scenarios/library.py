"""Built-in knob library: discrete lookup tables behind scenario knobs.

A scenario document speaks in *design intent* ("resolution: 10",
"mismatch: high", "samples: small"); this module is the dictionary that
turns intent into concrete generation config.  Every knob resolves
through a discrete table — no free-form expressions — so two documents
using the same words always mean the same numbers, and the set of legal
values is enumerable for error messages and docs.

Two knob families:

* **reserved knobs** (:data:`repro.scenarios.spec.RESERVED_KNOBS`) are
  circuit-agnostic: ``corner`` names a standard process corner,
  ``mismatch`` / ``divergence`` select :class:`CircuitVariant` scales,
  ``samples`` selects the Monte-Carlo budget (named tier or a positive
  integer);
* **topology knobs** are per-circuit and map to design-dataclass fields
  (e.g. ``resolution: 10`` -> ``SarADCDesign(n_bits=10)``).

The library itself is versioned (:data:`LIBRARY_VERSION`) and the
version participates in every instance's config hash, so growing or
re-tuning a table can never silently alias old compiled datasets.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.circuits.registry import get_circuit
from repro.circuits.variants import CircuitVariant
from repro.exceptions import ConfigError
from repro.scenarios.spec import RESERVED_KNOBS

__all__ = [
    "LIBRARY_VERSION",
    "MISMATCH_LEVELS",
    "DIVERGENCE_LEVELS",
    "SAMPLE_TIERS",
    "topology_knobs",
    "resolve_knobs",
]

#: Version marker of the bundled knob tables; folded into every compiled
#: instance's config hash.  (Deliberately *not* a ``repro.*.v<N>``
#: artefact marker — documents name it in the ``library:`` field.)
LIBRARY_VERSION = "ams-blocks-v1"

#: ``mismatch`` knob -> :attr:`CircuitVariant.mismatch_scale`.
MISMATCH_LEVELS: Dict[str, float] = {
    "low": 0.5,
    "nominal": 1.0,
    "high": 1.5,
    "extreme": 2.0,
}

#: ``divergence`` knob -> :attr:`CircuitVariant.divergence_scale`.
DIVERGENCE_LEVELS: Dict[str, float] = {
    "none": 0.0,
    "mild": 0.5,
    "standard": 1.0,
    "severe": 1.5,
}

#: ``samples`` knob -> Monte-Carlo bank size (a raw positive integer is
#: also accepted).  "paper" is the op-amp budget of Sec. 5.1.
SAMPLE_TIERS: Dict[str, int] = {
    "tiny": 32,
    "small": 128,
    "medium": 512,
    "large": 2000,
    "paper": 5000,
}

#: Per-circuit topology tables: circuit -> knob -> value -> design kwargs.
#: Values are looked up by their string form, so YAML ``10`` and ``"10"``
#: mean the same row.
_TOPOLOGY: Dict[str, Dict[str, Dict[str, Dict[str, Any]]]] = {
    "opamp": {
        "load": {
            "light": {"c_load": 0.5e-12},
            "nominal": {"c_load": 1.0e-12},
            "heavy": {"c_load": 2.0e-12},
        },
        "compensation": {
            "light": {"c_comp": 0.3e-12},
            "nominal": {"c_comp": 0.5e-12},
            "strong": {"c_comp": 0.8e-12},
        },
    },
    "adc": {
        "resolution": {
            "5": {"n_bits": 5},
            "6": {"n_bits": 6},
            "7": {"n_bits": 7},
        },
    },
    "ota": {
        "load": {
            "light": {"c_load": 1.0e-12},
            "nominal": {"c_load": 2.0e-12},
            "heavy": {"c_load": 4.0e-12},
        },
    },
    "r2r_dac": {
        "resolution": {
            "8": {"n_bits": 8},
            "10": {"n_bits": 10},
            "12": {"n_bits": 12},
        },
        "reference": {
            "low": {"vref": 1.2},
            "nominal": {"vref": 1.8},
        },
    },
    "svf": {
        "tuning": {
            "slow": {"c_bp": 4.0e-12, "c_lp": 4.0e-12},
            "nominal": {"c_bp": 2.0e-12, "c_lp": 2.0e-12},
            "fast": {"c_bp": 1.0e-12, "c_lp": 1.0e-12},
        },
        "q": {
            "low": {"i_q": 16e-6},
            "nominal": {"i_q": 8e-6},
            "high": {"i_q": 4e-6},
        },
    },
    "sar_adc": {
        "resolution": {
            "8": {"n_bits": 8},
            "10": {"n_bits": 10},
            "12": {"n_bits": 12},
        },
    },
}


def topology_knobs(circuit: str) -> Dict[str, Tuple[str, ...]]:
    """The topology knob names (and legal values) of one circuit."""
    get_circuit(circuit)  # self-diagnosing unknown-circuit error
    tables = _TOPOLOGY.get(circuit, {})
    return {knob: tuple(values) for knob, values in tables.items()}


def _resolve_samples(value: Any, scenario: str) -> int:
    if isinstance(value, bool):
        raise ConfigError(f"scenario {scenario!r}: 'samples' must not be a boolean")
    if isinstance(value, int):
        if value < 2:
            raise ConfigError(
                f"scenario {scenario!r}: 'samples' must be >= 2, got {value}"
            )
        return value
    tier = SAMPLE_TIERS.get(str(value))
    if tier is None:
        raise ConfigError(
            f"scenario {scenario!r}: unknown sample tier {value!r}; "
            f"expected an integer or one of {', '.join(SAMPLE_TIERS)}"
        )
    return tier


def _resolve_level(
    value: Any, table: Dict[str, float], knob: str, scenario: str
) -> float:
    level = table.get(str(value))
    if level is None:
        raise ConfigError(
            f"scenario {scenario!r}: unknown {knob} level {value!r}; "
            f"expected one of {', '.join(table)}"
        )
    return level


def resolve_knobs(
    circuit: str, knobs: Dict[str, Any], scenario: str
) -> Tuple[Any, CircuitVariant, int]:
    """Resolve one fully-fixed knob mapping into generation config.

    Parameters
    ----------
    circuit:
        Registry circuit name.
    knobs:
        Effective knob mapping (fixed knobs plus the current sweep point).
    scenario:
        Scenario name, for error messages.

    Returns
    -------
    (design, variant, n_samples):
        The design dataclass instance with topology knobs applied, the
        :class:`CircuitVariant` from the reserved knobs, and the sample
        budget (circuit default when no ``samples`` knob is given).
    """
    entry = get_circuit(circuit)
    tables = _TOPOLOGY.get(circuit, {})

    design_kwargs: Dict[str, Any] = {}
    corner = "TT"
    mismatch = 1.0
    divergence = 1.0
    n_samples = entry.default_samples
    for knob in sorted(knobs):
        value = knobs[knob]
        if knob == "corner":
            corner = str(value)
        elif knob == "mismatch":
            mismatch = _resolve_level(value, MISMATCH_LEVELS, "mismatch", scenario)
        elif knob == "divergence":
            divergence = _resolve_level(
                value, DIVERGENCE_LEVELS, "divergence", scenario
            )
        elif knob == "samples":
            n_samples = _resolve_samples(value, scenario)
        else:
            table = tables.get(knob)
            if table is None:
                known = tuple(tables) + RESERVED_KNOBS
                raise ConfigError(
                    f"scenario {scenario!r}: circuit {circuit!r} has no knob "
                    f"{knob!r}; available: {', '.join(known)}"
                )
            row = table.get(str(value))
            if row is None:
                raise ConfigError(
                    f"scenario {scenario!r}: unknown {knob} value {value!r} "
                    f"for {circuit!r}; expected one of {', '.join(table)}"
                )
            design_kwargs.update(row)

    try:
        variant = CircuitVariant(
            corner=corner, mismatch_scale=mismatch, divergence_scale=divergence
        )
    except ConfigError as exc:
        raise ConfigError(f"scenario {scenario!r}: {exc}") from exc
    design = entry.design_cls(**design_kwargs)
    return design, variant, n_samples
