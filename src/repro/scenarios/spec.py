"""Declarative scenario documents: parsing and schema validation.

A scenario document is a small YAML (or JSON) file that names circuits
from the registry and describes *what to vary* — topology knobs, process
corner, mismatch magnitude, early/late divergence and sample budget —
without any Python.  The document carries the versioned marker
:data:`repro.schemas.SCENARIO_SCHEMA` so readers reject foreign or
future documents instead of misinterpreting them::

    schema: repro.scenario.v1
    library: ams-blocks-v1
    scenarios:
      - name: dac-grid
        circuit: r2r_dac
        knobs: {resolution: 8, samples: small}
        sweep:
          corner: [TT, SS, FF]
          mismatch: [nominal, high]

``knobs`` are point settings; ``sweep`` axes are expanded into the cross
product by :func:`repro.scenarios.compiler.expand`.  Knob *names* shared
between ``knobs`` and ``sweep`` are rejected — a value cannot be both
fixed and swept.  Knob semantics (which names exist, what the values
mean) live in :mod:`repro.scenarios.library`.

PyYAML is an optional dependency: JSON documents always work, and a
missing ``yaml`` module produces a :class:`ConfigError` naming the
package instead of an ImportError from deep inside a parse.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.exceptions import ConfigError, SchemaVersionError
from repro.schemas import SCENARIO_SCHEMA

__all__ = [
    "ScenarioSpec",
    "ScenarioDoc",
    "parse_scenario_doc",
    "load_scenario_doc",
    "RESERVED_KNOBS",
    "DEFAULT_SEED",
]

#: Knob names interpreted by the compiler itself (circuit-agnostic);
#: everything else is a per-circuit topology knob from the library.
RESERVED_KNOBS: Tuple[str, ...] = ("corner", "mismatch", "divergence", "samples")

#: Master seed used when a scenario does not pin one (the paper's year,
#: matching the dataset generators).
DEFAULT_SEED = 2015


@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario: a circuit plus fixed and swept knobs."""

    name: str
    circuit: str
    knobs: Dict[str, Any] = field(default_factory=dict)
    sweep: Dict[str, List[Any]] = field(default_factory=dict)
    seed: int = DEFAULT_SEED


@dataclass(frozen=True)
class ScenarioDoc:
    """A parsed scenario document (schema-checked)."""

    schema: str
    library: str
    scenarios: Tuple[ScenarioSpec, ...]
    source: str = "<memory>"


def _require_mapping(value: Any, what: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ConfigError(f"{what} must be a mapping, got {type(value).__name__}")
    return value


def _parse_scenario(raw: Any, index: int) -> ScenarioSpec:
    data = _require_mapping(raw, f"scenarios[{index}]")
    unknown = set(data) - {"name", "circuit", "knobs", "sweep", "seed"}
    if unknown:
        raise ConfigError(
            f"scenarios[{index}]: unknown field(s) {sorted(unknown)}; "
            "expected name, circuit, knobs, sweep, seed"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigError(f"scenarios[{index}]: 'name' must be a non-empty string")
    if any(ch in name for ch in "@=,#"):
        raise ConfigError(
            f"scenario {name!r}: names may not contain '@', '=', ',' or '#' "
            "(reserved for expanded instance names)"
        )
    circuit = data.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise ConfigError(f"scenario {name!r}: 'circuit' must be a non-empty string")

    knobs = _require_mapping(data.get("knobs", {}), f"scenario {name!r} knobs")
    sweep_raw = _require_mapping(data.get("sweep", {}), f"scenario {name!r} sweep")
    sweep: Dict[str, List[Any]] = {}
    for axis, values in sweep_raw.items():
        if not isinstance(values, list) or not values:
            raise ConfigError(
                f"scenario {name!r}: sweep axis {axis!r} must be a non-empty list"
            )
        if len(values) != len(set(map(str, values))):
            raise ConfigError(
                f"scenario {name!r}: sweep axis {axis!r} has duplicate values"
            )
        sweep[axis] = list(values)
    overlap = set(knobs) & set(sweep)
    if overlap:
        raise ConfigError(
            f"scenario {name!r}: knob(s) {sorted(overlap)} appear in both "
            "'knobs' and 'sweep' — a knob is either fixed or swept"
        )
    seed = data.get("seed", DEFAULT_SEED)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ConfigError(f"scenario {name!r}: 'seed' must be an integer")
    return ScenarioSpec(
        name=name, circuit=circuit, knobs=dict(knobs), sweep=sweep, seed=seed
    )


def parse_scenario_doc(data: Any, source: str = "<memory>") -> ScenarioDoc:
    """Validate a decoded document and build the typed representation."""
    doc = _require_mapping(data, f"scenario document {source}")
    schema = doc.get("schema")
    if schema != SCENARIO_SCHEMA:
        raise SchemaVersionError(
            f"{source}: unsupported scenario schema {schema!r} "
            f"(this reader understands {SCENARIO_SCHEMA!r})"
        )
    unknown = set(doc) - {"schema", "library", "scenarios"}
    if unknown:
        raise ConfigError(
            f"{source}: unknown top-level field(s) {sorted(unknown)}; "
            "expected schema, library, scenarios"
        )
    # Import here to avoid a cycle: the library module imports the spec
    # types for its resolve() signature documentation.
    from repro.scenarios.library import LIBRARY_VERSION

    library = doc.get("library", LIBRARY_VERSION)
    if library != LIBRARY_VERSION:
        raise ConfigError(
            f"{source}: unknown knob library {library!r} "
            f"(this build bundles {LIBRARY_VERSION!r})"
        )
    raw_scenarios = doc.get("scenarios")
    if not isinstance(raw_scenarios, list) or not raw_scenarios:
        raise ConfigError(f"{source}: 'scenarios' must be a non-empty list")
    scenarios = tuple(
        _parse_scenario(raw, i) for i, raw in enumerate(raw_scenarios)
    )
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ConfigError(f"{source}: duplicate scenario names: {names}")
    return ScenarioDoc(
        schema=schema, library=library, scenarios=scenarios, source=source
    )


def _decode_yaml(text: str, source: str) -> Any:
    try:
        import yaml
    except ImportError:
        raise ConfigError(
            f"{source}: reading YAML scenario documents requires the optional "
            "PyYAML package (pip install pyyaml), or use a .json document"
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ConfigError(f"{source}: invalid YAML: {exc}") from exc


def load_scenario_doc(path: Union[str, Path]) -> ScenarioDoc:
    """Load and validate a scenario document from a ``.yaml``/``.json`` file."""
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read scenario document {p}: {exc}") from exc
    if p.suffix.lower() in (".yaml", ".yml"):
        data = _decode_yaml(text, str(p))
    elif p.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{p}: invalid JSON: {exc}") from exc
    else:
        raise ConfigError(
            f"{p}: unsupported scenario document extension {p.suffix!r} "
            "(use .yaml, .yml or .json)"
        )
    return parse_scenario_doc(data, source=str(p))
