"""Scenario compiler: sweep expansion and dataset compilation.

:func:`expand` turns a parsed document into a flat, deterministically
ordered list of :class:`ScenarioInstance` — one per point of each
scenario's sweep cross product.  Ordering rules (stable across machines,
worker counts and Python hash randomisation):

* scenarios expand in document order;
* sweep axes iterate in *sorted axis-name* order;
* each axis's values iterate in their listed order, slowest axis first.

Every instance carries a ``config_hash`` — a sha256 over the canonical
JSON of its complete generation config (schema marker, library version,
circuit, effective knobs, sample budget, seed, resolved design and
variant) — so two instances hash equal exactly when they would compile
byte-identical datasets.

:func:`compile_instance` / :func:`compile_all` run instances through
:func:`repro.circuits.registry.generate_dataset`, i.e. through the
existing vectorized engines and the sha256-keyed dataset disk cache:
recompiling an unchanged document is pure cache service.  ``compile_all``
optionally shards across forked workers (order-preserving, results
identical for every worker count).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.circuits.registry import get_circuit, generate_dataset
from repro.circuits.montecarlo import PairedDataset, dataset_cache_path
from repro.circuits.variants import CircuitVariant
from repro.exceptions import ConfigError
from repro.scenarios.library import LIBRARY_VERSION, resolve_knobs
from repro.scenarios.spec import ScenarioDoc, ScenarioSpec
from repro.schemas import SCENARIO_SCHEMA, canonical_json

__all__ = ["ScenarioInstance", "expand", "compile_instance", "compile_all"]


@dataclass(frozen=True)
class ScenarioInstance:
    """One fully-resolved compilation unit of a scenario document.

    Attributes
    ----------
    name:
        Unique instance name: the scenario name, plus ``@axis=value,...``
        (sorted axis order) when the scenario sweeps.
    circuit:
        Registry circuit name.
    knobs:
        The effective knob mapping (fixed knobs merged with this sweep
        point) — design intent, for reports and fan-out labels.
    n_samples, seed:
        Monte-Carlo budget and master seed.
    design:
        Resolved design dataclass (topology knobs applied).
    variant:
        Resolved :class:`CircuitVariant` (reserved knobs applied).
    """

    name: str
    circuit: str
    knobs: Dict[str, Any]
    n_samples: int
    seed: int
    design: Any
    variant: CircuitVariant

    @property
    def config_hash(self) -> str:
        """sha256 over the canonical encoding of the full generation config."""
        import dataclasses

        payload = {
            "schema": SCENARIO_SCHEMA,
            "library": LIBRARY_VERSION,
            "circuit": self.circuit,
            "knobs": {k: self.knobs[k] for k in sorted(self.knobs)},
            "n_samples": self.n_samples,
            "seed": self.seed,
            "design": dataclasses.asdict(self.design),
            "variant": self.variant.as_config(),
        }
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _expand_scenario(spec: ScenarioSpec) -> List[ScenarioInstance]:
    axes = sorted(spec.sweep)
    points: List[Tuple[Tuple[str, Any], ...]]
    if axes:
        points = [
            tuple(zip(axes, combo))
            for combo in product(*(spec.sweep[a] for a in axes))
        ]
    else:
        points = [()]
    out: List[ScenarioInstance] = []
    for point in points:
        knobs = dict(spec.knobs)
        knobs.update(point)
        if point:
            suffix = ",".join(f"{axis}={value}" for axis, value in point)
            name = f"{spec.name}@{suffix}"
        else:
            name = spec.name
        design, variant, n_samples = resolve_knobs(spec.circuit, knobs, spec.name)
        out.append(
            ScenarioInstance(
                name=name,
                circuit=spec.circuit,
                knobs=knobs,
                n_samples=n_samples,
                seed=spec.seed,
                design=design,
                variant=variant,
            )
        )
    return out


def expand(doc: ScenarioDoc) -> List[ScenarioInstance]:
    """Expand a document into its deterministic, ordered instance list."""
    instances: List[ScenarioInstance] = []
    for spec in doc.scenarios:
        get_circuit(spec.circuit)  # self-diagnosing unknown-circuit error
        instances.extend(_expand_scenario(spec))
    seen: set = set()
    for inst in instances:
        if inst.name in seen:
            raise ConfigError(
                f"{doc.source}: duplicate expanded instance name {inst.name!r}"
            )
        seen.add(inst.name)
    return instances


def _instance_report(
    inst: ScenarioInstance,
    dataset: PairedDataset,
    cache_hit: bool,
    cache_path: Path,
) -> Dict[str, Any]:
    return {
        "name": inst.name,
        "circuit": inst.circuit,
        "config_hash": inst.config_hash,
        "cache_path": str(cache_path),
        "cache_hit": bool(cache_hit),
        "n_samples": dataset.n_samples,
        "dim": dataset.dim,
    }


def compile_instance(
    inst: ScenarioInstance,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    mna_backend: Optional[str] = None,
) -> Tuple[PairedDataset, Dict[str, Any]]:
    """Compile one instance to its paired dataset (cache-routed).

    Returns the dataset plus a JSON-safe report: instance name, circuit,
    config hash, cache path, whether the compile was served from cache,
    and the dataset shape.  ``mna_backend`` is forwarded only to circuits
    whose engines thread one.
    """
    entry = get_circuit(inst.circuit)
    extra = None if inst.variant.is_default else inst.variant.as_config()
    path = dataset_cache_path(
        inst.circuit, inst.n_samples, inst.seed, inst.design, cache_dir, extra
    )
    cache_hit = use_cache and path.exists()
    dataset = generate_dataset(
        inst.circuit,
        n_samples=inst.n_samples,
        seed=inst.seed,
        design=inst.design,
        variant=inst.variant,
        cache_dir=cache_dir,
        use_cache=use_cache,
        mna_backend=mna_backend if entry.supports_mna_backend else None,
    )
    return dataset, _instance_report(inst, dataset, cache_hit, path)


def compile_all(
    instances: List[ScenarioInstance],
    n_jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    mna_backend: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Compile every instance; reports come back in expansion order.

    ``n_jobs`` shards the instance list across forked workers (each
    instance's own engines then run single-process); datasets land in the
    shared disk cache, reports are returned in the input order regardless
    of worker count.  Falls back to in-process compilation when forking
    is unavailable.
    """
    if not instances:
        raise ConfigError("compile_all requires at least one instance")

    def compile_shard(shard: List[ScenarioInstance]) -> List[Dict[str, Any]]:
        return [
            compile_instance(
                inst, cache_dir=cache_dir, use_cache=use_cache, mna_backend=mna_backend
            )[1]
            for inst in shard
        ]

    from repro.experiments.parallel import fork_available, replicate, resolve_n_jobs

    jobs = min(resolve_n_jobs(n_jobs), len(instances))
    if jobs > 1 and fork_available():
        shards = [
            list(instances[i::jobs]) for i in range(jobs)
        ]
        shards = [s for s in shards if s]
        parts = replicate(compile_shard, shards, n_jobs=jobs)
        # Re-interleave the strided shards back into expansion order.
        merged: List[Optional[Dict[str, Any]]] = [None] * len(instances)
        for lane, part in enumerate(parts):
            for step, report in enumerate(part):
                merged[lane + step * jobs] = report
        return [r for r in merged if r is not None]
    return compile_shard(list(instances))
