"""Serving-side view of the sufficient-statistics substrate.

The accumulator itself lives in :mod:`repro.stats.suffstats` (the stats
layer) so the batch estimators in :mod:`repro.core` can funnel through the
same arithmetic without a layering back-edge; this module re-exports it
for serving callers and adds the *stacked* MAP kernel the micro-batching
queue scores coalesced ``estimate`` queries with: one vectorised pass of
Eq. (31)–(32) over ``B`` sessions instead of ``B`` Python-level calls.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DimensionError, HyperParameterError
from repro.linalg.batched import clip_eigenvalues_batched, symmetrize_batched
from repro.stats.suffstats import SufficientStats, merge_all

__all__ = ["SufficientStats", "merge_all", "map_moments_stack"]

#: Eigenvalue floor applied to stacked MAP covariances; identical to the
#: scalar floor in :meth:`repro.core.bmf.BMFEstimator.estimate`.
MAP_EIG_FLOOR = 1e-12


def map_moments_stack(
    prior_means: np.ndarray,
    prior_covs: np.ndarray,
    kappa0: np.ndarray,
    v0: np.ndarray,
    counts: np.ndarray,
    means: np.ndarray,
    scatters: np.ndarray,
    eig_floor_rel: float = MAP_EIG_FLOOR,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. (31)–(32) for ``B`` independent sessions in one vectorised pass.

    Parameters
    ----------
    prior_means, prior_covs:
        ``(B, d)`` / ``(B, d, d)`` early-stage moments per session.
    kappa0, v0:
        ``(B,)`` hyper-parameters per session (``kappa0 > 0``, ``v0 > d``).
    counts, means, scatters:
        ``(B,)`` / ``(B, d)`` / ``(B, d, d)`` accumulated sufficient
        statistics per session; ``counts`` may contain zeros (sessions
        that have not ingested yet — they return the prior mode).
    eig_floor_rel:
        Relative eigenvalue floor for the returned covariances; matches
        the scalar estimator's guard.  Pass ``0`` to skip.

    Returns
    -------
    ``(mu_map, sigma_map)`` of shapes ``(B, d)`` and ``(B, d, d)``.  The
    arithmetic is the element-wise image of
    :func:`repro.core.bmf.map_moments_from_stats`, so each member agrees
    with the scalar path to floating-point rounding (the serving
    equivalence suite pins 1e-10).
    """
    mu_e = np.atleast_2d(np.asarray(prior_means, dtype=float))
    sig_e = np.asarray(prior_covs, dtype=float)
    k0 = np.atleast_1d(np.asarray(kappa0, dtype=float))
    nu0 = np.atleast_1d(np.asarray(v0, dtype=float))
    n = np.atleast_1d(np.asarray(counts, dtype=float))
    xbar = np.atleast_2d(np.asarray(means, dtype=float))
    scatter = np.asarray(scatters, dtype=float)

    b, d = mu_e.shape
    if sig_e.shape != (b, d, d) or scatter.shape != (b, d, d):
        raise DimensionError(
            f"covariance stacks must be ({b}, {d}, {d}), got "
            f"{sig_e.shape} and {scatter.shape}"
        )
    if xbar.shape != (b, d) or k0.shape != (b,) or nu0.shape != (b,) or n.shape != (b,):
        raise DimensionError("per-session arrays disagree on the batch size B")
    if np.any(k0 <= 0.0):
        raise HyperParameterError("every kappa0 must be > 0")
    if np.any(nu0 <= d):
        raise HyperParameterError(f"every v0 must exceed d = {d}")
    if np.any(n < 0):
        raise DimensionError("sample counts must be >= 0")

    kn = k0 + n
    mu_map = (k0[:, None] * mu_e + n[:, None] * xbar) / kn[:, None]
    diff = mu_e - xbar
    coef = k0 * n / kn
    numerator = (
        (nu0 - d)[:, None, None] * sig_e
        + scatter
        + coef[:, None, None] * (diff[:, :, None] * diff[:, None, :])
    )
    sigma_map = symmetrize_batched(numerator / (nu0 + n - d)[:, None, None])
    if eig_floor_rel > 0.0:
        sigma_map = clip_eigenvalues_batched(sigma_map, eig_floor_rel)
    return mu_map, sigma_map
