"""Long-running, in-process moment-estimation service (the serving layer).

Everything below this package estimates from a dataset it is handed; this
package keeps the estimation *state* alive between requests, which is how
BMF is actually consumed on a tester floor — measurements trickle in die
by die, and the MAP estimate must be queryable at any instant without
re-touching raw samples:

* :mod:`repro.serving.suffstats` — mergeable sufficient-statistics
  substrate (re-exported from :mod:`repro.stats.suffstats`) plus the
  stacked Eq. (31)–(32) MAP kernel.
* :mod:`repro.serving.sessions` — keyed session store with LRU capacity
  and logical-clock TTL eviction.
* :mod:`repro.serving.queue` — micro-batching query queue with bounded
  backpressure.
* :mod:`repro.serving.service` — :class:`MomentService`, the composed
  service (+ counters).
* :mod:`repro.serving.checkpoint` — atomic, integrity-checked snapshot /
  bit-identical restore.
* :mod:`repro.serving.protocol` — JSON-lines request handling for the
  ``repro serve`` CLI verb.
"""

from repro.serving.checkpoint import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_SCHEMA_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.serving.protocol import handle_request, serve_loop
from repro.serving.queue import QUERY_KINDS, MicroBatchQueue, Request
from repro.serving.service import MomentService, ServiceCounters
from repro.serving.sessions import Session, SessionStore
from repro.serving.suffstats import SufficientStats, map_moments_stack, merge_all

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMA_VERSION",
    "MicroBatchQueue",
    "MomentService",
    "QUERY_KINDS",
    "Request",
    "ServiceCounters",
    "Session",
    "SessionStore",
    "SufficientStats",
    "handle_request",
    "load_checkpoint",
    "map_moments_stack",
    "merge_all",
    "save_checkpoint",
    "serve_loop",
]
