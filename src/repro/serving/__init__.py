"""Long-running moment-estimation serving stack (router / worker / WAL).

Everything below this package estimates from a dataset it is handed; this
package keeps the estimation *state* alive between requests, which is how
BMF is actually consumed on a tester floor — measurements trickle in die
by die, and the MAP estimate must be queryable at any instant without
re-touching raw samples.  The stack is layered bottom-up:

* :mod:`repro.serving.suffstats` — mergeable sufficient-statistics
  substrate (re-exported from :mod:`repro.stats.suffstats`) plus the
  stacked Eq. (31)–(32) MAP kernel.
* :mod:`repro.serving.counters` — thread-safe request/ingest/latency
  counters shared by every layer above.
* :mod:`repro.serving.wal` — per-shard append-only, sha256-chained
  write-ahead log (JSON-lines v1 and binary-frame v2 formats) with
  group-commit buffering, torn-tail recovery, and atomic compaction.
* :mod:`repro.serving.sessions` — keyed session store with LRU capacity
  and logical-clock TTL eviction.
* :mod:`repro.serving.queue` — micro-batching query queue with bounded
  backpressure.
* :mod:`repro.serving.checkpoint` — atomic, integrity-checked snapshot /
  bit-identical restore.
* :mod:`repro.serving.scoring` — the grouped stacked-kernel batch
  scorer all services answer through.
* :mod:`repro.serving.worker` — :class:`ShardWorker`: one store slice +
  counters + scorer (+ WAL), with bit-identical log replay.
* :mod:`repro.serving.service` — :class:`MomentService`, the
  single-process composition (one worker + micro-batch queue).
* :mod:`repro.serving.router` — :class:`ShardedMomentService`:
  consistent-hash placement, coalesced ingest, merge-on-read queries,
  manifest checkpoints.
* :mod:`repro.serving.protocol` — JSON-lines request handling for the
  ``repro serve`` CLI verb (fronts either service).
"""

from repro.serving.checkpoint import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_SCHEMA_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.serving.counters import ServiceCounters
from repro.serving.protocol import (
    WIRE_B64F64,
    decode_array,
    encode_array,
    handle_request,
    serve_loop,
)
from repro.serving.queue import QUERY_KINDS, MicroBatchQueue, Request
from repro.serving.router import MANIFEST_SCHEMA, HashRing, ShardedMomentService
from repro.serving.scoring import BatchScorer
from repro.serving.service import MomentService
from repro.serving.sessions import Session, SessionStore
from repro.serving.suffstats import SufficientStats, map_moments_stack, merge_all
from repro.serving.wal import WAL_SCHEMA, WAL_SCHEMA_V2, WriteAheadLog
from repro.serving.worker import ShardWorker

__all__ = [
    "BatchScorer",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMA_VERSION",
    "HashRing",
    "MANIFEST_SCHEMA",
    "MicroBatchQueue",
    "MomentService",
    "QUERY_KINDS",
    "Request",
    "ServiceCounters",
    "Session",
    "SessionStore",
    "ShardWorker",
    "ShardedMomentService",
    "SufficientStats",
    "WAL_SCHEMA",
    "WAL_SCHEMA_V2",
    "WIRE_B64F64",
    "WriteAheadLog",
    "decode_array",
    "encode_array",
    "handle_request",
    "load_checkpoint",
    "map_moments_stack",
    "merge_all",
    "save_checkpoint",
    "serve_loop",
]
