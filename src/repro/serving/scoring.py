"""Grouped batch scoring: the arithmetic core shared by every serving layer.

One :class:`BatchScorer` answers a list of coalesced
:class:`~repro.serving.queue.Request` objects by grouping them into
stacked-kernel calls:

``estimate``
    one vectorised Eq. (31)–(32) pass per distinct metric dimension
    (:func:`~repro.serving.suffstats.map_moments_stack`);
``loglik``
    one ``cholesky_batched_safe`` + ``solve_triangular_batched`` stack per
    ``(d, n_rows)`` group, mirroring
    :func:`repro.stats.multivariate_gaussian.gaussian_loglik_batch`;
``yield``
    one :func:`~repro.yieldest.parametric.gaussian_box_probabilities`
    call per distinct bounds set.

The scorer is deliberately ignorant of *where* sessions live: callers
supply a ``snapshot_one(key) -> Session`` callable.  The single-process
:class:`~repro.serving.service.MomentService` hands it a session-store
snapshot; a shard worker hands it its own store slice; the shard router
hands it sessions whose sufficient statistics were Chan-merged from many
workers (merge-on-read).  All three therefore answer through literally the
same code, which is what makes the sharded equivalence guarantees cheap to
state: any difference is in the statistics handed in, never in the scoring.

This code was extracted verbatim from the PR-5 ``MomentService`` —
group-by ordering, repair ladder, and accumulation order are unchanged, so
pre-refactor answers are reproduced bit-for-bit.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.core.estimators import MomentEstimate
from repro.exceptions import DimensionError, ReproError, SpecificationError
from repro.linalg.backends import use_kernel_backend
from repro.linalg.batched import (
    cholesky_batched_safe,
    logdet_batched,
    solve_triangular_batched,
)
from repro.serving.counters import ServiceCounters
from repro.serving.queue import Request
from repro.serving.sessions import Session
from repro.serving.suffstats import map_moments_stack
from repro.yieldest.parametric import gaussian_box_probabilities

__all__ = ["BatchScorer", "SnapshotFn"]

_LOG_2PI = math.log(2.0 * math.pi)

#: Jitter/clip policy for batched covariance factorisation; identical to
#: :func:`repro.stats.multivariate_gaussian.gaussian_loglik_batch`.
_CHOL_JITTER = 1e-10
_CHOL_CLIP = 1e-10

#: Resolves a session key to a frozen :class:`Session` snapshot; raises a
#: :class:`~repro.exceptions.ReproError` subclass when the key cannot be
#: served (missing session, failed shard collection, ...).
SnapshotFn = Callable[[str], Session]


class BatchScorer:
    """Answers request batches through grouped stacked-kernel calls.

    Parameters
    ----------
    counters:
        Error/latency sink (request-rate accounting stays with the caller,
        which knows whether a request was freshly accepted or replayed).
    linalg_backend:
        Kernel backend for the stacked SPD math (``None`` keeps the
        ambient process selection; see
        :func:`repro.linalg.backends.use_kernel_backend`).
    """

    def __init__(
        self,
        counters: ServiceCounters,
        linalg_backend: "str | None" = None,
    ) -> None:
        self.counters = counters
        self.linalg_backend = linalg_backend

    # ------------------------------------------------------------------
    def score(self, requests: List[Request], snapshot_one: SnapshotFn) -> None:
        """Answer every request, grouping work into stacked-kernel calls."""
        with use_kernel_backend(self.linalg_backend):
            self._score_impl(requests, snapshot_one)

    # ------------------------------------------------------------------
    def _finish(self, request: Request, result: Any) -> None:
        if not request.future.done():
            request.future.set_result(result)
        if request.submitted_at > 0.0:
            self.counters.record_latency(time.perf_counter() - request.submitted_at)

    def _fail(self, request: Request, exc: BaseException) -> None:
        self.counters.record_error()
        if not request.future.done():
            request.future.set_exception(exc)

    # ------------------------------------------------------------------
    def _score_impl(self, requests: List[Request], snapshot_one: SnapshotFn) -> None:
        # 1. snapshot each distinct session once (consistent view per batch)
        sessions: Dict[str, Session] = {}
        live: List[Request] = []
        for request in requests:
            if request.key not in sessions:
                try:
                    sessions[request.key] = snapshot_one(request.key)
                except ReproError as exc:
                    self._fail(request, exc)
                    continue
            live.append(request)

        # drop requests whose key failed to snapshot on a *later* request
        live = [r for r in live if r.key in sessions]
        if not live:
            return

        # 2. one stacked MAP pass per distinct metric dimension
        keys_by_dim: Dict[int, List[str]] = {}
        for key in sessions:
            keys_by_dim.setdefault(sessions[key].dim, []).append(key)
        moments: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for dim in sorted(keys_by_dim):
            keys = keys_by_dim[dim]
            group = [sessions[key] for key in keys]
            try:
                mu, sigma = map_moments_stack(
                    np.stack([s.prior.mean for s in group]),
                    np.stack([s.prior.covariance for s in group]),
                    np.asarray([s.kappa0 for s in group]),
                    np.asarray([s.v0 for s in group]),
                    np.asarray([s.stats.n for s in group]),
                    np.stack([s.stats.mean for s in group]),
                    np.stack([s.stats.scatter for s in group]),
                )
            except ReproError as exc:
                bad = set(keys)
                for request in live:
                    if request.key in bad:
                        self._fail(request, exc)
                live = [r for r in live if r.key not in bad]
                continue
            for i, key in enumerate(keys):
                moments[key] = (mu[i], sigma[i])

        # 3. answer by kind
        for request in live:
            if request.kind == "estimate":
                mean, cov = moments[request.key]
                session = sessions[request.key]
                self._finish(
                    request,
                    MomentEstimate(
                        mean=mean,
                        covariance=cov,
                        n_samples=session.stats.n,
                        method="bmf",
                        info={
                            "kappa0": session.kappa0,
                            "v0": session.v0,
                            "serving": True,
                        },
                    ),
                )
        self._score_loglik(
            [r for r in live if r.kind == "loglik"], sessions, moments
        )
        self._score_yield(
            [r for r in live if r.kind == "yield"], sessions, moments
        )

    def _score_loglik(
        self,
        requests: List[Request],
        sessions: Dict[str, Session],
        moments: Dict[str, Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Grouped log-likelihood: one Cholesky stack per ``(d, n)`` shape.

        Mirrors :func:`repro.stats.multivariate_gaussian.gaussian_loglik_batch`
        — same repair ladder, same per-row-then-sum accumulation order —
        but with a *per-request* sample block instead of one shared one.
        """
        groups: Dict[Tuple[int, int], List[Tuple[Request, np.ndarray]]] = {}
        for request in requests:
            session = sessions[request.key]
            try:
                x = np.asarray(request.payload, dtype=float)
                if x.ndim == 1:
                    x = x[None, :]
                if x.ndim != 2 or x.shape[1] != session.dim:
                    raise DimensionError(
                        f"loglik payload must be (n, {session.dim}), "
                        f"got shape {np.asarray(request.payload).shape}"
                    )
                if x.shape[0] == 0:
                    raise DimensionError("loglik payload must contain >= 1 row")
            except (ReproError, TypeError, ValueError) as exc:
                self._fail(request, exc)
                continue
            groups.setdefault((session.dim, x.shape[0]), []).append((request, x))

        for dim, n_rows in sorted(groups):
            members = groups[(dim, n_rows)]
            covs = np.stack([moments[req.key][1] for req, _ in members])
            means = np.stack([moments[req.key][0] for req, _ in members])
            xs = np.stack([x for _, x in members])
            chol, ok = cholesky_batched_safe(
                covs, jitter_rel=_CHOL_JITTER, clip_floor_rel=_CHOL_CLIP
            )
            out = np.full(len(members), -np.inf)
            sel = np.flatnonzero(ok)
            if sel.size:
                diffs = np.swapaxes(xs[sel] - means[sel][:, None, :], -1, -2)
                z = solve_triangular_batched(chol[sel], diffs, lower=True)
                maha = np.sum(z * z, axis=1)
                log_det = logdet_batched(chol[sel])
                logpdf = -0.5 * (dim * _LOG_2PI + log_det[:, None] + maha)
                out[sel] = logpdf.sum(axis=1)
            for i, (request, _) in enumerate(members):
                self._finish(request, float(out[i]))

    def _score_yield(
        self,
        requests: List[Request],
        sessions: Dict[str, Session],
        moments: Dict[str, Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Grouped box-probability yield: one stacked call per bounds set."""
        groups: Dict[Tuple[float, ...], List[Request]] = {}
        bounds: Dict[Tuple[float, ...], Tuple[np.ndarray, np.ndarray]] = {}
        for request in requests:
            session = sessions[request.key]
            try:
                lower, upper = request.payload
                lo = np.atleast_1d(np.asarray(lower, dtype=float))
                hi = np.atleast_1d(np.asarray(upper, dtype=float))
                if lo.shape != (session.dim,) or hi.shape != (session.dim,):
                    raise SpecificationError(
                        f"yield bounds must be length-{session.dim} vectors"
                    )
                if np.any(lo >= hi):
                    raise SpecificationError("yield bounds must satisfy lower < upper")
            except (ReproError, TypeError, ValueError) as exc:
                self._fail(request, exc)
                continue
            group_key = tuple(lo.tolist()) + tuple(hi.tolist())
            groups.setdefault(group_key, []).append(request)
            bounds[group_key] = (lo, hi)

        for group_key in sorted(groups):
            members = groups[group_key]
            lo, hi = bounds[group_key]
            means = np.stack([moments[req.key][0] for req in members])
            covs = np.stack([moments[req.key][1] for req in members])
            try:
                probs = gaussian_box_probabilities(means, covs, lo, hi)
            except ReproError as exc:
                for request in members:
                    self._fail(request, exc)
                continue
            for i, request in enumerate(members):
                self._finish(request, float(probs[i]))
