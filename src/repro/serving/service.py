"""In-process streaming moment-estimation service.

:class:`MomentService` is the single-process composition of the serving
stack: exactly one :class:`~repro.serving.worker.ShardWorker` (session
store + counters + grouped batch scorer, no write-ahead log) behind a
:class:`~repro.serving.queue.MicroBatchQueue` that coalesces concurrent
queries into stacked-kernel scoring passes.  The sharded deployment
(:class:`~repro.serving.router.ShardedMomentService`) replicates the same
worker N times behind a consistent-hash router; this class *is* the
``--shards 1`` reference it is gated against — state layout, counters,
eviction order, and checkpoint bytes are identical to the pre-shard
service.

Ingest is synchronous and cheap — an O(d^2) accumulator update under the
store lock; queries are where batching pays.  Three kinds are served:

``estimate``
    MAP ``(mu, Sigma)`` of the session, Eq. (31)–(32) from the session's
    sufficient statistics (prior mode while no data has arrived).
``loglik``
    Joint Gaussian log-likelihood of a sample block under the session's
    current MAP estimate.
``yield``
    Box-probability parametric yield of the session's MAP Gaussian
    against spec bounds (:mod:`repro.yieldest.parametric`).

Batched and per-request scoring share every formula
(:class:`~repro.serving.scoring.BatchScorer`), so the micro-batched
answers agree with the scalar path to floating-point rounding — the
equivalence suite pins 1e-10 against the one-shot
:class:`~repro.core.bmf.BMFEstimator`.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.core.estimators import MomentEstimate
from repro.core.prior import PriorKnowledge
from repro.exceptions import ConfigError
from repro.serving.checkpoint import load_checkpoint, save_checkpoint
from repro.serving.counters import ServiceCounters
from repro.serving.queue import MicroBatchQueue, Request
from repro.serving.sessions import Session, SessionStore
from repro.serving.worker import ShardWorker
from repro.stats.suffstats import SufficientStats

__all__ = ["MomentService", "ServiceCounters"]


class MomentService:
    """Long-running, in-process BMF estimation service.

    Parameters
    ----------
    max_sessions, ttl_ops:
        Session-store bounds (see :class:`~repro.serving.sessions.SessionStore`).
    max_batch, max_wait, max_pending, n_workers, seed:
        Micro-batching queue knobs (see
        :class:`~repro.serving.queue.MicroBatchQueue`).
    start_queue:
        ``False`` runs the service without the background collector —
        queries then go through the synchronous :meth:`query_many` path
        only (used by the offline CLI verbs and deterministic tests).
    linalg_backend:
        Kernel backend for the stacked scoring math (``"numpy"``,
        ``"numba"``, ``"auto"``; see
        :func:`repro.linalg.backends.use_kernel_backend`).  ``None``
        keeps the ambient process selection.  Not checkpointed: like the
        queue knobs it is runtime configuration, and the backends agree
        numerically, so a checkpoint scored under one backend restores
        cleanly under another.
    """

    #: Version tag stored inside checkpoint state.
    STATE_VERSION = ShardWorker.STATE_VERSION

    def __init__(
        self,
        max_sessions: int = 1024,
        ttl_ops: Optional[int] = None,
        max_batch: int = 64,
        max_wait: float = 0.002,
        max_pending: int = 4096,
        n_workers: Optional[int] = 1,
        seed: int = 0,
        start_queue: bool = True,
        linalg_backend: Optional[str] = None,
    ) -> None:
        self._worker = ShardWorker(
            shard_id=0,
            max_sessions=max_sessions,
            ttl_ops=ttl_ops,
            wal=None,
            linalg_backend=linalg_backend,
        )
        self._linalg_backend = linalg_backend
        self._queue: Optional[MicroBatchQueue] = None
        self._queue_config: Dict[str, Any] = {
            "max_batch": max_batch,
            "max_wait": max_wait,
            "max_pending": max_pending,
            "n_workers": n_workers,
            "seed": seed,
        }
        if start_queue:
            self._queue = MicroBatchQueue(self._handle_batch, **self._queue_config)

    # ------------------------------------------------------------------
    # worker delegation (store/counters stay public attributes)
    # ------------------------------------------------------------------
    @property
    def store(self) -> SessionStore:
        """The (single) shard's session store."""
        return self._worker.store

    @store.setter
    def store(self, value: SessionStore) -> None:
        self._worker.store = value

    @property
    def counters(self) -> ServiceCounters:
        """The (single) shard's counters."""
        return self._worker.counters

    # ------------------------------------------------------------------
    # session lifecycle + ingest
    # ------------------------------------------------------------------
    def create_session(
        self,
        key: str,
        prior: PriorKnowledge,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
        exist_ok: bool = False,
    ) -> Session:
        """Register a population with its early-stage prior.

        ``(kappa0, v0)`` default to the weakly-informative corner
        ``(1, d + 1)`` — streaming cannot re-run the paper's CV per die;
        pin values selected offline (e.g. by
        :class:`~repro.core.crossval.TwoDimensionalCV` on a pilot batch)
        for production use.
        """
        return self._worker.create_session(
            key, prior, kappa0=kappa0, v0=v0, exist_ok=exist_ok
        )

    def ingest(self, key: str, samples: ArrayLike) -> int:
        """Fold late-stage samples into a session; returns its new total."""
        return self._worker.ingest(key, samples)

    def ingest_stats(self, key: str, stats: SufficientStats) -> int:
        """Merge shard-local sufficient statistics (tester-side accumulation)."""
        return self._worker.ingest_stats(key, stats)

    def drop_session(self, key: str) -> bool:
        """Remove a session explicitly; returns whether it existed."""
        return self._worker.drop_session(key)

    def session_keys(self) -> List[str]:
        """Live session keys, sorted."""
        return self._worker.session_keys()

    # ------------------------------------------------------------------
    # queries — asynchronous (micro-batched) path
    # ------------------------------------------------------------------
    def submit(self, kind: str, key: str, payload: Any = None) -> "Future[Any]":
        """Enqueue a query on the micro-batching queue."""
        if self._queue is None:
            raise ConfigError(
                "service was started with start_queue=False; "
                "use query_many() for synchronous scoring"
            )
        self.counters.record_request(kind)
        return self._queue.submit(kind, key, payload)

    def estimate(self, key: str, timeout: Optional[float] = None) -> MomentEstimate:
        """Blocking MAP-estimate query for one session."""
        return self._blocking("estimate", key, None, timeout)

    def loglik(self, key: str, x: ArrayLike, timeout: Optional[float] = None) -> float:
        """Blocking log-likelihood query of ``x`` under the session's MAP."""
        return float(self._blocking("loglik", key, np.asarray(x, dtype=float), timeout))

    def yield_prob(
        self,
        key: str,
        lower: ArrayLike,
        upper: ArrayLike,
        timeout: Optional[float] = None,
    ) -> float:
        """Blocking parametric-yield query against spec box bounds."""
        payload = (
            np.asarray(lower, dtype=float),
            np.asarray(upper, dtype=float),
        )
        return float(self._blocking("yield", key, payload, timeout))

    def _blocking(
        self, kind: str, key: str, payload: Any, timeout: Optional[float]
    ) -> Any:
        if self._queue is None:
            return self.query_many([(kind, key, payload)])[0]
        return self.submit(kind, key, payload).result(timeout)

    # ------------------------------------------------------------------
    # queries — synchronous micro-batch path (same scoring code)
    # ------------------------------------------------------------------
    def query_many(self, queries: Sequence[Tuple[str, str, Any]]) -> List[Any]:
        """Score a list of ``(kind, key, payload)`` queries in one batch.

        Runs the identical grouped/stacked scoring the queue handler uses,
        without threads — the deterministic entry point for the CLI, the
        benchmarks, and the equivalence tests.  Raises the first request
        error encountered, in submission order.
        """
        return self._worker.query_many(queries)

    def _handle_batch(self, batch: List[Request], rng: np.random.Generator) -> None:
        """Queue handler: score a coalesced batch (rng reserved for future
        randomised scoring; current query kinds are deterministic)."""
        del rng
        self._worker.score_requests(batch)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: requests, sessions, queue, latency percentiles."""
        out = self.counters.snapshot()
        out["sessions_live"] = len(self.store)
        out["sessions_evicted"] = self.store.evictions
        out["store_clock"] = self.store.clock
        if self._queue is not None:
            queue = self._queue.counters()
            batches = queue["batches_dispatched"]
            queue_out: Dict[str, Any] = dict(queue)
            queue_out["mean_occupancy"] = (
                queue["occupancy_sum"] / batches if batches else None
            )
            out["queue"] = queue_out
        else:
            out["queue"] = None
        return out

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe service state (store + cumulative counters)."""
        return self._worker.state_dict()

    def checkpoint(self, path: Any) -> str:
        """Atomically snapshot the full service state; returns the sha256.

        The queue is flushed first so no accepted query is lost between
        the snapshot and a crash.
        """
        if self._queue is not None:
            self._queue.flush()
        return save_checkpoint(self.state_dict(), path)

    @classmethod
    def restore(
        cls,
        path: Any,
        max_batch: int = 64,
        max_wait: float = 0.002,
        max_pending: int = 4096,
        n_workers: Optional[int] = 1,
        seed: int = 0,
        start_queue: bool = True,
        linalg_backend: Optional[str] = None,
    ) -> "MomentService":
        """Rebuild a service from a checkpoint, bit-identically.

        Store contents, logical clock, LRU order, and cumulative counters
        all resume exactly; queue sizing is runtime configuration and is
        supplied fresh.
        """
        state = load_checkpoint(path)
        version = state.get("state_version")
        if version != cls.STATE_VERSION:
            raise ConfigError(
                f"checkpoint state_version {version!r} is not supported "
                f"(expected {cls.STATE_VERSION})"
            )
        try:
            store = SessionStore.from_dict(state["store"])
            counters_state = state["counters"]
        except KeyError as exc:
            raise ConfigError(f"checkpoint state missing field {exc}") from exc
        service = cls(
            max_batch=max_batch,
            max_wait=max_wait,
            max_pending=max_pending,
            n_workers=n_workers,
            seed=seed,
            start_queue=False,
            linalg_backend=linalg_backend,
        )
        service.store = store
        service.counters.load_state_dict(counters_state)
        if start_queue:
            service._queue = MicroBatchQueue(
                service._handle_batch,
                max_batch=max_batch,
                max_wait=max_wait,
                max_pending=max_pending,
                n_workers=n_workers,
                seed=seed,
            )
        return service

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop the micro-batching queue (idempotent)."""
        if self._queue is not None:
            self._queue.close(drain=True)
            self._queue = None

    def __enter__(self) -> "MomentService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
