"""In-process streaming moment-estimation service.

:class:`MomentService` composes the serving subsystem:

* a :class:`~repro.serving.sessions.SessionStore` holding one prior +
  live :class:`~repro.stats.suffstats.SufficientStats` accumulator per
  population (circuit / corner / tester shard),
* a :class:`~repro.serving.queue.MicroBatchQueue` that coalesces
  concurrent queries into stacked-kernel scoring passes,
* checkpoint / restore via :mod:`repro.serving.checkpoint`,
* built-in counters (request rates, batch occupancy, queue depth,
  evictions, p50/p99 latency) surfaced by :meth:`MomentService.stats`.

Ingest is synchronous and cheap — an O(d^2) accumulator update under the
store lock; queries are where batching pays.  Three kinds are served:

``estimate``
    MAP ``(mu, Sigma)`` of the session, Eq. (31)–(32) from the session's
    sufficient statistics (prior mode while no data has arrived).
``loglik``
    Joint Gaussian log-likelihood of a sample block under the session's
    current MAP estimate.
``yield``
    Box-probability parametric yield of the session's MAP Gaussian
    against spec bounds (:mod:`repro.yieldest.parametric`).

Batched and per-request scoring share every formula, so the micro-batched
answers agree with the scalar path to floating-point rounding — the
equivalence suite pins 1e-10 against the one-shot
:class:`~repro.core.bmf.BMFEstimator`.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.core.estimators import MomentEstimate
from repro.core.prior import PriorKnowledge
from repro.exceptions import (
    ConfigError,
    DimensionError,
    ReproError,
    SpecificationError,
)
from repro.linalg.backends import use_kernel_backend
from repro.linalg.batched import (
    cholesky_batched_safe,
    logdet_batched,
    solve_triangular_batched,
)
from repro.serving.checkpoint import load_checkpoint, save_checkpoint
from repro.serving.queue import QUERY_KINDS, MicroBatchQueue, Request
from repro.serving.sessions import Session, SessionStore
from repro.serving.suffstats import SufficientStats, map_moments_stack
from repro.yieldest.parametric import gaussian_box_probabilities

__all__ = ["MomentService", "ServiceCounters"]

_LOG_2PI = math.log(2.0 * math.pi)

#: Jitter/clip policy for batched covariance factorisation; identical to
#: :func:`repro.stats.multivariate_gaussian.gaussian_loglik_batch`.
_CHOL_JITTER = 1e-10
_CHOL_CLIP = 1e-10


class ServiceCounters:
    """Thread-safe service counters with a bounded latency ring."""

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {kind: 0 for kind in QUERY_KINDS}
        self.errors = 0
        self.ingest_calls = 0
        self.ingested_samples = 0
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))

    def record_request(self, kind: str) -> None:
        with self._lock:
            self.requests[kind] = self.requests.get(kind, 0) + 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_ingest(self, n_samples: int) -> None:
        with self._lock:
            self.ingest_calls += 1
            self.ingested_samples += int(n_samples)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(float(seconds))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe counter snapshot (latencies in milliseconds)."""
        with self._lock:
            requests = dict(self.requests)
            latencies = list(self._latencies)
            out: Dict[str, Any] = {
                "requests": requests,
                "requests_total": sum(requests.values()),
                "errors": self.errors,
                "ingest_calls": self.ingest_calls,
                "ingested_samples": self.ingested_samples,
            }
        if latencies:
            arr = np.asarray(latencies) * 1e3
            out["latency_ms_p50"] = float(np.percentile(arr, 50.0))
            out["latency_ms_p99"] = float(np.percentile(arr, 99.0))
            out["latency_samples"] = len(latencies)
        else:
            out["latency_ms_p50"] = None
            out["latency_ms_p99"] = None
            out["latency_samples"] = 0
        return out

    def state_dict(self) -> Dict[str, Any]:
        """Cumulative counters worth persisting (the latency ring is not)."""
        with self._lock:
            return {
                "requests": dict(self.requests),
                "errors": self.errors,
                "ingest_calls": self.ingest_calls,
                "ingested_samples": self.ingested_samples,
            }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self.requests = {str(k): int(v) for k, v in payload["requests"].items()}
            self.errors = int(payload["errors"])
            self.ingest_calls = int(payload["ingest_calls"])
            self.ingested_samples = int(payload["ingested_samples"])


class MomentService:
    """Long-running, in-process BMF estimation service.

    Parameters
    ----------
    max_sessions, ttl_ops:
        Session-store bounds (see :class:`~repro.serving.sessions.SessionStore`).
    max_batch, max_wait, max_pending, n_workers, seed:
        Micro-batching queue knobs (see
        :class:`~repro.serving.queue.MicroBatchQueue`).
    start_queue:
        ``False`` runs the service without the background collector —
        queries then go through the synchronous :meth:`query_many` path
        only (used by the offline CLI verbs and deterministic tests).
    linalg_backend:
        Kernel backend for the stacked scoring math (``"numpy"``,
        ``"numba"``, ``"auto"``; see
        :func:`repro.linalg.backends.use_kernel_backend`).  ``None``
        keeps the ambient process selection.  Not checkpointed: like the
        queue knobs it is runtime configuration, and the backends agree
        numerically, so a checkpoint scored under one backend restores
        cleanly under another.
    """

    #: Version tag stored inside checkpoint state.
    STATE_VERSION = 1

    def __init__(
        self,
        max_sessions: int = 1024,
        ttl_ops: Optional[int] = None,
        max_batch: int = 64,
        max_wait: float = 0.002,
        max_pending: int = 4096,
        n_workers: Optional[int] = 1,
        seed: int = 0,
        start_queue: bool = True,
        linalg_backend: Optional[str] = None,
    ) -> None:
        self.store = SessionStore(max_sessions=max_sessions, ttl_ops=ttl_ops)
        self.counters = ServiceCounters()
        self._linalg_backend = linalg_backend
        self._queue: Optional[MicroBatchQueue] = None
        self._queue_config: Dict[str, Any] = {
            "max_batch": max_batch,
            "max_wait": max_wait,
            "max_pending": max_pending,
            "n_workers": n_workers,
            "seed": seed,
        }
        if start_queue:
            self._queue = MicroBatchQueue(self._handle_batch, **self._queue_config)

    # ------------------------------------------------------------------
    # session lifecycle + ingest
    # ------------------------------------------------------------------
    def create_session(
        self,
        key: str,
        prior: PriorKnowledge,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
        exist_ok: bool = False,
    ) -> Session:
        """Register a population with its early-stage prior.

        ``(kappa0, v0)`` default to the weakly-informative corner
        ``(1, d + 1)`` — streaming cannot re-run the paper's CV per die;
        pin values selected offline (e.g. by
        :class:`~repro.core.crossval.TwoDimensionalCV` on a pilot batch)
        for production use.
        """
        k0 = 1.0 if kappa0 is None else float(kappa0)
        nu0 = float(prior.dim) + 1.0 if v0 is None else float(v0)
        return self.store.create(key, prior, k0, nu0, exist_ok=exist_ok)

    def ingest(self, key: str, samples: ArrayLike) -> int:
        """Fold late-stage samples into a session; returns its new total."""
        arr = np.asarray(samples, dtype=float)
        count = 1 if arr.ndim == 1 else arr.shape[0]
        total = self.store.ingest(key, arr)
        self.counters.record_ingest(count)
        return total

    def ingest_stats(self, key: str, stats: SufficientStats) -> int:
        """Merge shard-local sufficient statistics (tester-side accumulation)."""
        total = self.store.ingest_stats(key, stats)
        self.counters.record_ingest(stats.n)
        return total

    # ------------------------------------------------------------------
    # queries — asynchronous (micro-batched) path
    # ------------------------------------------------------------------
    def submit(self, kind: str, key: str, payload: Any = None) -> "Future[Any]":
        """Enqueue a query on the micro-batching queue."""
        if self._queue is None:
            raise ConfigError(
                "service was started with start_queue=False; "
                "use query_many() for synchronous scoring"
            )
        self.counters.record_request(kind)
        return self._queue.submit(kind, key, payload)

    def estimate(self, key: str, timeout: Optional[float] = None) -> MomentEstimate:
        """Blocking MAP-estimate query for one session."""
        return self._blocking("estimate", key, None, timeout)

    def loglik(self, key: str, x: ArrayLike, timeout: Optional[float] = None) -> float:
        """Blocking log-likelihood query of ``x`` under the session's MAP."""
        return float(self._blocking("loglik", key, np.asarray(x, dtype=float), timeout))

    def yield_prob(
        self,
        key: str,
        lower: ArrayLike,
        upper: ArrayLike,
        timeout: Optional[float] = None,
    ) -> float:
        """Blocking parametric-yield query against spec box bounds."""
        payload = (
            np.asarray(lower, dtype=float),
            np.asarray(upper, dtype=float),
        )
        return float(self._blocking("yield", key, payload, timeout))

    def _blocking(
        self, kind: str, key: str, payload: Any, timeout: Optional[float]
    ) -> Any:
        if self._queue is None:
            return self.query_many([(kind, key, payload)])[0]
        return self.submit(kind, key, payload).result(timeout)

    # ------------------------------------------------------------------
    # queries — synchronous micro-batch path (same scoring code)
    # ------------------------------------------------------------------
    def query_many(self, queries: Sequence[Tuple[str, str, Any]]) -> List[Any]:
        """Score a list of ``(kind, key, payload)`` queries in one batch.

        Runs the identical grouped/stacked scoring the queue handler uses,
        without threads — the deterministic entry point for the CLI, the
        benchmarks, and the equivalence tests.  Raises the first request
        error encountered, in submission order.
        """
        requests: List[Request] = []
        now = time.perf_counter()
        for kind, key, payload in queries:
            if kind not in QUERY_KINDS:
                raise ConfigError(
                    f"unknown request kind {kind!r}; expected {QUERY_KINDS}"
                )
            self.counters.record_request(kind)
            requests.append(
                Request(kind=kind, key=str(key), payload=payload, submitted_at=now)
            )
        self._score_requests(requests)
        return [request.future.result() for request in requests]

    # ------------------------------------------------------------------
    # batch scoring core
    # ------------------------------------------------------------------
    def _handle_batch(self, batch: List[Request], rng: np.random.Generator) -> None:
        """Queue handler: score a coalesced batch (rng reserved for future
        randomised scoring; current query kinds are deterministic)."""
        del rng
        self._score_requests(batch)

    def _fail(self, request: Request, exc: BaseException) -> None:
        self.counters.record_error()
        if not request.future.done():
            request.future.set_exception(exc)

    def _score_requests(self, requests: List[Request]) -> None:
        """Answer every request, grouping work into stacked-kernel calls."""
        with use_kernel_backend(self._linalg_backend):
            self._score_requests_impl(requests)

    def _score_requests_impl(self, requests: List[Request]) -> None:
        # 1. snapshot each distinct session once (consistent view per batch)
        sessions: Dict[str, Session] = {}
        live: List[Request] = []
        for request in requests:
            if request.key not in sessions:
                try:
                    sessions[request.key] = self.store.snapshot([request.key])[0]
                except ReproError as exc:
                    self._fail(request, exc)
                    continue
            live.append(request)

        # drop requests whose key failed to snapshot on a *later* request
        live = [r for r in live if r.key in sessions]
        if not live:
            return

        # 2. one stacked MAP pass per distinct metric dimension
        keys_by_dim: Dict[int, List[str]] = {}
        for key in sessions:
            keys_by_dim.setdefault(sessions[key].dim, []).append(key)
        moments: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for dim in sorted(keys_by_dim):
            keys = keys_by_dim[dim]
            group = [sessions[key] for key in keys]
            try:
                mu, sigma = map_moments_stack(
                    np.stack([s.prior.mean for s in group]),
                    np.stack([s.prior.covariance for s in group]),
                    np.asarray([s.kappa0 for s in group]),
                    np.asarray([s.v0 for s in group]),
                    np.asarray([s.stats.n for s in group]),
                    np.stack([s.stats.mean for s in group]),
                    np.stack([s.stats.scatter for s in group]),
                )
            except ReproError as exc:
                bad = set(keys)
                for request in live:
                    if request.key in bad:
                        self._fail(request, exc)
                live = [r for r in live if r.key not in bad]
                continue
            for i, key in enumerate(keys):
                moments[key] = (mu[i], sigma[i])

        # 3. answer by kind
        for request in live:
            if request.kind == "estimate":
                mean, cov = moments[request.key]
                session = sessions[request.key]
                self._finish(
                    request,
                    MomentEstimate(
                        mean=mean,
                        covariance=cov,
                        n_samples=session.stats.n,
                        method="bmf",
                        info={
                            "kappa0": session.kappa0,
                            "v0": session.v0,
                            "serving": True,
                        },
                    ),
                )
        self._score_loglik(
            [r for r in live if r.kind == "loglik"], sessions, moments
        )
        self._score_yield(
            [r for r in live if r.kind == "yield"], sessions, moments
        )

    def _finish(self, request: Request, result: Any) -> None:
        if not request.future.done():
            request.future.set_result(result)
        if request.submitted_at > 0.0:
            self.counters.record_latency(time.perf_counter() - request.submitted_at)

    def _score_loglik(
        self,
        requests: List[Request],
        sessions: Dict[str, Session],
        moments: Dict[str, Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Grouped log-likelihood: one Cholesky stack per ``(d, n)`` shape.

        Mirrors :func:`repro.stats.multivariate_gaussian.gaussian_loglik_batch`
        — same repair ladder, same per-row-then-sum accumulation order —
        but with a *per-request* sample block instead of one shared one.
        """
        groups: Dict[Tuple[int, int], List[Tuple[Request, np.ndarray]]] = {}
        for request in requests:
            session = sessions[request.key]
            try:
                x = np.asarray(request.payload, dtype=float)
                if x.ndim == 1:
                    x = x[None, :]
                if x.ndim != 2 or x.shape[1] != session.dim:
                    raise DimensionError(
                        f"loglik payload must be (n, {session.dim}), "
                        f"got shape {np.asarray(request.payload).shape}"
                    )
                if x.shape[0] == 0:
                    raise DimensionError("loglik payload must contain >= 1 row")
            except (ReproError, TypeError, ValueError) as exc:
                self._fail(request, exc)
                continue
            groups.setdefault((session.dim, x.shape[0]), []).append((request, x))

        for dim, n_rows in sorted(groups):
            members = groups[(dim, n_rows)]
            covs = np.stack([moments[req.key][1] for req, _ in members])
            means = np.stack([moments[req.key][0] for req, _ in members])
            xs = np.stack([x for _, x in members])
            chol, ok = cholesky_batched_safe(
                covs, jitter_rel=_CHOL_JITTER, clip_floor_rel=_CHOL_CLIP
            )
            out = np.full(len(members), -np.inf)
            sel = np.flatnonzero(ok)
            if sel.size:
                diffs = np.swapaxes(xs[sel] - means[sel][:, None, :], -1, -2)
                z = solve_triangular_batched(chol[sel], diffs, lower=True)
                maha = np.sum(z * z, axis=1)
                log_det = logdet_batched(chol[sel])
                logpdf = -0.5 * (dim * _LOG_2PI + log_det[:, None] + maha)
                out[sel] = logpdf.sum(axis=1)
            for i, (request, _) in enumerate(members):
                self._finish(request, float(out[i]))

    def _score_yield(
        self,
        requests: List[Request],
        sessions: Dict[str, Session],
        moments: Dict[str, Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Grouped box-probability yield: one stacked call per bounds set."""
        groups: Dict[Tuple[float, ...], List[Request]] = {}
        bounds: Dict[Tuple[float, ...], Tuple[np.ndarray, np.ndarray]] = {}
        for request in requests:
            session = sessions[request.key]
            try:
                lower, upper = request.payload
                lo = np.atleast_1d(np.asarray(lower, dtype=float))
                hi = np.atleast_1d(np.asarray(upper, dtype=float))
                if lo.shape != (session.dim,) or hi.shape != (session.dim,):
                    raise SpecificationError(
                        f"yield bounds must be length-{session.dim} vectors"
                    )
                if np.any(lo >= hi):
                    raise SpecificationError("yield bounds must satisfy lower < upper")
            except (ReproError, TypeError, ValueError) as exc:
                self._fail(request, exc)
                continue
            group_key = tuple(lo.tolist()) + tuple(hi.tolist())
            groups.setdefault(group_key, []).append(request)
            bounds[group_key] = (lo, hi)

        for group_key in sorted(groups):
            members = groups[group_key]
            lo, hi = bounds[group_key]
            means = np.stack([moments[req.key][0] for req in members])
            covs = np.stack([moments[req.key][1] for req in members])
            try:
                probs = gaussian_box_probabilities(means, covs, lo, hi)
            except ReproError as exc:
                for request in members:
                    self._fail(request, exc)
                continue
            for i, request in enumerate(members):
                self._finish(request, float(probs[i]))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: requests, sessions, queue, latency percentiles."""
        out = self.counters.snapshot()
        out["sessions_live"] = len(self.store)
        out["sessions_evicted"] = self.store.evictions
        out["store_clock"] = self.store.clock
        if self._queue is not None:
            queue = self._queue.counters()
            batches = queue["batches_dispatched"]
            queue_out: Dict[str, Any] = dict(queue)
            queue_out["mean_occupancy"] = (
                queue["occupancy_sum"] / batches if batches else None
            )
            out["queue"] = queue_out
        else:
            out["queue"] = None
        return out

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe service state (store + cumulative counters)."""
        return {
            "state_version": self.STATE_VERSION,
            "store": self.store.to_dict(),
            "counters": self.counters.state_dict(),
        }

    def checkpoint(self, path: Any) -> str:
        """Atomically snapshot the full service state; returns the sha256.

        The queue is flushed first so no accepted query is lost between
        the snapshot and a crash.
        """
        if self._queue is not None:
            self._queue.flush()
        return save_checkpoint(self.state_dict(), path)

    @classmethod
    def restore(
        cls,
        path: Any,
        max_batch: int = 64,
        max_wait: float = 0.002,
        max_pending: int = 4096,
        n_workers: Optional[int] = 1,
        seed: int = 0,
        start_queue: bool = True,
        linalg_backend: Optional[str] = None,
    ) -> "MomentService":
        """Rebuild a service from a checkpoint, bit-identically.

        Store contents, logical clock, LRU order, and cumulative counters
        all resume exactly; queue sizing is runtime configuration and is
        supplied fresh.
        """
        state = load_checkpoint(path)
        version = state.get("state_version")
        if version != cls.STATE_VERSION:
            raise ConfigError(
                f"checkpoint state_version {version!r} is not supported "
                f"(expected {cls.STATE_VERSION})"
            )
        try:
            store = SessionStore.from_dict(state["store"])
            counters_state = state["counters"]
        except KeyError as exc:
            raise ConfigError(f"checkpoint state missing field {exc}") from exc
        service = cls(
            max_batch=max_batch,
            max_wait=max_wait,
            max_pending=max_pending,
            n_workers=n_workers,
            seed=seed,
            start_queue=False,
            linalg_backend=linalg_backend,
        )
        service.store = store
        service.counters.load_state_dict(counters_state)
        if start_queue:
            service._queue = MicroBatchQueue(
                service._handle_batch,
                max_batch=max_batch,
                max_wait=max_wait,
                max_pending=max_pending,
                n_workers=n_workers,
                seed=seed,
            )
        return service

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop the micro-batching queue (idempotent)."""
        if self._queue is not None:
            self._queue.close(drain=True)
            self._queue = None

    def __enter__(self) -> "MomentService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
