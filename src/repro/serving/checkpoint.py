"""Atomic checkpoint / restore of full serving state.

A long-running estimation service accumulates state that is expensive or
impossible to regenerate (silicon measurements trickle in once); the
checkpoint makes it durable with three guarantees:

* **Exactness** — sufficient statistics, priors, logical clocks, and
  counters are serialized as JSON floats, which round-trip IEEE-754
  doubles bit-for-bit (``float.__repr__`` is shortest-round-trip), so a
  restored service answers queries *bit-identically* to the uninterrupted
  one — TTL eviction decisions included, because time is logical.
* **Integrity** — the payload carries a sha256 over its canonical JSON
  encoding; a flipped bit or truncated file fails loudly at load.
* **Crash safety** — writes go to a temporary file in the target
  directory, are fsync'd, then atomically renamed over the destination;
  a crash mid-write leaves the previous checkpoint intact.

Versioning follows the :mod:`repro.io` result-schema convention: a
``schema`` marker plus an integer ``schema_version`` checked through
:func:`repro.io.check_schema_version`, so files written by a newer layout
are rejected with :class:`~repro.exceptions.SchemaVersionError` instead
of being misdecoded.

**Interaction with group-committed WALs** — when the serving layer runs
a write-ahead log with group commit (``flush_records``/``flush_bytes``
> 1 record), acknowledged records may still sit in the WAL's in-memory
buffer. Checkpoint writers MUST therefore call ``wal.sync()`` (flush +
fsync) *before* ``save_checkpoint`` so the durable WAL prefix covers
every mutation captured in the checkpointed state; the shard workers in
:mod:`repro.serving.worker` enforce this ordering. Without the barrier a
crash between checkpoint and WAL flush could leave a checkpoint that
references seqnos the log never persisted, breaking replay-from-
checkpoint recovery.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import ConfigError
from repro.io import canonical_json, check_schema_version, write_json_atomic
from repro.schemas import CHECKPOINT_SCHEMA

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMA_VERSION",
    "save_checkpoint",
    "load_checkpoint",
]

PathLike = Union[str, Path]

#: ``CHECKPOINT_SCHEMA`` (re-exported above) comes from :mod:`repro.schemas`,
#: the single source of truth for artefact version markers.

#: Structural version; bump on any breaking change to the state layout.
CHECKPOINT_SCHEMA_VERSION = 1


def _digest(state: Dict[str, Any]) -> str:
    """sha256 over the canonical encoding of the versioned state."""
    document = {
        "schema": CHECKPOINT_SCHEMA,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "state": state,
    }
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def save_checkpoint(state: Dict[str, Any], path: PathLike) -> str:
    """Write a service state dictionary atomically; returns the sha256.

    ``state`` is what :meth:`repro.serving.service.MomentService.state_dict`
    produces (the function itself is agnostic — any JSON-safe dict works,
    which keeps it testable in isolation).
    """
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "sha256": _digest(state),
        "state": state,
    }
    write_json_atomic(payload, path)
    return str(payload["sha256"])


def load_checkpoint(path: PathLike) -> Dict[str, Any]:
    """Read, verify, and return the state dictionary of a checkpoint.

    Raises
    ------
    ConfigError
        Not a checkpoint file, or the sha256 does not match (corruption,
        truncation, or manual edits).
    SchemaVersionError
        The file declares a version this reader does not support.
    """
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"checkpoint {target} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != CHECKPOINT_SCHEMA:
        raise ConfigError(
            f"{target} is not a serving checkpoint "
            f"(schema {payload.get('schema') if isinstance(payload, dict) else None!r}, "
            f"expected {CHECKPOINT_SCHEMA!r})"
        )
    check_schema_version(payload, CHECKPOINT_SCHEMA_VERSION, "serving checkpoint")
    state = payload.get("state")
    if not isinstance(state, dict):
        raise ConfigError(f"checkpoint {target} has no state dictionary")
    declared = payload.get("sha256")
    actual = _digest(state)
    if declared != actual:
        raise ConfigError(
            f"checkpoint {target} failed integrity verification "
            f"(declared sha256 {declared!r}, computed {actual!r})"
        )
    return state
