"""Keyed session store: one live normal-Wishart state per population.

A *session* is the serving unit of isolation — one per circuit, corner,
or measured chip population — holding the early-stage prior, the pinned
hyper-parameters ``(kappa0, v0)``, and the live
:class:`~repro.stats.suffstats.SufficientStats` accumulator.  Ingest is
an O(d^2) accumulator update; queries read a consistent snapshot.

The store bounds its memory two ways:

* **Capacity** — at most ``max_sessions`` live sessions; creating one
  more evicts the least-recently-used session.
* **TTL** — sessions idle for more than ``ttl_ops`` *store operations*
  are evicted lazily on the next operation.

Time is a **logical operation counter**, not the wall clock: reprolint's
determinism rule (RPL006) bans wall-clock reads in ``src/repro``, and a
logical clock buys something better in return — eviction decisions are a
pure function of the operation history, so a checkpoint restored from
:mod:`repro.serving.checkpoint` resumes *bit-identically*, evictions
included.

All public methods are thread-safe (one re-entrant lock; every operation
is short and O(d^2) at worst).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.core.bmf import map_moments_from_stats
from repro.core.prior import PriorKnowledge
from repro.exceptions import ConfigError, DimensionError, SessionNotFoundError
from repro.stats.suffstats import SufficientStats

__all__ = ["Session", "SessionStore"]


class Session:
    """Live fusion state for one population (prior + accumulator)."""

    __slots__ = ("key", "prior", "kappa0", "v0", "stats", "created_op", "last_used_op")

    def __init__(
        self,
        key: str,
        prior: PriorKnowledge,
        kappa0: float,
        v0: float,
        created_op: int = 0,
    ) -> None:
        if kappa0 <= 0.0:
            raise ConfigError(f"kappa0 must be > 0, got {kappa0}")
        if v0 <= prior.dim:
            raise ConfigError(f"v0 must exceed d = {prior.dim}, got {v0}")
        self.key = str(key)
        self.prior = prior
        self.kappa0 = float(kappa0)
        self.v0 = float(v0)
        self.stats = SufficientStats.empty(prior.dim)
        self.created_op = int(created_op)
        self.last_used_op = int(created_op)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of metrics ``d``."""
        return self.prior.dim

    @property
    def n_ingested(self) -> int:
        """Late-stage samples folded in so far."""
        return self.stats.n

    def ingest(self, samples: ArrayLike) -> int:
        """Fold an ``(n, d)`` block (or a single ``d``-vector) in.

        Returns the new total sample count.  A 1-D input is treated as a
        single observation and takes the Welford single-sample path —
        byte-for-byte the update a tester trickling in one die at a time
        produces.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.ndim == 1:
            self.stats.push(arr)
        else:
            self.stats.push_batch(arr)
        return self.stats.n

    def ingest_stats(self, stats: SufficientStats) -> int:
        """Merge shard-local statistics (Chan merge); returns the new total."""
        self.stats.merge(stats)
        return self.stats.n

    def map_moments(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current MAP ``(mu, Sigma)`` via the shared Eq. 31–32 arithmetic."""
        return map_moments_from_stats(self.prior, self.stats, self.kappa0, self.v0)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe state (float64 survives the round trip bit-for-bit)."""
        return {
            "key": self.key,
            "prior_mean": self.prior.mean.tolist(),
            "prior_covariance": self.prior.covariance.tolist(),
            "prior_n_samples": int(self.prior.n_samples),
            "kappa0": self.kappa0,
            "v0": self.v0,
            "stats": self.stats.to_dict(),
            "created_op": self.created_op,
            "last_used_op": self.last_used_op,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Session":
        """Inverse of :meth:`to_dict`."""
        try:
            prior = PriorKnowledge(
                mean=np.asarray(payload["prior_mean"], dtype=float),
                covariance=np.asarray(payload["prior_covariance"], dtype=float),
                n_samples=int(payload["prior_n_samples"]),
            )
            session = cls(
                key=str(payload["key"]),
                prior=prior,
                kappa0=float(payload["kappa0"]),
                v0=float(payload["v0"]),
                created_op=int(payload["created_op"]),
            )
            session.last_used_op = int(payload["last_used_op"])
            session.stats = SufficientStats.from_dict(payload["stats"])
        except KeyError as exc:
            raise ConfigError(f"session payload missing field {exc}") from exc
        if session.stats.dim != prior.dim:
            raise DimensionError(
                f"session {session.key!r}: stats dim {session.stats.dim} "
                f"does not match prior dim {prior.dim}"
            )
        return session

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Session(key={self.key!r}, d={self.dim}, n={self.n_ingested})"


class SessionStore:
    """Bounded, TTL-evicting map from session key to :class:`Session`.

    Parameters
    ----------
    max_sessions:
        Hard capacity; creating session ``max_sessions + 1`` evicts the
        least-recently-used one.
    ttl_ops:
        Idle lifetime measured in store operations (logical clock ticks).
        ``None`` disables TTL eviction.  A session whose last use is more
        than ``ttl_ops`` ticks in the past is evicted lazily on the next
        store operation.
    """

    def __init__(self, max_sessions: int = 1024, ttl_ops: Optional[int] = None) -> None:
        if max_sessions < 1:
            raise ConfigError(f"max_sessions must be >= 1, got {max_sessions}")
        if ttl_ops is not None and ttl_ops < 1:
            raise ConfigError(f"ttl_ops must be >= 1 or None, got {ttl_ops}")
        self.max_sessions = int(max_sessions)
        self.ttl_ops = None if ttl_ops is None else int(ttl_ops)
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._lock = threading.RLock()
        self._clock = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # logical time + eviction
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Current logical operation count."""
        return self._clock

    def _tick_locked(self) -> int:
        """Advance logical time and apply lazy TTL eviction (lock held)."""
        self._clock += 1
        if self.ttl_ops is not None:
            horizon = self._clock - self.ttl_ops
            # OrderedDict is kept in LRU order, so expired sessions sit at
            # the front; stop at the first live one.
            while self._sessions:
                oldest = next(iter(self._sessions.values()))
                if oldest.last_used_op >= horizon:
                    break
                del self._sessions[oldest.key]
                self.evictions += 1
        return self._clock

    def _touch_locked(self, session: Session) -> Session:
        """Refresh recency of ``session`` (lock held)."""
        session.last_used_op = self._clock
        self._sessions.move_to_end(session.key)
        return session

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------
    def create(
        self,
        key: str,
        prior: PriorKnowledge,
        kappa0: float,
        v0: float,
        exist_ok: bool = False,
    ) -> Session:
        """Create (and register) a session; evicts LRU on overflow.

        With ``exist_ok`` the existing session is returned untouched when
        the key is already live (idempotent create for retrying clients).
        """
        with self._lock:
            op = self._tick_locked()
            existing = self._sessions.get(key)
            if existing is not None:
                if exist_ok:
                    return self._touch_locked(existing)
                raise ConfigError(f"session {key!r} already exists")
            session = Session(key, prior, kappa0, v0, created_op=op)
            self._sessions[key] = session
            self._touch_locked(session)
            while len(self._sessions) > self.max_sessions:
                evicted_key, _ = self._sessions.popitem(last=False)
                self.evictions += 1
                del evicted_key
            return session

    def get(self, key: str) -> Session:
        """Look a session up, refreshing its recency; raises if absent."""
        with self._lock:
            self._tick_locked()
            session = self._sessions.get(key)
            if session is None:
                raise SessionNotFoundError(
                    f"no session {key!r} (never created, or evicted)"
                )
            return self._touch_locked(session)

    def drop(self, key: str) -> bool:
        """Remove a session explicitly; returns whether it existed."""
        with self._lock:
            self._tick_locked()
            return self._sessions.pop(key, None) is not None

    def keys(self) -> List[str]:
        """Live session keys, sorted (deterministic listing order)."""
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._sessions

    # ------------------------------------------------------------------
    # bulk/shard operations
    # ------------------------------------------------------------------
    def ingest(self, key: str, samples: ArrayLike) -> int:
        """Fold samples into a session under the store lock."""
        with self._lock:
            return self.get(key).ingest(samples)

    def ingest_stats(self, key: str, stats: SufficientStats) -> int:
        """Merge shard-local sufficient statistics into a session."""
        with self._lock:
            return self.get(key).ingest_stats(stats)

    def snapshot(self, keys: List[str]) -> List[Session]:
        """Consistent per-key snapshots for batched scoring.

        Returns detached copies (prior objects are immutable and shared;
        the accumulator is deep-copied) so scoring reads a frozen state
        while ingest keeps running.
        """
        with self._lock:
            out: List[Session] = []
            for key in keys:
                live = self.get(key)
                frozen = Session(
                    live.key, live.prior, live.kappa0, live.v0, live.created_op
                )
                frozen.last_used_op = live.last_used_op
                frozen.stats = live.stats.copy()
                out.append(frozen)
            return out

    # ------------------------------------------------------------------
    # serialization (exact)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Full store state in LRU order (order is part of the state —
        a restored store must make identical eviction decisions)."""
        with self._lock:
            return {
                "max_sessions": self.max_sessions,
                "ttl_ops": self.ttl_ops,
                "clock": self._clock,
                "evictions": self.evictions,
                "sessions": [s.to_dict() for s in self._sessions.values()],
            }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SessionStore":
        """Inverse of :meth:`to_dict` (bit-identical resume)."""
        try:
            store = cls(
                max_sessions=int(payload["max_sessions"]),
                ttl_ops=payload["ttl_ops"],
            )
            store._clock = int(payload["clock"])
            store.evictions = int(payload["evictions"])
            for entry in payload["sessions"]:
                session = Session.from_dict(entry)
                store._sessions[session.key] = session
        except KeyError as exc:
            raise ConfigError(f"session store payload missing field {exc}") from exc
        return store
