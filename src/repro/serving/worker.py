"""Shard worker: one session-store slice + write-ahead log + batch scorer.

A :class:`ShardWorker` is the unit the sharded serving stack replicates:
it owns one :class:`~repro.serving.sessions.SessionStore` slice, its own
:class:`~repro.serving.counters.ServiceCounters`, a
:class:`~repro.serving.scoring.BatchScorer`, and (optionally) a
:class:`~repro.serving.wal.WriteAheadLog`.  The single-process
:class:`~repro.serving.service.MomentService` is exactly one worker with
a micro-batch queue in front; the shard router owns N of them.

**Log-then-apply.**  Every state mutation — session create/drop, ingest,
statistics merge, and the logical-clock ticks queries cause ("touch"
records) — is appended to the WAL *before* it is applied to the store.
Because the store's eviction clock is logical (one tick per store
operation) and every numerical update is a deterministic function of the
op sequence, :meth:`ShardWorker.replay` of a verified log reproduces the
shard's ``state_dict`` **bit-identically**: same statistics, same LRU
order, same eviction decisions, same ingest counters.  Failed operations
are part of that contract: a lookup of a missing key ticks the clock and
*then* raises, so replay applies each record and swallows
:class:`~repro.exceptions.ReproError` — the tick is reproduced, the error
is not re-raised.  ``touch`` records carry one key per request in
submission order (duplicates included) because the scorer re-attempts a
failed snapshot on every later request naming that key, ticking the
clock each time; replay reproduces exactly that attempt pattern.

Two pieces of live state are deliberately **not** replayed: the error
counter (scoring errors depend on request payloads the WAL does not
carry) and the latency ring (it measures the process, not the logical
state).  Both are excluded from — or constant in — checkpoint state for
error-free streams, which is what the sha-identity recovery tests pin.

**Checkpoint / WAL interplay.**  ``state_dict`` of a WAL-attached worker
records the log sequence number it covers; :meth:`restore` replays only
records *after* that offset, and :meth:`compact` truncates the replayed
prefix once a checkpoint covers it (crash between checkpoint and
truncation just replays a little more — replay is idempotent from a
covered checkpoint).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.typing import ArrayLike

from repro.core.prior import PriorKnowledge
from repro.exceptions import ConfigError, ReproError, SessionNotFoundError
from repro.serving.checkpoint import load_checkpoint, save_checkpoint
from repro.serving.counters import ServiceCounters
from repro.serving.queue import QUERY_KINDS, Request
from repro.serving.scoring import BatchScorer
from repro.serving.sessions import Session, SessionStore
from repro.serving.suffstats import SufficientStats
from repro.serving.wal import WalRecord, WriteAheadLog

__all__ = ["ShardWorker"]


class ShardWorker:
    """One shard of the serving state: store + counters + scorer (+ WAL).

    Parameters
    ----------
    shard_id:
        Stable identity of this slice (also stamped into its WAL header).
    max_sessions, ttl_ops:
        Store bounds, per shard (see
        :class:`~repro.serving.sessions.SessionStore`).
    wal:
        Optional write-ahead log this worker appends to before every
        mutation.  ``None`` (the default, and what ``MomentService``
        uses) keeps behaviour *and checkpoint bytes* identical to the
        pre-shard service.  An attached log without an observer gets this
        worker's counters as its observer, so WAL append/flush gauges
        surface through :meth:`stats`.
    wal_delta_rows:
        Optional suffstats-delta threshold: a 2-D ingest block with at
        least this many rows is logged as its
        :class:`~repro.serving.suffstats.SufficientStats` — ``O(d^2)``
        per record — instead of the raw ``O(n·d)`` samples, and applied
        through the same statistics merge live and on replay.  Because
        ``store.ingest`` folds a 2-D block in as exactly one Chan merge
        of ``SufficientStats.from_samples(block)`` (one clock tick,
        identical arithmetic), the delta path is **bit-identical** to raw
        logging, not merely close.  ``None`` (default) always logs raw
        samples; 1-D single-sample ingests always log raw (the Welford
        path stays shape-faithful).
    linalg_backend:
        Kernel backend for the stacked scoring math (``None`` keeps the
        ambient process selection).
    """

    #: Version tag stored inside checkpoint state.
    STATE_VERSION = 1

    def __init__(
        self,
        shard_id: int = 0,
        max_sessions: int = 1024,
        ttl_ops: Optional[int] = None,
        wal: Optional[WriteAheadLog] = None,
        wal_delta_rows: Optional[int] = None,
        linalg_backend: Optional[str] = None,
    ) -> None:
        if wal_delta_rows is not None and int(wal_delta_rows) < 1:
            raise ConfigError(
                f"wal_delta_rows must be >= 1 when set, got {wal_delta_rows}"
            )
        self.shard_id = int(shard_id)
        self.store = SessionStore(max_sessions=max_sessions, ttl_ops=ttl_ops)
        self.counters = ServiceCounters()
        self.wal = wal
        self.wal_delta_rows = None if wal_delta_rows is None else int(wal_delta_rows)
        if wal is not None and wal.observer is None:
            wal.observer = self.counters
        self.scorer = BatchScorer(self.counters, linalg_backend=linalg_backend)

    # ------------------------------------------------------------------
    # session lifecycle + ingest (log-then-apply)
    # ------------------------------------------------------------------
    def create_session(
        self,
        key: str,
        prior: PriorKnowledge,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
        exist_ok: bool = False,
    ) -> Session:
        """Register a population with its early-stage prior.

        ``(kappa0, v0)`` default to the weakly-informative corner
        ``(1, d + 1)``; the *resolved* values are what the WAL records, so
        replay does not depend on default-resolution code paths.
        """
        k0 = 1.0 if kappa0 is None else float(kappa0)
        nu0 = float(prior.dim) + 1.0 if v0 is None else float(v0)
        if self.wal is not None:
            self.wal.append(
                "create",
                {
                    "key": str(key),
                    "prior_mean": prior.mean,
                    "prior_covariance": prior.covariance,
                    "prior_n_samples": int(prior.n_samples),
                    "kappa0": k0,
                    "v0": nu0,
                    "exist_ok": bool(exist_ok),
                },
            )
        return self.store.create(key, prior, k0, nu0, exist_ok=exist_ok)

    def ingest(self, key: str, samples: ArrayLike) -> int:
        """Fold late-stage samples into a session; returns its new total.

        The WAL record preserves the array's dimensionality: a 1-D vector
        replays down the Welford single-sample path and an ``(n, d)``
        block down the Chan block-merge path, which differ in rounding —
        shape is part of the bit-identity contract.  When
        ``wal_delta_rows`` is set and the block clears it, the record
        carries the block's sufficient statistics instead of the samples
        (``O(d^2)`` vs ``O(n·d)``) and the live apply goes through the
        identical statistics merge — same tick, same arithmetic, same
        bits.
        """
        arr = np.asarray(samples, dtype=float)
        if (
            self.wal is not None
            and self.wal_delta_rows is not None
            and arr.ndim == 2
            and arr.shape[0] >= self.wal_delta_rows
        ):
            # validate + summarize *before* logging: a bad block must
            # leave neither a record nor a clock tick behind
            stats = SufficientStats.from_samples(arr)
            return self.ingest_stats(key, stats)
        count = 1 if arr.ndim == 1 else arr.shape[0]
        if self.wal is not None:
            self.wal.append("ingest", {"key": str(key), "samples": arr})
        total = self.store.ingest(key, arr)
        self.counters.record_ingest(count)
        return total

    def ingest_stats(self, key: str, stats: SufficientStats) -> int:
        """Merge shard-local sufficient statistics (tester-side accumulation)."""
        if self.wal is not None:
            self.wal.append(
                "ingest_stats", {"key": str(key), "stats": stats.to_payload()}
            )
        total = self.store.ingest_stats(key, stats)
        self.counters.record_ingest(stats.n)
        return total

    def drop_session(self, key: str) -> bool:
        """Remove a session explicitly; returns whether it existed."""
        if self.wal is not None:
            self.wal.append("drop", {"key": str(key)})
        return self.store.drop(key)

    def session_keys(self) -> List[str]:
        """Live session keys, sorted (no clock tick; read-only listing)."""
        return self.store.keys()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _snapshot_one(self, key: str) -> Session:
        return self.store.snapshot([key])[0]

    def _log_touch(self, keys: Sequence[str], kinds: Dict[str, int]) -> None:
        """Record the clock ticks (and request counts) a query batch causes.

        ``keys`` is the session key of every request in submission order
        (duplicates included).  The scorer snapshots a key once per batch
        *on success* but re-attempts on every later request naming a key
        whose snapshot failed — and each attempt ticks the store clock.
        Logging the full request-key sequence lets replay reproduce that
        attempt pattern exactly (see :meth:`apply_record`), which a
        deduplicated key list cannot.
        """
        if self.wal is not None:
            self.wal.append("touch", {"keys": list(keys), "kinds": kinds})

    def score_requests(self, requests: List[Request]) -> None:
        """Score a coalesced batch (the micro-batch queue handler body).

        Request-rate accounting happened at submission; with a WAL
        attached, one ``touch`` record captures both the per-key clock
        ticks and the submission-time kind counts so replay reproduces
        the counters.
        """
        if self.wal is not None:
            kinds: Dict[str, int] = {}
            for request in requests:
                kinds[request.kind] = kinds.get(request.kind, 0) + 1
            self._log_touch([request.key for request in requests], kinds)
        self.scorer.score(requests, self._snapshot_one)

    def query_many(self, queries: Sequence[Tuple[str, str, Any]]) -> List[Any]:
        """Score a list of ``(kind, key, payload)`` queries in one batch.

        Identical semantics to the pre-shard ``MomentService.query_many``:
        kinds are validated and counted in submission order, then the
        whole list is scored as one grouped batch.  Raises the first
        request error encountered, in submission order.
        """
        requests: List[Request] = []
        now = time.perf_counter()
        for kind, key, payload in queries:
            if kind not in QUERY_KINDS:
                raise ConfigError(
                    f"unknown request kind {kind!r}; expected {QUERY_KINDS}"
                )
            self.counters.record_request(kind)
            requests.append(
                Request(kind=kind, key=str(key), payload=payload, submitted_at=now)
            )
        self.score_requests(requests)
        return [request.future.result() for request in requests]

    def collect(self, key: str) -> Session:
        """Return a detached session snapshot for merge-on-read routing.

        The router Chan-merges the returned snapshots across shards and
        scores the merge itself; this worker only pays one clock tick
        (logged as a ``touch`` so replay reproduces it) and one O(d^2)
        copy.  Raises
        :class:`~repro.exceptions.SessionNotFoundError` if the key does
        not live here — after ticking, like any store lookup.
        """
        self._log_touch([str(key)], {})
        return self._snapshot_one(key)

    # ------------------------------------------------------------------
    # WAL replay
    # ------------------------------------------------------------------
    def apply_record(self, op: str, payload: Dict[str, Any]) -> None:
        """Re-apply one WAL record to the live state.

        Mutations that raised when first applied raise identically here
        *after* producing their clock ticks; callers (``replay``) swallow
        the re-raise, which is how failed ops stay part of the replayed
        history.  ``touch`` records handle failures internally instead:
        one record covers many per-key lookups, and a key that fails must
        not rob the keys after it of their ticks.
        """
        if op == "create":
            prior = PriorKnowledge(
                mean=np.asarray(payload["prior_mean"], dtype=float),
                covariance=np.asarray(payload["prior_covariance"], dtype=float),
                n_samples=int(payload["prior_n_samples"]),
            )
            self.store.create(
                str(payload["key"]),
                prior,
                float(payload["kappa0"]),
                float(payload["v0"]),
                exist_ok=bool(payload["exist_ok"]),
            )
        elif op == "ingest":
            arr = np.asarray(payload["samples"], dtype=float)
            count = 1 if arr.ndim == 1 else arr.shape[0]
            self.store.ingest(str(payload["key"]), arr)
            self.counters.record_ingest(count)
        elif op == "ingest_stats":
            stats = SufficientStats.from_dict(payload["stats"])
            self.store.ingest_stats(str(payload["key"]), stats)
            self.counters.record_ingest(stats.n)
        elif op == "drop":
            self.store.drop(str(payload["key"]))
        elif op == "touch":
            self.counters.record_requests(
                {str(k): int(v) for k, v in payload["kinds"].items()}
            )
            # Mirror the scorer's snapshot loop: one attempt per request
            # key until the key succeeds, then it is cached for the rest
            # of the batch.  A failed lookup ticked the clock before
            # raising, so the tick is kept and the key stays eligible for
            # re-attempts — aborting here would starve the remaining keys
            # of their ticks.
            snapshotted = set()
            for raw_key in payload["keys"]:
                key = str(raw_key)
                if key in snapshotted:
                    continue
                try:
                    self.store.get(key)
                except ReproError:
                    continue
                snapshotted.add(key)
        else:
            raise ConfigError(f"unknown WAL op {op!r}")

    def replay(self, records: "Union[WriteAheadLog, Sequence[WalRecord]]") -> int:
        """Re-apply a record stream; returns the number of records applied.

        Accepts a :class:`WriteAheadLog` (replays everything after its
        ``base_seq``) or an explicit ``(seq, op, payload)`` sequence (the
        restore path hands in only the tail past a checkpoint's covered
        offset).  :class:`~repro.exceptions.ReproError` raised by an
        individual record is swallowed — the original operation failed
        the same way after mutating the clock, so the failure *is* the
        correct replay.
        """
        stream = records.records() if isinstance(records, WriteAheadLog) else records
        applied = 0
        for _seq, op, payload in stream:
            try:
                self.apply_record(op, payload)
            except ReproError:
                pass
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counter snapshot plus store and WAL gauges."""
        out = self.counters.snapshot()
        out["shard_id"] = self.shard_id
        out["sessions_live"] = len(self.store)
        out["sessions_evicted"] = self.store.evictions
        out["store_clock"] = self.store.clock
        if self.wal is not None:
            out["wal"] = {
                "path": str(self.wal.path),
                "version": self.wal.version,
                "base_seq": self.wal.base_seq,
                "last_seq": self.wal.last_seq,
                "records_appended": self.wal.records_appended,
                "bytes_written": self.wal.bytes_written,
                "flush_count": self.wal.flush_count,
                "pending_records": self.wal.pending_records,
            }
        return out

    # ------------------------------------------------------------------
    # checkpoint / restore / compaction
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe shard state.

        Without a WAL this is byte-for-byte the pre-shard
        ``MomentService`` state layout; with one, a ``wal`` entry records
        the log offset the state covers (every op up to and including
        ``seq`` is reflected — appends are synchronous log-then-apply).
        """
        state: Dict[str, Any] = {
            "state_version": self.STATE_VERSION,
            "store": self.store.to_dict(),
            "counters": self.counters.state_dict(),
        }
        if self.wal is not None:
            state["wal"] = {"seq": self.wal.last_seq}
        return state

    def checkpoint(self, path: Any) -> str:
        """Atomically snapshot this shard's state; returns the sha256.

        The WAL is fsync'd first so the covered offset the checkpoint
        records is durable before the checkpoint that claims it.
        """
        if self.wal is not None:
            self.wal.sync()
        return save_checkpoint(self.state_dict(), path)

    @classmethod
    def restore(
        cls,
        path: Any,
        shard_id: int = 0,
        wal: Optional[WriteAheadLog] = None,
        wal_delta_rows: Optional[int] = None,
        linalg_backend: Optional[str] = None,
    ) -> "ShardWorker":
        """Rebuild a shard from a checkpoint, replaying only the WAL tail.

        The checkpoint restores bit-identically on its own; when a WAL is
        supplied, records with ``seq`` beyond the checkpoint's covered
        offset are replayed on top, recovering everything acknowledged
        after the snapshot.
        """
        state = load_checkpoint(path)
        version = state.get("state_version")
        if version != cls.STATE_VERSION:
            raise ConfigError(
                f"checkpoint state_version {version!r} is not supported "
                f"(expected {cls.STATE_VERSION})"
            )
        worker = cls(
            shard_id=shard_id,
            wal=wal,
            wal_delta_rows=wal_delta_rows,
            linalg_backend=linalg_backend,
        )
        try:
            worker.store = SessionStore.from_dict(state["store"])
            worker.counters.load_state_dict(state["counters"])
        except KeyError as exc:
            raise ConfigError(f"checkpoint state missing field {exc}") from exc
        worker.scorer = BatchScorer(worker.counters, linalg_backend=linalg_backend)
        if wal is not None:
            covered = int(state.get("wal", {}).get("seq", wal.base_seq))
            worker.replay(list(wal.records(after=covered)))
        return worker

    def compact(self, path: Any) -> str:
        """Checkpoint, then truncate the WAL prefix the checkpoint covers.

        Returns the checkpoint sha256.  Crash-ordering is safe in both
        directions: a crash *before* truncation leaves the full log, and
        restore skips the covered prefix by sequence number; a crash
        *after* truncation leaves a log whose ``base_seq`` equals the
        checkpoint's covered offset, so restore replays nothing extra.
        """
        covered = self.wal.last_seq if self.wal is not None else 0
        digest = self.checkpoint(path)
        if self.wal is not None:
            self.wal.truncate_through(covered)
        return digest
