"""Thread-safe service counters (shared by workers, services, and routers).

Extracted to the bottom of the serving sub-layering so every layer above —
:class:`~repro.serving.worker.ShardWorker`,
:class:`~repro.serving.service.MomentService`, and the shard router — can
count requests/ingest/latency through one implementation without import
cycles.

Cumulative counters (requests by kind, errors, ingest totals) are exact
state: they serialize into checkpoints and are replayed from write-ahead
logs.  The latency ring and the WAL gauges (records appended, bytes
written, physical flushes) are observability only — they measure the
*process*, not the logical state — and are deliberately excluded from
:meth:`ServiceCounters.state_dict` (WAL bytes written this process would
double-count after a restore, and checkpoint payloads must not change
shape under an observability tweak).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Mapping

import numpy as np

from repro.serving.queue import QUERY_KINDS

__all__ = ["ServiceCounters"]


class ServiceCounters:
    """Thread-safe service counters with a bounded latency ring."""

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {kind: 0 for kind in QUERY_KINDS}
        self.errors = 0
        self.ingest_calls = 0
        self.ingested_samples = 0
        self.wal_records = 0
        self.wal_bytes = 0
        self.wal_flushes = 0
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))

    def record_request(self, kind: str) -> None:
        with self._lock:
            self.requests[kind] = self.requests.get(kind, 0) + 1

    def record_requests(self, kinds: Mapping[str, int]) -> None:
        """Bulk request accounting (write-ahead-log touch replay)."""
        with self._lock:
            for kind in sorted(kinds):
                self.requests[kind] = self.requests.get(kind, 0) + int(kinds[kind])

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_ingest(self, n_samples: int) -> None:
        with self._lock:
            self.ingest_calls += 1
            self.ingested_samples += int(n_samples)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(float(seconds))

    def record_wal_append(self, n_bytes: int) -> None:
        """One record entered a write-ahead log's group-commit buffer."""
        with self._lock:
            self.wal_records += 1
            self.wal_bytes += int(n_bytes)

    def record_wal_flush(self, n_bytes: int) -> None:
        """One physical WAL flush drained ``n_bytes`` to the page cache."""
        del n_bytes  # byte totals accrue at append time; flushes are counted
        with self._lock:
            self.wal_flushes += 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe counter snapshot (latencies in milliseconds)."""
        with self._lock:
            requests = dict(self.requests)
            latencies = list(self._latencies)
            out: Dict[str, Any] = {
                "requests": requests,
                "requests_total": sum(requests.values()),
                "errors": self.errors,
                "ingest_calls": self.ingest_calls,
                "ingested_samples": self.ingested_samples,
                "wal_records": self.wal_records,
                "wal_bytes": self.wal_bytes,
                "wal_flushes": self.wal_flushes,
            }
        if latencies:
            arr = np.asarray(latencies) * 1e3
            out["latency_ms_p50"] = float(np.percentile(arr, 50.0))
            out["latency_ms_p99"] = float(np.percentile(arr, 99.0))
            out["latency_samples"] = len(latencies)
        else:
            out["latency_ms_p50"] = None
            out["latency_ms_p99"] = None
            out["latency_samples"] = 0
        return out

    def state_dict(self) -> Dict[str, Any]:
        """Cumulative counters worth persisting (the latency ring is not)."""
        with self._lock:
            return {
                "requests": dict(self.requests),
                "errors": self.errors,
                "ingest_calls": self.ingest_calls,
                "ingested_samples": self.ingested_samples,
            }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self.requests = {str(k): int(v) for k, v in payload["requests"].items()}
            self.errors = int(payload["errors"])
            self.ingest_calls = int(payload["ingest_calls"])
            self.ingested_samples = int(payload["ingested_samples"])
