"""Thread-safe service counters (shared by workers, services, and routers).

Extracted to the bottom of the serving sub-layering so every layer above —
:class:`~repro.serving.worker.ShardWorker`,
:class:`~repro.serving.service.MomentService`, and the shard router — can
count requests/ingest/latency through one implementation without import
cycles.

Cumulative counters (requests by kind, errors, ingest totals) are exact
state: they serialize into checkpoints and are replayed from write-ahead
logs.  The latency ring is observability only — it measures the *process*,
not the logical state — and is deliberately excluded from
:meth:`ServiceCounters.state_dict`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Mapping

import numpy as np

from repro.serving.queue import QUERY_KINDS

__all__ = ["ServiceCounters"]


class ServiceCounters:
    """Thread-safe service counters with a bounded latency ring."""

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {kind: 0 for kind in QUERY_KINDS}
        self.errors = 0
        self.ingest_calls = 0
        self.ingested_samples = 0
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))

    def record_request(self, kind: str) -> None:
        with self._lock:
            self.requests[kind] = self.requests.get(kind, 0) + 1

    def record_requests(self, kinds: Mapping[str, int]) -> None:
        """Bulk request accounting (write-ahead-log touch replay)."""
        with self._lock:
            for kind in sorted(kinds):
                self.requests[kind] = self.requests.get(kind, 0) + int(kinds[kind])

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_ingest(self, n_samples: int) -> None:
        with self._lock:
            self.ingest_calls += 1
            self.ingested_samples += int(n_samples)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(float(seconds))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe counter snapshot (latencies in milliseconds)."""
        with self._lock:
            requests = dict(self.requests)
            latencies = list(self._latencies)
            out: Dict[str, Any] = {
                "requests": requests,
                "requests_total": sum(requests.values()),
                "errors": self.errors,
                "ingest_calls": self.ingest_calls,
                "ingested_samples": self.ingested_samples,
            }
        if latencies:
            arr = np.asarray(latencies) * 1e3
            out["latency_ms_p50"] = float(np.percentile(arr, 50.0))
            out["latency_ms_p99"] = float(np.percentile(arr, 99.0))
            out["latency_samples"] = len(latencies)
        else:
            out["latency_ms_p50"] = None
            out["latency_ms_p99"] = None
            out["latency_samples"] = 0
        return out

    def state_dict(self) -> Dict[str, Any]:
        """Cumulative counters worth persisting (the latency ring is not)."""
        with self._lock:
            return {
                "requests": dict(self.requests),
                "errors": self.errors,
                "ingest_calls": self.ingest_calls,
                "ingested_samples": self.ingested_samples,
            }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self.requests = {str(k): int(v) for k, v in payload["requests"].items()}
            self.errors = int(payload["errors"])
            self.ingest_calls = int(payload["ingest_calls"])
            self.ingested_samples = int(payload["ingested_samples"])
