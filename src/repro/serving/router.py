"""Shard router: consistent-hash placement + merge-on-read scoring.

:class:`ShardedMomentService` fans the serving workload out over N
:class:`~repro.serving.worker.ShardWorker` slices:

* **Placement** — a sha256-based consistent-hash ring
  (:class:`HashRing`) maps each session key to its home shard.  The ring
  is a pure function of ``(n_shards, virtual_nodes, key)`` — stable
  across processes, platforms, and ``PYTHONHASHSEED`` — so any router
  instance (or an offline tool reading a WAL) computes the same
  placement.  ``placement="spread"`` instead replicates every session on
  all shards and rotates ingest blocks across them round-robin per key —
  the configuration that exercises genuine multi-shard merges on every
  query.
* **Ingest coalescing** — accepted sample blocks are buffered per key
  and flushed to the owning worker as one stacked block once
  ``flush_rows`` rows accumulate (or at any read barrier: queries,
  checkpoints, listings).  This turns per-row Welford updates into block
  Chan merges, which is where the multi-shard throughput win comes from
  on a single-core box; the rounding difference is covered by the
  documented 1e-10 equivalence bound.
* **Merge-on-read queries** — the router snapshots the key's
  per-shard :class:`~repro.stats.suffstats.SufficientStats`, Chan-merges
  them in shard-index order (:func:`~repro.stats.suffstats.merge_all`),
  and scores the merged session through the same
  :class:`~repro.serving.scoring.BatchScorer` every other layer uses.
  Mergeability of the sufficient-statistics triple is exactly the
  paper's additivity property — sharding falls out of the statistics,
  not of new math.

Single-shard mode is the compatibility gate: ``n_shards=1`` with
``flush_rows=1`` and no WAL routes every call straight through to the
one worker, reproducing the pre-shard
:class:`~repro.serving.service.MomentService` bit-for-bit — counters,
eviction order, and checkpoint bytes (the equivalence suite compares the
files byte-wise).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np
from numpy.typing import ArrayLike

from repro.core.estimators import MomentEstimate
from repro.core.prior import PriorKnowledge
from repro.exceptions import ConfigError, SessionNotFoundError
from repro.experiments.parallel import thread_map
from repro.io import check_schema_version, write_json_atomic
from repro.schemas import MANIFEST_SCHEMA
from repro.serving.counters import ServiceCounters
from repro.serving.queue import QUERY_KINDS, Request
from repro.serving.scoring import BatchScorer
from repro.serving.sessions import Session
from repro.serving.wal import DEFAULT_FLUSH_BYTES, WriteAheadLog
from repro.serving.worker import ShardWorker
from repro.stats.suffstats import SufficientStats, merge_all

__all__ = ["HashRing", "ShardedMomentService", "MANIFEST_SCHEMA"]

#: ``MANIFEST_SCHEMA`` (re-exported in ``__all__``) comes from
#: :mod:`repro.schemas`, the version-string source of truth.

#: Structural version of the manifest layout.
MANIFEST_SCHEMA_VERSION = 1

#: Placement policies the router understands.
PLACEMENTS = ("hash", "spread")

#: WAL on-disk formats the router can create (existing logs auto-detect).
WAL_FORMATS = ("v1", "v2")

PathLike = Union[str, Path]


def _stable_hash(text: str) -> int:
    """First 64 bits of sha256 — stable everywhere, unlike ``hash()``."""
    return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:16], 16)


def _resolve_wal_flush(
    wal_version: int,
    flush_records: Optional[int],
    flush_bytes: Optional[int],
) -> Tuple[int, int]:
    """Group-commit bounds: v1 defaults to flush-per-record, v2 to 64."""
    if flush_records is None:
        flush_records = 1 if wal_version == 1 else 64
    if flush_bytes is None:
        flush_bytes = DEFAULT_FLUSH_BYTES
    if int(flush_records) < 1:
        raise ConfigError(f"wal_flush_records must be >= 1, got {flush_records}")
    if int(flush_bytes) < 1:
        raise ConfigError(f"wal_flush_bytes must be >= 1, got {flush_bytes}")
    return int(flush_records), int(flush_bytes)


class HashRing:
    """Consistent-hash ring over shard indices.

    Each shard contributes ``virtual_nodes`` points at
    ``sha256("shard:<i>:vnode:<j>")``; a key lands on the first point at
    or clockwise of ``sha256("key:<key>")``.  Virtual nodes keep the load
    split near-uniform, and consistency means resizing from N to N+1
    shards relocates only ~1/(N+1) of the keys — the property that makes
    offline re-sharding of WALs tractable.
    """

    def __init__(self, n_shards: int, virtual_nodes: int = 64) -> None:
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        if virtual_nodes < 1:
            raise ConfigError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.n_shards = int(n_shards)
        self.virtual_nodes = int(virtual_nodes)
        points: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for vnode in range(self.virtual_nodes):
                points.append((_stable_hash(f"shard:{shard}:vnode:{vnode}"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """Home shard of a session key (pure, stable, O(log n))."""
        if self.n_shards == 1:
            return 0
        point = _stable_hash(f"key:{key}")
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._shards[index]


class ShardedMomentService:
    """N-shard serving stack behind one service-shaped interface.

    Parameters
    ----------
    n_shards:
        Worker count.  ``1`` with the default ``flush_rows`` is the
        bit-identical compatibility mode.
    max_sessions_per_shard, ttl_ops:
        Per-shard store bounds.
    placement:
        ``"hash"`` — each key lives on its ring shard; queries read one
        shard.  ``"spread"`` — each key lives on *every* shard with
        ingest rotated round-robin; queries Chan-merge all shards
        (merge-on-read).
    flush_rows:
        Ingest-coalescing threshold in rows.  ``None`` resolves to ``1``
        (no coalescing) for ``n_shards == 1`` and ``64`` otherwise.
    wal_dir:
        Directory for per-shard write-ahead logs (``shard-NNN.wal``).
        ``None`` disables logging.  Fresh logs only — recovering existing
        logs goes through :meth:`restore`.
    wal_format:
        On-disk format of *new* logs: ``"v2"`` (default — binary frames,
        raw float64 buffers, the ingest fast path) or ``"v1"`` (JSON
        lines, greppable).  Existing logs auto-detect on open.
    wal_flush_records, wal_flush_bytes:
        Group-commit bounds per shard log (see
        :class:`~repro.serving.wal.WriteAheadLog`).  ``None`` resolves
        ``wal_flush_records`` to ``1`` for v1 (the original
        flush-per-record durability) and ``64`` for v2, and
        ``wal_flush_bytes`` to 256 KiB.  Checkpoints always barrier
        (``sync``) first, so coalesced flushing never weakens what a
        checkpoint claims to cover.
    wal_delta_rows:
        Suffstats-delta threshold forwarded to every worker: 2-D ingest
        blocks with at least this many rows are logged as ``O(d^2)``
        sufficient statistics instead of raw samples.  ``None`` disables
        delta logging.
    virtual_nodes:
        Ring resolution (see :class:`HashRing`).
    n_jobs:
        Thread fan-out for cross-shard operations (spread-mode collection
        and per-shard checkpointing), normalised by
        :func:`~repro.experiments.parallel.resolve_n_jobs`.
    linalg_backend:
        Kernel backend for all scoring math.
    """

    def __init__(
        self,
        n_shards: int = 1,
        max_sessions_per_shard: int = 1024,
        ttl_ops: Optional[int] = None,
        placement: str = "hash",
        flush_rows: Optional[int] = None,
        wal_dir: Optional[PathLike] = None,
        wal_format: str = "v2",
        wal_flush_records: Optional[int] = None,
        wal_flush_bytes: Optional[int] = None,
        wal_delta_rows: Optional[int] = None,
        virtual_nodes: int = 64,
        n_jobs: Optional[int] = 1,
        linalg_backend: Optional[str] = None,
    ) -> None:
        if placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        if wal_format not in WAL_FORMATS:
            raise ConfigError(
                f"unknown wal_format {wal_format!r}; expected one of {WAL_FORMATS}"
            )
        self.ring = HashRing(n_shards, virtual_nodes=virtual_nodes)
        self.placement = placement
        if flush_rows is None:
            flush_rows = 1 if n_shards == 1 else 64
        if int(flush_rows) < 1:
            raise ConfigError(f"flush_rows must be >= 1, got {flush_rows}")
        self.flush_rows = int(flush_rows)
        wal_version = 2 if wal_format == "v2" else 1
        flush_records, flush_bytes = _resolve_wal_flush(
            wal_version, wal_flush_records, wal_flush_bytes
        )
        self._n_jobs = n_jobs
        self._linalg_backend = linalg_backend
        self.workers: List[ShardWorker] = []
        for shard in range(self.ring.n_shards):
            wal: Optional[WriteAheadLog] = None
            if wal_dir is not None:
                directory = Path(wal_dir)
                directory.mkdir(parents=True, exist_ok=True)
                wal = WriteAheadLog.create(
                    directory / f"shard-{shard:03d}.wal",
                    shard_id=shard,
                    version=wal_version,
                    flush_records=flush_records,
                    flush_bytes=flush_bytes,
                )
            self.workers.append(
                ShardWorker(
                    shard_id=shard,
                    max_sessions=max_sessions_per_shard,
                    ttl_ops=ttl_ops,
                    wal=wal,
                    wal_delta_rows=wal_delta_rows,
                    linalg_backend=linalg_backend,
                )
            )
        self.counters = ServiceCounters()
        self.scorer = BatchScorer(self.counters, linalg_backend=linalg_backend)
        # Ingest-side shared state below is mutated by whichever thread
        # calls ingest/flush/drop (protocol loops, load generators, tests
        # with client pools), so every mutation holds this lock — worker
        # folds happen under it too, which serialises router-side ingest
        # but keeps drain + apply atomic per key (reprolint RPL007 pins
        # the discipline).
        self._ingest_lock = threading.Lock()
        # per-key ingest buffers: list of (n, d) blocks + pending row count
        self._buffers: Dict[str, List[np.ndarray]] = {}
        self._buffered_rows: Dict[str, int] = {}
        # per-key round-robin cursor (spread placement)
        self._rotation: Dict[str, int] = {}
        # per-key rows routed through this router (monotone; survives flushes)
        self._routed_rows: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    def shard_for(self, key: str) -> int:
        """Home shard of a key under the current ring."""
        return self.ring.shard_for(str(key))

    def _home(self, key: str) -> ShardWorker:
        return self.workers[self.ring.shard_for(str(key))]

    @property
    def _passthrough(self) -> bool:
        """Single-shard + no coalescing: the bit-identical compat mode."""
        return self.ring.n_shards == 1 and self.flush_rows == 1

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def create_session(
        self,
        key: str,
        prior: PriorKnowledge,
        kappa0: Optional[float] = None,
        v0: Optional[float] = None,
        exist_ok: bool = False,
    ) -> Session:
        """Register a population on its home shard (all shards for spread)."""
        key = str(key)
        if self.placement == "spread":
            sessions = [
                worker.create_session(
                    key, prior, kappa0=kappa0, v0=v0, exist_ok=exist_ok
                )
                for worker in self.workers
            ]
            return sessions[0]
        return self._home(key).create_session(
            key, prior, kappa0=kappa0, v0=v0, exist_ok=exist_ok
        )

    def drop_session(self, key: str) -> bool:
        """Remove a session everywhere it lives; returns whether it existed.

        Pending buffered rows for the key are flushed first — a drop
        covers everything accepted before it, in order.
        """
        key = str(key)
        with self._ingest_lock:
            self._flush_key_locked(key)
        if self.placement == "spread":
            dropped = [worker.drop_session(key) for worker in self.workers]
            return any(dropped)
        return self._home(key).drop_session(key)

    def session_keys(self) -> List[str]:
        """Sorted union of live keys across shards (buffers flushed first)."""
        self.flush()
        keys: Set[str] = set()
        for worker in self.workers:
            keys.update(worker.session_keys())
        return sorted(keys)

    # ------------------------------------------------------------------
    # ingest (coalesced)
    # ------------------------------------------------------------------
    def ingest(self, key: str, samples: ArrayLike) -> int:
        """Accept a sample block for a session; returns the total number of
        rows routed to that key through this router.

        With ``flush_rows > 1`` the rows are buffered and folded into the
        owning worker as one stacked block later (next threshold crossing
        or read barrier) — numerically a Chan block merge instead of
        per-row Welford updates, within the 1e-10 serving bound.  The
        return value counts *accepted* rows; the worker's own session
        total advances at flush time.
        """
        key = str(key)
        arr = np.asarray(samples, dtype=float)
        rows = 1 if arr.ndim == 1 else arr.shape[0]
        self.counters.record_ingest(rows)
        with self._ingest_lock:
            if self._passthrough:
                self.workers[0].ingest(key, arr)
                self._routed_rows[key] = self._routed_rows.get(key, 0) + rows
                return self._routed_rows[key]
            block = arr[None, :] if arr.ndim == 1 else arr
            self._buffers.setdefault(key, []).append(block)
            pending = self._buffered_rows.get(key, 0) + int(block.shape[0])
            self._buffered_rows[key] = pending
            self._routed_rows[key] = self._routed_rows.get(key, 0) + rows
            if pending >= self.flush_rows:
                self._flush_key_locked(key)
            return self._routed_rows[key]

    def ingest_stats(self, key: str, stats: SufficientStats) -> int:
        """Merge pre-accumulated statistics into the owning worker.

        Statistics merge exactly in any order, so these bypass the row
        buffer (flushing the key first keeps arrival order intact).
        """
        key = str(key)
        self.counters.record_ingest(stats.n)
        with self._ingest_lock:
            self._flush_key_locked(key)
            self._routed_rows[key] = self._routed_rows.get(key, 0) + stats.n
            return self._ingest_worker_locked(key).ingest_stats(key, stats)

    def _ingest_worker_locked(self, key: str) -> ShardWorker:
        """The worker the *next* block for ``key`` goes to (lock held)."""
        if self.placement == "spread":
            cursor = self._rotation.get(key, 0)
            self._rotation[key] = cursor + 1
            return self.workers[cursor % self.ring.n_shards]
        return self._home(key)

    def _flush_key_locked(self, key: str) -> None:
        """Fold ``key``'s buffered blocks into its worker (lock held)."""
        blocks = self._buffers.pop(key, [])
        self._buffered_rows.pop(key, None)
        if not blocks:
            return
        stacked = blocks[0] if len(blocks) == 1 else np.vstack(blocks)
        self._ingest_worker_locked(key).ingest(key, stacked)

    def flush(self) -> None:
        """Flush every ingest buffer (deterministic key order)."""
        with self._ingest_lock:
            for key in sorted(self._buffers):
                self._flush_key_locked(key)

    # ------------------------------------------------------------------
    # queries (merge-on-read)
    # ------------------------------------------------------------------
    def _merged_snapshot(self, key: str) -> Session:
        """Session snapshot for scoring: collected and Chan-merged.

        Hash placement reads the home shard only; spread placement
        collects every shard's partial statistics (thread fan-out) and
        merges them in shard-index order — deterministic, so repeated
        queries of an unchanged key bit-agree.
        """
        if self.placement != "spread":
            return self._home(key).collect(key)

        def grab(worker: ShardWorker) -> Optional[Session]:
            try:
                return worker.collect(key)
            except SessionNotFoundError:
                return None

        views = [
            view
            for view in thread_map(grab, self.workers, n_jobs=self._n_jobs)
            if view is not None
        ]
        if not views:
            raise SessionNotFoundError(
                f"no session {key!r} on any shard (never created, or evicted)"
            )
        merged = views[0]
        merged.stats = merge_all([view.stats for view in views])
        return merged

    def query_many(self, queries: Sequence[Tuple[str, str, Any]]) -> List[Any]:
        """Score ``(kind, key, payload)`` queries as one merged batch.

        Ingest buffers are flushed first (read-your-writes), then the
        router collects per-shard statistics, merges, and scores through
        the shared grouped scorer.  Single-shard compat mode delegates to
        the worker so counters land exactly where the pre-shard service
        put them.
        """
        self.flush()
        if self.ring.n_shards == 1:
            return self.workers[0].query_many(queries)
        requests: List[Request] = []
        now = time.perf_counter()
        for kind, key, payload in queries:
            if kind not in QUERY_KINDS:
                raise ConfigError(
                    f"unknown request kind {kind!r}; expected {QUERY_KINDS}"
                )
            self.counters.record_request(kind)
            requests.append(
                Request(kind=kind, key=str(key), payload=payload, submitted_at=now)
            )
        self.scorer.score(requests, self._merged_snapshot)
        return [request.future.result() for request in requests]

    def estimate(self, key: str) -> MomentEstimate:
        """MAP-estimate query for one session (synchronous)."""
        result: MomentEstimate = self.query_many([("estimate", key, None)])[0]
        return result

    def loglik(self, key: str, x: ArrayLike) -> float:
        """Log-likelihood of ``x`` under the session's merged MAP."""
        return float(self.query_many([("loglik", key, np.asarray(x, dtype=float))])[0])

    def yield_prob(self, key: str, lower: ArrayLike, upper: ArrayLike) -> float:
        """Parametric-yield query against spec box bounds."""
        payload = (np.asarray(lower, dtype=float), np.asarray(upper, dtype=float))
        return float(self.query_many([("yield", key, payload)])[0])

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Router counters plus per-shard snapshots and fleet totals."""
        self.flush()
        out = self.counters.snapshot()
        shards = [worker.stats() for worker in self.workers]
        out["n_shards"] = self.ring.n_shards
        out["placement"] = self.placement
        out["flush_rows"] = self.flush_rows
        out["sessions_live"] = sum(s["sessions_live"] for s in shards)
        out["sessions_evicted"] = sum(s["sessions_evicted"] for s in shards)
        # WAL append/flush gauges accrue on the worker counters (each log
        # observes its worker); surface the fleet totals at router level
        out["wal_records"] = sum(s["wal_records"] for s in shards)
        out["wal_bytes"] = sum(s["wal_bytes"] for s in shards)
        out["wal_flushes"] = sum(s["wal_flushes"] for s in shards)
        out["shards"] = shards
        return out

    def _reconcile_counters(self, base: Optional[Dict[str, Any]] = None) -> None:
        """Rebuild router-level counters after a recovery.

        Worker counters are exact post-replay state, so the router totals
        start as their sum.  ``base`` (a manifest ``counters`` state dict)
        is folded in by elementwise max: in single-shard mode every count
        also lives on the worker, so the fresher worker sum wins; in
        multi-shard mode request kinds are counted only on the router
        (worker ``collect`` touch records carry ``kinds={}``), so the
        checkpointed value is the best available — it lags by whatever
        queries arrived after the checkpoint, and ``ingest_calls`` counts
        post-coalescing blocks rather than accepted calls on a WAL-only
        recovery.  Both limits are documented in ``docs/SERVING.md``.
        """
        requests: Dict[str, int] = {kind: 0 for kind in QUERY_KINDS}
        errors = 0
        ingest_calls = 0
        ingested_samples = 0
        for worker in self.workers:
            state = worker.counters.state_dict()
            for kind, count in state["requests"].items():
                requests[kind] = requests.get(kind, 0) + int(count)
            errors += int(state["errors"])
            ingest_calls += int(state["ingest_calls"])
            ingested_samples += int(state["ingested_samples"])
        if base is not None:
            for kind, count in base["requests"].items():
                requests[kind] = max(requests.get(kind, 0), int(count))
            errors = max(errors, int(base["errors"]))
            ingest_calls = max(ingest_calls, int(base["ingest_calls"]))
            ingested_samples = max(ingested_samples, int(base["ingested_samples"]))
        self.counters.load_state_dict(
            {
                "requests": requests,
                "errors": errors,
                "ingest_calls": ingest_calls,
                "ingested_samples": ingested_samples,
            }
        )

    # ------------------------------------------------------------------
    # checkpoint / restore / compaction
    # ------------------------------------------------------------------
    def _shard_file(self, shard: int) -> str:
        return f"shard-{shard:03d}.ckpt"

    def _write_manifest(self, directory: Path, shas: List[str]) -> str:
        entries: List[Dict[str, Any]] = []
        for shard, worker in enumerate(self.workers):
            wal_entry: Optional[Dict[str, Any]] = None
            if worker.wal is not None:
                wal_entry = {
                    "file": worker.wal.path.name,
                    "seq": worker.wal.last_seq,
                }
            entries.append(
                {
                    "shard": shard,
                    "file": self._shard_file(shard),
                    "sha256": shas[shard],
                    "wal": wal_entry,
                }
            )
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "n_shards": self.ring.n_shards,
            "virtual_nodes": self.ring.virtual_nodes,
            "placement": self.placement,
            "shards": entries,
            "counters": self.counters.state_dict(),
        }
        encoded = write_json_atomic(manifest, directory / "manifest.json")
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def checkpoint(self, directory: PathLike) -> str:
        """Snapshot every shard + a manifest; returns the manifest sha256.

        Buffers are flushed first, each shard checkpoint is individually
        atomic and self-verifying, and the manifest binds them together
        (per-shard sha256 + the WAL offset each covers).
        """
        self.flush()
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        shas = thread_map(
            lambda shard: self.workers[shard].checkpoint(
                target / self._shard_file(shard)
            ),
            range(self.ring.n_shards),
            n_jobs=self._n_jobs,
        )
        return self._write_manifest(target, list(shas))

    def compact(self, directory: PathLike) -> str:
        """Checkpoint, then truncate each shard's replayed WAL prefix.

        Equivalent to :meth:`checkpoint` followed by per-shard
        ``truncate_through(covered_seq)``; the manifest records the
        post-compaction (empty-tail) WAL offsets.
        """
        self.flush()
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        shas = thread_map(
            lambda shard: self.workers[shard].compact(
                target / self._shard_file(shard)
            ),
            range(self.ring.n_shards),
            n_jobs=self._n_jobs,
        )
        return self._write_manifest(target, list(shas))

    @classmethod
    def restore(
        cls,
        directory: PathLike,
        wal_dir: Optional[PathLike] = None,
        flush_rows: Optional[int] = None,
        wal_flush_records: Optional[int] = None,
        wal_flush_bytes: Optional[int] = None,
        wal_delta_rows: Optional[int] = None,
        n_jobs: Optional[int] = 1,
        linalg_backend: Optional[str] = None,
    ) -> "ShardedMomentService":
        """Rebuild a sharded service from a manifest directory.

        Each shard restores from its (self-verifying) checkpoint; when
        ``wal_dir`` is given, each shard's log is recovered
        (torn tails dropped, chains verified, on-disk format
        auto-detected) and only the records past the checkpoint's covered
        offset are replayed — the tail, not the whole history.  Group
        commit resumes with the recovered log's format defaults unless
        ``wal_flush_records``/``wal_flush_bytes`` override them.
        """
        target = Path(directory)
        try:
            manifest = json.loads((target / "manifest.json").read_text())
        except FileNotFoundError as exc:
            raise ConfigError(f"no shard manifest in {target}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(f"shard manifest in {target} is not valid JSON") from exc
        if not isinstance(manifest, dict) or manifest.get("schema") != MANIFEST_SCHEMA:
            raise ConfigError(
                f"{target} does not hold a sharded-serving checkpoint "
                f"(expected schema {MANIFEST_SCHEMA!r})"
            )
        check_schema_version(manifest, MANIFEST_SCHEMA_VERSION, "shard manifest")
        service = cls(
            n_shards=int(manifest["n_shards"]),
            placement=str(manifest["placement"]),
            flush_rows=flush_rows,
            wal_dir=None,
            virtual_nodes=int(manifest["virtual_nodes"]),
            n_jobs=n_jobs,
            linalg_backend=linalg_backend,
        )
        for shard, entry in enumerate(manifest["shards"]):
            wal: Optional[WriteAheadLog] = None
            if wal_dir is not None and entry.get("wal") is not None:
                wal_path = Path(wal_dir) / str(entry["wal"]["file"])
                if wal_path.exists():
                    wal = WriteAheadLog.open(
                        wal_path,
                        flush_records=wal_flush_records,
                        flush_bytes=wal_flush_bytes,
                    )
            service.workers[shard] = ShardWorker.restore(
                target / str(entry["file"]),
                shard_id=shard,
                wal=wal,
                wal_delta_rows=wal_delta_rows,
                linalg_backend=linalg_backend,
            )
        # WAL tails may have advanced the workers past the manifest's
        # counters; reconcile rather than loading the stale snapshot.
        service._reconcile_counters(base=manifest["counters"])
        return service

    @classmethod
    def recover(
        cls,
        wal_dir: PathLike,
        max_sessions_per_shard: int = 1024,
        ttl_ops: Optional[int] = None,
        placement: str = "hash",
        flush_rows: Optional[int] = None,
        wal_flush_records: Optional[int] = None,
        wal_flush_bytes: Optional[int] = None,
        wal_delta_rows: Optional[int] = None,
        virtual_nodes: int = 64,
        n_jobs: Optional[int] = 1,
        linalg_backend: Optional[str] = None,
    ) -> "ShardedMomentService":
        """Rebuild a sharded service from its WALs alone (no checkpoint).

        The crash-before-first-checkpoint path: every ``shard-NNN.wal``
        in the directory is recovered (torn tail dropped, chain
        verified) and replayed from the beginning.  Store bounds
        (``max_sessions_per_shard``, ``ttl_ops``) are runtime
        configuration the WAL does not carry — supply the values the
        original service ran with, or eviction decisions will diverge.
        Recovered logs stay attached, so serving continues appending
        where the dead process stopped.
        """
        directory = Path(wal_dir)
        wal_paths = sorted(directory.glob("shard-*.wal"))
        if not wal_paths:
            raise ConfigError(f"no shard-*.wal files to recover in {directory}")
        service = cls(
            n_shards=len(wal_paths),
            max_sessions_per_shard=max_sessions_per_shard,
            ttl_ops=ttl_ops,
            placement=placement,
            flush_rows=flush_rows,
            wal_dir=None,
            virtual_nodes=virtual_nodes,
            n_jobs=n_jobs,
            linalg_backend=linalg_backend,
        )
        for shard, path in enumerate(wal_paths):
            wal = WriteAheadLog.open(
                path,
                flush_records=wal_flush_records,
                flush_bytes=wal_flush_bytes,
            )
            worker = ShardWorker(
                shard_id=shard,
                max_sessions=max_sessions_per_shard,
                ttl_ops=ttl_ops,
                wal=wal,
                wal_delta_rows=wal_delta_rows,
                linalg_backend=linalg_backend,
            )
            worker.replay(wal)
            service.workers[shard] = worker
        # Router counters are not logged anywhere; the shard sums are the
        # best WAL-only reconstruction (exact in single-shard mode, which
        # routes requests through the worker; multi-shard request kinds
        # are router-only state and restart from the replayed touches).
        service._reconcile_counters()
        return service

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush buffers and close every shard WAL (idempotent)."""
        self.flush()
        for worker in self.workers:
            if worker.wal is not None:
                worker.wal.close()

    def __enter__(self) -> "ShardedMomentService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
