"""Micro-batching request queue with bounded backpressure.

Concurrent ``estimate`` / ``loglik`` / ``yield`` queries arriving across
many sessions are individually tiny — a ``(d, d)`` Cholesky and a few
BLAS-1 ops — so their cost is dominated by Python dispatch.  The queue
coalesces them: a collector thread gathers up to ``max_batch`` pending
requests (waiting at most ``max_wait`` seconds for stragglers once the
first arrives) and hands the batch to a handler that scores it through
the stacked kernels in :mod:`repro.linalg.batched`.

Backpressure is explicit: the pending deque is bounded by
``max_pending`` and an overflowing :meth:`MicroBatchQueue.submit` raises
:class:`~repro.exceptions.ServiceOverloadedError` immediately — clients
shed load or retry with backoff; the server never grows without bound.

Worker seeding follows the discipline of
:mod:`repro.experiments.parallel`: the worker count is normalised by
:func:`~repro.experiments.parallel.resolve_n_jobs`, and each dispatched
batch receives a generator derived from a :class:`numpy.random.SeedSequence`
child taken in *dispatch order* — so any randomised scoring a handler
performs is bit-identical regardless of how many workers drain the queue.
(``time.perf_counter`` is used only for the coalescing deadline and
latency annotations, which reprolint's determinism rule explicitly
permits.)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigError, ReproError, ServiceOverloadedError
from repro.experiments.parallel import resolve_n_jobs

__all__ = ["Request", "MicroBatchQueue", "QUERY_KINDS"]

#: Request kinds the serving layer understands.
QUERY_KINDS = ("estimate", "loglik", "yield")


@dataclass
class Request:
    """One pending query.

    Attributes
    ----------
    kind:
        One of :data:`QUERY_KINDS`.
    key:
        Target session key.
    payload:
        Kind-specific argument (``None`` for ``estimate``, an ``(n, d)``
        sample block for ``loglik``, a ``(lower, upper)`` bounds pair for
        ``yield``).
    future:
        Resolved by the batch handler with the query result.
    submitted_at:
        ``time.perf_counter()`` stamp for the latency counters.
    """

    kind: str
    key: str
    payload: Any
    future: "Future[Any]" = field(default_factory=Future)
    submitted_at: float = 0.0


#: A batch handler: answers every request in the list by resolving its
#: future.  The generator is the batch's SeedSequence child (dispatch
#: order), for handlers with randomised scoring.
BatchHandler = Callable[[List[Request], np.random.Generator], None]


class MicroBatchQueue:
    """Bounded queue that coalesces requests into handler batches.

    Parameters
    ----------
    handler:
        Batch scoring callback; must resolve every request's future.
    max_batch:
        Largest batch handed to the handler.
    max_wait:
        Seconds the collector lingers for stragglers after the first
        pending request of a batch; ``0`` dispatches immediately.
    max_pending:
        Backpressure bound on queued (not yet dispatched) requests.
    n_workers:
        Handler concurrency, normalised by
        :func:`~repro.experiments.parallel.resolve_n_jobs` (``1`` runs
        batches on the collector thread itself).
    seed:
        Root seed for the per-batch generator chain.
    """

    def __init__(
        self,
        handler: BatchHandler,
        max_batch: int = 64,
        max_wait: float = 0.002,
        max_pending: int = 4096,
        n_workers: Optional[int] = 1,
        seed: int = 0,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0.0:
            raise ConfigError(f"max_wait must be >= 0, got {max_wait}")
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        self._handler = handler
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_pending = int(max_pending)
        self.n_workers = resolve_n_jobs(n_workers)
        self._seedseq = np.random.SeedSequence(seed)
        self._pending: Deque[Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._inflight = 0
        # counters (read under the condition lock)
        self.batches_dispatched = 0
        self.requests_handled = 0
        self.occupancy_sum = 0
        self.depth_high_water = 0
        self.overflows = 0
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=self.n_workers)
            if self.n_workers > 1
            else None
        )
        self._collector = threading.Thread(
            target=self._collect, name="repro-serving-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, kind: str, key: str, payload: Any = None) -> "Future[Any]":
        """Enqueue a query; returns its future.

        Raises :class:`~repro.exceptions.ServiceOverloadedError` when the
        pending bound is hit or the queue is closed — the bounded-memory
        contract is a hard guarantee, not advice.
        """
        if kind not in QUERY_KINDS:
            raise ConfigError(f"unknown request kind {kind!r}; expected {QUERY_KINDS}")
        request = Request(
            kind=kind, key=str(key), payload=payload, submitted_at=time.perf_counter()
        )
        with self._cond:
            if self._closed:
                raise ServiceOverloadedError("queue is closed; request rejected")
            if len(self._pending) >= self.max_pending:
                self.overflows += 1
                raise ServiceOverloadedError(
                    f"queue full ({self.max_pending} pending requests); "
                    "retry with backoff or raise max_pending"
                )
            self._pending.append(request)
            if len(self._pending) > self.depth_high_water:
                self.depth_high_water = len(self._pending)
            self._cond.notify_all()
        return request.future

    def depth(self) -> int:
        """Current number of queued (undispatched) requests."""
        with self._cond:
            return len(self._pending)

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted request has been answered."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._pending and self._inflight == 0, timeout
            )

    def counters(self) -> Dict[str, int]:
        """Snapshot of the queue counters."""
        with self._cond:
            return {
                "batches_dispatched": self.batches_dispatched,
                "requests_handled": self.requests_handled,
                "occupancy_sum": self.occupancy_sum,
                "depth": len(self._pending),
                "depth_high_water": self.depth_high_water,
                "overflows": self.overflows,
            }

    # ------------------------------------------------------------------
    # collector / workers
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                if (
                    self.max_wait > 0.0
                    and len(self._pending) < self.max_batch
                    and not self._closed
                ):
                    deadline = time.perf_counter() + self.max_wait
                    while len(self._pending) < self.max_batch and not self._closed:
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0.0:
                            break
                        self._cond.wait(remaining)
                size = min(self.max_batch, len(self._pending))
                batch = [self._pending.popleft() for _ in range(size)]
                rng = np.random.default_rng(self._seedseq.spawn(1)[0])
                self._inflight += 1
                self._cond.notify_all()
            if self._pool is None:
                self._run_batch(batch, rng)
            else:
                self._pool.submit(self._run_batch, batch, rng)

    def _run_batch(self, batch: List[Request], rng: np.random.Generator) -> None:
        try:
            self._handler(batch, rng)
        except Exception as exc:  # reprolint: disable=RPL005 -- worker boundary: failures must land in the futures, not kill the collector thread
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
        finally:
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(
                        ReproError(
                            f"handler returned without answering {request.kind!r} "
                            f"request for session {request.key!r}"
                        )
                    )
            with self._cond:
                self._inflight -= 1
                self.batches_dispatched += 1
                self.requests_handled += len(batch)
                self.occupancy_sum += len(batch)
                self._cond.notify_all()

    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the queue.

        With ``drain`` (default) pending requests are scored before the
        collector exits; otherwise they fail fast with
        :class:`~repro.exceptions.ServiceOverloadedError`.
        """
        rejected: List[Request] = []
        with self._cond:
            if self._closed and not self._collector.is_alive():
                return
            self._closed = True
            if not drain:
                rejected = list(self._pending)
                self._pending.clear()
            self._cond.notify_all()
        for request in rejected:
            if not request.future.done():
                request.future.set_exception(
                    ServiceOverloadedError("queue closed before request was scored")
                )
        self._collector.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "MicroBatchQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
