"""Per-shard write-ahead ingest log: append-only, sha256-chained, replayable.

Every state mutation a shard worker performs (session create/drop, sample
ingest, statistics merge, and the logical-clock ticks queries cause) is
appended here *before* it is applied, as one JSON line:

``{"prev": <sha of previous line>, "record": {"seq": ..., "op": ...,
"payload": {...}}, "sha256": sha256(canonical({"prev", "record"}))}``

The first line is a header carrying the schema marker, shard id, and the
``base_seq`` the log starts after.  Each line's hash covers the previous
line's hash, so the file is a hash chain rooted at the header: replaying a
verified log reproduces the shard's state **bit-identically** (the
sufficient-statistics recurrences and the eviction clock are deterministic
functions of the op sequence), and any silent mid-file edit breaks the
chain.

Crash semantics distinguish two failure shapes:

* **Torn tail** — the process died mid-``write`` and the *last* line is
  incomplete or fails its hash.  That is the expected crash artefact;
  recovery silently drops the tail (the op was never acknowledged, because
  mutations are logged before they are applied) and truncates the file
  back to the verified prefix.
* **Mid-chain corruption** — a record *before* the last fails
  verification, or parseable records follow a broken line.  No crash
  produces that; it means the file was edited or the disk lied, and
  :class:`~repro.exceptions.WalCorruptionError` is raised rather than
  guessing.

Appends ``flush()`` to the OS page cache but do not ``fsync`` per record —
the kill-recovery guarantee targets process death (SIGKILL), where the
page cache survives; :meth:`WriteAheadLog.sync` forces durability at
checkpoint boundaries, and rotation (:meth:`truncate_through`) is atomic
and durable via the tmp + fsync + ``os.replace`` + directory-fsync
pattern shared with :mod:`repro.serving.checkpoint`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import WalCorruptionError
from repro.io import canonical_json, fsync_dir

__all__ = [
    "WAL_SCHEMA",
    "WAL_SCHEMA_VERSION",
    "WAL_OPS",
    "WalRecord",
    "WriteAheadLog",
]

#: Format marker written into every log header.
WAL_SCHEMA = "repro.serving-wal.v1"

#: Structural version of the record layout; bump on breaking change.
WAL_SCHEMA_VERSION = 1

#: The closed set of replayable operations.
WAL_OPS = ("create", "ingest", "ingest_stats", "drop", "touch")

#: One verified log entry: ``(seq, op, payload)``.
WalRecord = Tuple[int, str, Dict[str, Any]]

PathLike = Union[str, Path]


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _header_obj(shard_id: int, base_seq: int) -> Dict[str, Any]:
    header = {
        "schema": WAL_SCHEMA,
        "schema_version": WAL_SCHEMA_VERSION,
        "shard": int(shard_id),
        "base_seq": int(base_seq),
    }
    return {"header": header, "sha256": _sha(canonical_json({"header": header}))}


def _record_obj(prev_sha: str, seq: int, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    record = {"seq": int(seq), "op": op, "payload": payload}
    body = {"prev": prev_sha, "record": record}
    return {"prev": prev_sha, "record": record, "sha256": _sha(canonical_json(body))}


def _verify_line(obj: Any, prev_sha: str, expect_seq: int) -> WalRecord:
    """Check one parsed record line against the chain; raise ``ValueError``.

    Callers decide whether a failure is a droppable torn tail or hard
    corruption — this helper only states *that* the line does not verify.
    """
    if not isinstance(obj, dict) or set(obj) != {"prev", "record", "sha256"}:
        raise ValueError("not a WAL record object")
    record = obj["record"]
    if not isinstance(record, dict) or set(record) != {"seq", "op", "payload"}:
        raise ValueError("malformed WAL record body")
    if obj["prev"] != prev_sha:
        raise ValueError(
            f"chain break: record {record.get('seq')} links prev={obj['prev']!r}, "
            f"expected {prev_sha!r}"
        )
    expected = _sha(canonical_json({"prev": obj["prev"], "record": record}))
    if obj["sha256"] != expected:
        raise ValueError(f"sha mismatch on record {record.get('seq')}")
    seq = record["seq"]
    if not isinstance(seq, int) or seq != expect_seq:
        raise ValueError(f"sequence gap: got seq {seq!r}, expected {expect_seq}")
    op = record["op"]
    if op not in WAL_OPS:
        raise ValueError(f"unknown WAL op {op!r}")
    payload = record["payload"]
    if not isinstance(payload, dict):
        raise ValueError("WAL payload must be an object")
    return int(seq), str(op), payload


class WriteAheadLog:
    """An append-only, hash-chained, per-shard operation log.

    Use :meth:`create` for a fresh log and :meth:`open` to recover an
    existing one; the constructor is internal.  All methods are
    thread-safe (one writer lock), matching the shard worker's
    one-writer-many-readers discipline.
    """

    def __init__(
        self,
        path: Path,
        shard_id: int,
        base_seq: int,
        last_seq: int,
        last_sha: str,
    ) -> None:
        self._path = path
        self._shard_id = int(shard_id)
        self._base_seq = int(base_seq)
        self._last_seq = int(last_seq)
        self._last_sha = last_sha
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: PathLike, shard_id: int, base_seq: int = 0) -> "WriteAheadLog":
        """Start a new log at ``path`` (must not already exist).

        The header line is fsync'd immediately — a log file either has a
        durable, verifiable root or it does not exist.
        """
        target = Path(path)
        if target.exists():
            raise WalCorruptionError(
                f"refusing to create WAL over existing file: {target}"
            )
        header = _header_obj(shard_id, base_seq)
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return cls(
            target,
            shard_id=shard_id,
            base_seq=base_seq,
            last_seq=base_seq,
            last_sha=header["sha256"],
        )

    @classmethod
    def open(cls, path: PathLike) -> "WriteAheadLog":
        """Recover an existing log: verify the chain, drop a torn tail.

        Raises :class:`~repro.exceptions.WalCorruptionError` on anything a
        crash cannot produce — a broken header, a mid-chain hash/sequence
        failure, or records following a broken line.
        """
        target = Path(path)
        raw = target.read_bytes()
        lines = raw.split(b"\n")
        # a well-formed file ends with "\n", so the final split element is ""
        trailing_ok = bool(lines) and lines[-1] == b""
        if trailing_ok:
            lines = lines[:-1]
        if not lines:
            raise WalCorruptionError(f"WAL file is empty: {target}")

        shard_id, base_seq, header_sha = cls._parse_header(target, lines[0])
        if len(lines) == 1 and not trailing_ok:
            # create() fsyncs header + newline before returning, so a
            # header without its newline is not a crash artefact
            raise WalCorruptionError(f"WAL {target} header missing newline")

        prev_sha = header_sha
        seq = base_seq
        good_bytes = len(lines[0]) + 1
        n_lines = len(lines)
        for i in range(1, n_lines):
            line = lines[i]
            is_last = i == n_lines - 1
            try:
                obj = json.loads(line.decode("utf-8"))
                rec_seq, _op, _payload = _verify_line(obj, prev_sha, seq + 1)
            except (ValueError, UnicodeDecodeError) as exc:
                if is_last:
                    # torn tail: unacknowledged final write — drop it
                    break
                raise WalCorruptionError(
                    f"WAL {target} corrupt at line {i + 1}: {exc}"
                ) from exc
            if is_last and not trailing_ok:
                # parses and verifies but the newline never landed: still a
                # torn write (the acknowledgement flush includes the newline)
                break
            seq = rec_seq
            prev_sha = obj["sha256"]
            good_bytes += len(line) + 1

        if good_bytes < len(raw):
            with open(target, "r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return cls(
            target,
            shard_id=shard_id,
            base_seq=base_seq,
            last_seq=seq,
            last_sha=prev_sha,
        )

    @staticmethod
    def _parse_header(target: Path, line: bytes) -> Tuple[int, int, str]:
        try:
            obj = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise WalCorruptionError(f"WAL {target} has unreadable header") from exc
        if not isinstance(obj, dict) or set(obj) != {"header", "sha256"}:
            raise WalCorruptionError(f"WAL {target} has malformed header")
        header = obj["header"]
        if obj["sha256"] != _sha(canonical_json({"header": header})):
            raise WalCorruptionError(f"WAL {target} header fails hash check")
        if header.get("schema") != WAL_SCHEMA:
            raise WalCorruptionError(
                f"WAL {target} declares schema {header.get('schema')!r} "
                f"(expected {WAL_SCHEMA!r})"
            )
        if header.get("schema_version") != WAL_SCHEMA_VERSION:
            raise WalCorruptionError(
                f"WAL {target} declares schema_version "
                f"{header.get('schema_version')!r} "
                f"(this reader supports {WAL_SCHEMA_VERSION})"
            )
        try:
            return int(header["shard"]), int(header["base_seq"]), str(obj["sha256"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WalCorruptionError(
                f"WAL {target} header missing shard/base_seq fields"
            ) from exc

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def base_seq(self) -> int:
        """Sequence number the log starts *after* (covered by compaction)."""
        return self._base_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended record."""
        return self._last_seq

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, op: str, payload: Dict[str, Any]) -> int:
        """Append one operation; returns its sequence number.

        The line (newline included) is flushed to the page cache before
        returning, so a SIGKILL after ``append`` leaves the record
        replayable; at worst the final line is torn, which recovery drops.
        """
        if op not in WAL_OPS:
            raise WalCorruptionError(f"unknown WAL op {op!r}")
        with self._lock:
            seq = self._last_seq + 1
            obj = _record_obj(self._last_sha, seq, op, payload)
            self._handle.write(canonical_json(obj) + "\n")
            self._handle.flush()
            self._last_seq = seq
            self._last_sha = obj["sha256"]
            return seq

    def sync(self) -> None:
        """Force appended records to stable storage (checkpoint boundary)."""
        with self._lock:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def records(self, after: Optional[int] = None) -> Iterator[WalRecord]:
        """Yield verified ``(seq, op, payload)`` entries with ``seq > after``.

        ``after`` defaults to ``base_seq`` (everything in the log).  The
        file is re-read and re-verified from disk — the same code path a
        cold recovery uses, so tests exercise it constantly.
        """
        floor = self._base_seq if after is None else int(after)
        with self._lock:
            self._handle.flush()
            last_seq = self._last_seq
        text = self._path.read_text(encoding="utf-8")
        lines = text.splitlines()
        prev_sha = self._parse_header(self._path, lines[0].encode("utf-8"))[2]
        seq = self._base_seq
        for line in lines[1:]:
            if seq >= last_seq:
                break  # ignore records appended since the snapshot above
            try:
                obj = json.loads(line)
                seq, op, payload = _verify_line(obj, prev_sha, seq + 1)
            except ValueError as exc:
                raise WalCorruptionError(
                    f"WAL {self._path} corrupt during replay: {exc}"
                ) from exc
            prev_sha = obj["sha256"]
            if seq > floor:
                yield seq, op, payload

    def verify(self) -> int:
        """Re-verify the whole chain from disk; returns the record count."""
        return sum(1 for _ in self.records(after=self._base_seq))

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def truncate_through(self, seq: int) -> int:
        """Drop all records with ``seq <= the given value`` (compaction).

        Called after a checkpoint that covers ``seq``: the surviving tail
        is re-chained onto a fresh header whose ``base_seq`` is ``seq``,
        written atomically (tmp + fsync + ``os.replace``), so a crash
        during compaction leaves either the old or the new log — both
        verifiable.  Returns the number of records dropped.
        """
        target = int(seq)
        if target < self._base_seq or target > self._last_seq:
            raise WalCorruptionError(
                f"cannot truncate through seq {target}: log covers "
                f"({self._base_seq}, {self._last_seq}]"
            )
        tail: List[WalRecord] = [rec for rec in self.records(after=target)]
        with self._lock:
            header = _header_obj(self._shard_id, target)
            prev_sha = str(header["sha256"])
            out_lines = [canonical_json(header)]
            for rec_seq, op, payload in tail:
                obj = _record_obj(prev_sha, rec_seq, op, payload)
                out_lines.append(canonical_json(obj))
                prev_sha = str(obj["sha256"])
            tmp = self._path.with_name(self._path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write("\n".join(out_lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.flush()
            self._handle.close()
            os.replace(tmp, self._path)
            # compaction deletes replayed records on the strength of the
            # new file being durable — fsync the directory so the rename
            # survives power loss, not just SIGKILL
            fsync_dir(self._path.parent)
            dropped = target - self._base_seq
            self._base_seq = target
            self._last_sha = prev_sha
            self._handle = open(self._path, "a", encoding="utf-8")
            return dropped
