"""Per-shard write-ahead ingest log: append-only, sha256-chained, replayable.

Every state mutation a shard worker performs (session create/drop, sample
ingest, statistics merge, and the logical-clock ticks queries cause) is
appended here *before* it is applied.  Two on-disk formats share one hash
chain discipline and one recovery contract; :meth:`WriteAheadLog.open`
auto-detects which one a file uses:

* **v1 — JSON lines** (``repro.serving-wal.v1``).  One JSON object per
  line: ``{"prev": <sha of previous line>, "record": {"seq", "op",
  "payload"}, "sha256": sha256(canonical({"prev", "record"}))}``, rooted
  at a header line.  Array payloads are nested lists (``float.__repr__``
  round-trips doubles bit-for-bit, so replay is still exact), which makes
  the format greppable but expensive: every float is formatted and
  re-parsed, and the sha runs over the formatted text.
* **v2 — binary frames** (``repro.serving-wal.v2``).  The file starts
  with the magic line ``#repro.serving-wal.v2\\n`` followed by
  length-prefixed frames::

      frame  := u32le(len(body) + 32) | body | sha256_digest(32 bytes)
      body   := u32le(len(meta)) | meta | array bytes
      meta   := canonical JSON {"op", "payload", "seq"}

  ``float64`` arrays inside the payload (sample blocks, prior moments,
  ``SufficientStats`` buffers) are replaced in ``meta`` by shape-prefixed
  descriptors ``{"__f64nd__": {"shape": [...], "offset": N}}`` and their
  raw little-endian bytes appended to the body — no ``tolist`` /
  ``repr`` / re-parse on either side of the hot path.  The first frame
  is the header (its digest seeds the chain); every record's digest is
  ``sha256(prev_digest + body)``, so the chain property of v1 carries
  over byte-for-byte semantics included: replaying a verified log
  reproduces the shard's state **bit-identically**, and any silent
  mid-file edit breaks the chain.

**Group commit.**  Appends land in a bounded in-memory write buffer and
are written + flushed to the OS page cache as one block once
``flush_records`` records or ``flush_bytes`` bytes accumulate (the v1
default of ``flush_records=1`` preserves the original flush-per-record
behaviour).  :meth:`flush` drains the buffer explicitly; :meth:`sync`
drains it *and* fsyncs — the durability barrier
:meth:`~repro.serving.worker.ShardWorker.checkpoint` takes before
claiming a covered offset.  Reads (:meth:`records`, :meth:`verify`,
compaction) drain the buffer first, so a log never disagrees with
itself.  A SIGKILL can lose the still-buffered suffix of a group — those
records were never group-acknowledged — but recovery keeps every record
of the *flushed* prefix plus any complete frames of a torn group write.

Crash semantics distinguish two failure shapes:

* **Torn tail** — the process died mid-``write`` and the file ends with
  an incomplete line/frame or one whose hash fails.  That is the
  expected crash artefact; recovery silently drops the tail and
  truncates the file back to the verified prefix.  (For v2, structural
  damage to a length prefix is indistinguishable from a torn tail;
  recovery conservatively truncates, and the hash chain still guarantees
  the kept prefix is exactly what was written.)
* **Mid-chain corruption** — a verifiable-boundary record *before* the
  last fails its hash, or parseable records follow a broken line.  No
  crash produces that; it means the file was edited or the disk lied,
  and :class:`~repro.exceptions.WalCorruptionError` is raised rather
  than guessing.

Rotation (:meth:`truncate_through`) is atomic and durable via the tmp +
fsync + ``os.replace`` + directory-fsync pattern shared with
:mod:`repro.serving.checkpoint`, for both formats.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import WalCorruptionError
from repro.io import canonical_json, fsync_dir
from repro.schemas import WAL2_MAGIC, WAL_SCHEMA_V1, WAL_SCHEMA_V2

__all__ = [
    "WAL_SCHEMA",
    "WAL_SCHEMA_V2",
    "WAL_SCHEMA_VERSION",
    "WAL_VERSIONS",
    "WAL_OPS",
    "WAL2_MAGIC",
    "WalRecord",
    "WriteAheadLog",
]

#: Format marker written into every v1 log header (from :mod:`repro.schemas`,
#: the version-string source of truth; ``WAL_SCHEMA`` is the historical name).
WAL_SCHEMA = WAL_SCHEMA_V1

#: Structural version of the v1 record layout; bump on breaking change.
WAL_SCHEMA_VERSION = 1

#: On-disk format versions this module writes and reads.
WAL_VERSIONS = (1, 2)

#: The closed set of replayable operations.
WAL_OPS = ("create", "ingest", "ingest_stats", "drop", "touch")

#: One verified log entry: ``(seq, op, payload)``.
WalRecord = Tuple[int, str, Dict[str, Any]]

#: Default byte bound of the group-commit buffer (records bound is separate).
DEFAULT_FLUSH_BYTES = 1 << 18

PathLike = Union[str, Path]

_DIGEST_SIZE = 32
_U32 = struct.Struct("<I")
_ND_KEY = "__f64nd__"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------
def _payload_jsonify(value: Any) -> Any:
    """v1 encoding of a payload: ndarrays become nested lists.

    ``float.__repr__`` is shortest-round-trip, so the listification is
    lossless; it is also what the v1 format always stored, keeping v1
    hash chains byte-identical whether callers pass arrays or lists.
    """
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=float).tolist()
    if isinstance(value, dict):
        return {key: _payload_jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_payload_jsonify(item) for item in value]
    return value


def _strip_arrays(value: Any, buffers: List[bytes], state: Dict[str, int]) -> Any:
    """v2 encoding: replace ndarrays with shape+offset descriptors.

    The raw little-endian float64 bytes are appended to ``buffers`` in
    traversal order; offsets are explicit so decode order is free.
    """
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(np.asarray(value, dtype="<f8"))
        raw = arr.tobytes()
        descriptor = {
            _ND_KEY: {"offset": state["offset"], "shape": list(arr.shape)}
        }
        state["offset"] += len(raw)
        buffers.append(raw)
        return descriptor
    if isinstance(value, dict):
        return {
            str(key): _strip_arrays(item, buffers, state)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_strip_arrays(item, buffers, state) for item in value]
    return value


def _bind_arrays(value: Any, region: bytes) -> Any:
    """v2 decoding: materialise array descriptors from the byte region."""
    if isinstance(value, dict):
        if set(value) == {_ND_KEY}:
            descriptor = value[_ND_KEY]
            if not isinstance(descriptor, dict):
                raise ValueError("malformed array descriptor")
            shape = tuple(int(s) for s in descriptor["shape"])
            offset = int(descriptor["offset"])
            count = 1
            for extent in shape:
                if extent < 0:
                    raise ValueError("negative array extent")
                count *= extent
            nbytes = count * 8
            if offset < 0 or offset + nbytes > len(region):
                raise ValueError("array descriptor exceeds the payload region")
            flat = np.frombuffer(region, dtype="<f8", count=count, offset=offset)
            return flat.reshape(shape).astype(float)
        return {key: _bind_arrays(item, region) for key, item in value.items()}
    if isinstance(value, list):
        return [_bind_arrays(item, region) for item in value]
    return value


# ---------------------------------------------------------------------------
# v1 line codec
# ---------------------------------------------------------------------------
def _header_obj(shard_id: int, base_seq: int) -> Dict[str, Any]:
    header = {
        "schema": WAL_SCHEMA,
        "schema_version": WAL_SCHEMA_VERSION,
        "shard": int(shard_id),
        "base_seq": int(base_seq),
    }
    return {"header": header, "sha256": _sha(canonical_json({"header": header}))}


def _record_obj(prev_sha: str, seq: int, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    record = {"seq": int(seq), "op": op, "payload": payload}
    body = {"prev": prev_sha, "record": record}
    return {"prev": prev_sha, "record": record, "sha256": _sha(canonical_json(body))}


def _verify_line(obj: Any, prev_sha: str, expect_seq: int) -> WalRecord:
    """Check one parsed record line against the chain; raise ``ValueError``.

    Callers decide whether a failure is a droppable torn tail or hard
    corruption — this helper only states *that* the line does not verify.
    """
    if not isinstance(obj, dict) or set(obj) != {"prev", "record", "sha256"}:
        raise ValueError("not a WAL record object")
    record = obj["record"]
    if not isinstance(record, dict) or set(record) != {"seq", "op", "payload"}:
        raise ValueError("malformed WAL record body")
    if obj["prev"] != prev_sha:
        raise ValueError(
            f"chain break: record {record.get('seq')} links prev={obj['prev']!r}, "
            f"expected {prev_sha!r}"
        )
    expected = _sha(canonical_json({"prev": obj["prev"], "record": record}))
    if obj["sha256"] != expected:
        raise ValueError(f"sha mismatch on record {record.get('seq')}")
    seq = record["seq"]
    if not isinstance(seq, int) or seq != expect_seq:
        raise ValueError(f"sequence gap: got seq {seq!r}, expected {expect_seq}")
    op = record["op"]
    if op not in WAL_OPS:
        raise ValueError(f"unknown WAL op {op!r}")
    payload = record["payload"]
    if not isinstance(payload, dict):
        raise ValueError("WAL payload must be an object")
    return int(seq), str(op), payload


# ---------------------------------------------------------------------------
# v2 frame codec
# ---------------------------------------------------------------------------
class _TornTail(Exception):
    """Internal: the byte stream ends with a structurally incomplete frame."""


def _header_frame_v2(shard_id: int, base_seq: int) -> Tuple[bytes, bytes]:
    header = {
        "base_seq": int(base_seq),
        "schema": WAL_SCHEMA_V2,
        "schema_version": 2,
        "shard": int(shard_id),
    }
    body = canonical_json(header).encode("utf-8")
    digest = hashlib.sha256(body).digest()
    return _U32.pack(len(body) + _DIGEST_SIZE) + body + digest, digest


def _record_frame_v2(
    prev_digest: bytes, seq: int, op: str, payload: Dict[str, Any]
) -> Tuple[bytes, bytes]:
    buffers: List[bytes] = []
    state = {"offset": 0}
    meta_payload = _strip_arrays(payload, buffers, state)
    meta = canonical_json(
        {"op": op, "payload": meta_payload, "seq": int(seq)}
    ).encode("utf-8")
    body = _U32.pack(len(meta)) + meta + b"".join(buffers)
    digest = hashlib.sha256(prev_digest + body).digest()
    return _U32.pack(len(body) + _DIGEST_SIZE) + body + digest, digest


def _iter_raw_frames_v2(
    data: bytes, start: int
) -> Iterator[Tuple[int, bytes, bytes, int]]:
    """Yield ``(frame_start, body, digest, frame_end)`` per complete frame.

    Raises :class:`_TornTail` when the stream ends inside a frame — the
    shape a killed group write leaves behind.
    """
    pos = start
    total = len(data)
    while pos < total:
        if total - pos < _U32.size:
            raise _TornTail(pos)
        (length,) = _U32.unpack_from(data, pos)
        end = pos + _U32.size + length
        if length < _DIGEST_SIZE or end > total:
            raise _TornTail(pos)
        body = data[pos + _U32.size : end - _DIGEST_SIZE]
        digest = data[end - _DIGEST_SIZE : end]
        yield pos, body, digest, end
        pos = end


def _verify_frame_v2(
    body: bytes, digest: bytes, prev_digest: bytes, expect_seq: int
) -> WalRecord:
    """Check one structurally complete v2 frame; raise ``ValueError``."""
    if hashlib.sha256(prev_digest + body).digest() != digest:
        raise ValueError(f"sha mismatch on record {expect_seq}")
    if len(body) < _U32.size:
        raise ValueError("frame body too short for a meta length")
    (meta_len,) = _U32.unpack_from(body)
    if _U32.size + meta_len > len(body):
        raise ValueError("frame meta length exceeds the body")
    try:
        meta = json.loads(body[_U32.size : _U32.size + meta_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ValueError(f"unreadable frame meta: {exc}") from exc
    if not isinstance(meta, dict) or set(meta) != {"op", "payload", "seq"}:
        raise ValueError("malformed frame meta")
    seq = meta["seq"]
    if not isinstance(seq, int) or seq != expect_seq:
        raise ValueError(f"sequence gap: got seq {seq!r}, expected {expect_seq}")
    op = meta["op"]
    if op not in WAL_OPS:
        raise ValueError(f"unknown WAL op {op!r}")
    payload = _bind_arrays(meta["payload"], body[_U32.size + meta_len :])
    if not isinstance(payload, dict):
        raise ValueError("WAL payload must be an object")
    return int(seq), str(op), payload


def _parse_header_v2(target: Path, raw: bytes) -> Tuple[int, int, bytes, int]:
    """Verify the v2 magic + header frame; returns (shard, base_seq, digest, end)."""
    frames = _iter_raw_frames_v2(raw, len(WAL2_MAGIC))
    try:
        _, body, digest, end = next(frames)
    except (_TornTail, StopIteration):
        # create() fsyncs magic + header before returning, so an
        # incomplete header is not a crash artefact
        raise WalCorruptionError(f"WAL {target} has an incomplete v2 header") from None
    if hashlib.sha256(body).digest() != digest:
        raise WalCorruptionError(f"WAL {target} header fails hash check")
    try:
        header = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WalCorruptionError(f"WAL {target} has unreadable header") from exc
    if not isinstance(header, dict) or header.get("schema") != WAL_SCHEMA_V2:
        raise WalCorruptionError(
            f"WAL {target} declares schema "
            f"{header.get('schema') if isinstance(header, dict) else None!r} "
            f"(expected {WAL_SCHEMA_V2!r})"
        )
    if header.get("schema_version") != 2:
        raise WalCorruptionError(
            f"WAL {target} declares schema_version {header.get('schema_version')!r} "
            "(this reader supports 2)"
        )
    try:
        return int(header["shard"]), int(header["base_seq"]), digest, end
    except (KeyError, TypeError, ValueError) as exc:
        raise WalCorruptionError(
            f"WAL {target} header missing shard/base_seq fields"
        ) from exc


class WriteAheadLog:
    """An append-only, hash-chained, per-shard operation log.

    Use :meth:`create` for a fresh log and :meth:`open` to recover an
    existing one (the on-disk format is auto-detected); the constructor
    is internal.  All methods are thread-safe (one writer lock), matching
    the shard worker's one-writer-many-readers discipline.

    Parameters (``create``/``open``)
    --------------------------------
    version:
        On-disk format for *new* logs: ``1`` (JSON lines) or ``2``
        (binary frames with raw float64 array buffers — the ingest fast
        path).
    flush_records, flush_bytes:
        Group-commit bounds: buffered appends are written + flushed to
        the page cache once either is reached.  ``flush_records=1``
        (the default) flushes per record, the v1-era behaviour.
    observer:
        Optional counters sink (duck-typed
        :class:`~repro.serving.counters.ServiceCounters`): gets
        ``record_wal_append(n_bytes)`` per append and
        ``record_wal_flush(n_bytes)`` per physical flush.
    """

    def __init__(
        self,
        path: Path,
        shard_id: int,
        base_seq: int,
        last_seq: int,
        last_sha: Union[str, bytes],
        version: int = 1,
        flush_records: int = 1,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        observer: Optional[Any] = None,
    ) -> None:
        self._path = path
        self._shard_id = int(shard_id)
        self._base_seq = int(base_seq)
        self._last_seq = int(last_seq)
        self._last_sha = last_sha
        self._version = int(version)
        self._flush_records = max(1, int(flush_records))
        self._flush_bytes = max(1, int(flush_bytes))
        self.observer = observer
        self._pending = bytearray()
        self._pending_records = 0
        #: Records appended through this handle (process lifetime).
        self.records_appended = 0
        #: Bytes physically written through this handle (process lifetime).
        self.bytes_written = 0
        #: Physical flushes issued by this handle (process lifetime).
        self.flush_count = 0
        self._lock = threading.Lock()
        self._handle = open(path, "ab")

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        shard_id: int,
        base_seq: int = 0,
        version: int = 1,
        flush_records: int = 1,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        observer: Optional[Any] = None,
    ) -> "WriteAheadLog":
        """Start a new log at ``path`` (must not already exist).

        The header is fsync'd immediately — a log file either has a
        durable, verifiable root or it does not exist.
        """
        if version not in WAL_VERSIONS:
            raise WalCorruptionError(
                f"unknown WAL version {version!r}; expected one of {WAL_VERSIONS}"
            )
        target = Path(path)
        if target.exists():
            raise WalCorruptionError(
                f"refusing to create WAL over existing file: {target}"
            )
        last_sha: Union[str, bytes]
        if version == 2:
            frame, digest = _header_frame_v2(shard_id, base_seq)
            root = WAL2_MAGIC + frame
            last_sha = digest
        else:
            header = _header_obj(shard_id, base_seq)
            root = (canonical_json(header) + "\n").encode("utf-8")
            last_sha = str(header["sha256"])
        with open(target, "wb") as handle:
            handle.write(root)
            handle.flush()
            os.fsync(handle.fileno())
        return cls(
            target,
            shard_id=shard_id,
            base_seq=base_seq,
            last_seq=base_seq,
            last_sha=last_sha,
            version=version,
            flush_records=flush_records,
            flush_bytes=flush_bytes,
            observer=observer,
        )

    @classmethod
    def open(
        cls,
        path: PathLike,
        flush_records: Optional[int] = None,
        flush_bytes: Optional[int] = None,
        observer: Optional[Any] = None,
    ) -> "WriteAheadLog":
        """Recover an existing log: verify the chain, drop a torn tail.

        The on-disk format (v1 JSON lines / v2 binary frames) is detected
        from the first bytes.  ``flush_records``/``flush_bytes`` of
        ``None`` resume the format's group-commit defaults
        (flush-per-record for v1, 64-record groups for v2).  Raises
        :class:`~repro.exceptions.WalCorruptionError` on anything a crash
        cannot produce — a broken header, a mid-chain hash/sequence
        failure, or records following a broken line.
        """
        target = Path(path)
        raw = target.read_bytes()
        if raw.startswith(WAL2_MAGIC):
            return cls._open_v2(
                target,
                raw,
                flush_records=flush_records,
                flush_bytes=flush_bytes,
                observer=observer,
            )
        return cls._open_v1(
            target,
            raw,
            flush_records=flush_records,
            flush_bytes=flush_bytes,
            observer=observer,
        )

    @classmethod
    def _open_v1(
        cls,
        target: Path,
        raw: bytes,
        flush_records: Optional[int],
        flush_bytes: Optional[int],
        observer: Optional[Any],
    ) -> "WriteAheadLog":
        flush_records = 1 if flush_records is None else flush_records
        flush_bytes = DEFAULT_FLUSH_BYTES if flush_bytes is None else flush_bytes
        lines = raw.split(b"\n")
        # a well-formed file ends with "\n", so the final split element is ""
        trailing_ok = bool(lines) and lines[-1] == b""
        if trailing_ok:
            lines = lines[:-1]
        if not lines:
            raise WalCorruptionError(f"WAL file is empty: {target}")

        shard_id, base_seq, header_sha = cls._parse_header(target, lines[0])
        if len(lines) == 1 and not trailing_ok:
            # create() fsyncs header + newline before returning, so a
            # header without its newline is not a crash artefact
            raise WalCorruptionError(f"WAL {target} header missing newline")

        prev_sha = header_sha
        seq = base_seq
        good_bytes = len(lines[0]) + 1
        n_lines = len(lines)
        for i in range(1, n_lines):
            line = lines[i]
            is_last = i == n_lines - 1
            try:
                obj = json.loads(line.decode("utf-8"))
                rec_seq, _op, _payload = _verify_line(obj, prev_sha, seq + 1)
            except (ValueError, UnicodeDecodeError) as exc:
                if is_last:
                    # torn tail: unacknowledged final write — drop it
                    break
                raise WalCorruptionError(
                    f"WAL {target} corrupt at line {i + 1}: {exc}"
                ) from exc
            if is_last and not trailing_ok:
                # parses and verifies but the newline never landed: still a
                # torn write (the acknowledgement flush includes the newline)
                break
            seq = rec_seq
            prev_sha = obj["sha256"]
            good_bytes += len(line) + 1

        cls._truncate_to(target, good_bytes, len(raw))
        return cls(
            target,
            shard_id=shard_id,
            base_seq=base_seq,
            last_seq=seq,
            last_sha=prev_sha,
            version=1,
            flush_records=flush_records,
            flush_bytes=flush_bytes,
            observer=observer,
        )

    #: Group-commit record bound v2 logs resume with when none is given.
    DEFAULT_V2_FLUSH_RECORDS = 64

    @classmethod
    def _open_v2(
        cls,
        target: Path,
        raw: bytes,
        flush_records: Optional[int],
        flush_bytes: Optional[int],
        observer: Optional[Any],
    ) -> "WriteAheadLog":
        if flush_records is None:
            flush_records = cls.DEFAULT_V2_FLUSH_RECORDS
        flush_bytes = DEFAULT_FLUSH_BYTES if flush_bytes is None else flush_bytes
        shard_id, base_seq, prev_digest, good_bytes = _parse_header_v2(target, raw)
        seq = base_seq
        frames = _iter_raw_frames_v2(raw, good_bytes)
        while True:
            try:
                pos, body, digest, end = next(frames)
            except _TornTail:
                # incomplete frame at the tail: the torn suffix of a
                # group write — drop it
                break
            except StopIteration:
                break
            try:
                rec_seq, _op, _payload = _verify_frame_v2(
                    body, digest, prev_digest, seq + 1
                )
            except ValueError as exc:
                if end >= len(raw):
                    break  # torn final frame: unacknowledged — drop it
                raise WalCorruptionError(
                    f"WAL {target} corrupt at offset {pos}: {exc}"
                ) from exc
            seq = rec_seq
            prev_digest = digest
            good_bytes = end
        cls._truncate_to(target, good_bytes, len(raw))
        return cls(
            target,
            shard_id=shard_id,
            base_seq=base_seq,
            last_seq=seq,
            last_sha=prev_digest,
            version=2,
            flush_records=flush_records,
            flush_bytes=flush_bytes,
            observer=observer,
        )

    @staticmethod
    def _truncate_to(target: Path, good_bytes: int, total_bytes: int) -> None:
        if good_bytes < total_bytes:
            with open(target, "r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())

    @staticmethod
    def _parse_header(target: Path, line: bytes) -> Tuple[int, int, str]:
        try:
            obj = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise WalCorruptionError(f"WAL {target} has unreadable header") from exc
        if not isinstance(obj, dict) or set(obj) != {"header", "sha256"}:
            raise WalCorruptionError(f"WAL {target} has malformed header")
        header = obj["header"]
        if obj["sha256"] != _sha(canonical_json({"header": header})):
            raise WalCorruptionError(f"WAL {target} header fails hash check")
        if header.get("schema") != WAL_SCHEMA:
            raise WalCorruptionError(
                f"WAL {target} declares schema {header.get('schema')!r} "
                f"(expected {WAL_SCHEMA!r})"
            )
        if header.get("schema_version") != WAL_SCHEMA_VERSION:
            raise WalCorruptionError(
                f"WAL {target} declares schema_version "
                f"{header.get('schema_version')!r} "
                f"(this reader supports {WAL_SCHEMA_VERSION})"
            )
        try:
            return int(header["shard"]), int(header["base_seq"]), str(obj["sha256"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WalCorruptionError(
                f"WAL {target} header missing shard/base_seq fields"
            ) from exc

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def version(self) -> int:
        """On-disk format version (1 = JSON lines, 2 = binary frames)."""
        return self._version

    @property
    def base_seq(self) -> int:
        """Sequence number the log starts *after* (covered by compaction)."""
        return self._base_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended record."""
        return self._last_seq

    @property
    def pending_records(self) -> int:
        """Appended records still in the group-commit buffer (unflushed)."""
        with self._lock:
            return self._pending_records

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, op: str, payload: Dict[str, Any]) -> int:
        """Append one operation; returns its sequence number.

        ``payload`` values may be (nested) ``float64`` ndarrays — v2 logs
        them as raw buffers, v1 listifies them.  The encoded record
        enters the group-commit buffer; it reaches the OS page cache at
        the next bound crossing, :meth:`flush`, :meth:`sync`, read, or
        close.  With ``flush_records=1`` every append flushes, so a
        SIGKILL after ``append`` leaves the record replayable; at worst
        the final line/frame is torn, which recovery drops.
        """
        if op not in WAL_OPS:
            raise WalCorruptionError(f"unknown WAL op {op!r}")
        with self._lock:
            seq = self._last_seq + 1
            if self._version == 2:
                assert isinstance(self._last_sha, bytes)
                frame, digest = _record_frame_v2(self._last_sha, seq, op, payload)
                self._last_sha = digest
            else:
                assert isinstance(self._last_sha, str)
                obj = _record_obj(self._last_sha, seq, op, _payload_jsonify(payload))
                frame = (canonical_json(obj) + "\n").encode("utf-8")
                self._last_sha = str(obj["sha256"])
            self._pending += frame
            self._pending_records += 1
            self._last_seq = seq
            self.records_appended += 1
            if self.observer is not None:
                self.observer.record_wal_append(len(frame))
            if (
                self._pending_records >= self._flush_records
                or len(self._pending) >= self._flush_bytes
            ):
                self._flush_locked()
            return seq

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        data = bytes(self._pending)
        self._handle.write(data)
        self._handle.flush()
        self._pending.clear()
        self._pending_records = 0
        self.bytes_written += len(data)
        self.flush_count += 1
        if self.observer is not None:
            self.observer.record_wal_flush(len(data))

    def flush(self) -> None:
        """Drain the group-commit buffer to the OS page cache."""
        with self._lock:
            self._flush_locked()

    def sync(self) -> None:
        """Force appended records to stable storage (checkpoint boundary)."""
        with self._lock:
            self._flush_locked()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._flush_locked()
                os.fsync(self._handle.fileno())
                self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def records(self, after: Optional[int] = None) -> Iterator[WalRecord]:
        """Yield verified ``(seq, op, payload)`` entries with ``seq > after``.

        ``after`` defaults to ``base_seq`` (everything in the log).  The
        group-commit buffer is drained first, then the file is re-read
        and re-verified from disk — the same code path a cold recovery
        uses, so tests exercise it constantly.  v2 payload arrays come
        back as ``float64`` ndarrays; v1 payloads as nested lists — the
        replay layer accepts both.
        """
        floor = self._base_seq if after is None else int(after)
        with self._lock:
            self._flush_locked()
            last_seq = self._last_seq
        if self._version == 2:
            yield from self._records_v2(floor, last_seq)
            return
        text = self._path.read_text(encoding="utf-8")
        lines = text.splitlines()
        prev_sha = self._parse_header(self._path, lines[0].encode("utf-8"))[2]
        seq = self._base_seq
        for line in lines[1:]:
            if seq >= last_seq:
                break  # ignore records appended since the snapshot above
            try:
                obj = json.loads(line)
                seq, op, payload = _verify_line(obj, prev_sha, seq + 1)
            except ValueError as exc:
                raise WalCorruptionError(
                    f"WAL {self._path} corrupt during replay: {exc}"
                ) from exc
            prev_sha = obj["sha256"]
            if seq > floor:
                yield seq, op, payload

    def _records_v2(self, floor: int, last_seq: int) -> Iterator[WalRecord]:
        raw = self._path.read_bytes()
        shard_id, base_seq, prev_digest, end = _parse_header_v2(self._path, raw)
        del shard_id
        seq = base_seq
        frames = _iter_raw_frames_v2(raw, end)
        while seq < last_seq:
            try:
                pos, body, digest, _end = next(frames)
            except StopIteration:
                break
            except _TornTail as exc:
                raise WalCorruptionError(
                    f"WAL {self._path} corrupt during replay: "
                    f"incomplete frame at offset {exc.args[0]}"
                ) from exc
            try:
                seq, op, payload = _verify_frame_v2(body, digest, prev_digest, seq + 1)
            except ValueError as exc:
                raise WalCorruptionError(
                    f"WAL {self._path} corrupt during replay at offset {pos}: {exc}"
                ) from exc
            prev_digest = digest
            if seq > floor:
                yield seq, op, payload

    def verify(self) -> int:
        """Re-verify the whole chain from disk; returns the record count."""
        return sum(1 for _ in self.records(after=self._base_seq))

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def truncate_through(self, seq: int) -> int:
        """Drop all records with ``seq <= the given value`` (compaction).

        Called after a checkpoint that covers ``seq``: the surviving tail
        is re-chained onto a fresh header whose ``base_seq`` is ``seq``,
        written atomically (tmp + fsync + ``os.replace``), so a crash
        during compaction leaves either the old or the new log — both
        verifiable.  The rewritten log keeps its on-disk format.  Returns
        the number of records dropped.
        """
        target = int(seq)
        if target < self._base_seq or target > self._last_seq:
            raise WalCorruptionError(
                f"cannot truncate through seq {target}: log covers "
                f"({self._base_seq}, {self._last_seq}]"
            )
        tail: List[WalRecord] = [rec for rec in self.records(after=target)]
        with self._lock:
            out: List[bytes]
            last_sha: Union[str, bytes]
            if self._version == 2:
                header_frame, prev_digest = _header_frame_v2(self._shard_id, target)
                out = [WAL2_MAGIC, header_frame]
                for rec_seq, op, payload in tail:
                    frame, prev_digest = _record_frame_v2(
                        prev_digest, rec_seq, op, payload
                    )
                    out.append(frame)
                last_sha = prev_digest
            else:
                header = _header_obj(self._shard_id, target)
                prev_sha = str(header["sha256"])
                out = [(canonical_json(header) + "\n").encode("utf-8")]
                for rec_seq, op, payload in tail:
                    obj = _record_obj(prev_sha, rec_seq, op, payload)
                    out.append((canonical_json(obj) + "\n").encode("utf-8"))
                    prev_sha = str(obj["sha256"])
                last_sha = prev_sha
            tmp = self._path.with_name(self._path.name + ".tmp")
            with open(tmp, "wb") as handle:
                handle.write(b"".join(out))
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.flush()
            self._handle.close()
            os.replace(tmp, self._path)
            # compaction deletes replayed records on the strength of the
            # new file being durable — fsync the directory so the rename
            # survives power loss, not just SIGKILL
            fsync_dir(self._path.parent)
            dropped = target - self._base_seq
            self._base_seq = target
            self._last_sha = last_sha
            self._handle = open(self._path, "ab")
            return dropped
