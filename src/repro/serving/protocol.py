"""JSON-lines wire protocol for the estimation service.

One request per line on stdin, one response per line on stdout — the
transport every tester harness and glue script speaks.  A request is a
JSON object with an ``op`` field; a response always carries ``"ok"``:

.. code-block:: text

    {"op": "create", "key": "lna/tt", "prior_mean": [...], "prior_covariance": [[...]]}
    {"ok": true, "op": "create", "key": "lna/tt", "dim": 5}

    {"op": "bogus"}
    {"ok": false, "op": "bogus", "error": "ConfigError", "message": "..."}

Supported operations (full field reference in ``docs/SERVING.md``):

=============  ==============================================================
``ping``       liveness probe; echoes ``{"ok": true, "op": "ping"}``
``create``     register a session from explicit prior moments
``ingest``     fold a sample block (``samples``) or shard sufficient
               statistics (``stats``) into a session
``estimate``   MAP ``(mu, Sigma)`` of a session
``loglik``     joint log-likelihood of ``x`` under the session's MAP
``yield``      box-probability yield for ``lower``/``upper`` spec bounds
``sessions``   list live session keys
``drop``       remove a session
``stats``      service counter snapshot
``checkpoint`` atomic snapshot of the full service state to ``path``
``shutdown``   stop the serve loop (after responding)
=============  ==============================================================

Errors never kill the loop: any :class:`~repro.exceptions.ReproError` or
malformed-input error is reported on the offending response line and the
loop keeps reading.  Queries taken through this module use the service's
synchronous batch path (`MomentService.query_many`) — a single stdin
reader gains nothing from cross-request coalescing, and determinism is
worth more on the wire.

**Zero-copy arrays.**  Every array-valued request field (``samples``,
``prior_mean``, ``x``, spec bounds, suffstats ``mean``/``scatter``)
accepts either a nested JSON list or the ``b64f64`` envelope::

    {"encoding": "b64f64", "shape": [n, d], "data": "<base64 of raw <f8>"}

i.e. the array's little-endian float64 buffer, base64-wrapped to stay
inside JSON-lines framing.  This skips the tolist/parse round-trip (and
its per-float formatting cost) on the ingest hot path; decoding is one
``base64`` pass plus ``np.frombuffer``.  A request that carries
``"encoding": "b64f64"`` at the top level gets its array-valued
*response* fields (``estimate``'s mean/covariance) in the same envelope.
Both encodings are bit-exact: ``float.__repr__`` round-trips, and raw
bytes trivially so.
"""

from __future__ import annotations

import base64
import binascii
import json
import sys
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Union

import numpy as np

from repro.exceptions import ConfigError, ReproError
from repro.schemas import canonical_json
from repro.serving.router import ShardedMomentService
from repro.serving.service import MomentService
from repro.core.prior import PriorKnowledge
from repro.stats.suffstats import SufficientStats

__all__ = [
    "handle_request",
    "serve_loop",
    "PROTOCOL_OPS",
    "ServingService",
    "WIRE_B64F64",
    "encode_array",
    "decode_array",
]

#: Marker value of the zero-copy float64 array envelope.
WIRE_B64F64 = "b64f64"

#: Any service the wire protocol can front: the single-process
#: :class:`MomentService` or the sharded router.  Both expose the same
#: session-lifecycle / ingest / synchronous-query surface; the protocol
#: layer never reaches into stores or workers directly.
ServingService = Union[MomentService, ShardedMomentService]

#: Operations the wire protocol accepts.
PROTOCOL_OPS = (
    "ping",
    "create",
    "ingest",
    "estimate",
    "loglik",
    "yield",
    "sessions",
    "drop",
    "stats",
    "checkpoint",
    "shutdown",
)


def encode_array(values: Any) -> Dict[str, Any]:
    """Wrap an array in the ``b64f64`` envelope (raw LE float64 + base64)."""
    arr = np.ascontiguousarray(np.asarray(values, dtype="<f8"))
    return {
        "encoding": WIRE_B64F64,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(value: Any) -> np.ndarray:
    """Accept a nested list *or* a ``b64f64`` envelope; return float64.

    The permissive side of the wire: clients choose per-field, and both
    paths produce bit-identical arrays.
    """
    if isinstance(value, dict):
        encoding = value.get("encoding")
        if encoding != WIRE_B64F64:
            raise ConfigError(
                f"unknown array encoding {encoding!r} (expected {WIRE_B64F64!r})"
            )
        try:
            raw = base64.b64decode(str(value["data"]), validate=True)
        except (KeyError, binascii.Error) as exc:
            raise ConfigError(f"undecodable {WIRE_B64F64} data: {exc}") from exc
        shape_field = value.get("shape")
        if not isinstance(shape_field, list):
            raise ConfigError(f"{WIRE_B64F64} envelope requires a shape list")
        shape: List[int] = [int(extent) for extent in shape_field]
        count = 1
        for extent in shape:
            if extent < 0:
                raise ConfigError(f"negative extent in {WIRE_B64F64} shape {shape}")
            count *= extent
        if len(raw) != count * 8:
            raise ConfigError(
                f"{WIRE_B64F64} payload holds {len(raw)} bytes but shape "
                f"{shape} needs {count * 8}"
            )
        return np.frombuffer(raw, dtype="<f8").reshape(shape).astype(float)
    return np.asarray(value, dtype=float)


def _decode_stats(payload: Any) -> SufficientStats:
    """Suffstats from the wire; ``mean``/``scatter`` may be ``b64f64``."""
    if isinstance(payload, dict) and (
        isinstance(payload.get("mean"), dict) or isinstance(payload.get("scatter"), dict)
    ):
        payload = dict(payload)
        payload["mean"] = decode_array(payload.get("mean"))
        payload["scatter"] = decode_array(payload.get("scatter"))
    return SufficientStats.from_dict(payload)


def _require(request: Dict[str, Any], field: str) -> Any:
    try:
        return request[field]
    except KeyError:
        raise ConfigError(
            f"request op {request.get('op')!r} requires field {field!r}"
        ) from None


def _op_ping(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    del service, request
    return {}


def _op_create(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    key = str(_require(request, "key"))
    prior = PriorKnowledge(
        mean=decode_array(_require(request, "prior_mean")),
        covariance=decode_array(_require(request, "prior_covariance")),
        n_samples=int(request.get("prior_n_samples", 0)),
    )
    kappa0 = request.get("kappa0")
    v0 = request.get("v0")
    session = service.create_session(
        key,
        prior,
        kappa0=None if kappa0 is None else float(kappa0),
        v0=None if v0 is None else float(v0),
        exist_ok=bool(request.get("exist_ok", False)),
    )
    return {
        "key": session.key,
        "dim": session.dim,
        "kappa0": session.kappa0,
        "v0": session.v0,
        "n": session.n_ingested,
    }


def _op_ingest(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    key = str(_require(request, "key"))
    if "stats" in request:
        stats = _decode_stats(request["stats"])
        total = service.ingest_stats(key, stats)
        folded = stats.n
    else:
        samples = decode_array(_require(request, "samples"))
        total = service.ingest(key, samples)
        folded = 1 if samples.ndim == 1 else int(samples.shape[0])
    return {"key": key, "ingested": folded, "n": total}


def _op_estimate(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    key = str(_require(request, "key"))
    estimate = service.query_many([("estimate", key, None)])[0]
    binary = request.get("encoding") == WIRE_B64F64
    return {
        "key": key,
        "mean": encode_array(estimate.mean) if binary else estimate.mean.tolist(),
        "covariance": (
            encode_array(estimate.covariance)
            if binary
            else estimate.covariance.tolist()
        ),
        "n": estimate.n_samples,
        "method": estimate.method,
        "info": dict(estimate.info),
    }


def _op_loglik(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    key = str(_require(request, "key"))
    x = decode_array(_require(request, "x"))
    value = service.query_many([("loglik", key, x)])[0]
    return {"key": key, "loglik": float(value)}


def _op_yield(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    key = str(_require(request, "key"))
    lower = decode_array(_require(request, "lower"))
    upper = decode_array(_require(request, "upper"))
    value = service.query_many([("yield", key, (lower, upper))])[0]
    return {"key": key, "yield": float(value)}


def _op_sessions(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    del request
    return {"sessions": service.session_keys()}


def _op_drop(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    key = str(_require(request, "key"))
    return {"key": key, "dropped": service.drop_session(key)}


def _op_stats(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    del request
    return {"stats": service.stats()}


def _op_checkpoint(service: ServingService, request: Dict[str, Any]) -> Dict[str, Any]:
    path = str(_require(request, "path"))
    sha256 = service.checkpoint(path)
    return {"path": path, "sha256": sha256}


_HANDLERS: Dict[str, Callable[[ServingService, Dict[str, Any]], Dict[str, Any]]] = {
    "ping": _op_ping,
    "create": _op_create,
    "ingest": _op_ingest,
    "estimate": _op_estimate,
    "loglik": _op_loglik,
    "yield": _op_yield,
    "sessions": _op_sessions,
    "drop": _op_drop,
    "stats": _op_stats,
    "checkpoint": _op_checkpoint,
}


def handle_request(service: ServingService, line: str) -> Dict[str, Any]:
    """Decode one request line, execute it, and return the response dict.

    Never raises for client mistakes — malformed JSON, unknown ops,
    missing fields, and estimator errors all come back as
    ``{"ok": false, "error": <class>, "message": <detail>}`` so a stream
    of requests degrades per-line rather than tearing the session down.
    """
    op: Optional[str] = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ConfigError("request must be a JSON object")
        op = str(request.get("op"))
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        handler = _HANDLERS.get(op)
        if handler is None:
            raise ConfigError(
                f"unknown op {op!r}; expected one of {sorted(PROTOCOL_OPS)}"
            )
        body = handler(service, request)
    except json.JSONDecodeError as exc:
        return {
            "ok": False,
            "op": op,
            "error": "JSONDecodeError",
            "message": str(exc),
        }
    except (ReproError, TypeError, ValueError, KeyError) as exc:
        return {
            "ok": False,
            "op": op,
            "error": type(exc).__name__,
            "message": str(exc),
        }
    response: Dict[str, Any] = {"ok": True, "op": op}
    response.update(body)
    return response


def serve_loop(
    service: ServingService,
    lines: Optional[Iterable[str]] = None,
    out: Optional[IO[str]] = None,
) -> int:
    """Run the JSON-lines loop until ``shutdown``, end of input, or a
    closed output pipe.

    Returns the number of requests handled.  ``lines``/``out`` default to
    stdin/stdout; injectable for tests.  Each response is flushed as soon
    as it is written so piped clients see replies promptly, and a client
    that hangs up (``BrokenPipeError`` on write/flush) ends the loop
    cleanly — the response that could not be delivered does not count as
    handled, and no traceback escapes.
    """
    source = sys.stdin if lines is None else lines
    sink = sys.stdout if out is None else out
    handled = 0
    for raw in source:
        line = raw.strip()
        if not line:
            continue
        response = handle_request(service, line)
        try:
            sink.write(canonical_json(response) + "\n")
            sink.flush()
        except BrokenPipeError:
            break
        handled += 1
        if response.get("op") == "shutdown" and response.get("ok"):
            break
    return handled
